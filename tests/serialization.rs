//! Cross-crate serialization tests: the training-phase → testing-phase
//! hand-off (critic files shipped to OBUs, compiled to the lite runtime).

use vehigan::core::{Wgan, WganConfig};
use vehigan::lite::LiteCritic;
use vehigan::tensor::init::{rand_uniform, seeded_rng};
use vehigan::tensor::serialize::{ModelFormatError, ModelSnapshot};
use vehigan::tensor::{Sequential, Tensor};

fn trained_critic_bytes(seed: u64) -> (WganConfig, Vec<u8>, Tensor, Vec<f32>) {
    let config = WganConfig {
        noise_dim: 8,
        layers: 4,
        epochs: 2,
        batch_size: 32,
        n_critic: 1,
        seed,
        ..WganConfig::default()
    };
    let mut rng = seeded_rng(seed ^ 0xDA7A);
    let train = rand_uniform(&[96, 10, 12, 1], -0.4, 0.4, &mut rng);
    let mut wgan = Wgan::new(config);
    wgan.train(&train);
    let probe = rand_uniform(&[8, 10, 12, 1], -1.0, 1.0, &mut rng);
    let scores = wgan.score_batch(&probe);
    (config, wgan.critic_bytes(), probe, scores)
}

#[test]
fn critic_file_roundtrips_through_wgan() {
    let (config, bytes, probe, scores) = trained_critic_bytes(1);
    let restored = Wgan::from_critic_bytes(config, &bytes).expect("load");
    assert_eq!(restored.score_batch(&probe), scores);
}

#[test]
fn critic_file_compiles_to_lite_with_matching_ranking() {
    let (_, bytes, probe, scores) = trained_critic_bytes(2);
    let snap = ModelSnapshot::from_bytes(&bytes).expect("parse");
    let mut lite = LiteCritic::compile_snapshot(&snap, (10, 12, 1)).expect("compile");
    let lite_scores: Vec<f32> = (0..8)
        .map(|i| lite.score(&probe.as_slice()[i * 120..(i + 1) * 120]))
        .collect();
    // Quantized scores track the float scores closely.
    for (f, l) in scores.iter().zip(&lite_scores) {
        assert!(
            (f - l).abs() < 0.05 * f.abs().max(1.0),
            "float {f} vs lite {l}"
        );
    }
}

#[test]
fn corrupted_critic_file_is_rejected_not_misloaded() {
    let (config, mut bytes, _, _) = trained_critic_bytes(3);
    // Flip the magic.
    bytes[0] ^= 0xFF;
    assert!(matches!(
        Wgan::from_critic_bytes(config, &bytes),
        Err(ModelFormatError::BadMagic)
    ));
    // Truncation is an I/O-style error, not a panic.
    let (config, bytes, _, _) = trained_critic_bytes(4);
    let truncated = &bytes[..bytes.len() / 3];
    assert!(Wgan::from_critic_bytes(config, truncated).is_err());
}

#[test]
fn sequential_roundtrip_is_bit_exact() {
    let (_, bytes, probe, _) = trained_critic_bytes(5);
    let mut a = Sequential::from_bytes(&bytes).expect("load a");
    let b_bytes = a.to_bytes();
    assert_eq!(bytes, b_bytes, "re-serialization must be bit-identical");
    let mut b = Sequential::from_bytes(&b_bytes).expect("load b");
    assert_eq!(a.forward(&probe), b.forward(&probe));
}

#[test]
fn foreign_files_are_rejected() {
    assert!(matches!(
        Sequential::from_bytes(b"not a model at all"),
        Err(ModelFormatError::BadMagic)
    ));
    assert!(Sequential::from_bytes(&[]).is_err());
}
