//! Cross-crate property tests: the Table II physics invariants hold on
//! benign traffic for arbitrary seeds, and every catalog attack breaks at
//! least one observable property while preserving the protocol framing.

use proptest::prelude::*;
use vehigan::features::{decompose_trace, fit_scaler, Representation};
use vehigan::sim::{Bsm, SensorModel, SimConfig, TrafficSimulator, BSM_INTERVAL_S};
use vehigan::tensor::init::seeded_rng;
use vehigan::vasp::{inject, Attack, AttackParams, AttackPolicy, DatasetBuilder, DatasetConfig};

fn noiseless_sim(seed: u64, vehicles: usize) -> Vec<vehigan::sim::VehicleTrace> {
    TrafficSimulator::new(SimConfig {
        n_vehicles: vehicles,
        duration_s: 30.0,
        seed,
        sensor: SensorModel::noiseless(),
        ..SimConfig::default()
    })
    .run()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn benign_physics_holds_for_any_seed(seed in 0u64..10_000) {
        let traces = noiseless_sim(seed, 2);
        for trace in &traces {
            for w in trace.bsms.windows(2) {
                // Δpos ≈ v·Δt in the heading direction.
                let dx = w[1].pos_x - w[0].pos_x;
                let dy = w[1].pos_y - w[0].pos_y;
                let ex = w[1].speed * w[1].heading.cos() * BSM_INTERVAL_S;
                let ey = w[1].speed * w[1].heading.sin() * BSM_INTERVAL_S;
                prop_assert!((dx - ex).abs() < 0.2, "seed {seed}: Δx {dx} vs {ex}");
                prop_assert!((dy - ey).abs() < 0.2);
                // Δv = a·Δt by construction of the integrator.
                let dv = w[1].speed - w[0].speed;
                prop_assert!((dv - w[1].acceleration * BSM_INTERVAL_S).abs() < 1e-6);
                // Δθ ≈ ω·Δt. A step that straddles a straight→arc
                // boundary sees the yaw rate jump mid-interval, so allow
                // the full jump magnitude there (discretization, not a
                // physics violation).
                let dh = Bsm::normalize_angle(w[1].heading - w[0].heading);
                let yaw_jump = (w[1].yaw_rate - w[0].yaw_rate).abs() * BSM_INTERVAL_S;
                let tolerance = 0.06 + yaw_jump;
                prop_assert!(
                    (dh - w[1].yaw_rate * BSM_INTERVAL_S).abs() < tolerance,
                    "seed {seed}: dh={dh} vs {}", w[1].yaw_rate * BSM_INTERVAL_S
                );
            }
        }
    }

    #[test]
    fn every_attack_preserves_framing_and_changes_content(
        seed in 0u64..1000,
        attack_idx in 0usize..35
    ) {
        let traces = noiseless_sim(seed, 1);
        let attack = Attack::catalog()[attack_idx];
        let mut rng = seeded_rng(seed ^ 0xA77AC);
        let attacked = inject(
            &traces[0],
            attack,
            AttackPolicy::Persistent,
            &AttackParams::default(),
            &mut rng,
        );
        // Framing preserved: same id, timestamps, message count.
        prop_assert_eq!(attacked.trace.len(), traces[0].len());
        prop_assert_eq!(attacked.trace.id, traces[0].id);
        for (a, b) in attacked.trace.iter().zip(&traces[0]) {
            prop_assert_eq!(a.timestamp, b.timestamp);
            prop_assert_eq!(a.vehicle_id, b.vehicle_id);
        }
        // Content falsified somewhere.
        let changed = attacked.trace.iter().zip(&traces[0]).any(|(a, b)| a != b);
        prop_assert!(changed, "{} changed nothing (seed {seed})", attack);
    }

    #[test]
    fn coupled_attacks_keep_heading_yaw_coherent(seed in 0u64..500, which in 0usize..6) {
        // The advanced attacks' defining property must hold for all seeds.
        let traces = noiseless_sim(seed, 1);
        let advanced: Vec<Attack> =
            Attack::catalog().into_iter().filter(Attack::is_advanced).collect();
        let attack = advanced[which];
        let mut rng = seeded_rng(seed ^ 0xC0);
        let attacked = inject(
            &traces[0],
            attack,
            AttackPolicy::Persistent,
            &AttackParams::default(),
            &mut rng,
        );
        for w in attacked.trace.bsms.windows(2) {
            let dh = Bsm::normalize_angle(w[1].heading - w[0].heading) / BSM_INTERVAL_S;
            prop_assert!(
                (dh - w[1].yaw_rate).abs() < 1e-4,
                "{}: yaw {} vs dθ/dt {} (seed {seed})",
                attack,
                w[1].yaw_rate,
                dh
            );
        }
    }

    #[test]
    fn scaler_bounds_all_benign_rows(seed in 0u64..500) {
        let traces = noiseless_sim(seed, 2);
        let builder = DatasetBuilder::new(&traces, DatasetConfig::default());
        let benign = builder.benign_dataset();
        let scaler = fit_scaler(&benign, Representation::Engineered);
        for t in &benign.traces {
            for row in decompose_trace(&t.trace) {
                for (j, &v) in row.values.iter().enumerate() {
                    let s = scaler.transform_value(j, v);
                    prop_assert!((-1.0..=1.0).contains(&s));
                }
            }
        }
    }

    #[test]
    fn single_field_attacks_leave_other_fields_alone(
        seed in 0u64..500,
        attack_idx in 0usize..29
    ) {
        // All non-advanced attacks target exactly one field group.
        let traces = noiseless_sim(seed, 1);
        let attack = Attack::catalog()[attack_idx];
        prop_assume!(!attack.is_advanced());
        let mut rng = seeded_rng(seed);
        let attacked = inject(
            &traces[0],
            attack,
            AttackPolicy::Persistent,
            &AttackParams::default(),
            &mut rng,
        );
        use vehigan::vasp::TargetField as F;
        for (a, b) in attacked.trace.iter().zip(&traces[0]) {
            match attack.field() {
                F::Position => {
                    prop_assert_eq!(a.speed, b.speed);
                    prop_assert_eq!(a.heading, b.heading);
                    prop_assert_eq!(a.yaw_rate, b.yaw_rate);
                    prop_assert_eq!(a.acceleration, b.acceleration);
                }
                F::Speed => {
                    prop_assert_eq!((a.pos_x, a.pos_y), (b.pos_x, b.pos_y));
                    prop_assert_eq!(a.heading, b.heading);
                    prop_assert_eq!(a.yaw_rate, b.yaw_rate);
                }
                F::Acceleration => {
                    prop_assert_eq!((a.pos_x, a.pos_y), (b.pos_x, b.pos_y));
                    prop_assert_eq!(a.speed, b.speed);
                    prop_assert_eq!(a.heading, b.heading);
                }
                F::Heading => {
                    prop_assert_eq!((a.pos_x, a.pos_y), (b.pos_x, b.pos_y));
                    prop_assert_eq!(a.speed, b.speed);
                    prop_assert_eq!(a.yaw_rate, b.yaw_rate);
                }
                F::YawRate => {
                    prop_assert_eq!((a.pos_x, a.pos_y), (b.pos_x, b.pos_y));
                    prop_assert_eq!(a.speed, b.speed);
                    prop_assert_eq!(a.heading, b.heading);
                }
                F::HeadingYawRate => unreachable!("filtered above"),
            }
        }
    }
}
