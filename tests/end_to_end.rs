//! Cross-crate integration tests: the paper's headline claims, checked
//! end-to-end on a shared small-scale trained system.
//!
//! These assert *shapes*, not absolute numbers: who wins, what stays flat,
//! what collapses under attack — per the reproduction contract in
//! DESIGN.md §3.

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use vehigan::core::adversarial::{afn_attack, afp_attack, multi_model_afp};
use vehigan::core::{Pipeline, PipelineConfig};
use vehigan::lite::LiteCritic;
use vehigan::metrics::auroc;
use vehigan::tensor::Sequential;
use vehigan::vasp::Attack;

fn pipeline() -> MutexGuard<'static, Pipeline> {
    static SHARED: OnceLock<Mutex<Pipeline>> = OnceLock::new();
    SHARED
        .get_or_init(|| {
            let mut config = PipelineConfig::tiny();
            config.sim.n_vehicles = 16;
            config.sim.duration_s = 60.0;
            config.top_m = 4;
            config.deploy_k = 4;
            Mutex::new(Pipeline::run(config))
        })
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

fn rate_above(scores: &[f32], tau: f32) -> f64 {
    scores.iter().filter(|&&s| s > tau).count() as f64 / scores.len() as f64
}

#[test]
fn ensemble_matches_or_beats_best_single_model_on_validation() {
    // Fig 4's premise: ensembling harnesses individual strengths.
    let p = pipeline();
    let m = p.vehigan.m();
    let members: Vec<usize> = (0..m).collect();
    let mut ens_sum = 0.0;
    let mut best_single = 0.0f64;
    let validation = p.validation.clone();
    for single in 0..m {
        let mut s = 0.0;
        for (_, ds) in &validation {
            let scores = p.vehigan.score_with_members(&[single], &ds.x).unwrap();
            s += auroc(&scores.scores, &ds.labels);
        }
        best_single = best_single.max(s / validation.len() as f64);
    }
    for (_, ds) in &validation {
        let scores = p.vehigan.score_with_members(&members, &ds.x).unwrap();
        ens_sum += auroc(&scores.scores, &ds.labels);
    }
    let ens = ens_sum / validation.len() as f64;
    assert!(
        ens > best_single - 0.05,
        "ensemble {ens:.3} fell more than 0.05 below best single {best_single:.3}"
    );
}

#[test]
fn advanced_coupled_attacks_are_detected() {
    // Table III's last six rows: the coherent heading&yaw-rate attacks.
    let p = pipeline();
    let members: Vec<usize> = (0..p.vehigan.m()).collect();
    let mut sum = 0.0;
    let mut n = 0;
    for attack in Attack::catalog().into_iter().filter(Attack::is_advanced) {
        let ds = p.test_attack_windows(attack);
        let result = p.vehigan.score_with_members(&members, &ds.x).unwrap();
        sum += auroc(&result.scores, &ds.labels);
        n += 1;
    }
    let avg = sum / n as f64;
    assert!(avg > 0.7, "advanced-attack average AUROC {avg:.3} too low");
}

#[test]
fn whitebox_afp_cripples_single_model_but_not_ensemble() {
    // The §V-B shape, stated in score shifts (threshold-free, so it holds
    // at any training scale): a white-box AFP attack moves the victim's
    // anomaly scores far more than (a) random noise of equal ε and (b)
    // the *per-member average* shift the adaptive multi-model attack can
    // achieve against the whole ensemble — the diverse-loss-landscape /
    // non-transferability property the paper credits for robustness.
    let mut p = pipeline();
    let benign = p.test_benign_windows();
    let idx: Vec<usize> = (0..benign.len().min(300)).collect();
    let x = benign.x.take(&idx);
    let eps = 0.01;
    let mean = |v: &[f32]| v.iter().sum::<f32>() as f64 / v.len() as f64;

    let (single_shift, noise_shift) = {
        let member = &mut p.vehigan.members_mut()[0];
        let before = mean(&member.wgan.score_batch(&x));
        let adv = afp_attack(member.wgan.critic_mut(), &x, eps);
        let shift = mean(&member.wgan.score_batch(&adv)) - before;
        let noisy = vehigan::core::adversarial::random_noise(
            &x,
            eps,
            &mut vehigan::tensor::init::seeded_rng(9),
        );
        let nshift = (mean(&member.wgan.score_batch(&noisy)) - before).abs();
        (shift, nshift)
    };

    let m = p.vehigan.m();
    let all: Vec<usize> = (0..m).collect();
    let before_ens = mean(&p.vehigan.score_with_members(&all, &x).unwrap().scores);
    let adv_multi = {
        let members = p.vehigan.members_mut();
        let mut critics: Vec<&mut Sequential> =
            members.iter_mut().map(|c| c.wgan.critic_mut()).collect();
        multi_model_afp(&mut critics, &x, eps)
    };
    let ensemble_shift = mean(
        &p.vehigan
            .score_with_members(&all, &adv_multi)
            .unwrap()
            .scores,
    ) - before_ens;

    assert!(
        single_shift > 3.0 * noise_shift,
        "AFP shift {single_shift:.4} should dwarf noise shift {noise_shift:.4}"
    );
    assert!(
        ensemble_shift < single_shift,
        "ensemble shift {ensemble_shift:.4} not below single-model shift {single_shift:.4}"
    );
}

#[test]
fn afn_attacks_are_intrinsically_ineffective() {
    // Fig 5b: pushing misbehavior toward "benign" does not make it benign.
    let mut p = pipeline();
    let ds = p.test_attack_windows(Attack::by_name("RandomPosition").unwrap());
    let mal: Vec<usize> = ds.malicious_indices().into_iter().take(150).collect();
    let x = ds.x.take(&mal);
    let member = &mut p.vehigan.members_mut()[0];
    let fnr_before = 1.0 - rate_above(&member.wgan.score_batch(&x), member.threshold);
    let adv = afn_attack(member.wgan.critic_mut(), &x, 0.01);
    let fnr_after = 1.0 - rate_above(&member.wgan.score_batch(&adv), member.threshold);
    assert!(
        fnr_after < fnr_before + 0.25,
        "AFN moved FNR {fnr_before:.3} → {fnr_after:.3}; should stay ineffective"
    );
}

#[test]
fn benign_false_positive_rate_respects_calibration() {
    // §III-F: τ at the 99th percentile keeps un-attacked FPR low.
    let p = pipeline();
    let benign = p.test_benign_windows();
    let all: Vec<usize> = (0..p.vehigan.m()).collect();
    let result = p.vehigan.score_with_members(&all, &benign.x).unwrap();
    let fpr = rate_above(&result.scores, result.threshold);
    assert!(fpr < 0.15, "benign FPR {fpr:.3} too high");
}

#[test]
fn lite_critic_preserves_detection_quality() {
    // Fig 8's implicit claim: the quantized path detects as well as float.
    let mut p = pipeline();
    let ds = p.test_attack_windows(Attack::by_name("RandomSpeed").unwrap());
    let member = &mut p.vehigan.members_mut()[0];
    let float_scores = member.wgan.score_batch(&ds.x);
    let mut lite = LiteCritic::compile(member.wgan.critic(), (10, 12, 1)).expect("compiles");
    let n = ds.len();
    let d = 120;
    let lite_scores: Vec<f32> = (0..n)
        .map(|i| lite.score(&ds.x.as_slice()[i * d..(i + 1) * d]))
        .collect();
    let float_auroc = auroc(&float_scores, &ds.labels);
    let lite_auroc = auroc(&lite_scores, &ds.labels);
    assert!(
        (float_auroc - lite_auroc).abs() < 0.02,
        "quantization changed AUROC {float_auroc:.3} → {lite_auroc:.3}"
    );
}

#[test]
fn streaming_detection_flags_the_attacker_not_the_honest() {
    use vehigan::features::StreamTracker;
    use vehigan::tensor::init::seeded_rng;
    use vehigan::vasp::{inject, AttackParams, AttackPolicy};

    let mut p = pipeline();
    let fleet = p.test_fleet().to_vec();
    let attack = Attack::by_name("HighHeadingYawRate").unwrap();
    let mut rng = seeded_rng(5);
    let attacked = inject(
        &fleet[0],
        attack,
        AttackPolicy::Persistent,
        &AttackParams::default(),
        &mut rng,
    );
    let honest = &fleet[1];

    let mut tracker = StreamTracker::new(10, p.scaler.clone());
    let mut flagged = [0usize; 2];
    let mut scored = [0usize; 2];
    for (slot, trace) in [(0, &attacked.trace), (1, honest)] {
        for (i, bsm) in trace.bsms.iter().enumerate() {
            if let Some(snapshot) = tracker.push(bsm) {
                if i % 7 != 0 {
                    continue;
                }
                scored[slot] += 1;
                if p.vehigan
                    .check_vehicle(bsm.vehicle_id, snapshot)
                    .unwrap()
                    .is_some()
                {
                    flagged[slot] += 1;
                }
            }
        }
    }
    let attacker_rate = flagged[0] as f64 / scored[0].max(1) as f64;
    let honest_rate = flagged[1] as f64 / scored[1].max(1) as f64;
    assert!(
        attacker_rate >= honest_rate,
        "attacker flagged {attacker_rate:.2}, honest {honest_rate:.2}"
    );
    // The robust claim is the score ordering: streamed attacker windows
    // must score clearly above streamed honest windows on average.
    let mut tracker2 = StreamTracker::new(10, p.scaler.clone());
    let members: Vec<usize> = (0..p.vehigan.m()).collect();
    let mut sums = [0.0f64; 2];
    let mut counts = [0usize; 2];
    for (slot, trace) in [(0, &attacked.trace), (1, honest)] {
        for (i, bsm) in trace.bsms.iter().enumerate() {
            if let Some(snapshot) = tracker2.push(bsm) {
                if i % 7 != 0 {
                    continue;
                }
                let r = p.vehigan.score_with_members(&members, snapshot).unwrap();
                sums[slot] += r.scores[0] as f64;
                counts[slot] += 1;
            }
        }
    }
    let attacker_mean = sums[0] / counts[0].max(1) as f64;
    let honest_mean = sums[1] / counts[1].max(1) as f64;
    assert!(
        attacker_mean > honest_mean,
        "attacker mean score {attacker_mean:.4} not above honest {honest_mean:.4}"
    );
}

#[test]
fn feature_engineering_beats_raw_for_autoencoder() {
    // Table III BaseAE vs VehiAE on a representative attack.
    use vehigan::baselines::{flatten_windows, AeConfig, AeDetector, AnomalyDetector};
    let p = pipeline();
    let config = AeConfig {
        epochs: 8,
        ..AeConfig::default()
    };
    let attack = Attack::by_name("RandomSpeedOffset").unwrap();

    let eng_train = &p.train_windows;
    let eng_test = p.test_attack_windows(attack);
    let mut vehi_ae = AeDetector::new(config);
    vehi_ae.fit(&flatten_windows(&eng_train.x));
    let vehi_scores = vehi_ae.score_batch(&flatten_windows(&eng_test.x));
    let vehi = auroc(&vehi_scores, &eng_test.labels);

    let raw_train = p.train_benign_windows_raw();
    let raw_test = p.test_attack_windows_raw(attack);
    let mut base_ae = AeDetector::new(config);
    base_ae.fit(&flatten_windows(&raw_train.x));
    let base_scores = base_ae.score_batch(&flatten_windows(&raw_test.x));
    let base = auroc(&base_scores, &raw_test.labels);

    assert!(
        vehi > base - 0.05,
        "engineered features should not lose to raw: Vehi-AE {vehi:.3} vs Base-AE {base:.3}"
    );
}
