//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no registry access, so the workspace points
//! `rand` at this API-compatible subset (see `[workspace.dependencies]`
//! in the root manifest). It covers exactly the surface the VehiGAN crates
//! use: a seedable deterministic [`rngs::StdRng`], the [`Rng`] extension
//! methods (`gen`, `gen_range`, `gen_bool`), and [`seq::SliceRandom`]
//! shuffling.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — not the
//! ChaCha12 core of upstream `StdRng`, so seeded streams differ from
//! upstream, but every property the workspace relies on holds: streams
//! are deterministic per seed, statistically strong, and portable across
//! platforms.

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform double in `[0, 1)` built from the high 53 bits of a word.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A uniform float in `[0, 1)` built from the high 24 bits of a word.
#[inline]
fn unit_f32<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
    (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Unbiased-enough bounded integer sampling (Lemire multiply-shift).
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

/// Types [`Rng::gen`] can produce.
pub trait Generatable: Sized {
    /// Samples a uniform value of this type.
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! generatable_int {
    ($($t:ty => $via:ident),+) => {$(
        impl Generatable for $t {
            fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )+};
}
generatable_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64);

impl Generatable for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Generatable for f32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f32(rng)
    }
}

impl Generatable for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

/// Types with uniform sampling over an interval (upstream's
/// `SampleUniform`, collapsed to the single method the stub needs).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! sample_uniform_float {
    ($($t:ty => $unit:ident),+) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                if inclusive {
                    let v = lo + (hi - lo) * $unit(rng);
                    return if v > hi { hi } else { v };
                }
                loop {
                    let v = lo + (hi - lo) * $unit(rng);
                    // Multiplication can round up to the excluded endpoint.
                    if v < hi {
                        return v;
                    }
                }
            }
        }
    )+};
}
sample_uniform_float!(f32 => unit_f32, f64 => unit_f64);

macro_rules! sample_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                lo: $t,
                hi: $t,
                inclusive: bool,
                rng: &mut R,
            ) -> $t {
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u64;
                if span == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
    )+};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// A range usable with [`Rng::gen_range`]. Generic over the sampled
/// type (upstream's shape) so integer literals in range expressions
/// infer their type from the call site.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_between(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_between(lo, hi, true, rng)
    }
}

/// Extension methods every [`RngCore`] gets, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Generatable>(&mut self) -> T {
        T::generate(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        T: SampleUniform,
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// seeded through SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// Exposes the raw xoshiro256++ state, for checkpointing a stream
        /// mid-sequence.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured [`state`]: the
        /// restored stream continues exactly where the original left off.
        ///
        /// [`state`]: StdRng::state
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::{bounded_u64, RngCore};

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = bounded_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[bounded_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&v));
            let i: usize = rng.gen_range(0..7);
            assert!(i < 7);
            let j: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&j));
            let f: f32 = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn unit_floats_fill_the_interval() {
        let mut rng = StdRng::seed_from_u64(5);
        let vals: Vec<f64> = (0..1000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean={mean}");
    }
}
