//! Offline vendored stand-in for `proptest`.
//!
//! A deterministic mini property-testing runtime covering the subset the
//! workspace tests use: the [`proptest!`] macro with optional
//! `#![proptest_config(...)]`, range/`Just`/tuple/`prop_oneof!` strategies,
//! `prop_flat_map`/`prop_map` combinators, `collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` assertions.
//!
//! Differences from upstream: cases are sampled from a fixed per-test
//! seed (fully deterministic across runs — no env-driven reseeding), and
//! failing cases are reported by panic without shrinking.

pub mod test_runner {
    //! Runner configuration and the deterministic case RNG.

    /// Per-test configuration, set via `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases sampled per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic xoshiro256++ RNG driving strategy sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        /// RNG for one case of one named property: seeded from the test
        /// path and case index only, so reruns sample identical inputs.
        pub fn for_case(test_path: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_path.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut sm = h ^ ((case as u64) << 32 | 0x9E37_79B9);
            TestRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform double in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;

    /// A generator of values for property tests (object-safe so unions
    /// can hold heterogeneous strategies of one value type).
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Samples one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Feeds generated values into a dependent strategy.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Strategy yielding one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// [`Strategy::prop_flat_map`] adapter.
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        branches: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union over non-empty `branches`.
        pub fn new(branches: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(
                !branches.is_empty(),
                "prop_oneof! needs at least one branch"
            );
            Union { branches }
        }
    }

    /// Boxes a strategy for [`Union`] storage.
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.branches.len() as u64) as usize;
            self.branches[i].sample(rng)
        }
    }

    macro_rules! range_strategy_float {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start
                        + (self.end - self.start) * rng.unit_f64() as $t;
                    if v >= self.end { self.start } else { v }
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let v = lo + (hi - lo) * rng.unit_f64() as $t;
                    if v > hi { hi } else { v }
                }
            }
        )+};
    }
    range_strategy_float!(f32, f64);

    macro_rules! range_strategy_int {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )+};
    }
    range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod arbitrary {
    //! The `any::<T>()` entry point.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Samples a canonical value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for [`Arbitrary`] types.
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive length range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for vectors of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// A vector strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Defines deterministic property tests (mini subset of upstream
/// `proptest!`). Each `fn name(pat in strategy, ...) { body }` becomes a
/// `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                // Closure so prop_assume! can skip the case via `return`.
                let mut __body = || $body;
                __body();
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts a property-test condition (panics with the values on failure).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

/// Uniform choice among heterogeneous strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($s)),+])
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 1usize..8, y in -2.0f64..2.0, b in any::<bool>()) {
            prop_assert!((1..8).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
            prop_assert!(b == (b as u8 == 1));
        }

        #[test]
        fn flat_map_builds_dependent_vecs(
            (len, v) in (1usize..6).prop_flat_map(|len| {
                (Just(len), crate::collection::vec(0.0f32..1.0, len))
            })
        ) {
            prop_assert_eq!(v.len(), len);
            prop_assert!(v.iter().all(|&e| (0.0..1.0).contains(&e)));
        }

        #[test]
        fn oneof_hits_every_branch_eventually(x in prop_oneof![Just(1usize), 2usize..4, Just(9usize)]) {
            prop_assert!(x == 1 || (2..4).contains(&x) || x == 9);
        }

        #[test]
        fn assume_skips_cases(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_case() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0.0f64..1.0, 3usize..7);
        let a = s.sample(&mut TestRng::for_case("t", 0));
        let b = s.sample(&mut TestRng::for_case("t", 0));
        let c = s.sample(&mut TestRng::for_case("t", 1));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
