//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the parking_lot API shape the
//! workspace uses: infallible `lock()` / `read()` / `write()` (poisoning
//! is transparently ignored — a poisoned lock still yields its data, as
//! parking_lot's poison-free design would) and direct `into_inner()`.

use std::sync::PoisonError;

/// A mutual-exclusion lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader–writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// RAII guard for [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard for [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_round_trips() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
        assert_eq!(l.into_inner(), vec![1, 2]);
    }

    #[test]
    fn poisoned_mutex_still_yields_data() {
        let m = std::sync::Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
