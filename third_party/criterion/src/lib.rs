//! Offline vendored stand-in for `criterion`.
//!
//! A lightweight wall-clock harness covering the subset the workspace
//! benches use: `Criterion::benchmark_group`, `bench_function` with a
//! `Bencher::iter` closure, `finish`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a short warmup, then
//! times batches until a time budget is spent and reports the median
//! per-iteration latency. No statistics machinery, plots, or reports.

use std::time::{Duration, Instant};

/// Top-level harness handle passed to each benchmark function.
pub struct Criterion {
    warmup: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warmup: Duration::from_millis(300),
            measure: Duration::from_millis(1200),
        }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named group of benchmarks sharing the harness configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark and prints its median per-iteration time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warmup: self.criterion.warmup,
            measure: self.criterion.measure,
            median: Duration::ZERO,
            iterations: 0,
        };
        f(&mut bencher);
        println!(
            "{}/{:<28} time: {:>12.3?}   ({} iterations)",
            self.name, id, bencher.median, bencher.iterations
        );
        self
    }

    /// Ends the group (upstream finalizes reports here; printing already
    /// happened per bench, so this is a no-op kept for API parity).
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    warmup: Duration,
    measure: Duration,
    median: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine` repeatedly: warms up, then measures fixed-size
    /// batches until the time budget is spent, recording the median
    /// batch latency divided by the batch size.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup while estimating a batch size targeting ~1ms per batch.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < self.warmup {
            std::hint::black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_nanos() / u128::from(warmup_iters.max(1));
        let batch = (1_000_000 / per_iter.max(1)).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<Duration> = Vec::new();
        let mut total_iters: u64 = 0;
        let measure_start = Instant::now();
        while measure_start.elapsed() < self.measure || samples.is_empty() {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            samples.push(t.elapsed() / batch as u32);
            total_iters += batch;
        }
        samples.sort_unstable();
        self.median = samples[samples.len() / 2];
        self.iterations = total_iters;
    }
}

/// Declares a benchmark group runner (subset of upstream's macro: the
/// positional `criterion_group!(name, target, ...)` form only).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main()` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_a_positive_median() {
        let mut c = Criterion {
            warmup: Duration::from_millis(5),
            measure: Duration::from_millis(10),
        };
        let mut group = c.benchmark_group("smoke");
        let mut acc = 0u64;
        group.bench_function("add", |b| {
            b.iter(|| {
                acc = acc.wrapping_add(std::hint::black_box(3));
                acc
            })
        });
        group.finish();
    }

    criterion_group!(smoke_group, smoke_target);

    fn smoke_target(c: &mut Criterion) {
        c.warmup = Duration::from_millis(1);
        c.measure = Duration::from_millis(2);
        let mut group = c.benchmark_group("macro");
        group.bench_function(String::from("noop"), |b| b.iter(|| 1u32));
        group.finish();
    }

    #[test]
    fn group_macro_expands_to_runner() {
        smoke_group();
    }
}
