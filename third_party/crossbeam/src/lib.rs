//! Offline vendored stand-in for `crossbeam`.
//!
//! The workspace uses exactly one crossbeam facility — `thread::scope`
//! with borrowing worker closures — which `std::thread::scope` (Rust
//! 1.63+) provides natively. This stub keeps the crossbeam call shape
//! (`scope(|s| …)` returning a `Result`, `spawn` closures receiving the
//! scope handle) on top of the std implementation.

pub mod thread {
    //! Scoped threads with the `crossbeam::thread` API shape.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scope: `Err` carries the payload of an unjoined
    /// panicking child (joined panics surface through `join` instead).
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle through which borrowing threads are spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` on panic).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread scoped to `'env` borrows. The closure receives
        /// the scope handle (crossbeam shape), enabling nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope for spawning threads that borrow from the caller.
    ///
    /// All spawned threads are joined before this returns. Returns `Err`
    /// with the panic payload if any unjoined child panicked; panics in
    /// explicitly joined children are reported by their `join` only.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_children() {
        let counter = AtomicUsize::new(0);
        let out = thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
            42
        })
        .unwrap();
        assert_eq!(out, 42);
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn join_returns_values_and_scope_borrows_stack() {
        let data = [1, 2, 3, 4];
        let sum = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<i32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<i32>()
        })
        .unwrap();
        assert_eq!(sum, 10);
    }

    #[test]
    fn unjoined_child_panic_surfaces_as_err() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("child down"));
        });
        assert!(r.is_err());
    }

    #[test]
    fn nested_spawn_through_the_handle() {
        let n = thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 5).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 5);
    }
}
