//! Derive macros for the vendored serde stand-in.
//!
//! The workspace never instantiates a serializer, so the derives emit no
//! code at all — the annotation compiles, and the marker traits in the
//! `serde` stub are never required as bounds.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
