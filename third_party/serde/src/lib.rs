//! Offline vendored stand-in for `serde`.
//!
//! The workspace uses serde purely as derive decoration on config types
//! (no serializer is ever instantiated — persistence goes through the
//! hand-rolled binary/TSV formats in `vehigan-tensor`/`vehigan-core`).
//! This stub provides the two marker traits and derive macros so those
//! annotations keep compiling in the registry-less build container.

/// Marker for types that declare themselves serializable.
pub trait Serialize {}

/// Marker for types that declare themselves deserializable.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
