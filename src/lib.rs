//! # VehiGAN — ensemble-WGAN misbehavior detection for V2X
//!
//! A full-system Rust reproduction of *"VehiGAN: Generative Adversarial
//! Networks for Adversarially Robust V2X Misbehavior Detection Systems"*
//! (Shahriar et al., IEEE ICDCS 2024).
//!
//! This umbrella crate re-exports the whole stack:
//!
//! | module | crate | role |
//! |---|---|---|
//! | [`core`] | `vehigan-core` | WGAN training, zoo, ensemble, FGSM attacks |
//! | [`sim`] | `vehigan-sim` | traffic + BSM simulator (SUMO/Veins substitute) |
//! | [`vasp`] | `vehigan-vasp` | Table I attack-injection framework |
//! | [`features`] | `vehigan-features` | physics-guided Table II features |
//! | [`metrics`] | `vehigan-metrics` | AUROC/AUPRC/rates/thresholds |
//! | [`baselines`] | `vehigan-baselines` | PCA/KNN/GMM/AE comparison detectors |
//! | [`lite`] | `vehigan-lite` | quantized OBU inference (TFLite substitute) |
//! | [`mbr`] | `vehigan-mbr` | misbehavior reports, authority, CRL, pseudonym linkage |
//! | [`serve`] | `vehigan-serve` | RSU streaming service: sharded state, batched two-tier scoring |
//! | [`tensor`] | `vehigan-tensor` | CPU DL stack with exact backprop |
//!
//! # Quickstart
//!
//! ```no_run
//! use vehigan::core::{Pipeline, PipelineConfig};
//! use vehigan::vasp::Attack;
//! use vehigan::metrics::auroc;
//!
//! // Train the full system (simulate → features → WGAN zoo → ensemble).
//! let mut pipeline = Pipeline::run(PipelineConfig::quick());
//!
//! // Evaluate against a Table III attack on held-out traffic.
//! let test = pipeline.test_attack_windows(Attack::by_name("RandomSpeed").unwrap());
//! let result = pipeline.vehigan.score_batch(&test.x).unwrap();
//! println!("RandomSpeed AUROC = {:.3}", auroc(&result.scores, &test.labels));
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `crates/bench` for the harness regenerating every table and figure of
//! the paper.

pub use vehigan_baselines as baselines;
pub use vehigan_core as core;
pub use vehigan_features as features;
pub use vehigan_lite as lite;
pub use vehigan_mbr as mbr;
pub use vehigan_metrics as metrics;
pub use vehigan_serve as serve;
pub use vehigan_sim as sim;
pub use vehigan_tensor as tensor;
pub use vehigan_vasp as vasp;
