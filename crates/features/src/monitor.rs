//! Tier-0 streaming physics monitors: O(1) per-BSM EWMA + two-sided
//! CUSUM change detectors over kinematic residuals (DESIGN.md §12).
//!
//! The serving cost of the two-tier pipeline (§10) is dominated by the
//! int8 tier-1 ensemble running over *every* completed window, even
//! though the overwhelming majority of city traffic is kinematically
//! unremarkable. A [`Tier0Monitor`] tracks four physics residuals that
//! benign traffic keeps near zero and most misbehavior classes break:
//!
//! 1. **speed vs. position delta** — `| |Δp| − v̄·Δt |`, the distance
//!    implied by the reported speeds against the actual displacement;
//! 2. **heading vs. velocity vector** — the angle between the movement
//!    direction `atan2(Δy, Δx)` (a cheap polynomial approximation, see
//!    [`fast_atan2`]) and the reported heading (skipped while nearly
//!    stationary, where heading carries no information);
//! 3. **acceleration bound** — `| Δv − a·Δt |`, the speed change
//!    implied by the reported acceleration against the actual one;
//! 4. **inter-BSM plausible range** — `|Δp| / Δt`, the ground speed a
//!    vehicle would need to cover the reported displacement;
//! 5. **yaw-rate consistency** — `| Δθ − ω·Δt |`, the heading change
//!    implied by the reported yaw rate against the actual one. Without
//!    it the monitors are blind to yaw-rate falsification (the only
//!    BSM field the other four residuals never read), and windows of
//!    yaw attacks the int8 gate escalates would pin the suppression
//!    scale near zero via [`Tier0Calibration::constrain`];
//! 6. **horizon displacement** — `| |p − p_anchor| − Σ v̄·Δt |`, the
//!    chord from an anchor position refreshed every `horizon` rows
//!    against the distance integrated from the reported speeds. The
//!    per-row residual (1) is blind to speed offsets smaller than the
//!    GNSS noise floor: at 10 Hz with ~0.5 m per-axis position noise a
//!    ~1 m/row mismatch — a 10 m/s falsified offset — sits *inside*
//!    the benign per-row residual distribution. Over `H` rows the
//!    position noise telescopes (only the two endpoint fixes matter)
//!    while the offset signal grows as `H·off·Δt`, so the same attack
//!    stands ~10σ above benign. Anchoring costs two f64 adds per row
//!    and one `sqrt`, keeping the O(1) push budget.
//!
//! Each residual feeds an EWMA and a two-sided CUSUM, updated in O(1)
//! per [`Tier0Monitor::push`] with no allocation and a fixed f32
//! operation order, so two replays of the same BSM sequence are bitwise
//! identical. A [`Tier0Calibration`] fits per-statistic decision
//! intervals from benign traces at a configurable benign-quantile and
//! turns a monitor's state into a [`GateDecision`]: `Suppress` (all
//! statistics inside their intervals — the serve tick may skip tier-1
//! and pin the monitor-implied benign score) or `Screen` (anything
//! tripped, cold, or rebuilt — fall through to the proven int8 tier-1 →
//! f32 tier-2 path). The gate is conservative by construction: it can
//! only *add* escalations relative to the §10 pipeline, never remove
//! one, and any irregular input (out-of-order or duplicate timestamps,
//! non-finite fields, eviction rebuilds) resets the monitor cold, which
//! means `Screen` until it re-warms.

use serde::{Deserialize, Serialize};
use vehigan_sim::{Bsm, VehicleTrace};

/// Number of residuals computable from one consecutive BSM pair alone
/// (the width [`residuals`] returns).
pub const NUM_PAIR_RESIDUALS: usize = 5;

/// Number of kinematic residuals tracked per vehicle: the pair
/// residuals plus the anchored horizon-displacement residual.
pub const NUM_RESIDUALS: usize = NUM_PAIR_RESIDUALS + 1;

/// Number of monitor statistics: a two-sided CUSUM (folded to its max
/// side) and an EWMA deviation per residual.
pub const NUM_STATISTICS: usize = 2 * NUM_RESIDUALS;

/// Human-readable residual names, in statistic order.
pub const RESIDUAL_NAMES: [&str; NUM_RESIDUALS] = [
    "speed_vs_position",
    "heading_vs_velocity",
    "acceleration_bound",
    "plausible_range",
    "yaw_rate_consistency",
    "horizon_displacement",
];

/// EWMA smoothing factor λ: heavy enough that a single-message glitch
/// decays within a window, light enough that a sustained shift (the
/// attack signature) accumulates.
pub const EWMA_LAMBDA: f32 = 0.25;

/// Residuals and accumulated statistics are clamped to this bound so a
/// pathological-but-guard-accepted input (e.g. a microsecond Δt blowing
/// up the range residual) saturates to a huge *finite* value — which
/// trips every decision interval — instead of propagating `inf`/NaN
/// into the monitor state. `f64::min` returns the other operand for a
/// NaN input, so the clamp also launders NaN into the saturated value.
const RESIDUAL_CLAMP: f64 = 1e12;

/// Below this displacement (meters) between consecutive BSMs the
/// movement direction is numerical noise, so the heading residual is
/// held at zero rather than tripping on a parked vehicle.
const HEADING_MIN_DISP_M: f64 = 0.25;

/// Safety margin applied when the escalation-consistency pass tightens
/// the suppression scale below an observed ratio.
const TIGHTEN_SHRINK: f32 = 1.0 - 1e-3;

/// Default [`Tier0Calibration::refresh`]: up to three consecutive
/// suppressions, i.e. tier-1 runs on at least every fourth window per
/// vehicle (once per ~2 s at a 10 Hz / stride-5 stream).
pub const DEFAULT_REFRESH: u32 = 3;

/// What tier 0 does with a completed window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateDecision {
    /// Every monitor statistic is inside its decision interval: the
    /// window is kinematically benign at the calibrated confidence, so
    /// the serve tick may skip tier-1 and pin the monitor-implied
    /// benign score.
    Suppress,
    /// A monitor tripped, or the monitor is cold (fresh, evicted, or
    /// reset by an out-of-order/duplicate/non-finite message): fall
    /// through to the full tier-1 → tier-2 path.
    Screen,
}

/// Per-residual CUSUM/EWMA update parameters, fit from benign traces.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tier0Params {
    /// EWMA smoothing factor λ.
    pub lambda: f32,
    /// CUSUM reference value per residual (benign mean).
    pub mu: [f32; NUM_RESIDUALS],
    /// CUSUM slack `k` per residual (half the benign standard
    /// deviation — the classical "half the shift worth detecting").
    pub slack: [f32; NUM_RESIDUALS],
    /// Rows between anchor refreshes of the horizon-displacement
    /// residual (the detector window length `w` when fitted).
    pub horizon: u32,
}

/// Fitted tier-0 decision intervals plus the carry-forward policy for
/// suppressed windows. Serializable with serde (like [`MinMaxScaler`])
/// so a deployment stores it next to the scaler.
///
/// [`MinMaxScaler`]: crate::MinMaxScaler
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Tier0Calibration {
    /// Monitor update parameters.
    pub params: Tier0Params,
    /// Per-statistic decision intervals at the fitted benign quantile:
    /// `h[0..NUM_RESIDUALS]` bound the folded CUSUMs,
    /// `h[NUM_RESIDUALS..]` the EWMA deviations `|z − μ|`.
    pub h: [f32; NUM_STATISTICS],
    /// Global conservatism factor: a window suppresses only when its
    /// worst statistic-to-interval ratio is `<= scale`. Starts at 1.0
    /// and only shrinks — [`Tier0Calibration::constrain`] lowers it
    /// below the ratio of any window that must never be suppressed
    /// (e.g. every campaign window whose tier-1 score escalates).
    pub scale: f32,
    /// Residual rows a monitor must accumulate since its last reset
    /// before it may suppress (the window length `w`): a cold or
    /// rebuilt buffer always screens.
    pub warmup: u32,
    /// The benign quantile the intervals were fit at (bookkeeping).
    pub quantile: f64,
    /// Lower edge of the advisory benign-score band (set with
    /// [`Tier0Calibration::set_score_band`]). [`Tier0Calibration::evaluate`]
    /// maps the monitor ratio into this band as a monitor-implied score;
    /// the serve plane does **not** emit it (it carries the vehicle's
    /// last real tier-1 score instead), but standalone consumers without
    /// a score to carry can use it as a physics-ranked placeholder.
    pub score_floor: f32,
    /// Width of the advisory band: the monitor-implied score is
    /// `score_floor + score_span · ratio/scale`, ranking windows by how
    /// close their physics came to tripping.
    pub score_span: f32,
    /// Detection threshold τ reported on suppressed decisions, and the
    /// freshness bar for carry-forward: only a prior tier-1 score
    /// strictly below τ may be carried, so a suppressed window can
    /// never flag.
    pub tau: f32,
    /// Maximum consecutive windows a vehicle may skip tier-1 on physics
    /// alone. A suppressed window reuses the vehicle's last *real*
    /// tier-1 score (physics certifies nothing changed); re-running the
    /// gate at least every `refresh + 1` windows bounds that score's
    /// staleness, so attacks invisible to differential kinematics — a
    /// constant position offset preserves every delta and chord — still
    /// meet the learned detector at a fixed cadence instead of hiding
    /// indefinitely behind a stale verdict. `0` disables suppression
    /// outright.
    pub refresh: u32,
}

/// Kinematic residuals for one consecutive BSM pair, clamped finite.
/// Returns `None` when the pair is unusable (`Δt` not strictly positive
/// and finite — out-of-order, duplicate, or non-finite timestamps),
/// which callers must treat as a monitor reset.
///
/// Runs on every accepted BSM in the serve hot path, so the two libm
/// calls a naive implementation would make are replaced with cheap
/// deterministic equivalents: `√(Δx² + Δy²)` instead of `hypot` (city
/// coordinates cannot overflow the square), and [`fast_atan2`] instead
/// of `atan2` for the movement direction (≤ 2 mrad error, far below
/// the sensor's heading noise and self-consistent because calibration
/// fits the decision intervals from the same approximation).
pub fn residuals(prev: &Bsm, curr: &Bsm) -> Option<[f32; NUM_PAIR_RESIDUALS]> {
    let dt = curr.timestamp - prev.timestamp;
    // NaN Δt must land in the reset branch too: `!dt.is_finite()` traps
    // it before the sign test can (vacuously) pass.
    if !dt.is_finite() || dt <= 0.0 {
        return None;
    }
    let dx = curr.pos_x - prev.pos_x;
    let dy = curr.pos_y - prev.pos_y;
    let disp = (dx * dx + dy * dy).sqrt();
    let mean_speed = 0.5 * (prev.speed + curr.speed);
    let r0 = (disp - mean_speed * dt).abs();
    let r1 = if disp < HEADING_MIN_DISP_M {
        0.0
    } else {
        Bsm::normalize_angle(fast_atan2(dy, dx) - prev.heading).abs()
    };
    let r2 = ((curr.speed - prev.speed) - prev.acceleration * dt).abs();
    let r3 = disp / dt;
    let r4 = (Bsm::normalize_angle(curr.heading - prev.heading) - prev.yaw_rate * dt).abs();
    Some([
        clamp_stat(r0),
        clamp_stat(r1),
        clamp_stat(r2),
        clamp_stat(r3),
        clamp_stat(r4),
    ])
}

/// Anchored horizon-displacement tracker: the O(1) state behind
/// residual 6. The anchor position is refreshed every `horizon` rows;
/// between refreshes the tracker integrates the reported speeds and
/// compares the implied distance against the straight-line chord from
/// the anchor. Pure f64 arithmetic in a fixed order.
#[derive(Debug, Clone, Copy)]
struct Horizon {
    anchor_x: f64,
    anchor_y: f64,
    pred: f64,
    rows: u32,
    live: bool,
}

impl Horizon {
    fn cold() -> Self {
        Horizon {
            anchor_x: 0.0,
            anchor_y: 0.0,
            pred: 0.0,
            rows: 0,
            live: false,
        }
    }

    /// Advances one residual row `(prev, curr)` with `Δt` already
    /// validated, returning the horizon residual
    /// `| |p_curr − p_anchor| − Σ v̄·Δt |`. The chord under-measures a
    /// curved path by at most `1 − sin(θ/2)/(θ/2)` of its length —
    /// second-order for the ~1 s horizons the detector uses — which the
    /// fitted CUSUM reference absorbs as benign bias.
    fn advance(&mut self, prev: &Bsm, curr: &Bsm, dt: f64) -> f64 {
        if !self.live {
            self.anchor_x = prev.pos_x;
            self.anchor_y = prev.pos_y;
            self.pred = 0.0;
            self.rows = 0;
            self.live = true;
        }
        self.pred += 0.5 * (prev.speed + curr.speed) * dt;
        self.rows += 1;
        let dx = curr.pos_x - self.anchor_x;
        let dy = curr.pos_y - self.anchor_y;
        ((dx * dx + dy * dy).sqrt() - self.pred).abs()
    }

    /// Whether the anchor is due for a refresh after `horizon` rows.
    fn due(&self, horizon: u32) -> bool {
        self.rows >= horizon.max(1)
    }

    /// Re-anchors at the given position.
    fn reanchor(&mut self, bsm: &Bsm) {
        self.anchor_x = bsm.pos_x;
        self.anchor_y = bsm.pos_y;
        self.pred = 0.0;
        self.rows = 0;
    }
}

/// The full residual row for one accepted pair: the pair residuals
/// plus the horizon residual, advancing (and re-anchoring) `hz`.
/// `None` means the pair is unusable; `hz` is reset cold alongside the
/// caller's statistics.
fn full_residuals(
    prev: &Bsm,
    curr: &Bsm,
    hz: &mut Horizon,
    horizon: u32,
) -> Option<[f32; NUM_RESIDUALS]> {
    let pair = match residuals(prev, curr) {
        Some(p) => p,
        None => {
            *hz = Horizon::cold();
            return None;
        }
    };
    let dt = curr.timestamp - prev.timestamp;
    let r5 = hz.advance(prev, curr, dt);
    if hz.due(horizon) {
        hz.reanchor(curr);
    }
    let mut r = [0f32; NUM_RESIDUALS];
    r[..NUM_PAIR_RESIDUALS].copy_from_slice(&pair);
    r[NUM_PAIR_RESIDUALS] = clamp_stat(r5);
    Some(r)
}

/// Branch-light polynomial `atan2` (maximum error ≈ 1.6 mrad): the
/// classic degree-7 odd minimax fit of `atan` on `[0, 1]`, extended to
/// the full plane by octant folding. Pure f64 arithmetic in a fixed
/// order — bitwise deterministic across platforms, unlike libm's
/// `atan2`, and several times cheaper.
pub fn fast_atan2(y: f64, x: f64) -> f64 {
    use std::f64::consts::{FRAC_PI_2, PI};
    let ax = x.abs();
    let ay = y.abs();
    let mx = ax.max(ay);
    if mx == 0.0 {
        return 0.0;
    }
    let a = ax.min(ay) / mx;
    let s = a * a;
    let mut r = (((-0.046_496_474_9 * s + 0.159_314_22) * s - 0.327_622_764) * s) * a + a;
    if ay > ax {
        r = FRAC_PI_2 - r;
    }
    if x < 0.0 {
        r = PI - r;
    }
    if y < 0.0 {
        r = -r;
    }
    r
}

/// Saturates a residual into `[0, RESIDUAL_CLAMP]` as f32; NaN
/// saturates high (see [`RESIDUAL_CLAMP`]). Not `f64::clamp`, which
/// propagates NaN instead of saturating it: `min` discards the NaN
/// operand, so the chain lands on `RESIDUAL_CLAMP`.
#[allow(clippy::manual_clamp)]
fn clamp_stat(r: f64) -> f32 {
    r.min(RESIDUAL_CLAMP).max(0.0) as f32
}

/// Upper `q`-quantile of a sample (nearest-rank, rounded up): the
/// deterministic, interpolation-free cut the decision intervals use.
fn upper_quantile(xs: &mut [f32], q: f64) -> f32 {
    xs.sort_by(f32::total_cmp);
    let idx = ((xs.len() - 1) as f64 * q).ceil() as usize;
    xs[idx.min(xs.len() - 1)]
}

impl Tier0Calibration {
    /// Fits monitor parameters and decision intervals from benign
    /// traces.
    ///
    /// Pass 1 estimates each residual's benign mean (the CUSUM
    /// reference μ) and standard deviation (slack `k = σ/2`). Pass 2
    /// streams every trace through a provisional monitor and collects
    /// each statistic at every warm row — exactly the states a
    /// stride-1 serving stream would be judged at — then sets the
    /// decision interval per statistic to the `quantile` benign
    /// quantile. `window` is the detector's window length `w` (also the
    /// warmup row count); `quantile` is in `[0, 1]`, e.g. 0.995.
    ///
    /// Returns `None` when the traces yield no usable residual rows or
    /// no warm monitor states (all traces shorter than `window + 1`).
    pub fn fit(traces: &[VehicleTrace], window: usize, quantile: f64) -> Option<Tier0Calibration> {
        assert!(
            (0.0..=1.0).contains(&quantile),
            "benign quantile must be in [0, 1]"
        );
        let window = window.max(2);
        let horizon = window as u32;
        let mut n = 0u64;
        let mut sum = [0f64; NUM_RESIDUALS];
        let mut sumsq = [0f64; NUM_RESIDUALS];
        for t in traces {
            let mut hz = Horizon::cold();
            for pair in t.bsms.windows(2) {
                if let Some(r) = full_residuals(&pair[0], &pair[1], &mut hz, horizon) {
                    for i in 0..NUM_RESIDUALS {
                        let v = r[i] as f64;
                        sum[i] += v;
                        sumsq[i] += v * v;
                    }
                    n += 1;
                }
            }
        }
        if n == 0 {
            return None;
        }
        let mut mu = [0f32; NUM_RESIDUALS];
        let mut slack = [0f32; NUM_RESIDUALS];
        for i in 0..NUM_RESIDUALS {
            let mean = sum[i] / n as f64;
            let var = (sumsq[i] / n as f64 - mean * mean).max(0.0);
            mu[i] = mean as f32;
            slack[i] = (0.5 * var.sqrt()) as f32;
        }
        let params = Tier0Params {
            lambda: EWMA_LAMBDA,
            mu,
            slack,
            horizon,
        };

        let mut samples: [Vec<f32>; NUM_STATISTICS] = Default::default();
        for t in traces {
            let mut m = Tier0Monitor::new(params);
            for bsm in &t.bsms {
                m.push(bsm);
                if m.rows() >= window as u32 {
                    let s = m.statistics();
                    for i in 0..NUM_STATISTICS {
                        samples[i].push(s[i]);
                    }
                }
            }
        }
        if samples[0].is_empty() {
            return None;
        }
        let mut h = [0f32; NUM_STATISTICS];
        for i in 0..NUM_STATISTICS {
            h[i] = upper_quantile(&mut samples[i], quantile);
        }
        Some(Tier0Calibration {
            params,
            h,
            scale: 1.0,
            warmup: window as u32,
            quantile,
            score_floor: 0.0,
            score_span: 0.0,
            tau: f32::INFINITY,
            refresh: DEFAULT_REFRESH,
        })
    }

    /// Sets the advisory benign-score band and the detection threshold
    /// `tau`: `[floor, ceil]` should sit inside the benign bulk of the
    /// tier-1 gate score distribution (e.g. its p10 and p50), strictly
    /// below both the escalation cutoff τ_esc and `tau`. The serve
    /// plane carries the vehicle's last real tier-1 score instead of
    /// the band value, and `tau` doubles as its carry-forward freshness
    /// bar (only scores `< tau` may be carried).
    pub fn set_score_band(&mut self, floor: f32, ceil: f32, tau: f32) {
        self.score_floor = floor;
        self.score_span = (ceil - floor).max(0.0);
        self.tau = tau;
    }

    /// Worst statistic-to-interval ratio of a monitor state: the scalar
    /// "how close to tripping" value the gate compares against
    /// [`Tier0Calibration::scale`]. Non-finite statistics and
    /// statistics above a non-positive interval map to `+inf` (always
    /// screens).
    pub fn ratio(&self, stats: &[f32; NUM_STATISTICS]) -> f32 {
        let mut ratio = 0.0f32;
        for (&s, &h) in stats.iter().zip(&self.h) {
            if !s.is_finite() {
                return f32::INFINITY;
            }
            let r = if s <= 0.0 {
                0.0
            } else if h > 0.0 {
                s / h
            } else {
                f32::INFINITY
            };
            if r > ratio {
                ratio = r;
            }
        }
        ratio
    }

    /// Evaluates a monitor against this calibration: the gate decision
    /// and, for `Suppress`, the monitor-implied benign score from the
    /// advisory band (callers with a real prior tier-1 score — the
    /// serve plane — carry that instead). A cold monitor (fewer than
    /// `warmup` rows since its last reset) always screens. `Suppress`
    /// asserts only "physics saw nothing change"; whether a window may
    /// actually skip tier-1 additionally depends on the caller holding
    /// a fresh carried score (see [`Tier0Calibration::refresh`]).
    pub fn evaluate(&self, monitor: &Tier0Monitor) -> (GateDecision, f32) {
        if monitor.rows() < self.warmup {
            return (GateDecision::Screen, 0.0);
        }
        let ratio = self.ratio(&monitor.statistics());
        if self.scale > 0.0 && ratio <= self.scale {
            (
                GateDecision::Suppress,
                self.score_floor + self.score_span * (ratio / self.scale),
            )
        } else {
            (GateDecision::Screen, 0.0)
        }
    }

    /// Escalation-consistency pass: given the statistics of a warm
    /// window that must **never** be suppressed (its always-tier-1
    /// score escalates past τ_esc), shrinks the suppression scale just
    /// below that window's ratio so it — and anything at least as
    /// anomalous — screens. Returns whether the scale changed.
    ///
    /// Applying this to every escalating window of the evaluation
    /// campaign yields zero suppressed would-be escalations on that set
    /// *by construction*, while cutting suppression by the least amount
    /// any single-threshold rule could.
    pub fn constrain(&mut self, stats: &[f32; NUM_STATISTICS]) -> bool {
        let ratio = self.ratio(stats);
        let bound = if ratio.is_finite() {
            ratio * TIGHTEN_SHRINK
        } else {
            return false;
        };
        if bound < self.scale {
            self.scale = bound;
            true
        } else {
            false
        }
    }
}

/// Per-vehicle incremental kinematic monitor, updated in O(1) per BSM
/// alongside the [`WindowBuffer`] ring with no allocation and a fixed
/// f32 operation order.
///
/// The monitor keeps its own previous-message copy rather than peeking
/// into the ring, so it works standalone and in the serve shard alike;
/// feeding both from the same accepted-BSM sequence keeps them in
/// lockstep (a window completes exactly when the monitor has
/// `>= warmup` rows on an uninterrupted stream).
///
/// [`WindowBuffer`]: crate::WindowBuffer
#[derive(Debug, Clone, Copy)]
pub struct Tier0Monitor {
    params: Tier0Params,
    prev: Option<Bsm>,
    hz: Horizon,
    ewma: [f32; NUM_RESIDUALS],
    cusum_pos: [f32; NUM_RESIDUALS],
    cusum_neg: [f32; NUM_RESIDUALS],
    rows: u32,
}

impl Tier0Monitor {
    /// A cold monitor with the given update parameters. EWMAs start at
    /// the reference μ so a fresh monitor is not instantly deviant.
    pub fn new(params: Tier0Params) -> Self {
        Tier0Monitor {
            params,
            prev: None,
            hz: Horizon::cold(),
            ewma: params.mu,
            cusum_pos: [0.0; NUM_RESIDUALS],
            cusum_neg: [0.0; NUM_RESIDUALS],
            rows: 0,
        }
    }

    /// Feeds one BSM. A message whose timestamp does not strictly
    /// advance past the previous one (out-of-order, duplicate, or
    /// non-finite) resets the statistics cold — the conservative
    /// fallthrough: the monitor screens until it re-warms on `warmup`
    /// consecutive clean rows.
    pub fn push(&mut self, bsm: &Bsm) {
        if let Some(prev) = self.prev {
            match full_residuals(&prev, bsm, &mut self.hz, self.params.horizon) {
                Some(r) => {
                    let lambda = self.params.lambda;
                    for (i, &c) in r.iter().enumerate() {
                        let mu = self.params.mu[i];
                        let k = self.params.slack[i];
                        self.cusum_pos[i] =
                            clamp_stat(((self.cusum_pos[i] + (c - mu - k)).max(0.0)) as f64);
                        self.cusum_neg[i] =
                            clamp_stat(((self.cusum_neg[i] + (mu - k - c)).max(0.0)) as f64);
                        self.ewma[i] =
                            clamp_stat(((1.0 - lambda) * self.ewma[i] + lambda * c) as f64);
                    }
                    self.rows = self.rows.saturating_add(1);
                }
                None => self.reset_stats(),
            }
        }
        self.prev = Some(*bsm);
    }

    /// Clears the accumulated statistics and warmup count but keeps the
    /// last message as the new reference point.
    fn reset_stats(&mut self) {
        self.ewma = self.params.mu;
        self.cusum_pos = [0.0; NUM_RESIDUALS];
        self.cusum_neg = [0.0; NUM_RESIDUALS];
        self.hz = Horizon::cold();
        self.rows = 0;
    }

    /// Resets the monitor fully cold (statistics *and* the previous
    /// message), as after an eviction rebuild.
    pub fn reset(&mut self) {
        self.reset_stats();
        self.prev = None;
    }

    /// Consecutive residual rows accumulated since the last reset.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// The current statistics vector: the folded two-sided CUSUM
    /// `max(s⁺, s⁻)` per residual, then the EWMA deviation `|z − μ|`
    /// per residual. Always finite (see [`RESIDUAL_CLAMP`]).
    pub fn statistics(&self) -> [f32; NUM_STATISTICS] {
        let mut s = [0f32; NUM_STATISTICS];
        for i in 0..NUM_RESIDUALS {
            s[i] = self.cusum_pos[i].max(self.cusum_neg[i]);
            s[NUM_RESIDUALS + i] = (self.ewma[i] - self.params.mu[i]).abs();
        }
        s
    }

    /// The update parameters this monitor runs with.
    pub fn params(&self) -> Tier0Params {
        self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use vehigan_sim::{SimConfig, TrafficSimulator, VehicleId};
    use vehigan_vasp::{DatasetBuilder, DatasetConfig};

    fn sim_traces() -> Vec<VehicleTrace> {
        TrafficSimulator::new(SimConfig {
            n_vehicles: 4,
            duration_s: 20.0,
            seed: 5,
            ..SimConfig::default()
        })
        .run()
    }

    fn fitted() -> Tier0Calibration {
        Tier0Calibration::fit(&sim_traces(), 10, 0.995).expect("calibration fits")
    }

    #[test]
    fn fast_atan2_tracks_libm_within_two_mrad() {
        let mut worst = 0.0f64;
        for i in 0..=720 {
            let theta = (i as f64 - 360.0) * std::f64::consts::PI / 360.0;
            for r in [1e-3, 0.7, 42.0, 1e6] {
                let (y, x) = (r * theta.sin(), r * theta.cos());
                let err = Bsm::normalize_angle(fast_atan2(y, x) - y.atan2(x)).abs();
                worst = worst.max(err);
            }
        }
        assert!(worst < 2e-3, "fast_atan2 worst error {worst} rad");
        assert_eq!(fast_atan2(0.0, 0.0), 0.0);
    }

    #[test]
    fn benign_traffic_mostly_suppresses_after_warmup() {
        let cal = fitted();
        let traces = sim_traces();
        let mut warm = 0usize;
        let mut suppressed = 0usize;
        for t in &traces {
            let mut m = Tier0Monitor::new(cal.params);
            for bsm in &t.bsms {
                m.push(bsm);
                if m.rows() >= cal.warmup {
                    warm += 1;
                    if cal.evaluate(&m).0 == GateDecision::Suppress {
                        suppressed += 1;
                    }
                }
            }
        }
        assert!(warm > 100, "simulation produced too few warm rows");
        // In-distribution benign traffic at the 0.995 quantile: the
        // joint pass rate must stay high for the gate to be worth it.
        assert!(
            suppressed as f64 >= 0.9 * warm as f64,
            "only {suppressed}/{warm} benign rows suppressed"
        );
    }

    #[test]
    fn cold_and_short_monitors_screen() {
        let cal = fitted();
        let traces = sim_traces();
        let mut m = Tier0Monitor::new(cal.params);
        assert_eq!(cal.evaluate(&m).0, GateDecision::Screen);
        for bsm in traces[0].bsms.iter().take(cal.warmup as usize) {
            m.push(bsm);
            assert_eq!(
                cal.evaluate(&m).0,
                GateDecision::Screen,
                "monitor suppressed before warmup at row {}",
                m.rows()
            );
        }
    }

    #[test]
    fn out_of_order_and_duplicate_messages_reset_cold() {
        let cal = fitted();
        let trace = &sim_traces()[0];
        let mut m = Tier0Monitor::new(cal.params);
        for bsm in trace.bsms.iter().take(cal.warmup as usize + 2) {
            m.push(bsm);
        }
        assert!(m.rows() >= cal.warmup);
        // A duplicate timestamp resets to cold...
        let dup = trace.bsms[cal.warmup as usize + 1];
        m.push(&dup);
        assert_eq!(m.rows(), 0);
        assert_eq!(cal.evaluate(&m).0, GateDecision::Screen);
        // ...and so does a message from the past.
        let mut m2 = Tier0Monitor::new(cal.params);
        for bsm in trace.bsms.iter().take(cal.warmup as usize + 2) {
            m2.push(bsm);
        }
        let mut old = trace.bsms[1];
        old.timestamp -= 100.0;
        m2.push(&old);
        assert_eq!(m2.rows(), 0);
        // After a duplicate-triggered reset, continuing with the real
        // trace screens for `warmup` rows and then re-warms into
        // suppression (the stream is benign).
        let mut m3 = Tier0Monitor::new(cal.params);
        let k = cal.warmup as usize + 2;
        for bsm in trace.bsms.iter().take(k) {
            m3.push(bsm);
        }
        m3.push(&trace.bsms[k - 1]); // duplicate → reset, prev stays live
        assert_eq!(m3.rows(), 0);
        let mut suppressed = false;
        for (i, bsm) in trace.bsms[k..].iter().enumerate() {
            m3.push(bsm);
            if (i as u32) + 1 < cal.warmup {
                assert_eq!(cal.evaluate(&m3).0, GateDecision::Screen);
            }
            suppressed |= cal.evaluate(&m3).0 == GateDecision::Suppress;
        }
        assert!(suppressed, "monitor never re-warmed into suppression");
    }

    #[test]
    fn teleport_trips_the_range_monitor() {
        let cal = fitted();
        let trace = &sim_traces()[0];
        let mut m = Tier0Monitor::new(cal.params);
        for bsm in trace.bsms.iter().take(cal.warmup as usize + 4) {
            m.push(bsm);
        }
        assert_eq!(cal.evaluate(&m).0, GateDecision::Suppress);
        let mut tele = *m.prev.as_ref().unwrap();
        tele.timestamp += 0.1;
        tele.pos_x += 5000.0;
        m.push(&tele);
        assert_eq!(cal.evaluate(&m).0, GateDecision::Screen);
    }

    #[test]
    fn attack_windows_screen_far_more_than_benign() {
        let traces = sim_traces();
        let cal = fitted();
        let builder = DatasetBuilder::new(&traces, DatasetConfig::default());
        let attack = vehigan_vasp::Attack::by_name("RandomPosition").unwrap();
        let mut benign_suppress = (0usize, 0usize);
        let mut attack_suppress = (0usize, 0usize);
        let attacker: Vec<(usize, _)> = builder.attacker_traces(attack);
        for (_, lt) in &attacker {
            let mut m = Tier0Monitor::new(cal.params);
            for bsm in &lt.trace.bsms {
                m.push(bsm);
                if m.rows() >= cal.warmup {
                    attack_suppress.1 += 1;
                    attack_suppress.0 += (cal.evaluate(&m).0 == GateDecision::Suppress) as usize;
                }
            }
        }
        for t in &traces {
            let mut m = Tier0Monitor::new(cal.params);
            for bsm in &t.bsms {
                m.push(bsm);
                if m.rows() >= cal.warmup {
                    benign_suppress.1 += 1;
                    benign_suppress.0 += (cal.evaluate(&m).0 == GateDecision::Suppress) as usize;
                }
            }
        }
        let benign_rate = benign_suppress.0 as f64 / benign_suppress.1.max(1) as f64;
        let attack_rate = attack_suppress.0 as f64 / attack_suppress.1.max(1) as f64;
        assert!(
            attack_rate < 0.5 * benign_rate,
            "RandomPosition suppression rate {attack_rate:.3} not well below benign {benign_rate:.3}"
        );
    }

    #[test]
    fn constrain_shrinks_scale_and_excludes_the_window() {
        let mut cal = fitted();
        // A window sitting at 40% of its intervals.
        let stats = cal.h.map(|h| 0.4 * h.max(1e-6));
        assert!(cal.ratio(&stats) <= 0.41);
        assert!(cal.constrain(&stats));
        let mut m_stats = stats;
        m_stats[0] = stats[0]; // unchanged: ratio == old ratio > new scale
        assert!(cal.ratio(&m_stats) > cal.scale);
        // Constraining again with the same window is a no-op.
        assert!(!cal.constrain(&stats));
    }

    #[test]
    fn calibration_copies_and_compares_exactly() {
        // The deployment contract: a Tier0Calibration is stored next to
        // the fitted scaler (both carry the serde derives); it must be
        // Copy + PartialEq so a round-tripped copy is bit-comparable.
        let cal = fitted();
        let copy = cal;
        assert_eq!(cal, copy);
    }

    proptest! {
        /// (a) Bitwise determinism: pushing the same sequence twice —
        /// regardless of how the caller chunks its batches, which never
        /// reaches the monitor — yields identical statistics, and the
        /// decision is a pure function of the state.
        #[test]
        fn replays_are_bitwise_identical(seed in 0u64..32, n in 2usize..60) {
            let traces = TrafficSimulator::new(SimConfig {
                n_vehicles: 1,
                duration_s: 10.0,
                seed,
                ..SimConfig::default()
            })
            .run();
            let cal = fitted();
            let bsms = &traces[0].bsms;
            let n = n.min(bsms.len());
            let mut a = Tier0Monitor::new(cal.params);
            let mut b = Tier0Monitor::new(cal.params);
            for bsm in &bsms[..n] {
                a.push(bsm);
            }
            for bsm in &bsms[..n] {
                b.push(bsm);
            }
            let (sa, sb) = (a.statistics(), b.statistics());
            for i in 0..NUM_STATISTICS {
                prop_assert_eq!(sa[i].to_bits(), sb[i].to_bits());
            }
            prop_assert_eq!(a.rows(), b.rows());
            prop_assert_eq!(cal.evaluate(&a), cal.evaluate(&b));
        }

        /// (c) Guard-accepted BSMs never produce non-finite statistics,
        /// no matter how adversarial the (in-range) field values are.
        #[test]
        fn guard_accepted_inputs_keep_statistics_finite(
            steps in proptest::collection::vec(
                (1e-6f64..5.0, -1e5f64..1e5, -1e5f64..1e5, 0f64..100.0,
                 -20f64..20.0, -std::f64::consts::PI..std::f64::consts::PI, -2f64..2.0),
                1..40,
            )
        ) {
            let guard = crate::IngestGuard::rsu();
            let cal = fitted();
            let mut m = Tier0Monitor::new(cal.params);
            let mut t = 0.0f64;
            let mut last_seen: Option<f64> = None;
            for (dt, px, py, sp, acc, hd, yr) in steps {
                t += dt;
                let bsm = Bsm {
                    vehicle_id: VehicleId(1),
                    timestamp: t,
                    pos_x: px,
                    pos_y: py,
                    speed: sp,
                    acceleration: acc,
                    heading: hd,
                    yaw_rate: yr,
                };
                prop_assert!(guard.validate(&bsm, last_seen).is_ok());
                last_seen = Some(t);
                m.push(&bsm);
                let s = m.statistics();
                for v in s {
                    prop_assert!(v.is_finite(), "non-finite statistic {v} in {s:?}");
                }
                let (_, score) = cal.evaluate(&m);
                prop_assert!(score.is_finite());
            }
        }
    }
}
