//! Sliding-window snapshot assembly.
//!
//! VehiGAN's models consume 2-D snapshots `x ∈ ℝ^{w×f}`: `w` consecutive
//! feature rows of a single vehicle (paper: `w = 10`, `f = 12`). This
//! module turns labelled traces into batched snapshot tensors
//! `[n, w, f, 1]` (NHWC with one channel) ready for training or scoring.
//!
//! The build path is staged so each stage can be reused and parallelised:
//!
//! 1. [`engineer_rows`] decomposes every trace into flat feature rows
//!    **once** (the expensive trig-heavy step);
//! 2. [`fit_scaler_from_rows`] fits a [`MinMaxScaler`] on those rows
//!    without re-engineering them;
//! 3. [`build_windows_from_rows`] scales rows straight into the
//!    preallocated `f32` window tensor — no per-row `Vec<Vec<f64>>` — in
//!    parallel across vehicles with deterministic output ordering;
//! 4. [`build_fragment`] / [`assemble_fragments`] expose the per-vehicle
//!    granularity so campaign-style callers can cache the windows of
//!    vehicles that are byte-identical across datasets (the benign 75%)
//!    and reassemble full datasets from cached pieces.
//!
//! [`fit_scaler`] and [`build_windows`] remain as thin dataset-level
//! wrappers; every path produces bitwise-identical tensors.

use crate::decompose::{decompose_trace, raw_trace, NUM_FEATURES, NUM_RAW_FEATURES};
use crate::scaler::MinMaxScaler;
use vehigan_sim::VehicleId;
use vehigan_tensor::Tensor;
use vehigan_vasp::{LabeledTrace, MisbehaviorDataset};

/// Which feature representation windows are built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Representation {
    /// The 12 physics-guided features of Table II (`Vehi-` detectors).
    Engineered,
    /// The 6 raw fields (`Base` detectors).
    Raw,
}

impl Representation {
    /// Feature count `f` of this representation.
    pub fn width(self) -> usize {
        match self {
            Representation::Engineered => NUM_FEATURES,
            Representation::Raw => NUM_RAW_FEATURES,
        }
    }
}

/// Windowing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WindowConfig {
    /// Window length `w` in messages (paper: 10).
    pub window: usize,
    /// Stride between consecutive training windows (1 = fully overlapping).
    pub stride: usize,
    /// Feature representation.
    pub representation: Representation,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            window: 10,
            stride: 1,
            representation: Representation::Engineered,
        }
    }
}

/// A batched snapshot dataset.
#[derive(Debug, Clone)]
pub struct WindowDataset {
    /// Snapshots, shape `[n, w, f, 1]`, scaled to `[-1, 1]`.
    pub x: Tensor,
    /// Per-window ground truth (`true` = contains misbehavior).
    pub labels: Vec<bool>,
    /// Source vehicle of each window.
    pub vehicles: Vec<VehicleId>,
}

impl WindowDataset {
    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Window length `w`.
    pub fn window(&self) -> usize {
        self.x.shape()[1]
    }

    /// Feature count `f`.
    pub fn features(&self) -> usize {
        self.x.shape()[2]
    }

    /// Indices of benign (`false`) windows.
    pub fn benign_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| !self.labels[i]).collect()
    }

    /// Indices of malicious (`true`) windows.
    pub fn malicious_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.labels[i]).collect()
    }

    /// A new dataset with only the selected windows.
    pub fn subset(&self, indices: &[usize]) -> WindowDataset {
        WindowDataset {
            x: self.x.take(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            vehicles: indices.iter().map(|&i| self.vehicles[i]).collect(),
        }
    }
}

/// Engineered feature rows of a single trace, stored flat (row-major,
/// `num_rows × width`) so downstream scaling can stream them without
/// per-row allocations.
#[derive(Debug, Clone)]
pub struct TraceRows {
    /// Source vehicle.
    pub vehicle: VehicleId,
    /// Feature count per row.
    pub width: usize,
    /// Flat row-major feature values (`labels.len() × width`).
    pub values: Vec<f64>,
    /// Per-row ground truth: row i is derived from messages (i, i+1), so a
    /// row is tainted if either message was falsified.
    pub labels: Vec<bool>,
}

impl TraceRows {
    /// Number of feature rows.
    pub fn num_rows(&self) -> usize {
        self.labels.len()
    }

    /// How many windows of length `window` at the given `stride` this
    /// trace yields.
    pub fn window_count(&self, window: usize, stride: usize) -> usize {
        let n = self.num_rows();
        if n < window {
            0
        } else {
            (n - window) / stride + 1
        }
    }
}

/// Engineers the feature rows of one labelled trace, or `None` if the
/// trace is too short to yield a row (fewer than 2 messages).
pub fn engineer_trace(t: &LabeledTrace, representation: Representation) -> Option<TraceRows> {
    if t.trace.len() < 2 {
        return None;
    }
    let width = representation.width();
    let n_rows = t.trace.len() - 1;
    let mut values = Vec::with_capacity(n_rows * width);
    match representation {
        Representation::Engineered => {
            for r in decompose_trace(&t.trace) {
                values.extend_from_slice(&r.values);
            }
        }
        Representation::Raw => {
            for r in raw_trace(&t.trace) {
                values.extend_from_slice(&r);
            }
        }
    }
    let labels: Vec<bool> = t.labels.windows(2).map(|w| w[0] || w[1]).collect();
    debug_assert_eq!(values.len(), labels.len() * width);
    Some(TraceRows {
        vehicle: t.trace.id,
        width,
        values,
        labels,
    })
}

/// Engineers feature rows for every (long-enough) trace of a dataset,
/// in fleet order. This is the single expensive decomposition step —
/// fit the scaler and build windows from the returned rows instead of
/// re-engineering per consumer.
pub fn engineer_rows(
    dataset: &MisbehaviorDataset,
    representation: Representation,
) -> Vec<TraceRows> {
    dataset
        .traces
        .iter()
        .filter_map(|t| engineer_trace(t, representation))
        .collect()
}

/// Fits a [`MinMaxScaler`] on already-engineered rows (statistics are
/// identical to fitting on the originating dataset).
///
/// # Panics
///
/// Panics if `rows` is empty.
pub fn fit_scaler_from_rows(rows: &[TraceRows]) -> MinMaxScaler {
    assert!(!rows.is_empty(), "cannot fit a scaler on zero rows");
    let width = rows[0].width;
    MinMaxScaler::fit_flat(width, rows.iter().flat_map(|t| t.values.iter().copied()))
}

/// Fits a [`MinMaxScaler`] on the benign dataset under the given
/// representation.
///
/// # Panics
///
/// Panics if the dataset yields no feature rows.
pub fn fit_scaler(benign: &MisbehaviorDataset, representation: Representation) -> MinMaxScaler {
    fit_scaler_from_rows(&engineer_rows(benign, representation))
}

/// The scaled windows contributed by a single trace: `window_count`
/// snapshots stored flat (`window_count × w × f`), ready to be spliced
/// into a full dataset by [`assemble_fragments`].
///
/// Fragments are the unit of caching for campaign evaluation: a vehicle
/// whose trace is byte-identical across datasets (a non-attacker) has a
/// byte-identical fragment, so it is computed once and shared.
#[derive(Debug, Clone)]
pub struct WindowFragment {
    /// Source vehicle.
    pub vehicle: VehicleId,
    /// Flat scaled snapshot data, `labels.len() × w × f` values.
    pub data: Vec<f32>,
    /// Per-window ground truth.
    pub labels: Vec<bool>,
}

/// Scales all rows of `t` once (f64 math, rounded once to f32) into
/// `scaled`, then copies each window — a contiguous run of `w` rows — into
/// `out`, which must be exactly `window_count × w × f` long.
fn fill_fragment(
    t: &TraceRows,
    config: WindowConfig,
    scaler: &MinMaxScaler,
    scaled: &mut Vec<f32>,
    out: &mut [f32],
) {
    let f = t.width;
    scaled.clear();
    scaled.reserve(t.values.len());
    for row in t.values.chunks_exact(f) {
        for (j, &v) in row.iter().enumerate() {
            scaled.push(scaler.transform_value_f32(j, v));
        }
    }
    let w = config.window;
    let span = w * f;
    for (k, dst) in out.chunks_exact_mut(span).enumerate() {
        let start = k * config.stride * f;
        dst.copy_from_slice(&scaled[start..start + span]);
    }
}

/// Window labels of one trace: a window is malicious if **any** row is.
fn fragment_labels(t: &TraceRows, config: WindowConfig) -> Vec<bool> {
    (0..t.window_count(config.window, config.stride))
        .map(|k| {
            let start = k * config.stride;
            t.labels[start..start + config.window].iter().any(|&l| l)
        })
        .collect()
}

fn assert_scaler_matches(config: WindowConfig, scaler: &MinMaxScaler) {
    assert_eq!(
        scaler.width(),
        config.representation.width(),
        "scaler width {} does not match representation width {}",
        scaler.width(),
        config.representation.width()
    );
    assert!(config.window >= 2, "window must hold at least 2 rows");
    assert!(config.stride >= 1, "stride must be at least 1");
}

/// Builds the scaled window fragment of a single trace (possibly empty if
/// the trace is shorter than one window).
///
/// # Panics
///
/// Panics if the scaler width does not match the representation.
pub fn build_fragment(
    t: &TraceRows,
    config: WindowConfig,
    scaler: &MinMaxScaler,
) -> WindowFragment {
    assert_scaler_matches(config, scaler);
    let count = t.window_count(config.window, config.stride);
    let mut data = vec![0.0f32; count * config.window * t.width];
    let mut scaled = Vec::new();
    if count > 0 {
        fill_fragment(t, config, scaler, &mut scaled, &mut data);
    }
    WindowFragment {
        vehicle: t.vehicle,
        data,
        labels: fragment_labels(t, config),
    }
}

/// Concatenates per-trace fragments (in the given order) into a full
/// dataset — bitwise identical to building the windows directly with
/// [`build_windows_from_rows`] over the same traces in the same order.
///
/// # Panics
///
/// Panics if every fragment is empty.
pub fn assemble_fragments<'a>(
    fragments: impl IntoIterator<Item = &'a WindowFragment>,
    config: WindowConfig,
) -> WindowDataset {
    let w = config.window;
    let f = config.representation.width();
    // Two passes over the (cheap) fragment references so the output
    // buffers are allocated exactly once at their final size.
    let frags: Vec<&WindowFragment> = fragments.into_iter().collect();
    let total: usize = frags.iter().map(|frag| frag.labels.len()).sum();
    let mut data = Vec::with_capacity(total * w * f);
    let mut labels = Vec::with_capacity(total);
    let mut vehicles = Vec::with_capacity(total);
    for frag in frags {
        data.extend_from_slice(&frag.data);
        labels.extend_from_slice(&frag.labels);
        vehicles.extend(std::iter::repeat_n(frag.vehicle, frag.labels.len()));
    }
    assert!(
        !labels.is_empty(),
        "no trace long enough for a window of {w}"
    );
    let n = labels.len();
    WindowDataset {
        x: Tensor::from_vec(data, &[n, w, f, 1]),
        labels,
        vehicles,
    }
}

/// Worker count for the vehicle-parallel build: bounded by the host's
/// cores and the number of traces that actually yield windows.
fn build_threads(traces: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(traces)
        .max(1)
}

/// Builds scaled snapshot windows from already-engineered rows.
///
/// The output tensor is preallocated from per-trace window counts and
/// each trace scales directly into its own disjoint slice — no per-row
/// intermediate allocations — in parallel across vehicles. Output
/// ordering is deterministic (trace order, then window start) regardless
/// of thread scheduling, and bitwise identical to a serial build.
///
/// # Panics
///
/// Panics if the scaler width does not match the representation, or no
/// trace is long enough for a single window.
pub fn build_windows_from_rows(
    rows: &[TraceRows],
    config: WindowConfig,
    scaler: &MinMaxScaler,
) -> WindowDataset {
    assert_scaler_matches(config, scaler);
    let w = config.window;
    let f = config.representation.width();
    for t in rows {
        assert_eq!(
            t.width, f,
            "trace row width {} does not match representation",
            t.width
        );
    }
    let counts: Vec<usize> = rows
        .iter()
        .map(|t| t.window_count(w, config.stride))
        .collect();
    let total: usize = counts.iter().sum();
    assert!(total > 0, "no trace long enough for a window of {w}");

    // Preassign each trace a disjoint slice of the output buffer so the
    // parallel fill is write-racefree and ordering is fixed up front.
    let mut data = vec![0.0f32; total * w * f];
    let mut jobs: Vec<(&TraceRows, &mut [f32])> = Vec::with_capacity(rows.len());
    let mut rest: &mut [f32] = &mut data;
    for (t, &c) in rows.iter().zip(&counts) {
        let (head, tail) = rest.split_at_mut(c * w * f);
        rest = tail;
        if c > 0 {
            jobs.push((t, head));
        }
    }

    let threads = build_threads(jobs.len());
    if threads <= 1 {
        let mut scratch = Vec::new();
        for (t, out) in &mut jobs {
            fill_fragment(t, config, scaler, &mut scratch, out);
        }
    } else {
        let chunk = jobs.len().div_ceil(threads);
        crossbeam::thread::scope(|s| {
            for part in jobs.chunks_mut(chunk) {
                s.spawn(move |_| {
                    let mut scratch = Vec::new();
                    for (t, out) in part {
                        fill_fragment(t, config, scaler, &mut scratch, out);
                    }
                });
            }
        })
        .expect("window build worker panicked");
    }

    let mut labels = Vec::with_capacity(total);
    let mut vehicles = Vec::with_capacity(total);
    for (t, &c) in rows.iter().zip(&counts) {
        if c > 0 {
            labels.extend(fragment_labels(t, config));
            vehicles.extend(std::iter::repeat_n(t.vehicle, c));
        }
    }
    WindowDataset {
        x: Tensor::from_vec(data, &[total, w, f, 1]),
        labels,
        vehicles,
    }
}

/// Builds scaled snapshot windows from a labelled dataset.
///
/// A window is labelled malicious if **any** of its rows is tainted.
/// Thin wrapper over [`engineer_rows`] + [`build_windows_from_rows`];
/// callers that also fit a scaler should engineer once and use the
/// staged functions directly.
///
/// # Panics
///
/// Panics if the scaler width does not match the representation, or no
/// trace is long enough for a single window.
pub fn build_windows(
    dataset: &MisbehaviorDataset,
    config: WindowConfig,
    scaler: &MinMaxScaler,
) -> WindowDataset {
    build_windows_from_rows(
        &engineer_rows(dataset, config.representation),
        config,
        scaler,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use vehigan_sim::{SimConfig, TrafficSimulator};
    use vehigan_vasp::{Attack, DatasetBuilder, DatasetConfig};

    fn setup() -> (MisbehaviorDataset, MisbehaviorDataset) {
        let fleet = TrafficSimulator::new(SimConfig {
            n_vehicles: 6,
            duration_s: 30.0,
            seed: 21,
            ..SimConfig::default()
        })
        .run();
        let builder = DatasetBuilder::new(&fleet, DatasetConfig::default());
        (
            builder.benign_dataset(),
            builder.attack_dataset(Attack::by_name("HighSpeed").unwrap()),
        )
    }

    #[test]
    fn benign_windows_are_all_negative() {
        let (benign, _) = setup();
        let scaler = fit_scaler(&benign, Representation::Engineered);
        let ds = build_windows(&benign, WindowConfig::default(), &scaler);
        assert!(ds.len() > 100);
        assert!(ds.labels.iter().all(|&l| !l));
        assert_eq!(ds.x.shape(), &[ds.len(), 10, 12, 1]);
    }

    #[test]
    fn attack_windows_are_labelled() {
        let (benign, attacked) = setup();
        let scaler = fit_scaler(&benign, Representation::Engineered);
        let ds = build_windows(&attacked, WindowConfig::default(), &scaler);
        let malicious = ds.malicious_indices().len();
        let benign_ct = ds.benign_indices().len();
        assert!(malicious > 0 && benign_ct > 0);
        // 25% of vehicles are persistent attackers → ~25% of windows.
        let frac = malicious as f64 / ds.len() as f64;
        assert!(frac > 0.1 && frac < 0.5, "frac={frac}");
    }

    #[test]
    fn values_are_bounded() {
        let (benign, attacked) = setup();
        let scaler = fit_scaler(&benign, Representation::Engineered);
        let ds = build_windows(&attacked, WindowConfig::default(), &scaler);
        assert!(ds.x.max() <= 1.0 && ds.x.min() >= -1.0);
    }

    #[test]
    fn stride_reduces_window_count() {
        let (benign, _) = setup();
        let scaler = fit_scaler(&benign, Representation::Engineered);
        let dense = build_windows(&benign, WindowConfig::default(), &scaler);
        let sparse = build_windows(
            &benign,
            WindowConfig {
                stride: 5,
                ..WindowConfig::default()
            },
            &scaler,
        );
        assert!(sparse.len() * 4 < dense.len());
    }

    #[test]
    fn raw_representation_width() {
        let (benign, _) = setup();
        let scaler = fit_scaler(&benign, Representation::Raw);
        let ds = build_windows(
            &benign,
            WindowConfig {
                representation: Representation::Raw,
                ..WindowConfig::default()
            },
            &scaler,
        );
        assert_eq!(ds.features(), 6);
    }

    #[test]
    fn subset_selects_correctly() {
        let (benign, _) = setup();
        let scaler = fit_scaler(&benign, Representation::Engineered);
        let ds = build_windows(&benign, WindowConfig::default(), &scaler);
        let sub = ds.subset(&[0, 2, 4]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.x.shape()[0], 3);
        assert_eq!(sub.vehicles[1], ds.vehicles[2]);
    }

    #[test]
    #[should_panic(expected = "scaler width")]
    fn mismatched_scaler_rejected() {
        let (benign, _) = setup();
        let scaler = fit_scaler(&benign, Representation::Raw);
        let _ = build_windows(&benign, WindowConfig::default(), &scaler);
    }

    /// The staged path (engineer once → fit → build) must be bitwise
    /// identical to the dataset-level wrappers.
    #[test]
    fn staged_build_is_bitwise_identical() {
        let (benign, attacked) = setup();
        let config = WindowConfig {
            stride: 2,
            ..WindowConfig::default()
        };
        let scaler = fit_scaler(&benign, Representation::Engineered);
        let rows = engineer_rows(&benign, Representation::Engineered);
        assert_eq!(fit_scaler_from_rows(&rows), scaler);
        for ds in [&benign, &attacked] {
            let wrapper = build_windows(ds, config, &scaler);
            let rows = engineer_rows(ds, config.representation);
            let staged = build_windows_from_rows(&rows, config, &scaler);
            assert_eq!(wrapper.x.as_slice(), staged.x.as_slice());
            assert_eq!(wrapper.labels, staged.labels);
            assert_eq!(wrapper.vehicles, staged.vehicles);
        }
    }

    /// Assembling per-trace fragments reproduces the monolithic build
    /// byte for byte.
    #[test]
    fn fragment_assembly_matches_monolithic_build() {
        let (benign, attacked) = setup();
        let config = WindowConfig::default();
        let scaler = fit_scaler(&benign, Representation::Engineered);
        let rows = engineer_rows(&attacked, config.representation);
        let monolithic = build_windows_from_rows(&rows, config, &scaler);
        let fragments: Vec<WindowFragment> = rows
            .iter()
            .map(|t| build_fragment(t, config, &scaler))
            .collect();
        let assembled = assemble_fragments(fragments.iter(), config);
        assert_eq!(monolithic.x.as_slice(), assembled.x.as_slice());
        assert_eq!(monolithic.labels, assembled.labels);
        assert_eq!(monolithic.vehicles, assembled.vehicles);
    }

    #[test]
    fn short_trace_yields_no_rows() {
        let (benign, _) = setup();
        let mut t = benign.traces[0].clone();
        t.trace.bsms.truncate(1);
        t.labels.truncate(1);
        assert!(engineer_trace(&t, Representation::Engineered).is_none());
    }
}
