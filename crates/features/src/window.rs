//! Sliding-window snapshot assembly.
//!
//! VehiGAN's models consume 2-D snapshots `x ∈ ℝ^{w×f}`: `w` consecutive
//! feature rows of a single vehicle (paper: `w = 10`, `f = 12`). This
//! module turns labelled traces into batched snapshot tensors
//! `[n, w, f, 1]` (NHWC with one channel) ready for training or scoring.

use crate::decompose::{decompose_trace, raw_trace, NUM_FEATURES, NUM_RAW_FEATURES};
use crate::scaler::MinMaxScaler;
use vehigan_sim::VehicleId;
use vehigan_tensor::Tensor;
use vehigan_vasp::MisbehaviorDataset;

/// Which feature representation windows are built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Representation {
    /// The 12 physics-guided features of Table II (`Vehi-` detectors).
    Engineered,
    /// The 6 raw fields (`Base` detectors).
    Raw,
}

impl Representation {
    /// Feature count `f` of this representation.
    pub fn width(self) -> usize {
        match self {
            Representation::Engineered => NUM_FEATURES,
            Representation::Raw => NUM_RAW_FEATURES,
        }
    }
}

/// Windowing configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WindowConfig {
    /// Window length `w` in messages (paper: 10).
    pub window: usize,
    /// Stride between consecutive training windows (1 = fully overlapping).
    pub stride: usize,
    /// Feature representation.
    pub representation: Representation,
}

impl Default for WindowConfig {
    fn default() -> Self {
        WindowConfig {
            window: 10,
            stride: 1,
            representation: Representation::Engineered,
        }
    }
}

/// A batched snapshot dataset.
#[derive(Debug, Clone)]
pub struct WindowDataset {
    /// Snapshots, shape `[n, w, f, 1]`, scaled to `[-1, 1]`.
    pub x: Tensor,
    /// Per-window ground truth (`true` = contains misbehavior).
    pub labels: Vec<bool>,
    /// Source vehicle of each window.
    pub vehicles: Vec<VehicleId>,
}

impl WindowDataset {
    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Window length `w`.
    pub fn window(&self) -> usize {
        self.x.shape()[1]
    }

    /// Feature count `f`.
    pub fn features(&self) -> usize {
        self.x.shape()[2]
    }

    /// Indices of benign (`false`) windows.
    pub fn benign_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| !self.labels[i]).collect()
    }

    /// Indices of malicious (`true`) windows.
    pub fn malicious_indices(&self) -> Vec<usize> {
        (0..self.len()).filter(|&i| self.labels[i]).collect()
    }

    /// A new dataset with only the selected windows.
    pub fn subset(&self, indices: &[usize]) -> WindowDataset {
        WindowDataset {
            x: self.x.take(indices),
            labels: indices.iter().map(|&i| self.labels[i]).collect(),
            vehicles: indices.iter().map(|&i| self.vehicles[i]).collect(),
        }
    }
}

/// Extracts feature rows for every trace of a dataset, in
/// `(vehicle, rows, per-row labels)` form.
fn rows_of(
    dataset: &MisbehaviorDataset,
    representation: Representation,
) -> Vec<(VehicleId, Vec<Vec<f64>>, Vec<bool>)> {
    dataset
        .traces
        .iter()
        .filter(|t| t.trace.len() >= 2)
        .map(|t| {
            let rows: Vec<Vec<f64>> = match representation {
                Representation::Engineered => decompose_trace(&t.trace)
                    .into_iter()
                    .map(|r| r.values.to_vec())
                    .collect(),
                Representation::Raw => raw_trace(&t.trace)
                    .into_iter()
                    .map(|r| r.to_vec())
                    .collect(),
            };
            // Row i is derived from messages (i, i+1): a row is tainted if
            // either message was falsified.
            let row_labels: Vec<bool> = t
                .labels
                .windows(2)
                .map(|w| w[0] || w[1])
                .collect();
            (t.trace.id, rows, row_labels)
        })
        .collect()
}

/// Fits a [`MinMaxScaler`] on the benign dataset under the given
/// representation.
///
/// # Panics
///
/// Panics if the dataset yields no feature rows.
pub fn fit_scaler(benign: &MisbehaviorDataset, representation: Representation) -> MinMaxScaler {
    let mut all_rows = Vec::new();
    for (_, rows, _) in rows_of(benign, representation) {
        all_rows.extend(rows);
    }
    MinMaxScaler::fit(&all_rows)
}

/// Builds scaled snapshot windows from a labelled dataset.
///
/// A window is labelled malicious if **any** of its rows is tainted.
///
/// # Panics
///
/// Panics if the scaler width does not match the representation, or no
/// trace is long enough for a single window.
pub fn build_windows(
    dataset: &MisbehaviorDataset,
    config: WindowConfig,
    scaler: &MinMaxScaler,
) -> WindowDataset {
    assert_eq!(
        scaler.width(),
        config.representation.width(),
        "scaler width {} does not match representation width {}",
        scaler.width(),
        config.representation.width()
    );
    assert!(config.window >= 2, "window must hold at least 2 rows");
    assert!(config.stride >= 1, "stride must be at least 1");
    let w = config.window;
    let f = config.representation.width();
    let mut data: Vec<f32> = Vec::new();
    let mut labels = Vec::new();
    let mut vehicles = Vec::new();
    for (vid, rows, row_labels) in rows_of(dataset, config.representation) {
        if rows.len() < w {
            continue;
        }
        let scaled: Vec<Vec<f64>> = rows.iter().map(|r| scaler.transform_row(r)).collect();
        let mut start = 0;
        while start + w <= scaled.len() {
            for row in &scaled[start..start + w] {
                data.extend(row.iter().map(|&v| v as f32));
            }
            labels.push(row_labels[start..start + w].iter().any(|&l| l));
            vehicles.push(vid);
            start += config.stride;
        }
    }
    assert!(!labels.is_empty(), "no trace long enough for a window of {w}");
    let n = labels.len();
    WindowDataset {
        x: Tensor::from_vec(data, &[n, w, f, 1]),
        labels,
        vehicles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vehigan_sim::{SimConfig, TrafficSimulator};
    use vehigan_vasp::{Attack, DatasetBuilder, DatasetConfig};

    fn setup() -> (MisbehaviorDataset, MisbehaviorDataset) {
        let fleet = TrafficSimulator::new(SimConfig {
            n_vehicles: 6,
            duration_s: 30.0,
            seed: 21,
            ..SimConfig::default()
        })
        .run();
        let builder = DatasetBuilder::new(&fleet, DatasetConfig::default());
        (
            builder.benign_dataset(),
            builder.attack_dataset(Attack::by_name("HighSpeed").unwrap()),
        )
    }

    #[test]
    fn benign_windows_are_all_negative() {
        let (benign, _) = setup();
        let scaler = fit_scaler(&benign, Representation::Engineered);
        let ds = build_windows(&benign, WindowConfig::default(), &scaler);
        assert!(ds.len() > 100);
        assert!(ds.labels.iter().all(|&l| !l));
        assert_eq!(ds.x.shape(), &[ds.len(), 10, 12, 1]);
    }

    #[test]
    fn attack_windows_are_labelled() {
        let (benign, attacked) = setup();
        let scaler = fit_scaler(&benign, Representation::Engineered);
        let ds = build_windows(&attacked, WindowConfig::default(), &scaler);
        let malicious = ds.malicious_indices().len();
        let benign_ct = ds.benign_indices().len();
        assert!(malicious > 0 && benign_ct > 0);
        // 25% of vehicles are persistent attackers → ~25% of windows.
        let frac = malicious as f64 / ds.len() as f64;
        assert!(frac > 0.1 && frac < 0.5, "frac={frac}");
    }

    #[test]
    fn values_are_bounded() {
        let (benign, attacked) = setup();
        let scaler = fit_scaler(&benign, Representation::Engineered);
        let ds = build_windows(&attacked, WindowConfig::default(), &scaler);
        assert!(ds.x.max() <= 1.0 && ds.x.min() >= -1.0);
    }

    #[test]
    fn stride_reduces_window_count() {
        let (benign, _) = setup();
        let scaler = fit_scaler(&benign, Representation::Engineered);
        let dense = build_windows(&benign, WindowConfig::default(), &scaler);
        let sparse = build_windows(
            &benign,
            WindowConfig {
                stride: 5,
                ..WindowConfig::default()
            },
            &scaler,
        );
        assert!(sparse.len() * 4 < dense.len());
    }

    #[test]
    fn raw_representation_width() {
        let (benign, _) = setup();
        let scaler = fit_scaler(&benign, Representation::Raw);
        let ds = build_windows(
            &benign,
            WindowConfig {
                representation: Representation::Raw,
                ..WindowConfig::default()
            },
            &scaler,
        );
        assert_eq!(ds.features(), 6);
    }

    #[test]
    fn subset_selects_correctly() {
        let (benign, _) = setup();
        let scaler = fit_scaler(&benign, Representation::Engineered);
        let ds = build_windows(&benign, WindowConfig::default(), &scaler);
        let sub = ds.subset(&[0, 2, 4]);
        assert_eq!(sub.len(), 3);
        assert_eq!(sub.x.shape()[0], 3);
        assert_eq!(sub.vehicles[1], ds.vehicles[2]);
    }

    #[test]
    #[should_panic(expected = "scaler width")]
    fn mismatched_scaler_rejected() {
        let (benign, _) = setup();
        let scaler = fit_scaler(&benign, Representation::Raw);
        let _ = build_windows(&benign, WindowConfig::default(), &scaler);
    }
}
