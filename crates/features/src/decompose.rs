//! Physics-guided vector decomposition (Table II).
//!
//! Raw BSM fields are scalars with weak pairwise correlation (speed vs.
//! acceleration, heading vs. yaw rate). Decomposing them into X/Y
//! components and taking per-step deltas exposes the physical coupling:
//!
//! | relation | benign traffic satisfies |
//! |---|---|
//! | `Δx ≈ vx·Δt` | position integrates velocity |
//! | `Δvx ≈ ax·Δt` | velocity integrates acceleration |
//! | `Δθx ≈ ωx·Δt` | heading integrates yaw rate |
//!
//! Misbehaviors that falsify one field break at least one relation, which
//! is what makes these features discriminative for *any* downstream
//! detector (the paper shows the same features boost the PCA/KNN/GMM/AE
//! baselines too — Table III's `Vehi-` rows).

use vehigan_sim::{Bsm, VehicleTrace};

/// Number of engineered features (the paper's `f = 12`).
pub const NUM_FEATURES: usize = 12;

/// Number of raw features used by the raw-feature baseline (`BaseAE`).
pub const NUM_RAW_FEATURES: usize = 6;

/// Names of the engineered features, in column order.
pub const FEATURE_NAMES: [&str; NUM_FEATURES] = [
    "delta_x",
    "delta_y",
    "v_x",
    "v_y",
    "delta_v_x",
    "delta_v_y",
    "a_x",
    "a_y",
    "delta_theta_x",
    "delta_theta_y",
    "omega_x",
    "omega_y",
];

/// One engineered feature row (from a consecutive BSM pair).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeatureRow {
    /// The 12 features in [`FEATURE_NAMES`] order.
    pub values: [f64; NUM_FEATURES],
    /// Timestamp of the later message of the pair.
    pub timestamp: f64,
}

/// Computes the Table II feature row for a consecutive message pair.
///
/// The core feature set is
/// `F = {Δx, Δy, vx, vy, Δvx, Δvy, ax, ay, Δθx, Δθy, ωx, ωy}`.
///
/// # Examples
///
/// ```
/// use vehigan_features::decompose_pair;
/// use vehigan_sim::{Bsm, VehicleId};
///
/// let mk = |t: f64, x: f64| Bsm {
///     vehicle_id: VehicleId(0), timestamp: t, pos_x: x, pos_y: 0.0,
///     speed: 10.0, acceleration: 0.0, heading: 0.0, yaw_rate: 0.0,
/// };
/// let row = decompose_pair(&mk(0.0, 0.0), &mk(0.1, 1.0));
/// assert!((row.values[0] - 1.0).abs() < 1e-9);  // Δx
/// assert!((row.values[2] - 10.0).abs() < 1e-9); // vx = v·cos(0)
/// ```
pub fn decompose_pair(prev: &Bsm, curr: &Bsm) -> FeatureRow {
    let (sin_c, cos_c) = curr.heading.sin_cos();
    let (sin_p, cos_p) = prev.heading.sin_cos();
    let vx = curr.speed * cos_c;
    let vy = curr.speed * sin_c;
    let vx_prev = prev.speed * cos_p;
    let vy_prev = prev.speed * sin_p;
    FeatureRow {
        values: [
            curr.pos_x - prev.pos_x,   // Δx
            curr.pos_y - prev.pos_y,   // Δy
            vx,                        // vx = v·cosθ
            vy,                        // vy = v·sinθ
            vx - vx_prev,              // Δvx
            vy - vy_prev,              // Δvy
            curr.acceleration * cos_c, // ax = a·cosθ
            curr.acceleration * sin_c, // ay = a·sinθ
            cos_c - cos_p,             // Δθx (θx = cosθ)
            sin_c - sin_p,             // Δθy (θy = sinθ)
            curr.yaw_rate * cos_c,     // ωx = ω·cosθ
            curr.yaw_rate * sin_c,     // ωy = ω·sinθ
        ],
        timestamp: curr.timestamp,
    }
}

/// Engineered feature rows for a whole trace (length = `trace.len() − 1`;
/// empty for traces shorter than two messages).
pub fn decompose_trace(trace: &VehicleTrace) -> Vec<FeatureRow> {
    trace
        .bsms
        .windows(2)
        .map(|w| decompose_pair(&w[0], &w[1]))
        .collect()
}

/// The raw feature row used by the raw baseline: `[x, y, v, a, θ, ω]`.
///
/// Positions are made translation-invariant by subtracting the trace's
/// first message (otherwise absolute coordinates dominate every distance).
pub fn raw_row(bsm: &Bsm, origin: &Bsm) -> [f64; NUM_RAW_FEATURES] {
    [
        bsm.pos_x - origin.pos_x,
        bsm.pos_y - origin.pos_y,
        bsm.speed,
        bsm.acceleration,
        bsm.heading,
        bsm.yaw_rate,
    ]
}

/// Raw feature rows for a whole trace (same length as the engineered rows,
/// skipping the first message so both representations align 1:1).
pub fn raw_trace(trace: &VehicleTrace) -> Vec<[f64; NUM_RAW_FEATURES]> {
    match trace.bsms.first() {
        Some(origin) => trace.bsms[1..].iter().map(|b| raw_row(b, origin)).collect(),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vehigan_sim::{SensorModel, SimConfig, TrafficSimulator, VehicleId, BSM_INTERVAL_S};

    fn noiseless_trace() -> VehicleTrace {
        TrafficSimulator::new(SimConfig {
            n_vehicles: 1,
            duration_s: 60.0,
            seed: 11,
            sensor: SensorModel::noiseless(),
            ..SimConfig::default()
        })
        .run()
        .remove(0)
    }

    #[test]
    fn feature_count_is_twelve() {
        assert_eq!(NUM_FEATURES, 12);
        assert_eq!(FEATURE_NAMES.len(), 12);
    }

    #[test]
    fn rows_align_with_messages() {
        let trace = noiseless_trace();
        let rows = decompose_trace(&trace);
        assert_eq!(rows.len(), trace.len() - 1);
        assert_eq!(raw_trace(&trace).len(), rows.len());
    }

    #[test]
    fn table2_relation_position_velocity() {
        // Δx ≈ vx·Δt on benign noiseless traffic.
        let trace = noiseless_trace();
        for row in decompose_trace(&trace) {
            let dx = row.values[0];
            let vx_dt = row.values[2] * BSM_INTERVAL_S;
            assert!((dx - vx_dt).abs() < 0.15, "Δx={dx} vxΔt={vx_dt}");
        }
    }

    #[test]
    fn table2_relation_velocity_acceleration() {
        // Δvx ≈ ax·Δt (exact along straights; small error through turns
        // where longitudinal acceleration rotates).
        let trace = noiseless_trace();
        for row in decompose_trace(&trace) {
            let dvx = row.values[4];
            let ax_dt = row.values[6] * BSM_INTERVAL_S;
            assert!((dvx - ax_dt).abs() < 0.3, "Δvx={dvx} axΔt={ax_dt}");
        }
    }

    #[test]
    fn table2_relation_heading_yaw() {
        // Δθx ≈ ωx·Δt... with θx = cosθ: dθx/dt = −sinθ·ω. The paper's
        // table couples Δθ components with ω components; the practical
        // invariant is |Δθ| ≈ |ω|·Δt, checked here via both components.
        let trace = noiseless_trace();
        for w in trace.bsms.windows(2) {
            let dtheta = Bsm::normalize_angle(w[1].heading - w[0].heading);
            let w_dt = w[1].yaw_rate * BSM_INTERVAL_S;
            assert!((dtheta - w_dt).abs() < 0.05);
        }
    }

    #[test]
    fn speed_decomposition_magnitude() {
        let trace = noiseless_trace();
        for (row, bsm) in decompose_trace(&trace).iter().zip(trace.bsms[1..].iter()) {
            let mag = (row.values[2].powi(2) + row.values[3].powi(2)).sqrt();
            assert!((mag - bsm.speed).abs() < 1e-9);
        }
    }

    #[test]
    fn raw_rows_are_translation_invariant() {
        let trace = noiseless_trace();
        let rows = raw_trace(&trace);
        assert!(
            rows[0][0].abs() < 5.0,
            "first raw Δ position should be near origin"
        );
    }

    #[test]
    fn empty_trace_yields_no_rows() {
        let trace = VehicleTrace::new(VehicleId(0));
        assert!(decompose_trace(&trace).is_empty());
        assert!(raw_trace(&trace).is_empty());
    }
}
