//! # vehigan-features
//!
//! Physics-guided feature engineering for V2X misbehavior detection —
//! the paper's Table II pipeline.
//!
//! Raw BSM fields (position, speed, acceleration, heading, yaw rate) are
//! vector-decomposed into X/Y components and per-step deltas, producing the
//! 12-feature core set
//! `F = {Δx, Δy, vx, vy, Δvx, Δvy, ax, ay, Δθx, Δθy, ωx, ωy}`
//! whose internal physical couplings (`Δx ≈ vxΔt`, `Δvx ≈ axΔt`,
//! `Δθ ≈ ωΔt`) benign traffic satisfies and misbehaviors break.
//!
//! The crate then assembles `w × f` snapshots (paper: `10 × 12`) from the
//! rows, batched for training ([`build_windows`]) or streamed per vehicle
//! at test time ([`StreamTracker`]), scaled to `[-1, 1]` by a
//! [`MinMaxScaler`] fitted on benign data.
//!
//! # Example
//!
//! ```
//! use vehigan_sim::{SimConfig, TrafficSimulator};
//! use vehigan_vasp::{DatasetBuilder, DatasetConfig};
//! use vehigan_features::{build_windows, fit_scaler, Representation, WindowConfig};
//!
//! let fleet = TrafficSimulator::new(SimConfig::quick_test()).run();
//! let builder = DatasetBuilder::new(&fleet, DatasetConfig::default());
//! let benign = builder.benign_dataset();
//! let scaler = fit_scaler(&benign, Representation::Engineered);
//! let windows = build_windows(&benign, WindowConfig::default(), &scaler);
//! assert_eq!(&windows.x.shape()[1..], &[10, 12, 1]);
//! ```

#![warn(missing_docs)]

mod decompose;
mod ingest;
mod monitor;
mod scaler;
mod stream;
mod window;

pub use decompose::{
    decompose_pair, decompose_trace, raw_row, raw_trace, FeatureRow, FEATURE_NAMES, NUM_FEATURES,
    NUM_RAW_FEATURES,
};
pub use ingest::{FieldLimits, IngestGuard, RejectCounters, RejectReason};
pub use monitor::{
    residuals, GateDecision, Tier0Calibration, Tier0Monitor, Tier0Params, EWMA_LAMBDA,
    NUM_RESIDUALS, NUM_STATISTICS, RESIDUAL_NAMES,
};
pub use scaler::MinMaxScaler;
pub use stream::{lru_key, EvictionConfig, StreamTracker, WindowBuffer};
pub use window::{
    assemble_fragments, build_fragment, build_windows, build_windows_from_rows, engineer_rows,
    engineer_trace, fit_scaler, fit_scaler_from_rows, Representation, TraceRows, WindowConfig,
    WindowDataset, WindowFragment,
};
