//! Streaming window maintenance for the testing phase.
//!
//! On the OBU/RSU, VehiGAN keeps only the most recent `w` messages per
//! vehicle and refreshes that vehicle's snapshot on every arriving BSM
//! (§III-C). [`WindowBuffer`] implements exactly that per-vehicle buffer;
//! [`StreamTracker`] multiplexes buffers across all observed pseudonyms.
//!
//! Both are built for the city-scale hot path:
//!
//! - [`WindowBuffer::push`] is **allocation-free** once warmed up: the
//!   scaled feature row is written straight into a fixed `w × f` ring and
//!   the snapshot tensor is refreshed in place (two `memcpy` segments)
//!   instead of being rebuilt from a `VecDeque` on every message;
//! - [`StreamTracker`] evicts stale pseudonyms under an
//!   [`EvictionConfig`] (TTL and/or LRU capacity), so pseudonym churn in
//!   a long-lived deployment cannot grow state without bound. The same
//!   policy drives the sharded state of `vehigan-serve`.

use crate::decompose::decompose_pair;
use crate::scaler::MinMaxScaler;
use std::collections::HashMap;
use vehigan_sim::{Bsm, VehicleId};
use vehigan_tensor::Tensor;

/// Bounds on per-vehicle window state retained by a [`StreamTracker`] or
/// a serve shard. The default keeps everything (the historical behavior).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvictionConfig {
    /// Evict the least-recently-updated vehicles once more than this many
    /// are tracked (`None` = unbounded).
    pub max_vehicles: Option<usize>,
    /// Evict vehicles not heard from for longer than this many seconds of
    /// stream time when [`StreamTracker::evict_stale`] runs (`None` =
    /// never expire).
    pub ttl_s: Option<f64>,
}

impl EvictionConfig {
    /// No eviction: every observed pseudonym is kept forever.
    pub fn unbounded() -> Self {
        EvictionConfig::default()
    }

    /// Whether `last_seen` has expired at stream time `now`.
    pub fn is_stale(&self, last_seen: f64, now: f64) -> bool {
        self.ttl_s.is_some_and(|ttl| now - last_seen > ttl)
    }
}

/// Rolling feature-window buffer for one vehicle.
///
/// Internally a fixed ring of scaled `f32` feature rows plus a snapshot
/// tensor that is refreshed in place, so pushing a BSM performs no heap
/// allocation after construction.
#[derive(Debug, Clone)]
pub struct WindowBuffer {
    window: usize,
    scaler: MinMaxScaler,
    prev: Option<Bsm>,
    /// Ring of `window` scaled rows, `features` wide each.
    ring: Vec<f32>,
    /// Ring slot the next row will be written to.
    head: usize,
    /// Rows filled so far (saturates at `window`).
    filled: usize,
    /// `[1, w, f, 1]` snapshot, refreshed in place once full.
    snapshot: Tensor,
    /// Timestamp of the most recently ingested BSM.
    last_seen: f64,
}

impl WindowBuffer {
    /// Creates a buffer producing `window × scaler.width()` snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2`.
    pub fn new(window: usize, scaler: MinMaxScaler) -> Self {
        assert!(window >= 2, "window must be at least 2");
        let f = scaler.width();
        WindowBuffer {
            window,
            prev: None,
            ring: vec![0.0; window * f],
            head: 0,
            filled: 0,
            snapshot: Tensor::zeros(&[1, window, f, 1]),
            last_seen: f64::NEG_INFINITY,
            scaler,
        }
    }

    /// Ingests one BSM; returns the refreshed snapshot `[1, w, f, 1]` once
    /// enough messages have arrived. The returned reference points at the
    /// buffer's internal tensor — copy its slice (or clone it) before the
    /// next push if it must outlive the buffer state.
    pub fn push(&mut self, bsm: &Bsm) -> Option<&Tensor> {
        let f = self.scaler.width();
        if let Some(prev) = self.prev {
            let row = decompose_pair(&prev, bsm);
            let dst = &mut self.ring[self.head * f..(self.head + 1) * f];
            for (j, (d, &v)) in dst.iter_mut().zip(row.values.iter()).enumerate() {
                *d = self.scaler.transform_value_f32(j, v);
            }
            self.head = (self.head + 1) % self.window;
            self.filled = (self.filled + 1).min(self.window);
        }
        self.prev = Some(*bsm);
        self.last_seen = bsm.timestamp;
        if self.filled < self.window {
            return None;
        }
        // Refresh the snapshot in place: rows in arrival order. When the
        // ring is full, `head` points at the oldest row.
        let split = (self.window - self.head) * f;
        let data = self.snapshot.as_mut_slice();
        data[..split].copy_from_slice(&self.ring[self.head * f..]);
        data[split..].copy_from_slice(&self.ring[..self.head * f]);
        Some(&self.snapshot)
    }

    /// The current snapshot's flat data, if the buffer is full (valid
    /// after a `push` that returned `Some`; rows are in arrival order).
    pub fn snapshot_slice(&self) -> Option<&[f32]> {
        (self.filled >= self.window).then(|| self.snapshot.as_slice())
    }

    /// An owned copy of the current snapshot, if the buffer is full.
    ///
    /// Only meaningful immediately after a [`WindowBuffer::push`] that
    /// returned `Some` (the in-place tensor is refreshed by `push`, not by
    /// this accessor).
    pub fn snapshot(&self) -> Option<Tensor> {
        (self.filled >= self.window).then(|| self.snapshot.clone())
    }

    /// Number of buffered feature rows.
    pub fn len(&self) -> usize {
        self.filled
    }

    /// Whether no rows are buffered yet.
    pub fn is_empty(&self) -> bool {
        self.filled == 0
    }

    /// Timestamp of the most recently ingested BSM
    /// (`f64::NEG_INFINITY` before the first push).
    pub fn last_seen(&self) -> f64 {
        self.last_seen
    }
}

/// LRU ordering key for a `last_seen` timestamp: a NaN (a non-finite
/// timestamp that slipped past upstream validation) is treated as
/// "freshness unknown" and ordered *before* every real timestamp, so the
/// poisoned vehicle is the first eviction victim instead of panicking
/// the sweep (`partial_cmp().unwrap()`) or becoming immortal (raw
/// `total_cmp`, which sorts NaN after +∞). Used by both the tracker and
/// the serve shards so the two eviction paths agree.
pub fn lru_key(last_seen: f64) -> f64 {
    if last_seen.is_nan() {
        f64::NEG_INFINITY
    } else {
        last_seen
    }
}

/// Per-vehicle window buffers keyed by pseudonym, with optional TTL/LRU
/// eviction so city-scale pseudonym churn cannot grow state unboundedly.
#[derive(Debug)]
pub struct StreamTracker {
    window: usize,
    scaler: MinMaxScaler,
    buffers: HashMap<VehicleId, WindowBuffer>,
    eviction: EvictionConfig,
    evicted: u64,
}

impl StreamTracker {
    /// Creates an unbounded tracker with the given window length and
    /// scaler (no eviction — the historical behavior).
    pub fn new(window: usize, scaler: MinMaxScaler) -> Self {
        Self::with_eviction(window, scaler, EvictionConfig::unbounded())
    }

    /// Creates a tracker that evicts per `eviction`.
    pub fn with_eviction(window: usize, scaler: MinMaxScaler, eviction: EvictionConfig) -> Self {
        StreamTracker {
            window,
            scaler,
            buffers: HashMap::new(),
            eviction,
            evicted: 0,
        }
    }

    /// Ingests a BSM, returning the sender's refreshed snapshot if ready.
    ///
    /// When a `max_vehicles` bound is configured and a *new* pseudonym
    /// would exceed it, the least-recently-updated vehicles are evicted
    /// first (ties broken by pseudonym for determinism).
    pub fn push(&mut self, bsm: &Bsm) -> Option<&Tensor> {
        if let Some(cap) = self.eviction.max_vehicles {
            if !self.buffers.contains_key(&bsm.vehicle_id) && self.buffers.len() >= cap.max(1) {
                self.evict_lru(cap.max(1) - 1);
            }
        }
        let buffer = self
            .buffers
            .entry(bsm.vehicle_id)
            .or_insert_with(|| WindowBuffer::new(self.window, self.scaler.clone()));
        buffer.push(bsm)
    }

    /// Evicts least-recently-updated vehicles until at most `keep` remain.
    fn evict_lru(&mut self, keep: usize) {
        while self.buffers.len() > keep {
            let victim = self
                .buffers
                .iter()
                .map(|(&id, b)| (lru_key(b.last_seen()), id))
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                .map(|(_, id)| id);
            match victim {
                Some(id) => {
                    self.buffers.remove(&id);
                    self.evicted += 1;
                }
                None => break,
            }
        }
    }

    /// Drops every vehicle not heard from within the configured TTL at
    /// stream time `now`, returning how many were evicted. A no-op when no
    /// TTL is configured.
    pub fn evict_stale(&mut self, now: f64) -> usize {
        let eviction = self.eviction;
        if eviction.ttl_s.is_none() {
            return 0;
        }
        let before = self.buffers.len();
        self.buffers
            .retain(|_, b| !eviction.is_stale(b.last_seen(), now));
        let dropped = before - self.buffers.len();
        self.evicted += dropped as u64;
        dropped
    }

    /// Number of vehicles currently tracked.
    pub fn num_vehicles(&self) -> usize {
        self.buffers.len()
    }

    /// Total vehicles evicted by TTL or LRU since construction.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The eviction policy in effect.
    pub fn eviction(&self) -> EvictionConfig {
        self.eviction
    }

    /// Drops a vehicle's state (e.g. after a pseudonym change).
    pub fn forget(&mut self, id: VehicleId) {
        self.buffers.remove(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{build_windows, fit_scaler, Representation, WindowConfig};
    use vehigan_sim::{SimConfig, TrafficSimulator};
    use vehigan_vasp::{DatasetBuilder, DatasetConfig};

    fn setup() -> (Vec<vehigan_sim::VehicleTrace>, MinMaxScaler) {
        let fleet = TrafficSimulator::new(SimConfig {
            n_vehicles: 3,
            duration_s: 20.0,
            seed: 2,
            ..SimConfig::default()
        })
        .run();
        let builder = DatasetBuilder::new(&fleet, DatasetConfig::default());
        let scaler = fit_scaler(&builder.benign_dataset(), Representation::Engineered);
        (fleet, scaler)
    }

    #[test]
    fn buffer_warms_up_then_emits() {
        let (fleet, scaler) = setup();
        let mut buf = WindowBuffer::new(10, scaler);
        let mut emitted = 0;
        for (i, bsm) in fleet[0].iter().enumerate() {
            let snap = buf.push(bsm);
            if i < 10 {
                assert!(snap.is_none(), "emitted too early at {i}");
            } else {
                assert!(snap.is_some());
                emitted += 1;
            }
        }
        assert!(emitted > 0);
        assert_eq!(buf.last_seen(), fleet[0].bsms.last().unwrap().timestamp);
    }

    #[test]
    fn streaming_matches_batch_windows() {
        // The last streaming snapshot must equal the last batch window
        // (stride 1) of the same trace.
        let (fleet, scaler) = setup();
        let builder = DatasetBuilder::new(&fleet[..1], DatasetConfig::default());
        let batch = build_windows(&builder.benign_dataset(), WindowConfig::default(), &scaler);
        let mut buf = WindowBuffer::new(10, scaler);
        let mut last = None;
        for bsm in &fleet[0] {
            if let Some(snap) = buf.push(bsm) {
                last = Some(snap.clone());
            }
        }
        let last = last.expect("stream emitted nothing");
        let batch_last = batch.x.take(&[batch.len() - 1]);
        assert_eq!(last.as_slice(), batch_last.as_slice());
    }

    #[test]
    fn ring_rollover_matches_every_batch_window() {
        // Every streamed snapshot (not just the last) must equal the
        // corresponding stride-1 batch window, across many ring
        // rollovers.
        let (fleet, scaler) = setup();
        let builder = DatasetBuilder::new(&fleet[..1], DatasetConfig::default());
        let batch = build_windows(
            &builder.benign_dataset(),
            WindowConfig {
                stride: 1,
                ..WindowConfig::default()
            },
            &scaler,
        );
        let mut buf = WindowBuffer::new(10, scaler);
        let mut streamed = Vec::new();
        for bsm in &fleet[0] {
            if let Some(snap) = buf.push(bsm) {
                streamed.push(snap.as_slice().to_vec());
            }
        }
        assert_eq!(streamed.len(), batch.len());
        let len = batch.window() * batch.features();
        for (i, s) in streamed.iter().enumerate() {
            assert_eq!(
                s.as_slice(),
                &batch.x.as_slice()[i * len..(i + 1) * len],
                "window {i} diverged"
            );
        }
    }

    #[test]
    fn tracker_separates_vehicles() {
        let (fleet, scaler) = setup();
        let mut tracker = StreamTracker::new(10, scaler);
        // Interleave messages from all vehicles by timestamp order.
        let mut all: Vec<&Bsm> = fleet.iter().flat_map(|t| &t.bsms).collect();
        all.sort_by(|a, b| a.timestamp.partial_cmp(&b.timestamp).unwrap());
        for bsm in all {
            tracker.push(bsm);
        }
        assert_eq!(tracker.num_vehicles(), 3);
        assert_eq!(tracker.evicted(), 0);
    }

    #[test]
    fn forget_drops_state() {
        let (fleet, scaler) = setup();
        let mut tracker = StreamTracker::new(10, scaler);
        for bsm in fleet[0].iter().take(20) {
            tracker.push(bsm);
        }
        assert_eq!(tracker.num_vehicles(), 1);
        tracker.forget(fleet[0].id);
        assert_eq!(tracker.num_vehicles(), 0);
    }

    #[test]
    fn lru_capacity_evicts_coldest_pseudonym() {
        let (fleet, scaler) = setup();
        let mut tracker = StreamTracker::with_eviction(
            10,
            scaler,
            EvictionConfig {
                max_vehicles: Some(2),
                ttl_s: None,
            },
        );
        // Vehicles arrive in id order with increasing timestamps, so the
        // vehicle updated least recently is vehicle 0.
        for (i, trace) in fleet.iter().enumerate() {
            for (j, bsm) in trace.bsms.iter().take(5).enumerate() {
                let mut b = *bsm;
                b.timestamp = (i * 5 + j) as f64;
                tracker.push(&b);
            }
        }
        assert_eq!(tracker.num_vehicles(), 2);
        assert_eq!(tracker.evicted(), 1);
        // The evicted vehicle re-enters with a fresh (empty) buffer.
        let mut again = fleet[0].bsms[0];
        again.timestamp = 100.0;
        assert!(tracker.push(&again).is_none());
        assert_eq!(tracker.num_vehicles(), 2);
        assert_eq!(tracker.evicted(), 2);
    }

    #[test]
    fn ttl_evicts_only_stale_vehicles() {
        let (fleet, scaler) = setup();
        let mut tracker = StreamTracker::with_eviction(
            10,
            scaler,
            EvictionConfig {
                max_vehicles: None,
                ttl_s: Some(2.0),
            },
        );
        let mut a = fleet[0].bsms[0];
        a.timestamp = 0.0;
        let mut b = fleet[1].bsms[0];
        b.timestamp = 3.0;
        tracker.push(&a);
        tracker.push(&b);
        assert_eq!(tracker.evict_stale(4.0), 1, "vehicle a is 4 s stale");
        assert_eq!(tracker.num_vehicles(), 1);
        assert_eq!(tracker.evicted(), 1);
        // No TTL configured → evict_stale is a no-op.
        let (_, scaler2) = setup();
        let mut unbounded = StreamTracker::new(10, scaler2);
        unbounded.push(&a);
        assert_eq!(unbounded.evict_stale(1e9), 0);
        assert_eq!(unbounded.num_vehicles(), 1);
    }

    #[test]
    fn buffer_accepts_out_of_order_and_duplicate_timestamps_verbatim() {
        // Pin the raw WindowBuffer contract: it performs NO ordering or
        // duplicate checks. An out-of-order or duplicate-timestamp BSM
        // is ingested like any other (rows are computed from consecutive
        // *arrivals*, not timestamps) and `last_seen` tracks the most
        // recent *push*, even backwards. Rejection is the caller's job —
        // the serve shards run an `IngestGuard` in front of this buffer.
        let (fleet, scaler) = setup();
        let mut buf = WindowBuffer::new(10, scaler);
        for bsm in fleet[0].iter().take(12) {
            buf.push(bsm);
        }
        assert_eq!(buf.len(), 10);
        let before = buf.snapshot_slice().unwrap().to_vec();

        // Duplicate timestamp: accepted, refreshes the snapshot.
        let dup = fleet[0].bsms[11];
        assert!(buf.push(&dup).is_some());
        assert_eq!(buf.last_seen(), dup.timestamp);
        let after_dup = buf.snapshot_slice().unwrap().to_vec();
        assert_ne!(before, after_dup, "duplicate push must shift the ring");

        // Out-of-order (older) timestamp: accepted, last_seen moves
        // backwards — exactly the poisoned state the guard prevents.
        let old = fleet[0].bsms[0];
        assert!(buf.push(&old).is_some());
        assert_eq!(buf.last_seen(), old.timestamp);
        assert!(buf.last_seen() < dup.timestamp);
    }

    #[test]
    fn lru_eviction_survives_nan_last_seen() {
        // A NaN timestamp that reached a buffer must not panic the LRU
        // sweep, and the poisoned vehicle (freshness unknown) must be
        // the first eviction victim — not immortal.
        let (fleet, scaler) = setup();
        let mut tracker = StreamTracker::with_eviction(
            10,
            scaler,
            EvictionConfig {
                max_vehicles: Some(2),
                ttl_s: None,
            },
        );
        let mut nan_bsm = fleet[0].bsms[0];
        nan_bsm.timestamp = f64::NAN;
        tracker.push(&nan_bsm);
        let mut fresh = fleet[1].bsms[0];
        fresh.timestamp = 5.0;
        tracker.push(&fresh);
        let mut newcomer = fleet[2].bsms[0];
        newcomer.timestamp = 6.0;
        tracker.push(&newcomer); // must not panic
        assert_eq!(tracker.num_vehicles(), 2);
        assert_eq!(tracker.evicted(), 1);
        assert!(
            !tracker.buffers.contains_key(&fleet[0].id),
            "the NaN-stamped vehicle must be the eviction victim"
        );
    }

    #[test]
    fn push_is_allocation_free_after_warmup() {
        // The ring and snapshot are sized at construction; pushing must
        // not grow them (capacity identity is the observable proxy).
        let (fleet, scaler) = setup();
        let mut buf = WindowBuffer::new(10, scaler);
        for bsm in fleet[0].iter().take(15) {
            buf.push(bsm);
        }
        let ring_ptr = buf.ring.as_ptr();
        let snap_ptr = buf.snapshot.as_slice().as_ptr();
        for bsm in fleet[0].iter().skip(15).take(40) {
            buf.push(bsm);
        }
        assert_eq!(buf.ring.as_ptr(), ring_ptr, "ring reallocated");
        assert_eq!(
            buf.snapshot.as_slice().as_ptr(),
            snap_ptr,
            "snapshot reallocated"
        );
    }
}
