//! Streaming window maintenance for the testing phase.
//!
//! On the OBU/RSU, VehiGAN keeps only the most recent `w` messages per
//! vehicle and refreshes that vehicle's snapshot on every arriving BSM
//! (§III-C). [`WindowBuffer`] implements exactly that per-vehicle buffer;
//! [`StreamTracker`] multiplexes buffers across all observed pseudonyms.

use crate::decompose::decompose_pair;
use crate::scaler::MinMaxScaler;
use std::collections::{HashMap, VecDeque};
use vehigan_sim::{Bsm, VehicleId};
use vehigan_tensor::Tensor;

/// Rolling feature-window buffer for one vehicle.
#[derive(Debug, Clone)]
pub struct WindowBuffer {
    window: usize,
    scaler: MinMaxScaler,
    prev: Option<Bsm>,
    rows: VecDeque<Vec<f64>>,
}

impl WindowBuffer {
    /// Creates a buffer producing `window × scaler.width()` snapshots.
    ///
    /// # Panics
    ///
    /// Panics if `window < 2`.
    pub fn new(window: usize, scaler: MinMaxScaler) -> Self {
        assert!(window >= 2, "window must be at least 2");
        WindowBuffer {
            window,
            scaler,
            prev: None,
            rows: VecDeque::new(),
        }
    }

    /// Ingests one BSM; returns the refreshed snapshot `[1, w, f, 1]` once
    /// enough messages have arrived.
    pub fn push(&mut self, bsm: &Bsm) -> Option<Tensor> {
        if let Some(prev) = self.prev {
            let row = decompose_pair(&prev, bsm);
            self.rows.push_back(self.scaler.transform_row(&row.values));
            if self.rows.len() > self.window {
                self.rows.pop_front();
            }
        }
        self.prev = Some(*bsm);
        self.snapshot()
    }

    /// The current snapshot, if the buffer is full.
    pub fn snapshot(&self) -> Option<Tensor> {
        if self.rows.len() < self.window {
            return None;
        }
        let f = self.scaler.width();
        let mut data = Vec::with_capacity(self.window * f);
        for row in &self.rows {
            data.extend(row.iter().map(|&v| v as f32));
        }
        Some(Tensor::from_vec(data, &[1, self.window, f, 1]))
    }

    /// Number of buffered feature rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows are buffered yet.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// Per-vehicle window buffers keyed by pseudonym.
#[derive(Debug)]
pub struct StreamTracker {
    window: usize,
    scaler: MinMaxScaler,
    buffers: HashMap<VehicleId, WindowBuffer>,
}

impl StreamTracker {
    /// Creates a tracker with the given window length and scaler.
    pub fn new(window: usize, scaler: MinMaxScaler) -> Self {
        StreamTracker {
            window,
            scaler,
            buffers: HashMap::new(),
        }
    }

    /// Ingests a BSM, returning the sender's refreshed snapshot if ready.
    pub fn push(&mut self, bsm: &Bsm) -> Option<Tensor> {
        let buffer = self
            .buffers
            .entry(bsm.vehicle_id)
            .or_insert_with(|| WindowBuffer::new(self.window, self.scaler.clone()));
        buffer.push(bsm)
    }

    /// Number of vehicles currently tracked.
    pub fn num_vehicles(&self) -> usize {
        self.buffers.len()
    }

    /// Drops a vehicle's state (e.g. after a pseudonym change).
    pub fn forget(&mut self, id: VehicleId) {
        self.buffers.remove(&id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{build_windows, fit_scaler, Representation, WindowConfig};
    use vehigan_sim::{SimConfig, TrafficSimulator};
    use vehigan_vasp::{DatasetBuilder, DatasetConfig};

    fn setup() -> (Vec<vehigan_sim::VehicleTrace>, MinMaxScaler) {
        let fleet = TrafficSimulator::new(SimConfig {
            n_vehicles: 3,
            duration_s: 20.0,
            seed: 2,
            ..SimConfig::default()
        })
        .run();
        let builder = DatasetBuilder::new(&fleet, DatasetConfig::default());
        let scaler = fit_scaler(&builder.benign_dataset(), Representation::Engineered);
        (fleet, scaler)
    }

    #[test]
    fn buffer_warms_up_then_emits() {
        let (fleet, scaler) = setup();
        let mut buf = WindowBuffer::new(10, scaler);
        let mut emitted = 0;
        for (i, bsm) in fleet[0].iter().enumerate() {
            let snap = buf.push(bsm);
            if i < 10 {
                assert!(snap.is_none(), "emitted too early at {i}");
            } else {
                assert!(snap.is_some());
                emitted += 1;
            }
        }
        assert!(emitted > 0);
    }

    #[test]
    fn streaming_matches_batch_windows() {
        // The last streaming snapshot must equal the last batch window
        // (stride 1) of the same trace.
        let (fleet, scaler) = setup();
        let builder = DatasetBuilder::new(&fleet[..1], DatasetConfig::default());
        let batch = build_windows(&builder.benign_dataset(), WindowConfig::default(), &scaler);
        let mut buf = WindowBuffer::new(10, scaler);
        let mut last = None;
        for bsm in &fleet[0] {
            if let Some(snap) = buf.push(bsm) {
                last = Some(snap);
            }
        }
        let last = last.expect("stream emitted nothing");
        let batch_last = batch.x.take(&[batch.len() - 1]);
        assert_eq!(last.as_slice(), batch_last.as_slice());
    }

    #[test]
    fn tracker_separates_vehicles() {
        let (fleet, scaler) = setup();
        let mut tracker = StreamTracker::new(10, scaler);
        // Interleave messages from all vehicles by timestamp order.
        let mut all: Vec<&Bsm> = fleet.iter().flat_map(|t| &t.bsms).collect();
        all.sort_by(|a, b| a.timestamp.partial_cmp(&b.timestamp).unwrap());
        for bsm in all {
            tracker.push(bsm);
        }
        assert_eq!(tracker.num_vehicles(), 3);
    }

    #[test]
    fn forget_drops_state() {
        let (fleet, scaler) = setup();
        let mut tracker = StreamTracker::new(10, scaler);
        for bsm in fleet[0].iter().take(20) {
            tracker.push(bsm);
        }
        assert_eq!(tracker.num_vehicles(), 1);
        tracker.forget(fleet[0].id);
        assert_eq!(tracker.num_vehicles(), 0);
    }
}
