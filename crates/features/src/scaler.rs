//! Min–max feature scaling.
//!
//! WGAN generators emit `tanh`-bounded values, so snapshots are scaled to
//! `[-1, 1]` using statistics fitted **on benign training data only** (the
//! defender never sees attack data at fit time).

/// A per-column min–max scaler mapping fitted ranges to `[-1, 1]`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MinMaxScaler {
    min: Vec<f64>,
    max: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits the scaler on rows of equal width.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler on zero rows");
        let width = rows[0].len();
        let mut min = vec![f64::INFINITY; width];
        let mut max = vec![f64::NEG_INFINITY; width];
        for row in rows {
            assert_eq!(row.len(), width, "ragged rows");
            for (j, &v) in row.iter().enumerate() {
                min[j] = min[j].min(v);
                max[j] = max[j].max(v);
            }
        }
        // Guard constant columns.
        for j in 0..width {
            if (max[j] - min[j]).abs() < 1e-12 {
                max[j] = min[j] + 1.0;
            }
        }
        MinMaxScaler { min, max }
    }

    /// Number of feature columns.
    pub fn width(&self) -> usize {
        self.min.len()
    }

    /// Scales one value of column `j` into `[-1, 1]` (clamped: test-time
    /// values outside the fitted range — e.g. attack extremes — saturate,
    /// like any bounded sensor encoding would).
    pub fn transform_value(&self, j: usize, v: f64) -> f64 {
        let t = 2.0 * (v - self.min[j]) / (self.max[j] - self.min[j]) - 1.0;
        t.clamp(-1.0, 1.0)
    }

    /// Inverse of [`MinMaxScaler::transform_value`] (for un-clamped inputs).
    pub fn inverse_value(&self, j: usize, t: f64) -> f64 {
        (t + 1.0) / 2.0 * (self.max[j] - self.min[j]) + self.min[j]
    }

    /// Scales a full row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the fitted width.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.width(), "row width mismatch");
        row.iter()
            .enumerate()
            .map(|(j, &v)| self.transform_value(j, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_fitted_range_to_unit_interval() {
        let rows = vec![vec![0.0, -10.0], vec![10.0, 10.0], vec![5.0, 0.0]];
        let s = MinMaxScaler::fit(&rows);
        assert_eq!(s.transform_value(0, 0.0), -1.0);
        assert_eq!(s.transform_value(0, 10.0), 1.0);
        assert_eq!(s.transform_value(0, 5.0), 0.0);
        assert_eq!(s.transform_value(1, 0.0), 0.0);
    }

    #[test]
    fn out_of_range_saturates() {
        let s = MinMaxScaler::fit(&[vec![0.0], vec![1.0]]);
        assert_eq!(s.transform_value(0, 100.0), 1.0);
        assert_eq!(s.transform_value(0, -100.0), -1.0);
    }

    #[test]
    fn constant_column_does_not_blow_up() {
        let s = MinMaxScaler::fit(&[vec![3.0], vec![3.0]]);
        let t = s.transform_value(0, 3.0);
        assert!(t.is_finite());
        assert_eq!(t, -1.0);
    }

    #[test]
    fn inverse_roundtrips_in_range() {
        let s = MinMaxScaler::fit(&[vec![-5.0, 2.0], vec![5.0, 8.0]]);
        for v in [-5.0, -1.0, 0.0, 3.3, 5.0] {
            let t = s.transform_value(0, v);
            assert!((s.inverse_value(0, t) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn transform_row_matches_per_value() {
        let s = MinMaxScaler::fit(&[vec![0.0, 0.0], vec![2.0, 4.0]]);
        assert_eq!(s.transform_row(&[1.0, 1.0]), vec![0.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_fit_panics() {
        let _ = MinMaxScaler::fit(&[]);
    }
}
