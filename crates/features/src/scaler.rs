//! Min–max feature scaling.
//!
//! WGAN generators emit `tanh`-bounded values, so snapshots are scaled to
//! `[-1, 1]` using statistics fitted **on benign training data only** (the
//! defender never sees attack data at fit time).

/// A per-column min–max scaler mapping fitted ranges to `[-1, 1]`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MinMaxScaler {
    min: Vec<f64>,
    max: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits the scaler on rows of equal width.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a scaler on zero rows");
        let width = rows[0].len();
        let mut min = vec![f64::INFINITY; width];
        let mut max = vec![f64::NEG_INFINITY; width];
        for row in rows {
            assert_eq!(row.len(), width, "ragged rows");
            for (j, &v) in row.iter().enumerate() {
                min[j] = min[j].min(v);
                max[j] = max[j].max(v);
            }
        }
        // Guard constant columns.
        for j in 0..width {
            if (max[j] - min[j]).abs() < 1e-12 {
                max[j] = min[j] + 1.0;
            }
        }
        MinMaxScaler { min, max }
    }

    /// Fits the scaler on flat row-major data (`values.len()` must be a
    /// nonzero multiple of `width`). Produces the same statistics as
    /// [`MinMaxScaler::fit`] over the equivalent nested rows, without
    /// requiring the caller to materialise per-row `Vec`s.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or its length is not a multiple of
    /// `width`.
    pub fn fit_flat(width: usize, values: impl IntoIterator<Item = f64>) -> Self {
        assert!(width > 0, "scaler width must be nonzero");
        let mut min = vec![f64::INFINITY; width];
        let mut max = vec![f64::NEG_INFINITY; width];
        let mut count = 0usize;
        let mut j = 0usize;
        for v in values {
            min[j] = min[j].min(v);
            max[j] = max[j].max(v);
            j += 1;
            if j == width {
                j = 0;
            }
            count += 1;
        }
        assert!(count > 0, "cannot fit a scaler on zero rows");
        assert_eq!(
            count % width,
            0,
            "flat data length {count} is not a multiple of width {width}"
        );
        // Guard constant columns.
        for j in 0..width {
            if (max[j] - min[j]).abs() < 1e-12 {
                max[j] = min[j] + 1.0;
            }
        }
        MinMaxScaler { min, max }
    }

    /// Number of feature columns.
    pub fn width(&self) -> usize {
        self.min.len()
    }

    /// Scales one value of column `j` into `[-1, 1]` (clamped: test-time
    /// values outside the fitted range — e.g. attack extremes — saturate,
    /// like any bounded sensor encoding would).
    pub fn transform_value(&self, j: usize, v: f64) -> f64 {
        let t = 2.0 * (v - self.min[j]) / (self.max[j] - self.min[j]) - 1.0;
        t.clamp(-1.0, 1.0)
    }

    /// [`MinMaxScaler::transform_value`] narrowed to `f32` — the cast every
    /// window tensor applies. Kept here so all window-build paths share one
    /// rounding policy (scale in `f64`, then round once to `f32`).
    pub fn transform_value_f32(&self, j: usize, v: f64) -> f32 {
        self.transform_value(j, v) as f32
    }

    /// Inverse of [`MinMaxScaler::transform_value`] (for un-clamped inputs).
    pub fn inverse_value(&self, j: usize, t: f64) -> f64 {
        (t + 1.0) / 2.0 * (self.max[j] - self.min[j]) + self.min[j]
    }

    /// Scales a full row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the fitted width.
    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.width(), "row width mismatch");
        row.iter()
            .enumerate()
            .map(|(j, &v)| self.transform_value(j, v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_fitted_range_to_unit_interval() {
        let rows = vec![vec![0.0, -10.0], vec![10.0, 10.0], vec![5.0, 0.0]];
        let s = MinMaxScaler::fit(&rows);
        assert_eq!(s.transform_value(0, 0.0), -1.0);
        assert_eq!(s.transform_value(0, 10.0), 1.0);
        assert_eq!(s.transform_value(0, 5.0), 0.0);
        assert_eq!(s.transform_value(1, 0.0), 0.0);
    }

    #[test]
    fn out_of_range_saturates() {
        let s = MinMaxScaler::fit(&[vec![0.0], vec![1.0]]);
        assert_eq!(s.transform_value(0, 100.0), 1.0);
        assert_eq!(s.transform_value(0, -100.0), -1.0);
    }

    #[test]
    fn constant_column_does_not_blow_up() {
        let s = MinMaxScaler::fit(&[vec![3.0], vec![3.0]]);
        let t = s.transform_value(0, 3.0);
        assert!(t.is_finite());
        assert_eq!(t, -1.0);
    }

    #[test]
    fn inverse_roundtrips_in_range() {
        let s = MinMaxScaler::fit(&[vec![-5.0, 2.0], vec![5.0, 8.0]]);
        for v in [-5.0, -1.0, 0.0, 3.3, 5.0] {
            let t = s.transform_value(0, v);
            assert!((s.inverse_value(0, t) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn transform_row_matches_per_value() {
        let s = MinMaxScaler::fit(&[vec![0.0, 0.0], vec![2.0, 4.0]]);
        assert_eq!(s.transform_row(&[1.0, 1.0]), vec![0.0, -0.5]);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_fit_panics() {
        let _ = MinMaxScaler::fit(&[]);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_fit_flat_panics() {
        let _ = MinMaxScaler::fit_flat(3, std::iter::empty());
    }

    #[test]
    fn fit_flat_matches_fit() {
        let rows = vec![
            vec![0.0, -10.0, 7.0],
            vec![10.0, 10.0, 7.0],
            vec![5.0, 0.0, -2.0],
        ];
        let nested = MinMaxScaler::fit(&rows);
        let flat = MinMaxScaler::fit_flat(3, rows.iter().flatten().copied());
        assert_eq!(nested, flat);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn finite_rows() -> impl Strategy<Value = Vec<Vec<f64>>> {
            // 1–8 columns, 1–20 rows, bounded finite values.
            (1usize..=8).prop_flat_map(|width| {
                proptest::collection::vec(
                    proptest::collection::vec(-1e6f64..1e6, width..=width),
                    1..20,
                )
            })
        }

        proptest! {
            /// Any value — inside or outside the fitted range — transforms
            /// into [-1, 1], and the f32 narrowing agrees with the f64 path.
            #[test]
            fn transform_stays_in_bounds(rows in finite_rows(), probe in -1e9f64..1e9) {
                let s = MinMaxScaler::fit(&rows);
                for j in 0..s.width() {
                    let t = s.transform_value(j, probe);
                    prop_assert!((-1.0..=1.0).contains(&t));
                    prop_assert_eq!(s.transform_value_f32(j, probe), t as f32);
                }
            }

            /// In-range values round-trip through transform → inverse.
            #[test]
            fn in_range_values_round_trip(rows in finite_rows(), frac in 0.0f64..=1.0) {
                let s = MinMaxScaler::fit(&rows);
                for j in 0..s.width() {
                    // Pick a value inside the fitted range of column j.
                    let lo = rows.iter().map(|r| r[j]).fold(f64::INFINITY, f64::min);
                    let hi = rows.iter().map(|r| r[j]).fold(f64::NEG_INFINITY, f64::max);
                    let v = lo + frac * (hi - lo);
                    let back = s.inverse_value(j, s.transform_value(j, v));
                    let scale = 1.0f64.max(v.abs());
                    prop_assert!((back - v).abs() <= 1e-9 * scale, "v={v} back={back}");
                }
            }
        }
    }
}
