//! Ingest-time BSM validation: the hardening layer between the radio and
//! [`WindowBuffer::push`](crate::WindowBuffer::push).
//!
//! Field BSM data is hostile by default — VeReMi exists precisely because
//! deployed senders emit malformed, replayed, and out-of-order messages.
//! A single non-finite field survives the Table II feature arithmetic
//! (subtraction, sin/cos, scaling, clamping all propagate NaN) and
//! poisons every window the message participates in, which in turn
//! poisons ensemble scores and any percentile calibrated from them. An
//! [`IngestGuard`] rejects such messages *before* they touch per-vehicle
//! window state, with a typed [`RejectReason`] per rejection so the
//! serving layer can count and alert instead of silently corrupting.
//!
//! Three checks, in order (first failure wins):
//!
//! 1. **Finiteness** — every payload field must be a finite number
//!    ([`RejectReason::NonFinite`]).
//! 2. **Physical range** — optional per-field plausibility bounds
//!    ([`FieldLimits`]; [`RejectReason::OutOfRange`]). Off by default so
//!    the guard never changes behavior on trusted simulator traffic;
//!    [`FieldLimits::rsu`] enables deployment-grade bounds.
//! 3. **Staleness** — a message older than the vehicle's newest accepted
//!    message beyond a reorder tolerance ([`RejectReason::Stale`]). With
//!    the default tolerance of zero, per-vehicle timestamps must be
//!    strictly increasing — duplicates and replays are rejected.

use vehigan_sim::Bsm;

/// Why an ingest guard rejected a BSM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// A payload field was NaN or ±∞.
    NonFinite,
    /// A field violated the configured [`FieldLimits`]; carries the
    /// offending field's name.
    OutOfRange(&'static str),
    /// The timestamp was older than the vehicle's newest accepted
    /// message by more than the reorder tolerance (replay, duplicate, or
    /// reordering beyond what the deployment tolerates).
    Stale,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::NonFinite => write!(f, "non-finite field"),
            RejectReason::OutOfRange(field) => write!(f, "{field} out of range"),
            RejectReason::Stale => write!(f, "stale timestamp"),
        }
    }
}

/// Running rejection counters, one per [`RejectReason`] class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RejectCounters {
    /// Messages rejected for a non-finite field.
    pub non_finite: u64,
    /// Messages rejected for violating [`FieldLimits`].
    pub out_of_range: u64,
    /// Messages rejected as stale/duplicate/reordered.
    pub stale: u64,
}

impl RejectCounters {
    /// Records one rejection.
    pub fn count(&mut self, reason: RejectReason) {
        match reason {
            RejectReason::NonFinite => self.non_finite += 1,
            RejectReason::OutOfRange(_) => self.out_of_range += 1,
            RejectReason::Stale => self.stale += 1,
        }
    }

    /// Total rejections across all reasons.
    pub fn total(&self) -> u64 {
        self.non_finite + self.out_of_range + self.stale
    }

    /// Element-wise difference from an earlier snapshot of the same
    /// counters (for per-batch deltas).
    pub fn since(&self, earlier: &RejectCounters) -> RejectCounters {
        RejectCounters {
            non_finite: self.non_finite - earlier.non_finite,
            out_of_range: self.out_of_range - earlier.out_of_range,
            stale: self.stale - earlier.stale,
        }
    }
}

impl std::ops::AddAssign for RejectCounters {
    fn add_assign(&mut self, rhs: RejectCounters) {
        self.non_finite += rhs.non_finite;
        self.out_of_range += rhs.out_of_range;
        self.stale += rhs.stale;
    }
}

/// Optional per-field physical plausibility bounds. `None` disables the
/// check for that field.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FieldLimits {
    /// Maximum |pos_x| and |pos_y| in meters.
    pub max_abs_position: Option<f64>,
    /// Speed must lie in `[0, max_speed]` m/s.
    pub max_speed: Option<f64>,
    /// Maximum |acceleration| in m/s².
    pub max_abs_acceleration: Option<f64>,
    /// Maximum |yaw_rate| in rad/s.
    pub max_abs_yaw_rate: Option<f64>,
}

impl FieldLimits {
    /// No range checks (the default — finiteness and staleness still
    /// apply through the guard).
    pub fn none() -> Self {
        FieldLimits::default()
    }

    /// Deployment-grade bounds for an RSU: positions within a
    /// metropolitan bounding box (±100 km of the local origin), speed in
    /// `[0, 100]` m/s (360 km/h), |a| ≤ 20 m/s², |ω| ≤ 2 rad/s. Wide
    /// enough that no physically drivable trajectory is rejected, tight
    /// enough that absurd falsifications never reach the feature path.
    pub fn rsu() -> Self {
        FieldLimits {
            max_abs_position: Some(1e5),
            max_speed: Some(100.0),
            max_abs_acceleration: Some(20.0),
            max_abs_yaw_rate: Some(2.0),
        }
    }

    fn check(&self, bsm: &Bsm) -> Result<(), RejectReason> {
        if let Some(p) = self.max_abs_position {
            if bsm.pos_x.abs() > p {
                return Err(RejectReason::OutOfRange("pos_x"));
            }
            if bsm.pos_y.abs() > p {
                return Err(RejectReason::OutOfRange("pos_y"));
            }
        }
        if let Some(v) = self.max_speed {
            if bsm.speed < 0.0 || bsm.speed > v {
                return Err(RejectReason::OutOfRange("speed"));
            }
        }
        if let Some(a) = self.max_abs_acceleration {
            if bsm.acceleration.abs() > a {
                return Err(RejectReason::OutOfRange("acceleration"));
            }
        }
        if let Some(w) = self.max_abs_yaw_rate {
            if bsm.yaw_rate.abs() > w {
                return Err(RejectReason::OutOfRange("yaw_rate"));
            }
        }
        Ok(())
    }
}

/// Ingest-time validation policy: finiteness, optional [`FieldLimits`],
/// and per-vehicle staleness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IngestGuard {
    /// Physical plausibility bounds ([`FieldLimits::none`] by default).
    pub limits: FieldLimits,
    /// How far (seconds) a message may be older than the vehicle's
    /// newest accepted message before it is rejected as stale. `0.0`
    /// (the default) requires strictly increasing per-vehicle
    /// timestamps, which also rejects exact-duplicate timestamps.
    pub reorder_tolerance_s: f64,
}

impl Default for IngestGuard {
    fn default() -> Self {
        IngestGuard {
            limits: FieldLimits::none(),
            reorder_tolerance_s: 0.0,
        }
    }
}

impl IngestGuard {
    /// The default guard: finiteness + strict per-vehicle monotonicity,
    /// no range limits. Accepts everything simulator traffic produces.
    pub fn permissive() -> Self {
        IngestGuard::default()
    }

    /// Deployment-grade guard: [`FieldLimits::rsu`] bounds plus strict
    /// monotonic timestamps.
    pub fn rsu() -> Self {
        IngestGuard {
            limits: FieldLimits::rsu(),
            ..IngestGuard::default()
        }
    }

    /// Validates one message against the guard. `last_seen` is the
    /// timestamp of the vehicle's newest *accepted* message, or `None`
    /// for a first contact (staleness cannot apply).
    ///
    /// Check order is fixed (finiteness, range, staleness) so a given
    /// malformed message always reports the same [`RejectReason`].
    pub fn validate(&self, bsm: &Bsm, last_seen: Option<f64>) -> Result<(), RejectReason> {
        if !bsm.all_finite() {
            return Err(RejectReason::NonFinite);
        }
        self.limits.check(bsm)?;
        if let Some(seen) = last_seen {
            if bsm.timestamp <= seen - self.reorder_tolerance_s {
                return Err(RejectReason::Stale);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vehigan_sim::VehicleId;

    fn bsm(t: f64) -> Bsm {
        Bsm {
            vehicle_id: VehicleId(7),
            timestamp: t,
            pos_x: 10.0,
            pos_y: -4.0,
            speed: 13.0,
            acceleration: 0.4,
            heading: 0.2,
            yaw_rate: 0.01,
        }
    }

    #[test]
    fn clean_message_passes_every_guard() {
        for guard in [IngestGuard::permissive(), IngestGuard::rsu()] {
            assert_eq!(guard.validate(&bsm(1.0), None), Ok(()));
            assert_eq!(guard.validate(&bsm(1.0), Some(0.9)), Ok(()));
        }
    }

    #[test]
    fn every_non_finite_field_is_rejected() {
        let guard = IngestGuard::permissive();
        for poison in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            for field in 0..7 {
                let mut b = bsm(1.0);
                match field {
                    0 => b.timestamp = poison,
                    1 => b.pos_x = poison,
                    2 => b.pos_y = poison,
                    3 => b.speed = poison,
                    4 => b.acceleration = poison,
                    5 => b.heading = poison,
                    _ => b.yaw_rate = poison,
                }
                assert!(!b.all_finite());
                assert_eq!(
                    guard.validate(&b, None),
                    Err(RejectReason::NonFinite),
                    "field {field} poison {poison} not rejected"
                );
            }
        }
    }

    #[test]
    fn rsu_limits_reject_absurd_fields() {
        let guard = IngestGuard::rsu();
        let mut b = bsm(1.0);
        b.speed = 900.0;
        assert_eq!(
            guard.validate(&b, None),
            Err(RejectReason::OutOfRange("speed"))
        );
        let mut b = bsm(1.0);
        b.speed = -1.0;
        assert_eq!(
            guard.validate(&b, None),
            Err(RejectReason::OutOfRange("speed"))
        );
        let mut b = bsm(1.0);
        b.pos_x = 1e9;
        assert_eq!(
            guard.validate(&b, None),
            Err(RejectReason::OutOfRange("pos_x"))
        );
        let mut b = bsm(1.0);
        b.yaw_rate = -5.0;
        assert_eq!(
            guard.validate(&b, None),
            Err(RejectReason::OutOfRange("yaw_rate"))
        );
        // The permissive guard accepts the same values.
        let mut b = bsm(1.0);
        b.speed = 900.0;
        assert_eq!(IngestGuard::permissive().validate(&b, None), Ok(()));
    }

    #[test]
    fn staleness_is_strict_at_zero_tolerance() {
        let guard = IngestGuard::permissive();
        // Older and exact-duplicate timestamps are stale.
        assert_eq!(
            guard.validate(&bsm(0.9), Some(1.0)),
            Err(RejectReason::Stale)
        );
        assert_eq!(
            guard.validate(&bsm(1.0), Some(1.0)),
            Err(RejectReason::Stale)
        );
        assert_eq!(guard.validate(&bsm(1.1), Some(1.0)), Ok(()));
        // First contact: staleness cannot apply.
        assert_eq!(guard.validate(&bsm(-1e9), None), Ok(()));
    }

    #[test]
    fn reorder_tolerance_admits_bounded_reordering() {
        let guard = IngestGuard {
            reorder_tolerance_s: 0.5,
            ..IngestGuard::permissive()
        };
        assert_eq!(guard.validate(&bsm(0.6), Some(1.0)), Ok(()));
        assert_eq!(guard.validate(&bsm(1.0), Some(1.0)), Ok(()));
        assert_eq!(
            guard.validate(&bsm(0.5), Some(1.0)),
            Err(RejectReason::Stale)
        );
    }

    #[test]
    fn counters_classify_and_diff() {
        let mut c = RejectCounters::default();
        c.count(RejectReason::NonFinite);
        c.count(RejectReason::Stale);
        c.count(RejectReason::Stale);
        c.count(RejectReason::OutOfRange("speed"));
        assert_eq!(c.non_finite, 1);
        assert_eq!(c.out_of_range, 1);
        assert_eq!(c.stale, 2);
        assert_eq!(c.total(), 4);
        let earlier = RejectCounters {
            non_finite: 1,
            out_of_range: 0,
            stale: 1,
        };
        assert_eq!(
            c.since(&earlier),
            RejectCounters {
                non_finite: 0,
                out_of_range: 1,
                stale: 1
            }
        );
    }
}
