//! Serve-time ensemble member health: probation benching for members
//! that return non-finite scores.
//!
//! The scoring layer already drops a member whose scores go non-finite
//! *within one batch* (PR 2's `EnsembleScore::dropped` machinery). That
//! protects a single tick, but a wedged member — NaN weights after a
//! partial update, a poisoned activation — would then be re-run and
//! re-dropped every tick, paying its full inference cost each time for
//! scores that are discarded.
//!
//! [`MemberHealth`] adds the serve-plane memory: a member observed
//! dropping is **benched** for `probation_ticks` server ticks and simply
//! excluded from the subsets handed to the scorer. When its probation
//! expires it is reinstated *in its original pinned position*, so once
//! the fault clears the active subset — and therefore the ensemble
//! reduction — returns bitwise to the healthy configuration. A member
//! that misbehaves again is re-benched; nothing is ever permanently
//! demoted at serve time (permanent demotion is an offline, evaluated
//! decision — see DESIGN.md §11).

/// Probation state for the pinned ensemble members of one server.
#[derive(Debug, Clone, Default)]
pub struct MemberHealth {
    /// `(member index, first tick at which it may score again)`.
    benched: Vec<(usize, u64)>,
    /// Lifetime bench events.
    demotions: u64,
    /// Lifetime reinstatements.
    reinstatements: u64,
}

impl MemberHealth {
    /// Creates an empty health table (all members trusted).
    pub fn new() -> Self {
        Self::default()
    }

    /// Benches `member` until `until_tick` (exclusive). Re-benching an
    /// already-benched member extends its probation. Returns whether
    /// this was a *new* bench event.
    pub fn bench(&mut self, member: usize, until_tick: u64) -> bool {
        if let Some(entry) = self.benched.iter_mut().find(|(m, _)| *m == member) {
            entry.1 = entry.1.max(until_tick);
            false
        } else {
            self.benched.push((member, until_tick));
            self.demotions += 1;
            true
        }
    }

    /// Releases every member whose probation has expired by `now_tick`.
    /// Returns how many were reinstated.
    pub fn release_expired(&mut self, now_tick: u64) -> usize {
        let before = self.benched.len();
        self.benched.retain(|&(_, until)| until > now_tick);
        let released = before - self.benched.len();
        self.reinstatements += released as u64;
        released
    }

    /// Whether `member` is currently benched.
    pub fn is_benched(&self, member: usize) -> bool {
        self.benched.iter().any(|&(m, _)| m == member)
    }

    /// Filters a pinned subset down to its active (non-benched) members,
    /// preserving pinned order so reinstatement restores the exact
    /// healthy configuration.
    ///
    /// If *every* member of the subset is benched, the full subset is
    /// returned instead: scoring with real members that may fail (and be
    /// dropped per-batch) beats guaranteeing an empty-subset error until
    /// probation expires.
    pub fn active(&self, pinned: &[usize]) -> Vec<usize> {
        let active: Vec<usize> = pinned
            .iter()
            .copied()
            .filter(|&m| !self.is_benched(m))
            .collect();
        if active.is_empty() {
            pinned.to_vec()
        } else {
            active
        }
    }

    /// Currently benched members (unordered).
    pub fn benched(&self) -> Vec<usize> {
        self.benched.iter().map(|&(m, _)| m).collect()
    }

    /// Lifetime bench events.
    pub fn demotions(&self) -> u64 {
        self.demotions
    }

    /// Lifetime reinstatements.
    pub fn reinstatements(&self) -> u64 {
        self.reinstatements
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_excludes_until_release_preserving_pinned_order() {
        let mut h = MemberHealth::new();
        let pinned = [7usize, 2, 9];
        assert_eq!(h.active(&pinned), vec![7, 2, 9]);

        assert!(h.bench(2, 5));
        assert!(
            !h.bench(2, 4),
            "re-bench of a benched member is not a new event"
        );
        assert_eq!(h.active(&pinned), vec![7, 9]);
        assert_eq!(h.demotions(), 1);

        assert_eq!(h.release_expired(4), 0, "probation not yet expired");
        assert!(h.is_benched(2));
        assert_eq!(h.release_expired(5), 1);
        assert_eq!(h.active(&pinned), vec![7, 2, 9], "pinned order restored");
        assert_eq!(h.reinstatements(), 1);
    }

    #[test]
    fn re_bench_extends_probation_to_the_later_tick() {
        let mut h = MemberHealth::new();
        h.bench(3, 10);
        h.bench(3, 20);
        h.release_expired(10);
        assert!(h.is_benched(3), "extension keeps the member benched");
        h.release_expired(20);
        assert!(!h.is_benched(3));
    }

    #[test]
    fn fully_benched_subset_falls_back_to_full_subset() {
        let mut h = MemberHealth::new();
        h.bench(1, 100);
        h.bench(4, 100);
        assert_eq!(h.active(&[1, 4]), vec![1, 4]);
        assert_eq!(h.active(&[1, 4, 5]), vec![5]);
    }
}
