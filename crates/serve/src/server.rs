//! The streaming detection server: parallel sharded ingest, one batched
//! two-tier scoring pass per tick.
//!
//! Data flow per tick (DESIGN.md §10):
//!
//! 1. **Ingest** — [`StreamServer::ingest_batch`] partitions incoming
//!    BSMs by [`shard_for`] and runs every non-empty shard on its own
//!    scoped thread. A vehicle maps to exactly one shard, so its
//!    messages are always processed in arrival order.
//! 2. **Drain** — [`StreamServer::tick`] drains each shard's pending
//!    queue in shard-index order (deterministic regardless of ingest
//!    thread scheduling) and packs all ready snapshots into one
//!    `[n, w, f, 1]` batch tensor.
//! 3. **Gate** — the batch flows through the fused int8 backend
//!    ([`VehiGan::score_with_members_int8`]) with the server's pinned
//!    member subset.
//! 4. **Escalate** — only windows whose gate score crosses the
//!    escalation threshold are re-packed into a sub-batch and re-scored
//!    by the full f32 ensemble ([`VehiGan::score_with_members`]); their
//!    tier-2 score replaces the gate score in the emitted decision.
//!
//! Both scoring paths are batch-row independent (see the determinism
//! contracts in `vehigan_tensor::gemm` and `vehigan_lite::ensemble`), so
//! a window's score does not depend on which other windows share its
//! tick — the property the serve determinism test pins down.

use crate::shard::{shard_for, PendingWindow, Shard};
use parking_lot::Mutex;
use std::fmt;
use vehigan_core::{EnsembleError, VehiGan};
use vehigan_features::{EvictionConfig, MinMaxScaler};
use vehigan_sim::{Bsm, VehicleId};
use vehigan_tensor::Tensor;

/// What the tier-1 gate does with a scored window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EscalationPolicy {
    /// Every window goes to the full f32 ensemble (no gate). This is the
    /// reference tier-2 path used by the determinism test.
    Always,
    /// Every window is decided by the int8 gate alone (no escalation).
    Never,
    /// Windows whose int8 gate score exceeds the threshold are re-scored
    /// by the full f32 ensemble; the rest are decided by the gate.
    /// Calibrate with [`escalation_threshold`] so the cutoff sits well
    /// below the detection threshold τ.
    Threshold(f32),
}

/// Tile size for batched scoring passes. Both backends are batch-row
/// independent, so splitting a tick's batch into tiles changes nothing
/// bitwise — but it keeps each pass's activations resident in cache: the
/// fused int8 path degrades ~4× per window when hundreds of windows are
/// scored in one monolithic call.
pub const SCORE_TILE: usize = 128;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker shard count (vehicles are hashed across these).
    pub n_shards: usize,
    /// Window length `w` in messages (paper: 10).
    pub window: usize,
    /// Per-shard state bound; `max_vehicles` applies per shard.
    pub eviction: EvictionConfig,
    /// Tier-1 gate policy.
    pub policy: EscalationPolicy,
    /// Pinned ensemble member subset for tier-2 (and the gate, unless
    /// [`ServerConfig::gate_members`] narrows it). `None` deploys the
    /// first `k` healthy members. A fixed subset (rather than per-batch
    /// sampling) keeps every tick — and the determinism test —
    /// reproducible.
    pub members: Option<Vec<usize>>,
    /// Member subset for the int8 tier-1 gate. `None` gates with the
    /// full tier-2 subset, which keeps the gated score vector within
    /// int8 quantization error of the pure f32 path everywhere (AUROC
    /// drift ≲ 0.004 on the attack campaign). A narrower subset trades
    /// gate accuracy for speed: subtle attacks (constant-offset
    /// families) start slipping under a half-width gate, so measure
    /// drift before narrowing.
    pub gate_members: Option<Vec<usize>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            n_shards: 8,
            window: 10,
            eviction: EvictionConfig::unbounded(),
            policy: EscalationPolicy::Always,
            members: None,
            gate_members: None,
        }
    }
}

/// Construction/scoring failures surfaced by the server.
#[derive(Debug)]
pub enum ServeError {
    /// `n_shards` was zero.
    ZeroShards,
    /// The pinned member subset was empty or out of bounds, or the
    /// ensemble has no healthy members.
    BadMembers(EnsembleError),
    /// A scoring pass failed.
    Score(EnsembleError),
    /// [`EscalationPolicy::Never`]/[`EscalationPolicy::Threshold`]
    /// require a compiled int8 backend.
    Int8NotCompiled,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ZeroShards => write!(f, "server needs at least one shard"),
            ServeError::BadMembers(e) => write!(f, "bad member subset: {e}"),
            ServeError::Score(e) => write!(f, "scoring failed: {e}"),
            ServeError::Int8NotCompiled => {
                write!(f, "gate policy requires VehiGan::compile_int8 first")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// One scored window, emitted by [`StreamServer::tick`] in deterministic
/// batch order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Pseudonym the window belongs to.
    pub vehicle: VehicleId,
    /// Timestamp of the BSM that completed the window.
    pub timestamp: f64,
    /// Final anomaly score: tier-2 f32 if escalated, else the gate score.
    pub score: f32,
    /// Detection threshold τ of the path that produced `score`.
    pub threshold: f32,
    /// Whether the window was re-scored by the full f32 ensemble.
    pub escalated: bool,
    /// `score > threshold` — a misbehavior detection.
    pub flagged: bool,
}

/// Running counters across the server's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// BSMs ingested.
    pub ingested: u64,
    /// Windows scored across all ticks.
    pub windows_scored: u64,
    /// Windows escalated to the f32 ensemble.
    pub escalated: u64,
    /// Vehicles evicted by TTL/LRU across all shards.
    pub evicted: u64,
}

/// A long-lived RSU-style streaming detection service over a trained
/// [`VehiGan`].
pub struct StreamServer<'a> {
    vehigan: &'a VehiGan,
    members: Vec<usize>,
    gate_members: Vec<usize>,
    shards: Vec<Mutex<Shard>>,
    policy: EscalationPolicy,
    window_len: usize,
    window: usize,
    features: usize,
    stats: ServerStats,
}

impl<'a> StreamServer<'a> {
    /// Builds a server over a trained ensemble and fitted scaler.
    ///
    /// # Errors
    ///
    /// [`ServeError::ZeroShards`] for an empty shard set,
    /// [`ServeError::BadMembers`] for a bad pinned subset,
    /// [`ServeError::Int8NotCompiled`] when the gate policy needs the
    /// int8 backend but [`VehiGan::compile_int8`] has not run.
    pub fn new(
        vehigan: &'a VehiGan,
        scaler: MinMaxScaler,
        config: ServerConfig,
    ) -> Result<Self, ServeError> {
        if config.n_shards == 0 {
            return Err(ServeError::ZeroShards);
        }
        if !matches!(config.policy, EscalationPolicy::Always) && vehigan.int8_backend().is_none() {
            return Err(ServeError::Int8NotCompiled);
        }
        let members = match config.members {
            Some(m) => m,
            None => {
                let healthy = vehigan.healthy_members();
                healthy.into_iter().take(vehigan.k()).collect()
            }
        };
        let gate_members = config.gate_members.unwrap_or_else(|| members.clone());
        for subset in [&members, &gate_members] {
            if subset.is_empty() {
                return Err(ServeError::BadMembers(EnsembleError::EmptySubset));
            }
            for &i in subset {
                if i >= vehigan.m() {
                    return Err(ServeError::BadMembers(EnsembleError::MemberOutOfBounds {
                        index: i,
                        m: vehigan.m(),
                    }));
                }
            }
        }
        let features = scaler.width();
        let shards = (0..config.n_shards)
            .map(|_| Mutex::new(Shard::new(config.window, scaler.clone(), config.eviction)))
            .collect();
        Ok(StreamServer {
            vehigan,
            members,
            gate_members,
            shards,
            policy: config.policy,
            window_len: config.window * features,
            window: config.window,
            features,
            stats: ServerStats::default(),
        })
    }

    /// Ingests a batch of BSMs, processing shards in parallel.
    ///
    /// Messages are partitioned by [`shard_for`] with relative order
    /// preserved, and each vehicle's messages land on exactly one shard —
    /// so per-vehicle window state is identical to serial ingestion no
    /// matter how the shard threads interleave.
    pub fn ingest_batch(&mut self, bsms: &[Bsm]) {
        let n_shards = self.shards.len();
        let mut buckets: Vec<Vec<&Bsm>> = vec![Vec::new(); n_shards];
        for bsm in bsms {
            buckets[shard_for(bsm.vehicle_id, n_shards)].push(bsm);
        }
        if n_shards == 1 || bsms.len() < 64 {
            for (shard, bucket) in self.shards.iter().zip(&buckets) {
                let mut guard = shard.lock();
                for bsm in bucket {
                    guard.ingest(bsm);
                }
            }
        } else {
            let shards = &self.shards;
            crossbeam::thread::scope(|s| {
                for (shard, bucket) in shards.iter().zip(&buckets) {
                    if bucket.is_empty() {
                        continue;
                    }
                    s.spawn(move |_| {
                        let mut guard = shard.lock();
                        for bsm in bucket {
                            guard.ingest(bsm);
                        }
                    });
                }
            })
            .expect("ingest scope");
        }
        self.stats.ingested += bsms.len() as u64;
    }

    /// Drains every shard's pending windows, scores them as one batch
    /// through the gate/escalation pipeline, and emits decisions in
    /// deterministic order (shard index, then ingestion order).
    ///
    /// Returns an empty vec when no windows are ready.
    ///
    /// # Errors
    ///
    /// [`ServeError::Score`] when a scoring pass fails.
    pub fn tick(&mut self) -> Result<Vec<Decision>, ServeError> {
        let mut batch: Vec<f32> = Vec::new();
        let mut meta: Vec<PendingWindow> = Vec::new();
        for shard in &self.shards {
            let (floats, windows) = shard.lock().drain_pending();
            batch.extend_from_slice(&floats);
            meta.extend_from_slice(&windows);
        }
        if meta.is_empty() {
            return Ok(Vec::new());
        }
        let n = meta.len();
        debug_assert_eq!(batch.len(), n * self.window_len);
        self.stats.windows_scored += n as u64;

        let decisions = match self.policy {
            EscalationPolicy::Always => {
                let (scores, threshold) = self.score_tiled(&batch, n, false, &self.members)?;
                self.stats.escalated += n as u64;
                meta.iter()
                    .zip(&scores)
                    .map(|(w, &score)| Decision {
                        vehicle: w.vehicle,
                        timestamp: w.timestamp,
                        score,
                        threshold,
                        escalated: true,
                        flagged: score > threshold,
                    })
                    .collect()
            }
            EscalationPolicy::Never => {
                let (scores, threshold) = self.score_tiled(&batch, n, true, &self.gate_members)?;
                meta.iter()
                    .zip(&scores)
                    .map(|(w, &score)| Decision {
                        vehicle: w.vehicle,
                        timestamp: w.timestamp,
                        score,
                        threshold,
                        escalated: false,
                        flagged: score > threshold,
                    })
                    .collect()
            }
            EscalationPolicy::Threshold(tau_esc) => {
                let (gate_scores, gate_tau) =
                    self.score_tiled(&batch, n, true, &self.gate_members)?;
                let escalate: Vec<usize> = (0..n).filter(|&i| gate_scores[i] > tau_esc).collect();
                let mut decisions: Vec<Decision> = meta
                    .iter()
                    .zip(&gate_scores)
                    .map(|(w, &score)| Decision {
                        vehicle: w.vehicle,
                        timestamp: w.timestamp,
                        score,
                        threshold: gate_tau,
                        escalated: false,
                        flagged: false,
                    })
                    .collect();
                if !escalate.is_empty() {
                    let mut sub = Vec::with_capacity(escalate.len() * self.window_len);
                    for &i in &escalate {
                        sub.extend_from_slice(
                            &batch[i * self.window_len..(i + 1) * self.window_len],
                        );
                    }
                    let (scores, threshold) =
                        self.score_tiled(&sub, escalate.len(), false, &self.members)?;
                    for (&i, &score) in escalate.iter().zip(&scores) {
                        decisions[i].score = score;
                        decisions[i].threshold = threshold;
                        decisions[i].escalated = true;
                        decisions[i].flagged = score > threshold;
                    }
                    self.stats.escalated += escalate.len() as u64;
                }
                decisions
            }
        };
        Ok(decisions)
    }

    /// Scores `n` flat windows through one backend in [`SCORE_TILE`]-sized
    /// tiles, concatenating per-tile scores. Tile boundaries cannot change
    /// any score — both backends are batch-row independent — but they keep
    /// each pass's activations cache-resident.
    fn score_tiled(
        &self,
        data: &[f32],
        n: usize,
        int8: bool,
        members: &[usize],
    ) -> Result<(Vec<f32>, f32), ServeError> {
        let mut scores = Vec::with_capacity(n);
        let mut threshold = 0.0f32;
        let mut start = 0;
        while start < n {
            let end = (start + SCORE_TILE).min(n);
            let tile = Tensor::from_vec(
                data[start * self.window_len..end * self.window_len].to_vec(),
                &[end - start, self.window, self.features, 1],
            );
            let r = if int8 {
                self.vehigan.score_with_members_int8(members, &tile)
            } else {
                self.vehigan.score_with_members(members, &tile)
            }
            .map_err(ServeError::Score)?;
            threshold = r.threshold;
            scores.extend_from_slice(&r.scores);
            start = end;
        }
        Ok((scores, threshold))
    }

    /// Runs TTL eviction on every shard at stream time `now`, returning
    /// how many vehicles were dropped. Vehicles with pending windows are
    /// always retained.
    pub fn evict_stale(&mut self, now: f64) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            dropped += shard.lock().evict_stale(now);
        }
        self.stats.evicted += dropped as u64;
        dropped
    }

    /// Windows queued across all shards awaiting the next tick.
    pub fn pending_windows(&self) -> usize {
        self.shards.iter().map(|s| s.lock().pending_windows()).sum()
    }

    /// Vehicles currently resident across all shards.
    pub fn num_vehicles(&self) -> usize {
        self.shards.iter().map(|s| s.lock().num_vehicles()).sum()
    }

    /// Lifetime counters (ingested/scored/escalated/evicted).
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.stats;
        stats.evicted = self.shards.iter().map(|s| s.lock().evicted()).sum();
        stats
    }

    /// The pinned tier-2 ensemble member subset.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// The member subset the int8 tier-1 gate scores with.
    pub fn gate_members(&self) -> &[usize] {
        &self.gate_members
    }

    /// Worker shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The gate policy in effect.
    pub fn policy(&self) -> EscalationPolicy {
        self.policy
    }
}

/// Calibrates the gate's escalation threshold from benign gate scores:
/// the `p`-th percentile (e.g. 90.0), so roughly `100 − p` percent of
/// benign traffic escalates. Keep `p` below the detection percentile
/// (99) so every would-be detection crosses the gate and is confirmed by
/// the f32 ensemble — that is what bounds AUROC drift (DESIGN.md §10).
pub fn escalation_threshold(benign_gate_scores: &[f32], p: f64) -> f32 {
    vehigan_metrics::percentile(benign_gate_scores, p)
}
