//! The streaming detection server: parallel sharded ingest, one batched
//! two-tier scoring pass per tick.
//!
//! Data flow per tick (DESIGN.md §10):
//!
//! 1. **Ingest** — [`StreamServer::ingest_batch`] partitions incoming
//!    BSMs by [`shard_for`] and runs every non-empty shard on its own
//!    scoped thread. A vehicle maps to exactly one shard, so its
//!    messages are always processed in arrival order. Each shard's
//!    `IngestGuard` rejects malformed/stale messages before they touch
//!    window state, and a shard worker that panics is captured and
//!    resumed rather than crashing the server.
//! 2. **Admit** — [`StreamServer::tick`] measures the offered backlog
//!    against the [`AdmissionConfig`] window budget, drives the
//!    [`ServeMode`] hysteresis state machine, and takes at most the
//!    budget's worth of the **oldest** pending windows (water-filled
//!    across shards in shard-index order — deterministic regardless of
//!    ingest thread scheduling). Overflow beyond each shard's queue
//!    bound was already shed oldest-first at ingest, every shed window
//!    counted.
//! 3. **Gate** — the admitted batch flows through the fused int8 backend
//!    ([`VehiGan::score_with_members_int8`]) with the server's pinned
//!    member subset, minus any members currently benched by
//!    [`MemberHealth`]. In [`ServeMode::Degraded`] a `Threshold` policy
//!    steps down to gate-only scoring.
//! 4. **Escalate** — only windows whose gate score crosses the
//!    escalation threshold are re-packed into a sub-batch and re-scored
//!    by the full f32 ensemble ([`VehiGan::score_with_members`]); their
//!    tier-2 score replaces the gate score in the emitted decision.
//!
//! Both scoring paths are batch-row independent (see the determinism
//! contracts in `vehigan_tensor::gemm` and `vehigan_lite::ensemble`), so
//! a window's score does not depend on which other windows share its
//! tick — the property the serve determinism test pins down. The
//! overload/degradation state machine and fault taxonomy are specified
//! in DESIGN.md §11.

use crate::health::MemberHealth;
use crate::shard::{shard_for, PendingWindow, Shard};
use parking_lot::Mutex;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use vehigan_core::{EnsembleError, VehiGan};
use vehigan_features::{
    EvictionConfig, IngestGuard, MinMaxScaler, RejectCounters, Tier0Calibration,
};
use vehigan_mbr::Mbr;
use vehigan_sim::{Bsm, VehicleId};
use vehigan_tensor::Tensor;

/// What the tier-1 gate does with a scored window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EscalationPolicy {
    /// Every window goes to the full f32 ensemble (no gate). This is the
    /// reference tier-2 path used by the determinism test.
    Always,
    /// Every window is decided by the int8 gate alone (no escalation).
    Never,
    /// Windows whose int8 gate score exceeds the threshold are re-scored
    /// by the full f32 ensemble; the rest are decided by the gate.
    /// Calibrate with [`escalation_threshold`] so the cutoff sits well
    /// below the detection threshold τ.
    Threshold(f32),
}

/// Load-shedding posture of the server (DESIGN.md §11).
///
/// Driven by the offered backlog relative to the admission budget with
/// hysteresis on both edges, so a single noisy tick cannot flap the
/// policy: the server degrades only after `degrade_after` consecutive
/// over-budget ticks and restores only after `restore_after` consecutive
/// under-budget ticks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Configured policy in full effect.
    Normal,
    /// Sustained overload: a `Threshold` gate policy steps down to
    /// gate-only ([`EscalationPolicy::Never`]) scoring until pressure
    /// clears. `Always` (the reference/calibration path, which has no
    /// gate to fall back on) and `Never` are unaffected.
    Degraded,
}

/// Tile size for batched scoring passes. Both backends are batch-row
/// independent, so splitting a tick's batch into tiles changes nothing
/// bitwise — but it keeps each pass's activations resident in cache: the
/// fused int8 path degrades ~4× per window when hundreds of windows are
/// scored in one monolithic call.
pub const SCORE_TILE: usize = 128;

/// Admission-control and degradation parameters (DESIGN.md §11).
///
/// The default is fully unbounded — bitwise-identical behavior to a
/// server without admission control — so existing callers and the
/// determinism suite are unaffected unless a deployment opts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Compute budget: windows scored per tick. `None` = unbounded.
    /// Derive from a measured per-window cost with
    /// [`AdmissionConfig::budget_from_cost`]. Values below 1 are treated
    /// as 1 so a tick always makes progress.
    pub windows_per_tick: Option<usize>,
    /// Pending-queue bound per shard; when a completing window would
    /// overflow it, the shard sheds its **oldest** queued window
    /// (drop-head) and counts it. `None` = unbounded.
    pub max_pending_per_shard: Option<usize>,
    /// Consecutive over-budget ticks before `Normal → Degraded`.
    pub degrade_after: u32,
    /// Consecutive under-budget ticks before `Degraded → Normal`.
    pub restore_after: u32,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig::unbounded()
    }
}

impl AdmissionConfig {
    /// No budget, no queue bound: the historical always-score-everything
    /// behavior.
    pub fn unbounded() -> Self {
        AdmissionConfig {
            windows_per_tick: None,
            max_pending_per_shard: None,
            degrade_after: 2,
            restore_after: 3,
        }
    }

    /// Converts a measured per-window scoring cost into a window budget:
    /// the number of windows scoreable within `utilization` (e.g. 0.7)
    /// of one tick interval, rounded to the nearest whole window. At
    /// 10 Hz BSM cadence the tick interval is 0.1 s.
    pub fn budget_from_cost(
        tick_interval_s: f64,
        per_window_cost_s: f64,
        utilization: f64,
    ) -> usize {
        assert!(
            tick_interval_s > 0.0 && per_window_cost_s > 0.0 && utilization > 0.0,
            "budget_from_cost needs positive inputs"
        );
        ((tick_interval_s * utilization / per_window_cost_s).round() as usize).max(1)
    }
}

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker shard count (vehicles are hashed across these).
    pub n_shards: usize,
    /// Window length `w` in messages (paper: 10).
    pub window: usize,
    /// Per-shard state bound; `max_vehicles` applies per shard.
    pub eviction: EvictionConfig,
    /// Tier-1 gate policy.
    pub policy: EscalationPolicy,
    /// Pinned ensemble member subset for tier-2 (and the gate, unless
    /// [`ServerConfig::gate_members`] narrows it). `None` deploys the
    /// first `k` healthy members. A fixed subset (rather than per-batch
    /// sampling) keeps every tick — and the determinism test —
    /// reproducible.
    pub members: Option<Vec<usize>>,
    /// Member subset for the int8 tier-1 gate. `None` gates with the
    /// full tier-2 subset, which keeps the gated score vector within
    /// int8 quantization error of the pure f32 path everywhere (AUROC
    /// drift ≲ 0.004 on the attack campaign). A narrower subset trades
    /// gate accuracy for speed: subtle attacks (constant-offset
    /// families) start slipping under a half-width gate, so measure
    /// drift before narrowing.
    pub gate_members: Option<Vec<usize>>,
    /// Ingest-time validation applied by every shard before window
    /// state is touched. The default guard checks finiteness and strict
    /// per-vehicle timestamp monotonicity only; [`IngestGuard::rsu`]
    /// adds physical range limits.
    pub guard: IngestGuard,
    /// Admission control and degraded-mode tiering. Unbounded by
    /// default.
    pub admission: AdmissionConfig,
    /// Server ticks a member stays benched after returning non-finite
    /// scores, before being reinstated into its pinned position.
    pub probation_ticks: u64,
    /// Tier-0 kinematic gate calibration (DESIGN.md §12). `None` (the
    /// default) disables the gate: every window screens through tier 1,
    /// bitwise identical to the pre-tier-0 server. With a calibration,
    /// windows whose per-vehicle monitors sit inside their decision
    /// intervals skip tier 1 entirely and emit the monitor-implied
    /// benign score; everything else — tripped monitors, cold/rebuilt
    /// buffers — conservatively falls through to the tier-1 → tier-2
    /// path. Ignored under [`EscalationPolicy::Always`] (the reference
    /// path stays pure f32).
    pub tier0: Option<Tier0Calibration>,
    /// Reporter identity (this RSU's own pseudonym) for misbehavior
    /// reports. When set, every flagged tier-2 escalation emits an
    /// [`Mbr`] carrying the scored window as evidence, collected via
    /// [`StreamServer::take_reports`] for forwarding to the misbehavior
    /// authority. `None` (the default) disables reporting.
    pub reporter: Option<VehicleId>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            n_shards: 8,
            window: 10,
            eviction: EvictionConfig::unbounded(),
            policy: EscalationPolicy::Always,
            members: None,
            gate_members: None,
            guard: IngestGuard::permissive(),
            admission: AdmissionConfig::unbounded(),
            probation_ticks: 3,
            tier0: None,
            reporter: None,
        }
    }
}

/// Construction/scoring failures surfaced by the server.
#[derive(Debug)]
pub enum ServeError {
    /// `n_shards` was zero.
    ZeroShards,
    /// The pinned member subset was empty or out of bounds, or the
    /// ensemble has no healthy members.
    BadMembers(EnsembleError),
    /// A scoring pass failed.
    Score(EnsembleError),
    /// [`EscalationPolicy::Never`]/[`EscalationPolicy::Threshold`]
    /// require a compiled int8 backend.
    Int8NotCompiled,
    /// A shard ingest worker panicked. The panic was captured: the
    /// worker resumed past the poison message once, and if it panicked
    /// again the rest of that shard's bucket was quarantined for the
    /// batch. Per-vehicle window state for other shards is unaffected.
    ShardPanic {
        /// Index of the shard whose worker panicked.
        shard: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::ZeroShards => write!(f, "server needs at least one shard"),
            ServeError::BadMembers(e) => write!(f, "bad member subset: {e}"),
            ServeError::Score(e) => write!(f, "scoring failed: {e}"),
            ServeError::Int8NotCompiled => {
                write!(f, "gate policy requires VehiGan::compile_int8 first")
            }
            ServeError::ShardPanic { shard } => {
                write!(f, "ingest worker for shard {shard} panicked (captured)")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// One scored window, emitted by [`StreamServer::tick`] in deterministic
/// batch order.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// Pseudonym the window belongs to.
    pub vehicle: VehicleId,
    /// Timestamp of the BSM that completed the window.
    pub timestamp: f64,
    /// Final anomaly score: tier-2 f32 if escalated, else the gate score.
    pub score: f32,
    /// Detection threshold τ of the path that produced `score`.
    pub threshold: f32,
    /// Whether the window was re-scored by the full f32 ensemble.
    pub escalated: bool,
    /// `score > threshold` — a misbehavior detection.
    pub flagged: bool,
    /// Whether the window was suppressed at tier 0: the vehicle's
    /// kinematic monitors were warm and in-interval and it held a fresh
    /// sub-detection tier-1 score, so `score` is that carried gate
    /// score and no ensemble ran. Always `false` without a tier-0
    /// calibration.
    pub suppressed: bool,
}

/// Running counters across the server's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServerStats {
    /// BSMs ingested.
    pub ingested: u64,
    /// Windows scored across all ticks.
    pub windows_scored: u64,
    /// Windows escalated to the f32 ensemble.
    pub escalated: u64,
    /// Windows suppressed at tier 0 (kinematic monitors in-interval; no
    /// ensemble ran). Partitions `windows_scored` together with
    /// `tier1_screened` and `tier2_escalated`.
    pub tier0_suppressed: u64,
    /// Windows whose final decision came from the int8 tier-1 gate.
    pub tier1_screened: u64,
    /// Windows whose final decision came from the f32 tier-2 ensemble.
    pub tier2_escalated: u64,
    /// Vehicles evicted by TTL/LRU across all shards.
    pub evicted: u64,
    /// BSMs rejected by the ingest guards, per reason class.
    pub rejected: RejectCounters,
    /// Windows shed unscored by queue bounds/admission control.
    pub shed: u64,
    /// Captured ingest-worker panics.
    pub shard_panics: u64,
    /// Server ticks elapsed.
    pub ticks: u64,
    /// Ticks spent in [`ServeMode::Degraded`].
    pub degraded_ticks: u64,
    /// Mode transitions in either direction.
    pub mode_switches: u64,
    /// Members benched for returning non-finite scores.
    pub member_demotions: u64,
    /// Members reinstated after probation.
    pub member_reinstatements: u64,
    /// Misbehavior reports emitted from flagged tier-2 escalations
    /// (zero unless [`ServerConfig::reporter`] is set).
    pub reports_emitted: u64,
}

/// Outcome of one [`StreamServer::ingest_batch`] call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IngestReport {
    /// Messages in the batch.
    pub received: u64,
    /// Messages accepted into window state.
    pub accepted: u64,
    /// Messages rejected by the ingest guards during this batch.
    pub rejected: RejectCounters,
    /// Windows shed by per-shard queue bounds during this batch.
    pub shed: u64,
    /// Shards whose ingest worker panicked (captured and resumed).
    pub panicked_shards: Vec<usize>,
}

impl IngestReport {
    /// Whether every message was accepted with no faults.
    pub fn fully_accepted(&self) -> bool {
        self.accepted == self.received && self.panicked_shards.is_empty()
    }

    /// The first captured shard panic as a typed error, if any.
    pub fn error(&self) -> Option<ServeError> {
        self.panicked_shards
            .first()
            .map(|&shard| ServeError::ShardPanic { shard })
    }
}

/// The degrade/restore hysteresis core, kept free of server state so the
/// edge conditions are unit-testable.
#[derive(Debug, Clone, Copy)]
struct ModeMachine {
    mode: ServeMode,
    over_streak: u32,
    under_streak: u32,
}

impl ModeMachine {
    fn new() -> Self {
        ModeMachine {
            mode: ServeMode::Normal,
            over_streak: 0,
            under_streak: 0,
        }
    }

    /// Feeds one tick's pressure observation; returns whether the mode
    /// switched.
    fn observe(&mut self, over_budget: bool, degrade_after: u32, restore_after: u32) -> bool {
        if over_budget {
            self.over_streak += 1;
            self.under_streak = 0;
        } else {
            self.under_streak += 1;
            self.over_streak = 0;
        }
        match self.mode {
            ServeMode::Normal if self.over_streak >= degrade_after.max(1) => {
                self.mode = ServeMode::Degraded;
                true
            }
            ServeMode::Degraded if self.under_streak >= restore_after.max(1) => {
                self.mode = ServeMode::Normal;
                true
            }
            _ => false,
        }
    }
}

/// Splits a window budget across shard queue depths, oldest-first within
/// each shard: every shard gets its proportional share (floor), and the
/// remainder is dealt one window at a time in shard-index order to
/// shards with backlog left. Deterministic in the queue depths alone.
fn budgeted_take(lens: &[usize], budget: Option<usize>) -> Vec<usize> {
    let total: usize = lens.iter().sum();
    let Some(b) = budget else {
        return lens.to_vec();
    };
    let b = b.max(1);
    if total <= b {
        return lens.to_vec();
    }
    let mut take: Vec<usize> = lens.iter().map(|&l| l * b / total).collect();
    let mut assigned: usize = take.iter().sum();
    let mut i = 0;
    while assigned < b {
        if take[i] < lens[i] {
            take[i] += 1;
            assigned += 1;
        }
        i = (i + 1) % lens.len();
    }
    take
}

/// Runs one shard's bucket with panic capture: a panicked worker is
/// resumed once past the message it died on; a second panic quarantines
/// the rest of the bucket for this batch. Returns observed panics.
fn ingest_bucket(shard: &Mutex<Shard>, bucket: &[&Bsm], inject_panic: bool) -> u32 {
    // Index of the message being processed; usize::MAX = none yet, so a
    // panic before the loop (the chaos injection point) resumes from 0
    // with zero message loss.
    let progress = AtomicUsize::new(usize::MAX);
    let mut panics = 0u32;
    let mut start = 0usize;
    let mut first_attempt = true;
    loop {
        let result = catch_unwind(AssertUnwindSafe(|| {
            if first_attempt && inject_panic {
                panic!("chaos: injected shard-ingest panic");
            }
            let mut guard = shard.lock();
            for (offset, bsm) in bucket[start..].iter().enumerate() {
                progress.store(start + offset, Ordering::Relaxed);
                guard.ingest(bsm);
            }
        }));
        match result {
            Ok(()) => return panics,
            Err(_) => {
                panics += 1;
                if panics >= 2 {
                    return panics;
                }
                first_attempt = false;
                start = progress.load(Ordering::Relaxed).wrapping_add(1);
                if start >= bucket.len() {
                    return panics;
                }
            }
        }
    }
}

/// A long-lived RSU-style streaming detection service over a trained
/// [`VehiGan`].
pub struct StreamServer<'a> {
    vehigan: &'a VehiGan,
    members: Vec<usize>,
    gate_members: Vec<usize>,
    shards: Vec<Mutex<Shard>>,
    policy: EscalationPolicy,
    admission: AdmissionConfig,
    probation_ticks: u64,
    mode_machine: ModeMachine,
    health: MemberHealth,
    tick_index: u64,
    tier0: Option<Tier0Calibration>,
    /// While set, tier-0 suppression verdicts are distrusted and every
    /// window screens through tier 1 — the monitor-poisoning chaos
    /// fault. The shards keep updating their monitors, so clearing the
    /// flag restores gating without a warmup gap.
    chaos_monitor_poison: bool,
    /// Shards whose next ingest worker run should panic before touching
    /// state (deterministic fault injection; consumed by the next
    /// [`StreamServer::ingest_batch`]).
    chaos_panic_shards: Vec<usize>,
    window_len: usize,
    window: usize,
    features: usize,
    reporter: Option<VehicleId>,
    /// Misbehavior reports emitted since the last `take_reports`.
    reports: Vec<Mbr>,
    stats: ServerStats,
}

impl<'a> StreamServer<'a> {
    /// Builds a server over a trained ensemble and fitted scaler.
    ///
    /// # Errors
    ///
    /// [`ServeError::ZeroShards`] for an empty shard set,
    /// [`ServeError::BadMembers`] for a bad pinned subset,
    /// [`ServeError::Int8NotCompiled`] when the gate policy needs the
    /// int8 backend but [`VehiGan::compile_int8`] has not run.
    pub fn new(
        vehigan: &'a VehiGan,
        scaler: MinMaxScaler,
        config: ServerConfig,
    ) -> Result<Self, ServeError> {
        if config.n_shards == 0 {
            return Err(ServeError::ZeroShards);
        }
        if !matches!(config.policy, EscalationPolicy::Always) && vehigan.int8_backend().is_none() {
            return Err(ServeError::Int8NotCompiled);
        }
        let members = match config.members {
            Some(m) => m,
            None => {
                let healthy = vehigan.healthy_members();
                healthy.into_iter().take(vehigan.k()).collect()
            }
        };
        let gate_members = config.gate_members.unwrap_or_else(|| members.clone());
        for subset in [&members, &gate_members] {
            if subset.is_empty() {
                return Err(ServeError::BadMembers(EnsembleError::EmptySubset));
            }
            for &i in subset {
                if i >= vehigan.m() {
                    return Err(ServeError::BadMembers(EnsembleError::MemberOutOfBounds {
                        index: i,
                        m: vehigan.m(),
                    }));
                }
            }
        }
        let features = scaler.width();
        let shards = (0..config.n_shards)
            .map(|_| {
                Mutex::new(
                    Shard::with_guard(
                        config.window,
                        scaler.clone(),
                        config.eviction,
                        config.guard,
                        config.admission.max_pending_per_shard,
                    )
                    .with_tier0(config.tier0),
                )
            })
            .collect();
        Ok(StreamServer {
            vehigan,
            members,
            gate_members,
            shards,
            policy: config.policy,
            admission: config.admission,
            probation_ticks: config.probation_ticks.max(1),
            mode_machine: ModeMachine::new(),
            health: MemberHealth::new(),
            tick_index: 0,
            tier0: config.tier0,
            chaos_monitor_poison: false,
            chaos_panic_shards: Vec::new(),
            window_len: config.window * features,
            window: config.window,
            features,
            reporter: config.reporter,
            reports: Vec::new(),
            stats: ServerStats::default(),
        })
    }

    /// Ingests a batch of BSMs, processing shards in parallel.
    ///
    /// Messages are partitioned by [`shard_for`] with relative order
    /// preserved, and each vehicle's messages land on exactly one shard —
    /// so per-vehicle window state is identical to serial ingestion no
    /// matter how the shard threads interleave. Guard rejections and
    /// queue-bound shedding are counted; a panicking shard worker is
    /// captured and resumed instead of tearing the server down (see
    /// [`IngestReport`]).
    pub fn ingest_batch(&mut self, bsms: &[Bsm]) -> IngestReport {
        let n_shards = self.shards.len();
        let mut buckets: Vec<Vec<&Bsm>> = vec![Vec::new(); n_shards];
        for bsm in bsms {
            buckets[shard_for(bsm.vehicle_id, n_shards)].push(bsm);
        }
        let panic_shards = std::mem::take(&mut self.chaos_panic_shards);
        let inject: Vec<bool> = (0..n_shards).map(|i| panic_shards.contains(&i)).collect();

        let before: Vec<(u64, RejectCounters, u64)> = self
            .shards
            .iter()
            .map(|s| {
                let g = s.lock();
                (g.ingested(), g.rejects(), g.shed())
            })
            .collect();

        let panics: Vec<AtomicU32> = (0..n_shards).map(|_| AtomicU32::new(0)).collect();
        if n_shards == 1 || bsms.len() < 64 {
            for (i, (shard, bucket)) in self.shards.iter().zip(&buckets).enumerate() {
                if bucket.is_empty() && !inject[i] {
                    continue;
                }
                let p = ingest_bucket(shard, bucket, inject[i]);
                panics[i].store(p, Ordering::Relaxed);
            }
        } else {
            let shards = &self.shards;
            let panics_ref = &panics;
            let inject_ref = &inject;
            // Worker panics are captured inside ingest_bucket, so the
            // scope result is always Ok; a panic that somehow escaped
            // capture (panic-while-panicking aborts before reaching
            // here) still must not take the server down with it.
            let scope = crossbeam::thread::scope(|s| {
                for (i, (shard, bucket)) in shards.iter().zip(&buckets).enumerate() {
                    if bucket.is_empty() && !inject_ref[i] {
                        continue;
                    }
                    s.spawn(move |_| {
                        let p = ingest_bucket(shard, bucket, inject_ref[i]);
                        panics_ref[i].store(p, Ordering::Relaxed);
                    });
                }
            });
            if scope.is_err() {
                // Attribute the escaped panic to every shard we cannot
                // vouch for rather than crash; counters below still
                // reflect whatever work completed.
                for p in &panics {
                    p.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.stats.ingested += bsms.len() as u64;

        let mut report = IngestReport {
            received: bsms.len() as u64,
            ..IngestReport::default()
        };
        let mut processed = 0u64;
        for (i, (shard, (ingested0, rejects0, shed0))) in
            self.shards.iter().zip(&before).enumerate()
        {
            let g = shard.lock();
            processed += g.ingested() - ingested0;
            report.rejected += g.rejects().since(rejects0);
            report.shed += g.shed() - shed0;
            let p = panics[i].load(Ordering::Relaxed);
            if p > 0 {
                report.panicked_shards.push(i);
                self.stats.shard_panics += u64::from(p);
            }
        }
        report.accepted = processed - report.rejected.total();
        report
    }

    /// Admits up to the window budget from the shards' pending queues
    /// (oldest-first per shard, water-filled across shards), scores the
    /// admitted batch through the gate/escalation pipeline, and emits
    /// decisions in deterministic order (shard index, then ingestion
    /// order). Windows over budget stay queued for later ticks unless a
    /// queue bound sheds them at ingest.
    ///
    /// Each tick also advances the [`ServeMode`] hysteresis machine and
    /// the member-health probation clock: members that returned
    /// non-finite scores last tick sit out, and expired probations are
    /// reinstated into their pinned positions before scoring.
    ///
    /// Returns an empty vec when no windows are ready.
    ///
    /// # Errors
    ///
    /// [`ServeError::Score`] when a scoring pass fails.
    pub fn tick(&mut self) -> Result<Vec<Decision>, ServeError> {
        self.tick_index += 1;
        self.stats.ticks += 1;

        let lens: Vec<usize> = self
            .shards
            .iter()
            .map(|s| s.lock().pending_windows())
            .collect();
        let offered: usize = lens.iter().sum();
        let over_budget = self
            .admission
            .windows_per_tick
            .is_some_and(|b| offered > b.max(1));
        if self.mode_machine.observe(
            over_budget,
            self.admission.degrade_after,
            self.admission.restore_after,
        ) {
            self.stats.mode_switches += 1;
        }
        if self.mode_machine.mode == ServeMode::Degraded {
            self.stats.degraded_ticks += 1;
        }

        self.stats.member_reinstatements += self.health.release_expired(self.tick_index) as u64;

        let take = budgeted_take(&lens, self.admission.windows_per_tick);
        let mut batch: Vec<f32> = Vec::new();
        let mut meta: Vec<PendingWindow> = Vec::new();
        for (shard, &k) in self.shards.iter().zip(&take) {
            if k == 0 {
                continue;
            }
            let (floats, windows) = shard.lock().take_pending(k);
            batch.extend_from_slice(&floats);
            meta.extend_from_slice(&windows);
        }
        if meta.is_empty() {
            return Ok(Vec::new());
        }
        let n = meta.len();
        debug_assert_eq!(batch.len(), n * self.window_len);
        self.stats.windows_scored += n as u64;

        let members = self.health.active(&self.members);
        let gate_members = self.health.active(&self.gate_members);
        let policy = self.effective_policy();
        let mut dropped_union: Vec<usize> = Vec::new();

        // Tier-0 split: suppressed windows skip the ensemble entirely.
        // The gate is bypassed under `Always` (the pure-f32 reference
        // path has no gate) and while the monitor-poisoning chaos fault
        // distrusts the monitors.
        let gate_on = self.tier0.is_some()
            && !self.chaos_monitor_poison
            && !matches!(policy, EscalationPolicy::Always);
        let n_suppressed = if gate_on {
            meta.iter().filter(|w| w.suppressed).count()
        } else {
            0
        };

        let decisions = if n_suppressed == 0 {
            // No suppression this tick: the whole batch flows through
            // the historical path, bitwise identical to a gateless
            // server (both backends are batch-row independent, so the
            // branch itself cannot change any score).
            self.score_windows(
                &batch,
                &meta,
                policy,
                &members,
                &gate_members,
                &mut dropped_union,
            )?
        } else {
            let cal = self.tier0.expect("gate_on implies a calibration");
            let wl = self.window_len;
            let mut screened_batch: Vec<f32> = Vec::with_capacity((n - n_suppressed) * wl);
            let mut screened_meta: Vec<PendingWindow> = Vec::with_capacity(n - n_suppressed);
            for (i, w) in meta.iter().enumerate() {
                if !w.suppressed {
                    screened_batch.extend_from_slice(&batch[i * wl..(i + 1) * wl]);
                    screened_meta.push(*w);
                }
            }
            let screened = self.score_windows(
                &screened_batch,
                &screened_meta,
                policy,
                &members,
                &gate_members,
                &mut dropped_union,
            )?;
            self.stats.tier0_suppressed += n_suppressed as u64;
            // Merge back in admitted order: suppressed windows emit the
            // vehicle's carried tier-1 gate score (below the detection
            // threshold by the suppression policy) against the
            // calibration's τ; screened windows keep their ensemble
            // decision bitwise intact.
            let mut it = screened.into_iter();
            meta.iter()
                .map(|w| {
                    if w.suppressed {
                        Decision {
                            vehicle: w.vehicle,
                            timestamp: w.timestamp,
                            score: w.pinned,
                            threshold: cal.tau,
                            escalated: false,
                            flagged: w.pinned > cal.tau,
                            suppressed: true,
                        }
                    } else {
                        it.next().expect("one screened decision per window")
                    }
                })
                .collect()
        };

        // Misbehavior reporting: every flagged tier-2 escalation becomes
        // an MBR carrying the scored window as evidence. Decisions align
        // index-wise with `batch`/`meta` on both tick branches (tier-0
        // suppressed windows are never escalated), so decision i's
        // evidence is batch row i. The scaler clamps rows to [-1, 1], so
        // emitted reports always pass `Mbr::validate`'s domain check.
        if let Some(reporter) = self.reporter {
            let wl = self.window_len;
            for (i, d) in decisions.iter().enumerate() {
                if d.flagged && d.escalated && d.vehicle != reporter {
                    self.reports.push(Mbr {
                        reporter,
                        suspect: d.vehicle,
                        timestamp: d.timestamp,
                        score: d.score,
                        threshold: d.threshold,
                        evidence: batch[i * wl..(i + 1) * wl].to_vec(),
                    });
                    self.stats.reports_emitted += 1;
                }
            }
        }

        if !dropped_union.is_empty() {
            dropped_union.sort_unstable();
            dropped_union.dedup();
            let until = self.tick_index + self.probation_ticks;
            for m in dropped_union {
                self.health.bench(m, until);
            }
        }
        self.stats.member_demotions = self.health.demotions();
        Ok(decisions)
    }

    /// Feeds the real tier-1 gate scores of a screened batch back to
    /// the owning shards: the carried scores tier-0 suppression reuses,
    /// and the per-vehicle refresh-streak reset. A gateless server
    /// skips this entirely so the ungated baseline pays nothing.
    fn record_gates(&self, meta: &[PendingWindow], gate_scores: &[f32]) {
        if self.tier0.is_none() {
            return;
        }
        let n_shards = self.shards.len();
        for (w, &g) in meta.iter().zip(gate_scores) {
            self.shards[shard_for(w.vehicle, n_shards)]
                .lock()
                .record_gate(w.vehicle, g);
        }
    }

    /// Scores one admitted (sub-)batch through the tier-1 → tier-2
    /// pipeline under `policy`, emitting one decision per `meta` entry
    /// in order and maintaining the per-tier counters: every window here
    /// lands in `tier1_screened` or `tier2_escalated` depending on which
    /// path produced its final score.
    fn score_windows(
        &mut self,
        batch: &[f32],
        meta: &[PendingWindow],
        policy: EscalationPolicy,
        members: &[usize],
        gate_members: &[usize],
        dropped_union: &mut Vec<usize>,
    ) -> Result<Vec<Decision>, ServeError> {
        let n = meta.len();
        debug_assert_eq!(batch.len(), n * self.window_len);
        match policy {
            EscalationPolicy::Always => {
                let (scores, threshold, dropped) = self.score_tiled(batch, n, false, members)?;
                dropped_union.extend(dropped);
                self.stats.escalated += n as u64;
                self.stats.tier2_escalated += n as u64;
                Ok(meta
                    .iter()
                    .zip(&scores)
                    .map(|(w, &score)| Decision {
                        vehicle: w.vehicle,
                        timestamp: w.timestamp,
                        score,
                        threshold,
                        escalated: true,
                        flagged: score > threshold,
                        suppressed: false,
                    })
                    .collect())
            }
            EscalationPolicy::Never => {
                let (scores, threshold, dropped) =
                    self.score_tiled(batch, n, true, gate_members)?;
                dropped_union.extend(dropped);
                self.record_gates(meta, &scores);
                self.stats.tier1_screened += n as u64;
                Ok(meta
                    .iter()
                    .zip(&scores)
                    .map(|(w, &score)| Decision {
                        vehicle: w.vehicle,
                        timestamp: w.timestamp,
                        score,
                        threshold,
                        escalated: false,
                        flagged: score > threshold,
                        suppressed: false,
                    })
                    .collect())
            }
            EscalationPolicy::Threshold(tau_esc) => {
                let (gate_scores, gate_tau, dropped) =
                    self.score_tiled(batch, n, true, gate_members)?;
                dropped_union.extend(dropped);
                self.record_gates(meta, &gate_scores);
                let escalate: Vec<usize> = (0..n).filter(|&i| gate_scores[i] > tau_esc).collect();
                let mut decisions: Vec<Decision> = meta
                    .iter()
                    .zip(&gate_scores)
                    .map(|(w, &score)| Decision {
                        vehicle: w.vehicle,
                        timestamp: w.timestamp,
                        score,
                        threshold: gate_tau,
                        escalated: false,
                        flagged: false,
                        suppressed: false,
                    })
                    .collect();
                if !escalate.is_empty() {
                    let mut sub = Vec::with_capacity(escalate.len() * self.window_len);
                    for &i in &escalate {
                        sub.extend_from_slice(
                            &batch[i * self.window_len..(i + 1) * self.window_len],
                        );
                    }
                    let (scores, threshold, dropped) =
                        self.score_tiled(&sub, escalate.len(), false, members)?;
                    dropped_union.extend(dropped);
                    for (&i, &score) in escalate.iter().zip(&scores) {
                        decisions[i].score = score;
                        decisions[i].threshold = threshold;
                        decisions[i].escalated = true;
                        decisions[i].flagged = score > threshold;
                    }
                    self.stats.escalated += escalate.len() as u64;
                }
                self.stats.tier1_screened += (n - escalate.len()) as u64;
                self.stats.tier2_escalated += escalate.len() as u64;
                Ok(decisions)
            }
        }
    }

    /// The policy actually applied this tick: `Threshold` steps down to
    /// `Never` while degraded; `Always` and `Never` pass through.
    fn effective_policy(&self) -> EscalationPolicy {
        match (self.mode_machine.mode, self.policy) {
            (ServeMode::Degraded, EscalationPolicy::Threshold(_)) => EscalationPolicy::Never,
            (_, p) => p,
        }
    }

    /// Scores `n` flat windows through one backend in [`SCORE_TILE`]-sized
    /// tiles, concatenating per-tile scores. Tile boundaries cannot change
    /// any score — both backends are batch-row independent — but they keep
    /// each pass's activations cache-resident. Also returns the union of
    /// members dropped for non-finite scores across tiles, so the caller
    /// can bench them.
    fn score_tiled(
        &self,
        data: &[f32],
        n: usize,
        int8: bool,
        members: &[usize],
    ) -> Result<(Vec<f32>, f32, Vec<usize>), ServeError> {
        let mut scores = Vec::with_capacity(n);
        let mut threshold = 0.0f32;
        let mut dropped: Vec<usize> = Vec::new();
        let mut start = 0;
        while start < n {
            let end = (start + SCORE_TILE).min(n);
            let tile = Tensor::from_vec(
                data[start * self.window_len..end * self.window_len].to_vec(),
                &[end - start, self.window, self.features, 1],
            );
            let r = if int8 {
                self.vehigan.score_with_members_int8(members, &tile)
            } else {
                self.vehigan.score_with_members(members, &tile)
            }
            .map_err(ServeError::Score)?;
            threshold = r.threshold;
            scores.extend_from_slice(&r.scores);
            dropped.extend(r.dropped);
            start = end;
        }
        Ok((scores, threshold, dropped))
    }

    /// Runs TTL eviction on every shard at stream time `now`, returning
    /// how many vehicles were dropped. Vehicles with pending windows are
    /// always retained.
    pub fn evict_stale(&mut self, now: f64) -> usize {
        let mut dropped = 0;
        for shard in &self.shards {
            dropped += shard.lock().evict_stale(now);
        }
        self.stats.evicted += dropped as u64;
        dropped
    }

    /// Windows queued across all shards awaiting the next tick.
    pub fn pending_windows(&self) -> usize {
        self.shards.iter().map(|s| s.lock().pending_windows()).sum()
    }

    /// Vehicles currently resident across all shards.
    pub fn num_vehicles(&self) -> usize {
        self.shards.iter().map(|s| s.lock().num_vehicles()).sum()
    }

    /// Lifetime counters (ingest/score/reject/shed/degrade/health).
    pub fn stats(&self) -> ServerStats {
        let mut stats = self.stats;
        stats.evicted = 0;
        stats.rejected = RejectCounters::default();
        stats.shed = 0;
        for shard in &self.shards {
            let g = shard.lock();
            stats.evicted += g.evicted();
            stats.rejected += g.rejects();
            stats.shed += g.shed();
        }
        stats.member_demotions = self.health.demotions();
        stats.member_reinstatements = self.health.reinstatements();
        stats
    }

    /// The pinned tier-2 ensemble member subset.
    pub fn members(&self) -> &[usize] {
        &self.members
    }

    /// The member subset the int8 tier-1 gate scores with.
    pub fn gate_members(&self) -> &[usize] {
        &self.gate_members
    }

    /// Members currently benched by serve-time health probation.
    pub fn benched_members(&self) -> Vec<usize> {
        self.health.benched()
    }

    /// Worker shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured gate policy (the effective policy may step down
    /// while degraded — see [`ServeMode`]).
    pub fn policy(&self) -> EscalationPolicy {
        self.policy
    }

    /// Current load-shedding posture.
    pub fn mode(&self) -> ServeMode {
        self.mode_machine.mode
    }

    /// The admission configuration in effect.
    pub fn admission(&self) -> AdmissionConfig {
        self.admission
    }

    /// Server ticks elapsed.
    pub fn tick_index(&self) -> u64 {
        self.tick_index
    }

    /// The ensemble this server scores with (chaos harnesses use this to
    /// reach the member poison hooks).
    pub fn vehigan(&self) -> &VehiGan {
        self.vehigan
    }

    /// Schedules a one-shot injected panic in `shard`'s next ingest
    /// worker run, *before* it touches any state — the deterministic
    /// fault the chaos harness uses to exercise panic capture. No
    /// messages are lost: the captured worker resumes from the start of
    /// its bucket.
    pub fn chaos_panic_on_ingest(&mut self, shard: usize) {
        assert!(shard < self.shards.len(), "shard index out of range");
        self.chaos_panic_shards.push(shard);
    }

    /// Toggles the monitor-poisoning chaos fault: while active, tier-0
    /// suppression verdicts are distrusted and every window screens
    /// through tier 1 — the conservative response to monitors whose
    /// state may have been corrupted. Shard monitors keep updating, so
    /// clearing the fault resumes gating immediately (no warmup gap). A
    /// no-op on a server without a tier-0 calibration.
    pub fn chaos_poison_monitors(&mut self, active: bool) {
        self.chaos_monitor_poison = active;
    }

    /// Whether the monitor-poisoning chaos fault is currently active.
    pub fn monitor_poisoned(&self) -> bool {
        self.chaos_monitor_poison
    }

    /// The tier-0 calibration the server gates with, if armed.
    pub fn tier0(&self) -> Option<Tier0Calibration> {
        self.tier0
    }

    /// Sets (or clears) the reporter identity misbehavior reports are
    /// emitted under. Useful when coverage hands a stream between RSUs
    /// mid-run; takes effect from the next tick.
    pub fn set_reporter(&mut self, reporter: Option<VehicleId>) {
        self.reporter = reporter;
    }

    /// The reporter identity currently emitting misbehavior reports.
    pub fn reporter(&self) -> Option<VehicleId> {
        self.reporter
    }

    /// Drains the misbehavior reports emitted since the last call (in
    /// decision order), for forwarding to the misbehavior authority.
    pub fn take_reports(&mut self) -> Vec<Mbr> {
        std::mem::take(&mut self.reports)
    }
}

/// Calibrates the gate's escalation threshold from benign gate scores:
/// the `p`-th percentile (e.g. 90.0), so roughly `100 − p` percent of
/// benign traffic escalates. Keep `p` below the detection percentile
/// (99) so every would-be detection crosses the gate and is confirmed by
/// the f32 ensemble — that is what bounds AUROC drift (DESIGN.md §10).
pub fn escalation_threshold(benign_gate_scores: &[f32], p: f64) -> f32 {
    vehigan_metrics::percentile(benign_gate_scores, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budgeted_take_is_proportional_and_exact() {
        // Under budget: take everything.
        assert_eq!(budgeted_take(&[3, 0, 2], Some(10)), vec![3, 0, 2]);
        assert_eq!(budgeted_take(&[3, 0, 2], None), vec![3, 0, 2]);
        // Over budget: water-filled, sums to exactly the budget, never
        // exceeds a shard's queue.
        let lens = [10, 1, 7, 0, 4];
        let take = budgeted_take(&lens, Some(9));
        assert_eq!(take.iter().sum::<usize>(), 9);
        for (t, l) in take.iter().zip(&lens) {
            assert!(t <= l);
        }
        // Deterministic.
        assert_eq!(take, budgeted_take(&lens, Some(9)));
        // Budget floor of 1.
        assert_eq!(budgeted_take(&[5, 5], Some(0)).iter().sum::<usize>(), 1);
    }

    #[test]
    fn mode_machine_degrades_and_restores_with_hysteresis() {
        let mut m = ModeMachine::new();
        // One over-budget tick is not enough (degrade_after = 2).
        assert!(!m.observe(true, 2, 3));
        assert_eq!(m.mode, ServeMode::Normal);
        // A clean tick resets the streak.
        assert!(!m.observe(false, 2, 3));
        assert!(!m.observe(true, 2, 3));
        assert_eq!(m.mode, ServeMode::Normal);
        // Two consecutive over-budget ticks degrade.
        assert!(m.observe(true, 2, 3));
        assert_eq!(m.mode, ServeMode::Degraded);
        // Restoring needs 3 consecutive clean ticks; pressure resets.
        assert!(!m.observe(false, 2, 3));
        assert!(!m.observe(false, 2, 3));
        assert!(!m.observe(true, 2, 3));
        assert!(!m.observe(false, 2, 3));
        assert!(!m.observe(false, 2, 3));
        assert_eq!(m.mode, ServeMode::Degraded);
        assert!(m.observe(false, 2, 3));
        assert_eq!(m.mode, ServeMode::Normal);
    }

    #[test]
    fn budget_from_cost_floors_at_one() {
        // 0.1 s tick, 50 µs per window, 70% utilization → 1400 windows.
        assert_eq!(AdmissionConfig::budget_from_cost(0.1, 50e-6, 0.7), 1400);
        // A cost larger than the tick still admits one window.
        assert_eq!(AdmissionConfig::budget_from_cost(0.1, 1.0, 0.5), 1);
    }
}
