//! Per-shard vehicle state: a slab of ring-buffer [`WindowBuffer`]s plus
//! the shard's pending-window queue.
//!
//! A vehicle's pseudonym is hashed to exactly one shard by [`shard_for`],
//! so all of a vehicle's BSMs are processed by the same shard in arrival
//! order and no cross-shard coordination is needed on the ingest path.
//! Each [`Shard`] appends ready snapshots to a flat `pending` buffer that
//! the server drains into one cross-vehicle batch tensor per tick.
//!
//! Two robustness layers sit in front of that buffer (DESIGN.md §11):
//!
//! - an [`IngestGuard`] validates every BSM (finiteness, optional
//!   physical range limits, per-vehicle staleness) *before* it touches
//!   window state, so one NaN field or replayed message cannot poison a
//!   snapshot — rejections are counted per [`RejectReason`] class;
//! - an optional pending-queue bound sheds the **oldest** queued window
//!   when a new one would overflow it, so a traffic burst degrades into
//!   counted, deterministic window loss instead of unbounded memory.
//!
//! [`WindowBuffer`]: vehigan_features::WindowBuffer

use std::collections::HashMap;
use vehigan_features::{
    lru_key, EvictionConfig, GateDecision, IngestGuard, MinMaxScaler, RejectCounters,
    Tier0Calibration, Tier0Monitor, WindowBuffer,
};
use vehigan_sim::{Bsm, VehicleId};

/// Maps a pseudonym to its owning shard.
///
/// Fibonacci multiplicative hashing on the raw id: pure, stateless, and
/// stable across runs, processes, and shard iteration order — the
/// property the shard-assignment proptest pins down. Changing this
/// function redistributes every vehicle, so treat it as a wire format.
pub fn shard_for(vehicle: VehicleId, n_shards: usize) -> usize {
    assert!(n_shards > 0, "shard count must be positive");
    let h = (vehicle.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 33) % n_shards as u64) as usize
}

/// A window snapshot queued for the next batch tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingWindow {
    /// Pseudonym that produced the snapshot.
    pub vehicle: VehicleId,
    /// Timestamp of the BSM that completed the window.
    pub timestamp: f64,
    /// Tier-0 verdict at window completion: `true` means the vehicle's
    /// kinematic monitors were warm and every statistic sat inside its
    /// calibrated decision interval, so the window may skip tier 1.
    /// Always `false` when the shard has no tier-0 calibration.
    pub suppressed: bool,
    /// The score a suppressed window reports in place of an ensemble
    /// score: the vehicle's last real tier-1 gate score, carried forward
    /// while the monitors certify its kinematics unchanged (recorded via
    /// [`Shard::record_gate`]). `0.0` when `suppressed` is `false`.
    pub pinned: f32,
}

#[derive(Debug)]
struct Slot {
    vehicle: VehicleId,
    buffer: WindowBuffer,
    /// Tier-0 kinematic monitor, present iff the shard was built with a
    /// calibration. Reset on out-of-order input by its own `push` and
    /// discarded wholesale with the slot on eviction.
    monitor: Option<Tier0Monitor>,
    /// Last real tier-1 gate score recorded for this vehicle (the score
    /// a suppressed window carries forward). `None` until the first
    /// screened window is scored — a vehicle's first window always runs
    /// tier-1 — and lost with the slot on eviction.
    last_gate: Option<f32>,
    /// Consecutive suppressed windows since the last recorded tier-1
    /// score; suppression requires `streak < refresh`.
    streak: u32,
    /// Windows from this vehicle sitting in `pending` (not yet drained).
    /// Eviction never removes a slot while this is non-zero.
    in_flight: usize,
}

/// One worker shard: a slab of per-vehicle window buffers and the queue
/// of snapshots awaiting the next batch tick.
#[derive(Debug)]
pub struct Shard {
    window: usize,
    features: usize,
    scaler: MinMaxScaler,
    eviction: EvictionConfig,
    guard: IngestGuard,
    /// Pending-queue bound; overflow sheds the oldest queued window.
    /// `None` = unbounded (the historical behavior).
    max_pending: Option<usize>,
    /// Tier-0 gate calibration; `None` disables the gate so every window
    /// screens through tier 1 (the historical behavior).
    tier0: Option<Tier0Calibration>,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    index: HashMap<VehicleId, usize>,
    /// Concatenated ready snapshots, `window × features` floats each, in
    /// ingestion order.
    pending: Vec<f32>,
    pending_meta: Vec<PendingWindow>,
    ingested: u64,
    evicted: u64,
    rejects: RejectCounters,
    shed: u64,
}

impl Shard {
    /// Creates an empty shard with a permissive guard and an unbounded
    /// pending queue (the historical behavior).
    pub fn new(window: usize, scaler: MinMaxScaler, eviction: EvictionConfig) -> Self {
        Self::with_guard(window, scaler, eviction, IngestGuard::permissive(), None)
    }

    /// Creates an empty shard with an explicit [`IngestGuard`] and
    /// optional pending-queue bound.
    pub fn with_guard(
        window: usize,
        scaler: MinMaxScaler,
        eviction: EvictionConfig,
        guard: IngestGuard,
        max_pending: Option<usize>,
    ) -> Self {
        let features = scaler.width();
        Shard {
            window,
            features,
            scaler,
            eviction,
            guard,
            max_pending,
            tier0: None,
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            pending: Vec::new(),
            pending_meta: Vec::new(),
            ingested: 0,
            evicted: 0,
            rejects: RejectCounters::default(),
            shed: 0,
        }
    }

    /// Arms (or disarms, with `None`) the tier-0 kinematic gate.
    ///
    /// Vehicles inserted afterwards get a fresh [`Tier0Monitor`];
    /// already-resident vehicles stay ungated (their windows keep
    /// screening through tier 1) — in practice the gate is configured at
    /// construction, before any traffic.
    pub fn with_tier0(mut self, tier0: Option<Tier0Calibration>) -> Self {
        self.tier0 = tier0;
        self
    }

    /// Ingests one BSM: validates it against the shard's [`IngestGuard`]
    /// (rejections are counted and touch no state — not even a slab slot
    /// for an unseen pseudonym), then pushes it into the sender's window
    /// buffer; if the push completes a window, queues the snapshot for
    /// the next tick, shedding the oldest queued window when the queue
    /// bound would overflow.
    ///
    /// Returns whether the message was accepted.
    pub fn ingest(&mut self, bsm: &Bsm) -> bool {
        self.ingested += 1;
        let existing = self.index.get(&bsm.vehicle_id).copied();
        // last_seen is NEG_INFINITY before a vehicle's first push;
        // filtering to finite makes both "new vehicle" and "no push yet"
        // skip the staleness check.
        let last_seen = existing
            .map(|i| self.slot(i).buffer.last_seen())
            .filter(|t| t.is_finite());
        if let Err(reason) = self.guard.validate(bsm, last_seen) {
            self.rejects.count(reason);
            return false;
        }
        let slot_idx = match existing {
            Some(i) => i,
            None => self.insert_vehicle(bsm.vehicle_id),
        };
        let tier0 = self.tier0;
        let slot = self.slots[slot_idx].as_mut().expect("indexed slot is live");
        if let Some(monitor) = slot.monitor.as_mut() {
            monitor.push(bsm);
        }
        if slot.buffer.push(bsm).is_some() {
            // Evaluate the gate at window completion, while the slot
            // borrow is live; a missing calibration or monitor screens.
            // Physics alone is not enough to suppress: the vehicle must
            // also hold a fresh (streak < refresh) sub-detection tier-1
            // score to carry forward, so its first window — and at least
            // every `refresh + 1`-th thereafter — runs the real gate.
            let (suppressed, pinned) = match (tier0, slot.monitor.as_ref()) {
                (Some(cal), Some(monitor)) => match (cal.evaluate(monitor).0, slot.last_gate) {
                    (GateDecision::Suppress, Some(g))
                        if g < cal.tau && slot.streak < cal.refresh =>
                    {
                        (true, g)
                    }
                    _ => (false, 0.0),
                },
                _ => (false, 0.0),
            };
            if let Some(cap) = self.max_pending {
                let cap = cap.max(1);
                if self.pending_meta.len() >= cap {
                    let over = self.pending_meta.len() + 1 - cap;
                    self.shed_oldest(over);
                }
            }
            let slot = self.slots[slot_idx].as_mut().expect("indexed slot is live");
            if suppressed {
                slot.streak += 1;
            }
            let snap = slot
                .buffer
                .snapshot_slice()
                .expect("push returned a snapshot");
            self.pending.extend_from_slice(snap);
            self.pending_meta.push(PendingWindow {
                vehicle: bsm.vehicle_id,
                timestamp: bsm.timestamp,
                suppressed,
                pinned,
            });
            slot.in_flight += 1;
        }
        true
    }

    fn slot(&self, idx: usize) -> &Slot {
        self.slots[idx].as_ref().expect("indexed slot is live")
    }

    /// Records the real tier-1 gate score of a screened window back onto
    /// the vehicle's slot: the carried score its suppressed windows will
    /// reuse, and the refresh-streak reset. A vanished vehicle (evicted
    /// between snapshot and tick) is a no-op — its rebuilt slot starts
    /// with no carried score and screens until tier-1 runs again.
    pub fn record_gate(&mut self, vehicle: VehicleId, score: f32) {
        if let Some(&i) = self.index.get(&vehicle) {
            if let Some(slot) = self.slots[i].as_mut() {
                slot.last_gate = Some(score);
                slot.streak = 0;
            }
        }
    }

    /// Allocates a slab slot for a new pseudonym, evicting the
    /// least-recently-updated *idle* vehicle first when the shard is at
    /// its `max_vehicles` bound. A vehicle with in-flight pending windows
    /// is never evicted, so the slab can transiently exceed the bound
    /// rather than drop undrained work.
    fn insert_vehicle(&mut self, vehicle: VehicleId) -> usize {
        if let Some(cap) = self.eviction.max_vehicles {
            if self.index.len() >= cap.max(1) {
                self.evict_lru_idle();
            }
        }
        let buffer = WindowBuffer::new(self.window, self.scaler.clone());
        let slot = Slot {
            vehicle,
            buffer,
            monitor: self.tier0.map(|cal| Tier0Monitor::new(cal.params)),
            last_gate: None,
            streak: 0,
            in_flight: 0,
        };
        let idx = match self.free.pop() {
            Some(i) => {
                self.slots[i] = Some(slot);
                i
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        };
        self.index.insert(vehicle, idx);
        idx
    }

    /// Evicts the least-recently-updated vehicle with no pending windows
    /// (ties broken by pseudonym; a NaN `last_seen` counts as oldest via
    /// [`lru_key`] instead of panicking the sweep). A no-op when every
    /// vehicle has in-flight work.
    fn evict_lru_idle(&mut self) {
        let victim = self
            .slots
            .iter()
            .flatten()
            .filter(|s| s.in_flight == 0)
            .map(|s| (lru_key(s.buffer.last_seen()), s.vehicle))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(_, id)| id);
        if let Some(id) = victim {
            self.remove(id);
            self.evicted += 1;
        }
    }

    /// Drops vehicles whose TTL expired at stream time `now`, skipping
    /// any with in-flight pending windows. Returns how many were evicted.
    pub fn evict_stale(&mut self, now: f64) -> usize {
        if self.eviction.ttl_s.is_none() {
            return 0;
        }
        let stale: Vec<VehicleId> = self
            .slots
            .iter()
            .flatten()
            .filter(|s| s.in_flight == 0 && self.eviction.is_stale(s.buffer.last_seen(), now))
            .map(|s| s.vehicle)
            .collect();
        for id in &stale {
            self.remove(*id);
        }
        self.evicted += stale.len() as u64;
        stale.len()
    }

    fn remove(&mut self, vehicle: VehicleId) {
        if let Some(idx) = self.index.remove(&vehicle) {
            self.slots[idx] = None;
            self.free.push(idx);
        }
    }

    fn dec_in_flight(&mut self, vehicle: VehicleId) {
        if let Some(&idx) = self.index.get(&vehicle) {
            if let Some(slot) = self.slots[idx].as_mut() {
                slot.in_flight = slot.in_flight.saturating_sub(1);
            }
        }
    }

    /// Removes the `n` **oldest** queued windows without scoring them
    /// (admission-control shedding), clearing their in-flight marks so
    /// eviction sees the truth. Returns how many were shed.
    ///
    /// Oldest-first is the deterministic drop-head policy: under
    /// overload the stalest backlog is sacrificed so freshly completed
    /// windows — the ones a detection would still be actionable for —
    /// keep flowing.
    pub fn shed_oldest(&mut self, n: usize) -> usize {
        let n = n.min(self.pending_meta.len());
        if n == 0 {
            return 0;
        }
        let len = self.window_len();
        self.pending.drain(..n * len);
        let meta: Vec<PendingWindow> = self.pending_meta.drain(..n).collect();
        for w in &meta {
            self.dec_in_flight(w.vehicle);
        }
        self.shed += n as u64;
        n
    }

    /// Takes up to `n` of the **oldest** queued windows for scoring
    /// (FIFO service order), leaving the rest queued for later ticks and
    /// clearing the taken windows' in-flight marks.
    pub fn take_pending(&mut self, n: usize) -> (Vec<f32>, Vec<PendingWindow>) {
        let n = n.min(self.pending_meta.len());
        if n == self.pending_meta.len() {
            let floats = std::mem::take(&mut self.pending);
            let meta = std::mem::take(&mut self.pending_meta);
            for w in &meta {
                self.dec_in_flight(w.vehicle);
            }
            return (floats, meta);
        }
        let len = self.window_len();
        let floats: Vec<f32> = self.pending.drain(..n * len).collect();
        let meta: Vec<PendingWindow> = self.pending_meta.drain(..n).collect();
        for w in &meta {
            self.dec_in_flight(w.vehicle);
        }
        (floats, meta)
    }

    /// Drains the whole pending queue: the flat snapshot floats and their
    /// metadata, in ingestion order. Clears all in-flight marks.
    pub fn drain_pending(&mut self) -> (Vec<f32>, Vec<PendingWindow>) {
        let n = self.pending_meta.len();
        self.take_pending(n)
    }

    /// Number of snapshots awaiting the next tick.
    pub fn pending_windows(&self) -> usize {
        self.pending_meta.len()
    }

    /// Number of vehicles currently resident in the slab.
    pub fn num_vehicles(&self) -> usize {
        self.index.len()
    }

    /// Whether `vehicle` is resident in this shard.
    pub fn contains(&self, vehicle: VehicleId) -> bool {
        self.index.contains_key(&vehicle)
    }

    /// Whether `vehicle` currently has pending (undrained) windows.
    pub fn has_in_flight(&self, vehicle: VehicleId) -> bool {
        self.index
            .get(&vehicle)
            .and_then(|&i| self.slots[i].as_ref())
            .is_some_and(|s| s.in_flight > 0)
    }

    /// BSMs processed by this shard since construction (accepted and
    /// rejected alike).
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    /// Vehicles evicted by LRU or TTL since construction.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Rejections by the shard's [`IngestGuard`], per reason class.
    pub fn rejects(&self) -> RejectCounters {
        self.rejects
    }

    /// Windows shed by the pending-queue bound or admission control.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Floats per snapshot (`window × features`).
    pub fn window_len(&self) -> usize {
        self.window * self.features
    }
}
