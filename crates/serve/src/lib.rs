//! # vehigan-serve — city-scale streaming detection service
//!
//! VehiGAN's deployment story (paper §III-C) is an RSU or OBU that
//! refreshes each vehicle's rolling feature window on every arriving BSM
//! and scores the refreshed snapshot. This crate turns that per-message,
//! per-vehicle loop into a line-rate data plane:
//!
//! - **Sharded state** — per-vehicle [`WindowBuffer`]s live in worker
//!   shards ([`Shard`]); a pseudonym is hashed to one shard by
//!   [`shard_for`], so ingest parallelizes across shards with no
//!   cross-shard locks and per-vehicle message order is preserved.
//! - **Batched scoring** — instead of scoring windows one at a time,
//!   [`StreamServer::tick`] packs every ready snapshot from every shard
//!   into a single `[n, w, f, 1]` batch tensor per tick.
//! - **Two-tier gate** — the batch first flows through the fused int8
//!   ensemble as a cheap tier-1 gate; only windows whose gate score
//!   crosses an [`EscalationPolicy::Threshold`] are re-scored by the full
//!   f32 k-of-m ensemble. See [`escalation_threshold`] for calibration.
//! - **Tier-0 kinematic gate** (DESIGN.md §12) — with a
//!   [`vehigan_features::Tier0Calibration`] in [`ServerConfig::tier0`],
//!   per-vehicle O(1) CUSUM/EWMA physics monitors run alongside each
//!   window buffer; windows whose monitors are warm and in-interval skip
//!   tier 1 entirely and emit a monitor-implied benign score, while any
//!   tripped monitor or cold/rebuilt buffer conservatively falls through
//!   to the full tier-1 → tier-2 path.
//! - **Bounded memory** — shards reuse the [`EvictionConfig`] TTL/LRU
//!   policy from `vehigan-features`, and never evict a vehicle with
//!   undrained pending windows.
//! - **Overload resilience** (DESIGN.md §11) — an [`AdmissionConfig`]
//!   window budget with bounded per-shard queues sheds the oldest
//!   backlog deterministically under burst, and a [`ServeMode`]
//!   hysteresis machine steps a `Threshold` policy down to gate-only
//!   scoring while pressure is sustained.
//! - **Misbehavior reporting** — with a reporter identity in
//!   [`ServerConfig::reporter`], every flagged tier-2 escalation emits a
//!   [`vehigan_mbr::Mbr`] carrying the scored window as evidence;
//!   [`StreamServer::take_reports`] drains them for forwarding to the
//!   misbehavior authority, closing the BSM → detection → report →
//!   revocation loop.
//! - **Fault resilience** — shard ingest guards
//!   ([`vehigan_features::IngestGuard`]) reject malformed/stale BSMs
//!   before they touch window state; panicking ingest workers are
//!   captured and resumed; members returning non-finite scores are
//!   benched and later reinstated ([`MemberHealth`]). The [`chaos`]
//!   module drives all of these faults deterministically.
//!
//! Scoring is deterministic: shards are drained in index order, both
//! scoring backends are batch-row independent, and the member subset is
//! pinned at construction — so serve output is bitwise identical to the
//! serial `StreamTracker` + `score_with_members` reference path (proven
//! by `tests/determinism.rs`), and a faulted server recovers to
//! bitwise-identical scoring once its faults clear (proven by
//! `tests/chaos.rs`).
//!
//! [`WindowBuffer`]: vehigan_features::WindowBuffer
//! [`EvictionConfig`]: vehigan_features::EvictionConfig

pub mod chaos;
pub mod health;
pub mod server;
pub mod shard;

pub use chaos::{ChaosReport, ChaosRunner, FaultPlan, TickRecord};
pub use health::MemberHealth;
pub use server::{
    escalation_threshold, AdmissionConfig, Decision, EscalationPolicy, IngestReport, ServeError,
    ServeMode, ServerConfig, ServerStats, StreamServer, SCORE_TILE,
};
pub use shard::{shard_for, PendingWindow, Shard};
