//! Deterministic fault injection for the stream plane (DESIGN.md §11).
//!
//! A [`FaultPlan`] is a seeded, tick-indexed schedule of every fault
//! class the serve plane defends against:
//!
//! - **member poisoning** — an ensemble member's scores go NaN for a
//!   range of ticks (via [`VehiGan::chaos_poison_member`]), exercising
//!   per-batch member dropping and [`MemberHealth`] probation;
//! - **shard-ingest panics** — a shard's ingest worker panics before
//!   touching state (via [`StreamServer::chaos_panic_on_ingest`]),
//!   exercising panic capture and zero-loss resume;
//! - **malformed bursts** — BSMs with non-finite or out-of-range fields
//!   spoofing real pseudonyms, exercising the ingest guard (the plan
//!   assumes a guard with [`FieldLimits::rsu`]-style range limits — a
//!   limitless guard would *accept* the out-of-range portion);
//! - **replay/clock-skew bursts** — copies of in-flight messages with
//!   timestamps shifted into the past, modeling a replaying attacker or
//!   a sender with a lagging clock, exercising staleness rejection;
//! - **overload bursts** — time compression: `multiplier` tick-slices
//!   of traffic delivered per server tick, exercising admission
//!   control, shedding, and degraded-mode tiering;
//! - **monitor poisoning** — the tier-0 kinematic gate's verdicts are
//!   distrusted for a range of ticks (via
//!   [`StreamServer::chaos_poison_monitors`]), forcing every window
//!   through tier 1 — the conservative posture when monitor state may
//!   be corrupted — and exercising the gate's clean re-engagement.
//!
//! All injection is derived from the plan's seed and tick indices —
//! never from wall clock or a global RNG — so a chaos run is exactly
//! reproducible, which is what lets `tests/chaos.rs` assert the server
//! returns to **bitwise-identical** scoring after the faults clear.
//!
//! Injected faults are always *additions* to the real stream (extra
//! messages, transient flags), never mutations of it: every real BSM is
//! still delivered, in order, exactly once. Since rejected messages
//! touch no window state and captured panics lose no messages, the
//! per-vehicle window sequence under faults is identical to the healthy
//! run — the invariant the recovery assertion rests on.
//!
//! [`VehiGan::chaos_poison_member`]: vehigan_core::VehiGan::chaos_poison_member
//! [`MemberHealth`]: crate::health::MemberHealth
//! [`FieldLimits::rsu`]: vehigan_features::FieldLimits::rsu

use crate::server::{Decision, ServeMode, ServerStats, StreamServer};
use vehigan_features::RejectCounters;
use vehigan_sim::{Bsm, BSM_INTERVAL_S};

/// Splitmix64: a tiny, seedable, allocation-free PRNG. Used instead of
/// the `rand` crate so fault generation is a pure function of the plan
/// seed with no dependency on RNG crate versioning.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be positive.
    fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// A member-poisoning window: `member` returns NaN scores for server
/// ticks in `[from, to]` (0-based, inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemberPoison {
    /// Global ensemble member index.
    pub member: usize,
    /// First poisoned tick.
    pub from: u64,
    /// Last poisoned tick.
    pub to: u64,
}

/// A tick-indexed, seeded fault schedule. Build with the chainable
/// `with_*` methods; run with [`ChaosRunner`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for malformed/replay message generation.
    pub seed: u64,
    /// Member NaN-poisoning windows.
    pub member_poison: Vec<MemberPoison>,
    /// `(tick, shard)` injected ingest-worker panics.
    pub shard_panics: Vec<(u64, usize)>,
    /// `(tick, count)` malformed-BSM bursts.
    pub malformed_bursts: Vec<(u64, u32)>,
    /// `(tick, count, skew_s)` replay bursts: copies of in-flight
    /// messages shifted `skew_s` seconds into the past.
    pub replay_bursts: Vec<(u64, u32, f64)>,
    /// `(from, to, multiplier)` overload windows: deliver `multiplier`
    /// tick-slices of traffic per server tick (inclusive tick range).
    pub overload: Vec<(u64, u64, usize)>,
    /// `(from, to)` tier-0 monitor-poisoning windows (inclusive): the
    /// server distrusts suppression verdicts and screens every window
    /// through tier 1 while active.
    pub monitor_poison: Vec<(u64, u64)>,
}

impl FaultPlan {
    /// An empty plan (a healthy run) with the given generation seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Poisons `member`'s scores to NaN for ticks `[from, to]`.
    pub fn with_member_poison(mut self, member: usize, from: u64, to: u64) -> Self {
        self.member_poison.push(MemberPoison { member, from, to });
        self
    }

    /// Panics `shard`'s ingest worker at `tick` (before it touches
    /// state, so no messages are lost).
    pub fn with_shard_panic(mut self, tick: u64, shard: usize) -> Self {
        self.shard_panics.push((tick, shard));
        self
    }

    /// Injects `count` malformed BSMs (non-finite and out-of-range
    /// fields, spoofing live pseudonyms) at `tick`.
    pub fn with_malformed_burst(mut self, tick: u64, count: u32) -> Self {
        self.malformed_bursts.push((tick, count));
        self
    }

    /// Injects `count` replayed copies of live messages at `tick`, each
    /// shifted `skew_s` seconds into the past (`skew_s >= 0`).
    pub fn with_replay_burst(mut self, tick: u64, count: u32, skew_s: f64) -> Self {
        assert!(skew_s >= 0.0, "replay skew must shift into the past");
        self.replay_bursts.push((tick, count, skew_s));
        self
    }

    /// Delivers `multiplier`× traffic for ticks `[from, to]`.
    pub fn with_overload(mut self, from: u64, to: u64, multiplier: usize) -> Self {
        assert!(multiplier >= 1, "overload multiplier must be at least 1");
        self.overload.push((from, to, multiplier));
        self
    }

    /// Distrusts tier-0 monitor verdicts for ticks `[from, to]`: every
    /// window screens through tier 1 while active (the conservative
    /// response to possibly-corrupted monitor state). A no-op against a
    /// server without a tier-0 calibration.
    pub fn with_monitor_poison(mut self, from: u64, to: u64) -> Self {
        self.monitor_poison.push((from, to));
        self
    }

    /// Whether tier-0 monitor poisoning is in effect at `tick`.
    pub fn monitor_poison_at(&self, tick: u64) -> bool {
        self.monitor_poison
            .iter()
            .any(|&(from, to)| from <= tick && tick <= to)
    }

    /// Traffic multiplier in effect at `tick` (1 outside overload
    /// windows).
    pub fn multiplier_at(&self, tick: u64) -> usize {
        self.overload
            .iter()
            .filter(|&&(from, to, _)| from <= tick && tick <= to)
            .map(|&(_, _, m)| m)
            .max()
            .unwrap_or(1)
    }

    /// Whether any fault is scheduled at `tick`.
    pub fn faulty_at(&self, tick: u64) -> bool {
        self.member_poison
            .iter()
            .any(|p| p.from <= tick && tick <= p.to)
            || self.shard_panics.iter().any(|&(t, _)| t == tick)
            || self.malformed_bursts.iter().any(|&(t, _)| t == tick)
            || self.replay_bursts.iter().any(|&(t, _, _)| t == tick)
            || self.multiplier_at(tick) > 1
            || self.monitor_poison_at(tick)
    }

    /// The last tick with any scheduled fault (0 for an empty plan).
    /// Queue pressure can outlive this tick while backlog drains.
    pub fn last_fault_tick(&self) -> u64 {
        let mut last = 0;
        for p in &self.member_poison {
            last = last.max(p.to);
        }
        for &(t, _) in &self.shard_panics {
            last = last.max(t);
        }
        for &(t, _) in &self.malformed_bursts {
            last = last.max(t);
        }
        for &(t, _, _) in &self.replay_bursts {
            last = last.max(t);
        }
        for &(_, to, _) in &self.overload {
            last = last.max(to);
        }
        for &(_, to) in &self.monitor_poison {
            last = last.max(to);
        }
        last
    }

    /// Every member index mentioned in a poisoning window.
    fn poisoned_members(&self) -> Vec<usize> {
        let mut m: Vec<usize> = self.member_poison.iter().map(|p| p.member).collect();
        m.sort_unstable();
        m.dedup();
        m
    }
}

/// What happened on one server tick of a chaos run.
#[derive(Debug, Clone)]
pub struct TickRecord {
    /// 0-based server tick index (matches the plan's tick indexing).
    pub tick: u64,
    /// Real traffic tick-slices delivered (>1 during overload).
    pub slices: usize,
    /// Malformed BSMs injected this tick.
    pub injected_malformed: u64,
    /// Replayed BSMs injected this tick.
    pub injected_replays: u64,
    /// Whether a shard panic was injected this tick.
    pub panic_injected: bool,
    /// Whether any member was poisoned this tick.
    pub poison_active: bool,
    /// Whether tier-0 monitor poisoning was in effect this tick.
    pub monitor_poisoned: bool,
    /// Whether the plan scheduled *any* fault this tick.
    pub faulted: bool,
    /// Guard rejections during this tick's ingest.
    pub rejected: RejectCounters,
    /// Windows shed during this tick's ingest (queue bounds).
    pub shed: u64,
    /// Shards whose ingest worker panicked (captured).
    pub panicked_shards: Vec<usize>,
    /// Windows still queued after the tick (backlog under pressure).
    pub pending_after: usize,
    /// Server mode after the tick.
    pub mode_after: ServeMode,
    /// Members still benched by health probation after the tick.
    pub benched_after: Vec<usize>,
    /// Decisions emitted, or the typed scoring error's rendering.
    pub outcome: Result<Vec<Decision>, String>,
}

/// The full trace of a chaos run. The runner returning at all is the
/// liveness assertion: every fault was absorbed without the server
/// process going down.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Per-tick trace, in tick order (includes post-stream drain ticks).
    pub ticks: Vec<TickRecord>,
    /// Server counters at the end of the run.
    pub stats: ServerStats,
}

impl ChaosReport {
    /// All decisions across the run, flattened in tick order.
    pub fn decisions(&self) -> Vec<Decision> {
        self.ticks
            .iter()
            .filter_map(|t| t.outcome.as_ref().ok())
            .flatten()
            .copied()
            .collect()
    }

    /// Ticks whose scoring returned a typed error.
    pub fn errored_ticks(&self) -> Vec<u64> {
        self.ticks
            .iter()
            .filter(|t| t.outcome.is_err())
            .map(|t| t.tick)
            .collect()
    }
}

/// Drives a [`StreamServer`] through a BSM stream while injecting a
/// [`FaultPlan`]'s faults at their scheduled ticks.
pub struct ChaosRunner {
    plan: FaultPlan,
}

impl ChaosRunner {
    /// Creates a runner for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        ChaosRunner { plan }
    }

    /// Runs `server` over `stream` (timestamp-sorted, 10 Hz cadence),
    /// one server tick per [`BSM_INTERVAL_S`] slice of traffic —
    /// compressed to `multiplier` slices per tick during overload —
    /// then keeps ticking until all backlog drains (bounded at 1024
    /// drain ticks). Poison flags are always cleared before returning.
    pub fn run(&self, server: &mut StreamServer<'_>, stream: &[Bsm]) -> ChaosReport {
        let slices = slice_stream(stream);
        let poisoned = self.plan.poisoned_members();
        let mut rng = SplitMix64(self.plan.seed ^ 0xC3A5_C85C_97CB_3127);
        let mut ticks = Vec::new();
        let mut cursor = 0usize;
        let mut tick = 0u64;
        let mut drain_ticks = 0u32;
        loop {
            let mult = self.plan.multiplier_at(tick);
            let mut batch: Vec<Bsm> = Vec::new();
            let mut consumed = 0usize;
            while consumed < mult && cursor < slices.len() {
                batch.extend_from_slice(&slices[cursor]);
                cursor += 1;
                consumed += 1;
            }
            if consumed == 0 {
                // Stream exhausted: drain remaining backlog.
                if server.pending_windows() == 0 || drain_ticks >= 1024 {
                    break;
                }
                drain_ticks += 1;
            }

            for &m in &poisoned {
                let active = self
                    .plan
                    .member_poison
                    .iter()
                    .any(|p| p.member == m && p.from <= tick && tick <= p.to);
                server.vehigan().chaos_poison_member(m, active);
            }
            let mut panic_injected = false;
            for &(t, shard) in &self.plan.shard_panics {
                if t == tick {
                    server.chaos_panic_on_ingest(shard);
                    panic_injected = true;
                }
            }
            let monitor_poisoned = self.plan.monitor_poison_at(tick);
            server.chaos_poison_monitors(monitor_poisoned);

            let mut injected_malformed = 0u64;
            let mut injected_replays = 0u64;
            // Injected messages are drawn from (and appended after) the
            // tick's *real* traffic, so every original is processed
            // before its corrupted copy and each copy's reject class is
            // exact: malformed → NonFinite/OutOfRange, replay → Stale.
            let real_len = batch.len();
            if real_len > 0 {
                for &(t, count) in &self.plan.malformed_bursts {
                    if t == tick {
                        for _ in 0..count {
                            let mal = malform(&batch[rng.below(real_len)], &mut rng);
                            batch.push(mal);
                            injected_malformed += 1;
                        }
                    }
                }
                for &(t, count, skew) in &self.plan.replay_bursts {
                    if t == tick {
                        for _ in 0..count {
                            let mut replay = batch[rng.below(real_len)];
                            replay.timestamp -= skew;
                            batch.push(replay);
                            injected_replays += 1;
                        }
                    }
                }
            }

            let report = server.ingest_batch(&batch);
            let outcome = server.tick().map_err(|e| e.to_string());
            ticks.push(TickRecord {
                tick,
                slices: consumed,
                injected_malformed,
                injected_replays,
                panic_injected,
                poison_active: poisoned.iter().any(|&m| {
                    self.plan
                        .member_poison
                        .iter()
                        .any(|p| p.member == m && p.from <= tick && tick <= p.to)
                }),
                monitor_poisoned,
                faulted: self.plan.faulty_at(tick),
                rejected: report.rejected,
                shed: report.shed,
                panicked_shards: report.panicked_shards,
                pending_after: server.pending_windows(),
                mode_after: server.mode(),
                benched_after: server.benched_members(),
                outcome,
            });
            tick += 1;
        }
        for &m in &poisoned {
            server.vehigan().chaos_poison_member(m, false);
        }
        server.chaos_poison_monitors(false);
        ChaosReport {
            ticks,
            stats: server.stats(),
        }
    }
}

/// Groups a timestamp-sorted stream into [`BSM_INTERVAL_S`] tick slices
/// relative to the first message.
fn slice_stream(stream: &[Bsm]) -> Vec<Vec<Bsm>> {
    let mut slices: Vec<Vec<Bsm>> = Vec::new();
    let Some(first) = stream.first() else {
        return slices;
    };
    let t0 = first.timestamp;
    for bsm in stream {
        let idx = ((bsm.timestamp - t0) / BSM_INTERVAL_S).floor().max(0.0) as usize;
        while slices.len() <= idx {
            slices.push(Vec::new());
        }
        slices[idx].push(*bsm);
    }
    slices
}

/// Produces a malformed copy of a live message: spoofs the pseudonym
/// with a slightly advanced timestamp and corrupts one field. Kinds 0–2
/// are non-finite (rejected by any guard); kind 3 is finite but
/// physically absurd (rejected only by a guard with range limits).
fn malform(template: &Bsm, rng: &mut SplitMix64) -> Bsm {
    let mut bsm = *template;
    bsm.timestamp += BSM_INTERVAL_S * 0.25;
    match rng.below(4) {
        0 => bsm.pos_x = f64::NAN,
        1 => bsm.speed = f64::INFINITY,
        2 => bsm.yaw_rate = f64::NAN,
        _ => bsm.speed = 900.0,
    }
    bsm
}

#[cfg(test)]
mod tests {
    use super::*;
    use vehigan_sim::VehicleId;

    #[test]
    fn plan_schedule_queries() {
        let plan = FaultPlan::new(7)
            .with_member_poison(2, 10, 12)
            .with_shard_panic(11, 0)
            .with_malformed_burst(13, 5)
            .with_replay_burst(14, 3, 2.0)
            .with_overload(15, 16, 4)
            .with_monitor_poison(17, 18);
        assert_eq!(plan.multiplier_at(14), 1);
        assert_eq!(plan.multiplier_at(15), 4);
        assert_eq!(plan.multiplier_at(17), 1);
        assert!(plan.monitor_poison_at(17) && plan.monitor_poison_at(18));
        assert!(!plan.monitor_poison_at(16) && !plan.monitor_poison_at(19));
        assert!(plan.faulty_at(10) && plan.faulty_at(16) && plan.faulty_at(18));
        assert!(!plan.faulty_at(9) && !plan.faulty_at(19));
        assert_eq!(plan.last_fault_tick(), 18);
        assert_eq!(plan.poisoned_members(), vec![2]);
    }

    #[test]
    fn malformed_messages_never_pass_an_rsu_guard() {
        use vehigan_features::IngestGuard;
        let template = Bsm {
            vehicle_id: VehicleId(3),
            timestamp: 5.0,
            pos_x: 10.0,
            pos_y: 20.0,
            speed: 13.0,
            acceleration: 0.2,
            heading: 1.0,
            yaw_rate: 0.05,
        };
        let guard = IngestGuard::rsu();
        let mut rng = SplitMix64(1);
        for _ in 0..64 {
            let bad = malform(&template, &mut rng);
            assert!(
                guard.validate(&bad, None).is_err(),
                "malformed message passed the guard: {bad:?}"
            );
        }
    }

    #[test]
    fn splitmix_is_deterministic_and_bounded() {
        let (mut a, mut b) = (SplitMix64(42), SplitMix64(42));
        for bound in [1usize, 2, 7, 1000] {
            for _ in 0..32 {
                let x = a.below(bound);
                assert_eq!(x, b.below(bound));
                assert!(x < bound);
            }
        }
    }

    #[test]
    fn stream_slicing_groups_by_interval() {
        let bsm = |t: f64| Bsm {
            vehicle_id: VehicleId(1),
            timestamp: t,
            pos_x: 0.0,
            pos_y: 0.0,
            speed: 0.0,
            acceleration: 0.0,
            heading: 0.0,
            yaw_rate: 0.0,
        };
        let stream = [bsm(1.0), bsm(1.05), bsm(1.1), bsm(1.35)];
        let slices = slice_stream(&stream);
        assert_eq!(slices.len(), 4);
        assert_eq!(slices[0].len(), 2);
        assert_eq!(slices[1].len(), 1);
        assert_eq!(slices[2].len(), 0);
        assert_eq!(slices[3].len(), 1);
    }
}
