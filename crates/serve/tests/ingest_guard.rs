//! Property tests for ingest hardening (ISSUE 8 satellite): a shard
//! behind an [`IngestGuard`] never emits a window containing non-finite
//! features no matter what hostile mix of malformed, replayed, and clean
//! messages it ingests — and the bounded pending queue sheds the oldest
//! windows deterministically, never the newest.
//!
//! Why finiteness-at-ingest is sufficient: the Table II feature pipeline
//! (`decompose_pair`) is division-free arithmetic on BSM fields and the
//! scaler clamps to `[-1, 1]`, so a non-finite window feature can only
//! originate from a non-finite BSM field — which the guard rejects
//! before any state is touched.

use proptest::prelude::*;
use vehigan_features::{EvictionConfig, IngestGuard, MinMaxScaler, NUM_FEATURES};
use vehigan_serve::Shard;
use vehigan_sim::{Bsm, VehicleId};

fn test_scaler() -> MinMaxScaler {
    MinMaxScaler::fit(&[vec![-50.0; NUM_FEATURES], vec![50.0; NUM_FEATURES]])
}

fn clean_bsm(vehicle: u32, timestamp: f64) -> Bsm {
    Bsm {
        vehicle_id: VehicleId(vehicle),
        timestamp,
        pos_x: timestamp * 3.0,
        pos_y: vehicle as f64,
        speed: 10.0,
        acceleration: 0.1,
        heading: 0.3,
        yaw_rate: 0.0,
    }
}

/// One hostile event: which corruption (if any) to apply to the next
/// message of a round-robin vehicle schedule.
#[derive(Debug, Clone, Copy)]
enum Event {
    Clean,
    /// Poison field `i % 7` with NaN or ∞.
    NonFinite(u8),
    /// Physically absurd but finite (caught only by range limits).
    Absurd,
    /// Replay: reuse the vehicle's previous timestamp (stale).
    Replay,
}

fn event_strategy() -> impl Strategy<Value = Event> {
    // Clean entries repeated to bias the mix toward valid traffic (the
    // vendored proptest's prop_oneof! has no weight syntax).
    prop_oneof![
        Just(Event::Clean),
        Just(Event::Clean),
        Just(Event::Clean),
        Just(Event::Clean),
        (0u8..14).prop_map(Event::NonFinite),
        (0u8..14).prop_map(Event::NonFinite),
        Just(Event::Absurd),
        Just(Event::Replay),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn guarded_ingest_never_emits_non_finite_windows(
        events in proptest::collection::vec(event_strategy(), 1..200),
        n_vehicles in 1u32..5,
    ) {
        let window = 4usize;
        let mut shard = Shard::with_guard(
            window,
            test_scaler(),
            EvictionConfig::unbounded(),
            IngestGuard::rsu(),
            None,
        );
        let mut clocks = vec![0.0f64; n_vehicles as usize];
        let mut last_accepted = vec![None::<f64>; n_vehicles as usize];
        let mut expected_rejects = 0u64;
        for (i, &event) in events.iter().enumerate() {
            let v = i as u32 % n_vehicles;
            let clock = &mut clocks[v as usize];
            let (bsm, expect_accept) = match event {
                Event::Clean => {
                    *clock += 0.1;
                    (clean_bsm(v, *clock), true)
                }
                Event::NonFinite(field) => {
                    *clock += 0.1;
                    let mut b = clean_bsm(v, *clock);
                    let poison = if field < 7 { f64::NAN } else { f64::INFINITY };
                    match field % 7 {
                        0 => b.timestamp = poison,
                        1 => b.pos_x = poison,
                        2 => b.pos_y = poison,
                        3 => b.speed = poison,
                        4 => b.acceleration = poison,
                        5 => b.heading = poison,
                        _ => b.yaw_rate = poison,
                    }
                    (b, false)
                }
                Event::Absurd => {
                    *clock += 0.1;
                    let mut b = clean_bsm(v, *clock);
                    b.speed = 1e7;
                    (b, false)
                }
                // A copy of the vehicle's newest *accepted* timestamp:
                // stale under the strict default tolerance — unless the
                // vehicle has no accepted message yet, in which case
                // staleness cannot apply and the (clean-valued) message
                // is legitimately accepted.
                Event::Replay => match last_accepted[v as usize] {
                    Some(t) => (clean_bsm(v, t), false),
                    None => (clean_bsm(v, *clock), true),
                },
            };
            let accepted = shard.ingest(&bsm);
            prop_assert_eq!(
                accepted, expect_accept,
                "event {:?} acceptance mismatch", event
            );
            if accepted {
                last_accepted[v as usize] = Some(bsm.timestamp);
            } else {
                expected_rejects += 1;
            }
        }
        prop_assert_eq!(shard.rejects().total(), expected_rejects);
        prop_assert_eq!(shard.ingested(), events.len() as u64);

        // The property under test: every float the shard hands to the
        // scoring plane is finite.
        let (floats, meta) = shard.drain_pending();
        prop_assert_eq!(floats.len(), meta.len() * shard.window_len());
        for (i, x) in floats.iter().enumerate() {
            prop_assert!(
                x.is_finite(),
                "non-finite feature {} at flat index {} reached the scoring plane", x, i
            );
        }
    }

    #[test]
    fn bounded_queue_sheds_oldest_first_and_is_deterministic(
        n_messages in 6usize..120,
        cap in 1usize..6,
    ) {
        let window = 3usize;
        let build = || {
            let mut shard = Shard::with_guard(
                window,
                test_scaler(),
                EvictionConfig::unbounded(),
                IngestGuard::permissive(),
                Some(cap),
            );
            for i in 0..n_messages {
                shard.ingest(&clean_bsm(1, 0.1 * (i + 1) as f64));
            }
            shard
        };
        let mut shard = build();
        // One vehicle completes its first window at message `window + 1`
        // and one more per message after that.
        let windows_created = n_messages.saturating_sub(window);
        prop_assert_eq!(shard.pending_windows(), windows_created.min(cap));
        prop_assert_eq!(shard.shed(), windows_created.saturating_sub(cap) as u64);

        // The retained windows are exactly the NEWEST ones: their
        // completing timestamps are the last `cap` message timestamps.
        let (_, meta) = shard.drain_pending();
        let expected: Vec<f64> = (0..n_messages)
            .map(|i| 0.1 * (i + 1) as f64)
            .skip(window)
            .skip(windows_created.saturating_sub(cap))
            .collect();
        let got: Vec<f64> = meta.iter().map(|w| w.timestamp).collect();
        prop_assert_eq!(got, expected);

        // Deterministic: a second identical shard sheds identically.
        let mut again = build();
        prop_assert_eq!(again.shed(), shard.shed());
        prop_assert_eq!(again.drain_pending().1, meta);
    }
}
