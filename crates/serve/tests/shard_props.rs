//! Property tests for the shard layer (ISSUE 7 satellite): shard
//! assignment is a pure, stable function of the pseudonym, and
//! TTL/LRU eviction never drops a vehicle that still has in-flight
//! (undrained) pending windows.

use proptest::prelude::*;
use vehigan_features::{EvictionConfig, MinMaxScaler, NUM_FEATURES};
use vehigan_serve::{shard_for, Shard};
use vehigan_sim::{Bsm, VehicleId};

fn test_scaler() -> MinMaxScaler {
    MinMaxScaler::fit(&[vec![-50.0; NUM_FEATURES], vec![50.0; NUM_FEATURES]])
}

fn bsm(vehicle: u32, timestamp: f64) -> Bsm {
    Bsm {
        vehicle_id: VehicleId(vehicle),
        timestamp,
        pos_x: timestamp * 3.0,
        pos_y: vehicle as f64,
        speed: 10.0,
        acceleration: 0.1,
        heading: 0.3,
        yaw_rate: 0.0,
    }
}

#[test]
fn shard_assignment_golden_values() {
    // shard_for is a wire format: changing the hash silently rebalances
    // every deployment, so pin concrete values.
    assert_eq!(shard_for(VehicleId(0), 8), 0);
    assert_eq!(shard_for(VehicleId(1), 8), 4);
    assert_eq!(shard_for(VehicleId(2), 8), 1);
    assert_eq!(shard_for(VehicleId(12345), 8), 5);
    assert_eq!(shard_for(VehicleId(u32::MAX), 8), 5);
    assert_eq!(shard_for(VehicleId(12345), 1), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn shard_assignment_is_stable_and_in_range(
        id in any::<u32>(),
        n_shards in 1usize..64,
    ) {
        let s = shard_for(VehicleId(id), n_shards);
        prop_assert!(s < n_shards);
        // Pure function of (id, n_shards): repeated calls agree.
        for _ in 0..3 {
            prop_assert_eq!(shard_for(VehicleId(id), n_shards), s);
        }
    }

    #[test]
    fn eviction_never_drops_vehicles_with_in_flight_windows(
        holders in proptest::collection::vec(0u32..8, 1..4),
        churn in proptest::collection::vec(100u32..200, 1..40),
        cap in 1usize..3,
    ) {
        let window = 3usize;
        let mut shard = Shard::new(
            window,
            test_scaler(),
            EvictionConfig { max_vehicles: Some(cap), ttl_s: Some(0.5) },
        );
        let mut t = 0.0f64;

        // Give each holder a completed (pending) window: window + 1 BSMs.
        let mut holders = holders;
        holders.sort_unstable();
        holders.dedup();
        for &v in &holders {
            for _ in 0..=window {
                shard.ingest(&bsm(v, t));
                t += 0.1;
            }
            prop_assert!(shard.has_in_flight(VehicleId(v)));
        }
        let pending_before = shard.pending_windows();
        prop_assert_eq!(pending_before, holders.len());

        // Hammer the shard with fresh pseudonyms (LRU pressure far past
        // the cap) and a stale-eviction sweep far past every holder's
        // TTL. Holders have undrained windows, so they must survive.
        for &v in &churn {
            shard.ingest(&bsm(v, t));
            t += 0.1;
        }
        shard.evict_stale(t + 1e6);
        for &v in &holders {
            prop_assert!(
                shard.contains(VehicleId(v)),
                "vehicle {} evicted with an in-flight window", v
            );
        }
        prop_assert_eq!(shard.pending_windows(), pending_before);

        // Draining clears the in-flight marks; now the same pressure may
        // evict the holders.
        let (floats, meta) = shard.drain_pending();
        prop_assert_eq!(meta.len(), pending_before);
        prop_assert_eq!(floats.len(), pending_before * shard.window_len());
        for &v in &holders {
            prop_assert!(!shard.has_in_flight(VehicleId(v)));
        }
        shard.evict_stale(t + 1e6);
        prop_assert_eq!(shard.num_vehicles(), 0, "post-drain TTL sweep keeps nothing");
    }

    #[test]
    fn lru_capacity_holds_for_idle_vehicles(
        ids in proptest::collection::vec(any::<u32>(), 1..60),
        cap in 1usize..5,
    ) {
        // One BSM per vehicle never completes a window, so every slot is
        // idle and the cap is a hard bound.
        let mut shard = Shard::new(
            4,
            test_scaler(),
            EvictionConfig { max_vehicles: Some(cap), ttl_s: None },
        );
        let mut t = 0.0;
        for &v in &ids {
            shard.ingest(&bsm(v, t));
            t += 0.1;
        }
        prop_assert!(shard.num_vehicles() <= cap);
    }
}
