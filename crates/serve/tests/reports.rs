//! Misbehavior-report emission (ISSUE 10): a `StreamServer` with a
//! reporter identity turns every flagged tier-2 escalation into an
//! `Mbr` that validates at the misbehavior authority, and rotating
//! observer identities corroborate to a conviction — the BSM →
//! detection → report → revocation loop end-to-end.

use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use vehigan_core::{Pipeline, PipelineConfig};
use vehigan_mbr::{AuthorityPolicy, Mbr, MisbehaviorAuthority};
use vehigan_serve::{EscalationPolicy, ServerConfig, StreamServer};
use vehigan_sim::{Bsm, VehicleId};
use vehigan_tensor::init::seeded_rng;
use vehigan_vasp::{inject, Attack, AttackParams, AttackPolicy};

fn pipeline() -> MutexGuard<'static, Pipeline> {
    static SHARED: OnceLock<Mutex<Pipeline>> = OnceLock::new();
    SHARED
        .get_or_init(|| {
            let mut p = Pipeline::run(PipelineConfig::tiny());
            p.compile_int8().expect("int8 backend compiles");
            Mutex::new(p)
        })
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Mixed stream over the held-out test fleet: vehicle 0 runs a
/// persistent position attack, the rest stay honest.
fn mixed_stream(p: &Pipeline) -> (Vec<Bsm>, VehicleId) {
    let fleet = p.test_fleet().to_vec();
    let attack = Attack::by_name("RandomPosition").expect("attack exists");
    let mut rng = seeded_rng(11);
    let attacked = inject(
        &fleet[0],
        attack,
        AttackPolicy::Persistent,
        &AttackParams::default(),
        &mut rng,
    );
    let attacker = attacked.trace.id;
    let mut stream: Vec<Bsm> = attacked
        .trace
        .bsms
        .iter()
        .chain(fleet.iter().skip(1).flat_map(|t| &t.bsms))
        .copied()
        .collect();
    stream.sort_by(|a, b| {
        a.timestamp
            .partial_cmp(&b.timestamp)
            .unwrap()
            .then(a.vehicle_id.cmp(&b.vehicle_id))
    });
    (stream, attacker)
}

fn server_config(p: &Pipeline, reporter: Option<VehicleId>) -> ServerConfig {
    ServerConfig {
        n_shards: 4,
        policy: EscalationPolicy::Always,
        members: Some((0..p.vehigan.k()).collect()),
        reporter,
        ..ServerConfig::default()
    }
}

#[test]
fn flagged_escalations_emit_validating_reports() {
    let p = pipeline();
    let (stream, _) = mixed_stream(&p);
    let rsu = VehicleId(1 << 30);
    let mut server = StreamServer::new(&p.vehigan, p.scaler.clone(), server_config(&p, Some(rsu)))
        .expect("server builds");
    let evidence_len = 10 * p.scaler.width();

    let mut flagged_escalations = 0usize;
    let mut reports: Vec<Mbr> = Vec::new();
    for chunk in stream.chunks(173) {
        server.ingest_batch(chunk);
        for d in server.tick().unwrap() {
            if d.flagged && d.escalated {
                flagged_escalations += 1;
            }
        }
        reports.extend(server.take_reports());
    }
    assert!(
        flagged_escalations > 0,
        "attacked stream produced no flagged escalations"
    );
    assert_eq!(reports.len(), flagged_escalations);
    assert_eq!(server.stats().reports_emitted, flagged_escalations as u64);
    for r in &reports {
        assert_eq!(r.reporter, rsu);
        assert!(
            r.validate(evidence_len).is_ok(),
            "emitted report fails authority validation: {:?}",
            r.validate(evidence_len)
        );
    }
    // Drained means drained.
    assert!(server.take_reports().is_empty());
}

#[test]
fn no_reporter_means_no_reports() {
    let p = pipeline();
    let (stream, _) = mixed_stream(&p);
    let mut server = StreamServer::new(&p.vehigan, p.scaler.clone(), server_config(&p, None))
        .expect("server builds");
    for chunk in stream.chunks(200) {
        server.ingest_batch(chunk);
        let _ = server.tick().unwrap();
    }
    assert!(server.take_reports().is_empty());
    assert_eq!(server.stats().reports_emitted, 0);
}

#[test]
fn rotating_reporters_corroborate_to_a_conviction() {
    let p = pipeline();
    let (stream, attacker) = mixed_stream(&p);
    // Coverage alternates between two RSU identities chunk by chunk, as
    // when the stream weaves along a cell boundary — so both observers
    // accuse inside the same corroboration window.
    let rsu_a = VehicleId(1 << 30);
    let rsu_b = VehicleId((1 << 30) + 1);
    let mut server =
        StreamServer::new(&p.vehigan, p.scaler.clone(), server_config(&p, Some(rsu_a)))
            .expect("server builds");
    let mut ma = MisbehaviorAuthority::new(AuthorityPolicy {
        min_reporters: 2,
        min_reports: 3,
        window_s: 60.0,
        evidence_len: 10 * p.scaler.width(),
        revocation_validity_s: None,
    });
    // Small chunks so the attacker's flagged burst spans several
    // coverage rotations and both observers accuse inside the window.
    for (i, chunk) in stream.chunks(61).enumerate() {
        server.set_reporter(Some(if i % 2 == 0 { rsu_a } else { rsu_b }));
        server.ingest_batch(chunk);
        let _ = server.tick().unwrap();
        let _ = ma.ingest_batch(&server.take_reports());
    }
    assert!(
        ma.crl().is_revoked(attacker, f64::MAX),
        "attacker not convicted: stats {:?}, crl len {}",
        ma.stats(),
        ma.crl().len()
    );
}
