//! Acceptance-criteria determinism tests (ISSUE 7): sharded batched
//! serve scoring must be **bitwise identical** to the serial reference —
//! pushing the same BSM stream through `StreamTracker` and scoring each
//! window alone with `VehiGan::score_with_members`.
//!
//! Why this can hold exactly: a vehicle maps to one shard (per-vehicle
//! message order preserved), shards are drained in index order, the
//! member subset is pinned, and both scoring backends are batch-row
//! independent (`vehigan_tensor::gemm` / `vehigan_lite::ensemble`
//! determinism contracts) — so sharing a tick with other vehicles'
//! windows cannot perturb a window's score.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use vehigan_core::{Pipeline, PipelineConfig};
use vehigan_features::StreamTracker;
use vehigan_serve::{EscalationPolicy, ServerConfig, StreamServer};
use vehigan_sim::Bsm;
use vehigan_tensor::init::seeded_rng;
use vehigan_vasp::{inject, Attack, AttackParams, AttackPolicy};

fn pipeline() -> MutexGuard<'static, Pipeline> {
    static SHARED: OnceLock<Mutex<Pipeline>> = OnceLock::new();
    SHARED
        .get_or_init(|| {
            let mut p = Pipeline::run(PipelineConfig::tiny());
            p.compile_int8().expect("int8 backend compiles");
            Mutex::new(p)
        })
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Interleaved mixed benign/attack stream over the held-out test fleet:
/// vehicle 0 runs a persistent position attack, the rest stay honest.
fn mixed_stream(p: &Pipeline) -> Vec<Bsm> {
    let fleet = p.test_fleet().to_vec();
    let attack = Attack::by_name("RandomPosition").expect("attack exists");
    let mut rng = seeded_rng(11);
    let attacked = inject(
        &fleet[0],
        attack,
        AttackPolicy::Persistent,
        &AttackParams::default(),
        &mut rng,
    );
    let mut stream: Vec<Bsm> = attacked
        .trace
        .bsms
        .iter()
        .chain(fleet.iter().skip(1).flat_map(|t| &t.bsms))
        .copied()
        .collect();
    // Arrival order: by timestamp, ties broken by pseudonym (stable and
    // deterministic; per-vehicle order is preserved).
    stream.sort_by(|a, b| {
        a.timestamp
            .partial_cmp(&b.timestamp)
            .unwrap()
            .then(a.vehicle_id.cmp(&b.vehicle_id))
    });
    stream
}

/// Key a decision by (pseudonym, completing-BSM timestamp bits).
fn key(vehicle: vehigan_sim::VehicleId, timestamp: f64) -> (u32, u64) {
    (vehicle.0, timestamp.to_bits())
}

#[test]
fn sharded_batched_tier2_is_bitwise_identical_to_serial_tracker() {
    let p = pipeline();
    let stream = mixed_stream(&p);
    let members: Vec<usize> = (0..p.vehigan.k()).collect();

    // Reference: serial StreamTracker, every window scored alone.
    let mut tracker = StreamTracker::new(10, p.scaler.clone());
    let mut reference: HashMap<(u32, u64), (u32, u32)> = HashMap::new();
    for bsm in &stream {
        let vehicle = bsm.vehicle_id;
        let timestamp = bsm.timestamp;
        if let Some(snapshot) = tracker.push(bsm) {
            let r = p.vehigan.score_with_members(&members, snapshot).unwrap();
            let prev = reference.insert(
                key(vehicle, timestamp),
                (r.scores[0].to_bits(), r.threshold.to_bits()),
            );
            assert!(prev.is_none(), "duplicate (vehicle, timestamp) in stream");
        }
    }
    assert!(!reference.is_empty(), "reference path emitted no windows");

    // Serve: 4 shards, parallel ingest in uneven chunks, batched tier-2
    // scoring (EscalationPolicy::Always = pure tier-2, same members).
    let mut server = StreamServer::new(
        &p.vehigan,
        p.scaler.clone(),
        ServerConfig {
            n_shards: 4,
            policy: EscalationPolicy::Always,
            members: Some(members.clone()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut decided = 0usize;
    for chunk in stream.chunks(173) {
        server.ingest_batch(chunk);
        for d in server.tick().unwrap() {
            let (score_bits, tau_bits) = reference
                .get(&key(d.vehicle, d.timestamp))
                .copied()
                .unwrap_or_else(|| panic!("serve emitted unknown window {:?}", d));
            assert_eq!(
                d.score.to_bits(),
                score_bits,
                "vehicle {:?} t={} diverged from the serial reference",
                d.vehicle,
                d.timestamp
            );
            assert_eq!(d.threshold.to_bits(), tau_bits);
            assert!(d.escalated, "Always policy must mark every window tier-2");
            decided += 1;
        }
    }
    assert_eq!(server.pending_windows(), 0, "queue did not drain");
    assert_eq!(
        decided,
        reference.len(),
        "serve emitted a different window count than the serial reference"
    );
    let stats = server.stats();
    assert_eq!(stats.ingested, stream.len() as u64);
    assert_eq!(stats.windows_scored, decided as u64);
    assert_eq!(stats.escalated, decided as u64);
}

#[test]
fn escalate_everything_threshold_equals_pure_tier2() {
    // Threshold(-inf) must be decision-for-decision identical to Always:
    // the gate runs but every window escalates and tier-2 overwrites it.
    let p = pipeline();
    let stream = mixed_stream(&p);
    let members: Vec<usize> = (0..p.vehigan.k()).collect();
    let run = |policy: EscalationPolicy| {
        let mut server = StreamServer::new(
            &p.vehigan,
            p.scaler.clone(),
            ServerConfig {
                n_shards: 3,
                policy,
                members: Some(members.clone()),
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let mut decisions = Vec::new();
        for chunk in stream.chunks(211) {
            server.ingest_batch(chunk);
            decisions.extend(server.tick().unwrap());
        }
        decisions
    };
    let tier2 = run(EscalationPolicy::Always);
    let gated = run(EscalationPolicy::Threshold(f32::NEG_INFINITY));
    assert_eq!(tier2, gated);
}

#[test]
fn calibrated_gate_escalations_match_tier2_bitwise() {
    let p = pipeline();
    let stream = mixed_stream(&p);
    let members: Vec<usize> = (0..p.vehigan.k()).collect();

    // Calibrate the escalation cutoff from the gate's view of this
    // stream's own score distribution (the bench calibrates on held-out
    // benign windows; any cutoff exercises the machinery here).
    let mut probe = StreamServer::new(
        &p.vehigan,
        p.scaler.clone(),
        ServerConfig {
            n_shards: 2,
            policy: EscalationPolicy::Never,
            members: Some(members.clone()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    probe.ingest_batch(&stream);
    let gate_scores: Vec<f32> = probe.tick().unwrap().iter().map(|d| d.score).collect();
    let tau_esc = vehigan_serve::escalation_threshold(&gate_scores, 75.0);

    let mut tier2_by_key = HashMap::new();
    let mut reference = StreamServer::new(
        &p.vehigan,
        p.scaler.clone(),
        ServerConfig {
            n_shards: 2,
            policy: EscalationPolicy::Always,
            members: Some(members.clone()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    reference.ingest_batch(&stream);
    for d in reference.tick().unwrap() {
        tier2_by_key.insert(key(d.vehicle, d.timestamp), d.score.to_bits());
    }

    let mut server = StreamServer::new(
        &p.vehigan,
        p.scaler.clone(),
        ServerConfig {
            n_shards: 2,
            policy: EscalationPolicy::Threshold(tau_esc),
            members: Some(members),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    server.ingest_batch(&stream);
    let decisions = server.tick().unwrap();
    let escalated = decisions.iter().filter(|d| d.escalated).count();
    assert!(escalated > 0, "75th-percentile cutoff escalated nothing");
    assert!(
        escalated < decisions.len(),
        "75th-percentile cutoff escalated everything"
    );
    for d in &decisions {
        if d.escalated {
            // Tier-2 re-scores must be bitwise identical to the pure
            // tier-2 run even though the escalated sub-batch has a
            // different composition.
            assert_eq!(
                d.score.to_bits(),
                tier2_by_key[&key(d.vehicle, d.timestamp)],
                "escalated window diverged from pure tier-2"
            );
        } else {
            // The gate only passes windows it scored at or below the
            // cutoff, and never flags them.
            assert!(d.score <= tau_esc);
            assert!(!d.flagged);
        }
    }
    let stats = server.stats();
    assert_eq!(stats.escalated, escalated as u64);
}
