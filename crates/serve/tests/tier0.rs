//! Tier-0 gate acceptance tests (ISSUE 9): with a [`Tier0Calibration`]
//! armed, serve output may diverge from the ungated server **only** on
//! windows the gate suppressed — every screened window must stay bitwise
//! identical to the gateless path — suppression streaks are bounded by
//! the calibration's carry-forward refresh, monitor state is rebuilt
//! from scratch across eviction, and the gate is cleanly
//! disengaged/re-engaged by the monitor-poisoning chaos fault.
//!
//! Why confinement can hold exactly: the suppression verdict is fixed at
//! window completion (ingest time), suppressed windows are spliced out
//! before scoring, and both scoring backends are batch-row independent —
//! so removing rows from a tick's batch cannot change any surviving
//! window's score.
//!
//! Suppression itself is a *serving-schedule* property, not a pure
//! function of the stream: a suppressed window re-emits the vehicle's
//! last tier-1 gate score, and that score is only recorded when a tick
//! actually scores — so re-chunking ingest (which moves window
//! completions relative to scoring ticks) may legitimately change which
//! windows carry forward. What re-chunking must never change is any
//! *screened* window's decision.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use vehigan_core::{Pipeline, PipelineConfig};
use vehigan_features::{EvictionConfig, Tier0Calibration};
use vehigan_serve::{
    ChaosRunner, Decision, EscalationPolicy, FaultPlan, ServerConfig, StreamServer,
};
use vehigan_sim::Bsm;
use vehigan_tensor::init::seeded_rng;
use vehigan_vasp::{inject, Attack, AttackParams, AttackPolicy};

fn pipeline() -> MutexGuard<'static, Pipeline> {
    static SHARED: OnceLock<Mutex<Pipeline>> = OnceLock::new();
    SHARED
        .get_or_init(|| {
            let mut p = Pipeline::run(PipelineConfig::tiny());
            p.compile_int8().expect("int8 backend compiles");
            Mutex::new(p)
        })
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// A tier-0 calibration fit on the pipeline's benign training fleet,
/// with an arbitrary-but-valid pinned score band.
fn calibration(p: &Pipeline) -> Tier0Calibration {
    let mut cal =
        Tier0Calibration::fit(p.train_fleet(), 10, 0.995).expect("tier-0 calibration fits");
    cal.set_score_band(0.05, 0.1, 0.9);
    cal
}

/// Interleaved mixed benign/attack stream over the held-out test fleet:
/// vehicle 0 runs a persistent position attack, the rest stay honest.
fn mixed_stream(p: &Pipeline) -> Vec<Bsm> {
    let fleet = p.test_fleet().to_vec();
    let attack = Attack::by_name("RandomPosition").expect("attack exists");
    let mut rng = seeded_rng(11);
    let attacked = inject(
        &fleet[0],
        attack,
        AttackPolicy::Persistent,
        &AttackParams::default(),
        &mut rng,
    );
    let mut stream: Vec<Bsm> = attacked
        .trace
        .bsms
        .iter()
        .chain(fleet.iter().skip(1).flat_map(|t| &t.bsms))
        .copied()
        .collect();
    stream.sort_by(|a, b| {
        a.timestamp
            .partial_cmp(&b.timestamp)
            .unwrap()
            .then(a.vehicle_id.cmp(&b.vehicle_id))
    });
    stream
}

/// An escalation cutoff from a gate-only probe over the stream — any
/// interior percentile exercises the three-tier machinery.
fn probe_tau_esc(p: &Pipeline, stream: &[Bsm], members: &[usize]) -> f32 {
    let mut probe = StreamServer::new(
        &p.vehigan,
        p.scaler.clone(),
        ServerConfig {
            n_shards: 2,
            policy: EscalationPolicy::Never,
            members: Some(members.to_vec()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    probe.ingest_batch(stream);
    let mut scores: Vec<f32> = Vec::new();
    loop {
        let d = probe.tick().unwrap();
        if d.is_empty() && probe.pending_windows() == 0 {
            break;
        }
        scores.extend(d.iter().map(|x| x.score));
    }
    vehigan_serve::escalation_threshold(&scores, 75.0)
}

fn key(vehicle: vehigan_sim::VehicleId, timestamp: f64) -> (u32, u64) {
    (vehicle.0, timestamp.to_bits())
}

/// Drives one gated/ungated server over the stream in `chunk`-sized
/// ingest batches and returns every decision keyed by window identity.
fn run_keyed(
    p: &Pipeline,
    stream: &[Bsm],
    config: ServerConfig,
    chunk: usize,
) -> HashMap<(u32, u64), Decision> {
    let mut server = StreamServer::new(&p.vehigan, p.scaler.clone(), config).unwrap();
    let mut out = HashMap::new();
    for c in stream.chunks(chunk) {
        server.ingest_batch(c);
        for d in server.tick().unwrap() {
            let prev = out.insert(key(d.vehicle, d.timestamp), d);
            assert!(prev.is_none(), "duplicate window decision");
        }
    }
    loop {
        let d = server.tick().unwrap();
        if d.is_empty() && server.pending_windows() == 0 {
            break;
        }
        for d in d {
            out.insert(key(d.vehicle, d.timestamp), d);
        }
    }
    let stats = server.stats();
    assert_eq!(
        stats.tier0_suppressed + stats.tier1_screened + stats.tier2_escalated,
        stats.windows_scored,
        "tier counters must partition windows_scored"
    );
    out
}

#[test]
fn divergence_confined_to_suppressed_windows() {
    let p = pipeline();
    let stream = mixed_stream(&p);
    let members: Vec<usize> = (0..p.vehigan.k()).collect();
    let tau_esc = probe_tau_esc(&p, &stream, &members);
    let cal = calibration(&p);
    let base = ServerConfig {
        n_shards: 4,
        policy: EscalationPolicy::Threshold(tau_esc),
        members: Some(members.clone()),
        ..ServerConfig::default()
    };
    let ungated = run_keyed(&p, &stream, base.clone(), 173);
    let gated = run_keyed(
        &p,
        &stream,
        ServerConfig {
            tier0: Some(cal),
            ..base
        },
        173,
    );
    assert_eq!(gated.len(), ungated.len(), "window sets differ");

    let mut suppressed = 0usize;
    let mut screened = 0usize;
    for (k, d) in &gated {
        let u = ungated[k];
        if d.suppressed {
            suppressed += 1;
            // A suppressed window re-emits the vehicle's last real
            // tier-1 gate score; carry-forward eligibility requires that
            // score to sit strictly below the calibration's τ, so a
            // suppressed window can never escalate or flag.
            assert!(!d.escalated && !d.flagged);
            assert!(
                d.score < cal.tau,
                "carried score {} not below tau {}",
                d.score,
                cal.tau
            );
            assert_eq!(d.threshold, cal.tau);
        } else {
            screened += 1;
            // Screened windows are bitwise identical to the ungated
            // server: same score, threshold, tier, and flag.
            assert_eq!(
                d.score.to_bits(),
                u.score.to_bits(),
                "screened window diverged"
            );
            assert_eq!(d.threshold.to_bits(), u.threshold.to_bits());
            assert_eq!(d.escalated, u.escalated);
            assert_eq!(d.flagged, u.flagged);
            assert!(!u.suppressed);
        }
    }
    assert!(suppressed > 0, "gate suppressed nothing — test is vacuous");
    assert!(screened > 0, "gate screened nothing — test is vacuous");

    // Carry-forward staleness bound: no vehicle strings together more
    // than `refresh` suppressed windows before tier-1 re-runs for real.
    let mut by_vehicle: HashMap<u32, Vec<(u64, bool)>> = HashMap::new();
    for (k, d) in &gated {
        by_vehicle.entry(k.0).or_default().push((k.1, d.suppressed));
    }
    for (vehicle, mut wins) in by_vehicle {
        // Positive-float bit patterns order like the floats themselves.
        wins.sort_by_key(|&(ts_bits, _)| ts_bits);
        let mut streak = 0u32;
        for (_, s) in wins {
            streak = if s { streak + 1 } else { 0 };
            assert!(
                streak <= cal.refresh,
                "vehicle {vehicle} suppressed {streak} windows in a row (refresh {})",
                cal.refresh
            );
        }
    }
}

#[test]
fn eviction_rebuilds_monitor_state_from_scratch() {
    // Evict a vehicle mid-stream, then continue its trace: the decisions
    // after re-insertion must be bitwise identical to a fresh server
    // that only ever saw the suffix — no monitor (or window) state may
    // leak across the eviction.
    let p = pipeline();
    let cal = calibration(&p);
    let members: Vec<usize> = (0..p.vehigan.k()).collect();
    let trace = &p.test_fleet()[1];
    let split = trace.bsms.len() / 2;
    let (head, tail) = trace.bsms.split_at(split);
    let config = ServerConfig {
        n_shards: 1,
        policy: EscalationPolicy::Never,
        members: Some(members.clone()),
        eviction: EvictionConfig {
            max_vehicles: None,
            ttl_s: Some(0.5),
        },
        tier0: Some(cal),
        ..ServerConfig::default()
    };

    let mut server = StreamServer::new(&p.vehigan, p.scaler.clone(), config.clone()).unwrap();
    server.ingest_batch(head);
    while !server.tick().unwrap().is_empty() {}
    let evicted = server.evict_stale(head.last().unwrap().timestamp + 10.0);
    assert_eq!(evicted, 1, "TTL eviction must drop the idle vehicle");
    server.ingest_batch(tail);
    let mut resumed: Vec<Decision> = Vec::new();
    loop {
        let d = server.tick().unwrap();
        if d.is_empty() && server.pending_windows() == 0 {
            break;
        }
        resumed.extend(d);
    }

    let mut fresh_server = StreamServer::new(&p.vehigan, p.scaler.clone(), config).unwrap();
    fresh_server.ingest_batch(tail);
    let mut fresh: Vec<Decision> = Vec::new();
    loop {
        let d = fresh_server.tick().unwrap();
        if d.is_empty() && fresh_server.pending_windows() == 0 {
            break;
        }
        fresh.extend(d);
    }
    assert!(!resumed.is_empty(), "suffix produced no windows");
    assert_eq!(resumed, fresh, "state leaked across eviction");
}

#[test]
fn monitor_poisoning_screens_everything_then_reengages_cleanly() {
    let p = pipeline();
    let stream = mixed_stream(&p);
    let members: Vec<usize> = (0..p.vehigan.k()).collect();
    let tau_esc = probe_tau_esc(&p, &stream, &members);
    let cal = calibration(&p);
    let config = ServerConfig {
        n_shards: 2,
        policy: EscalationPolicy::Threshold(tau_esc),
        members: Some(members.clone()),
        tier0: Some(cal),
        ..ServerConfig::default()
    };

    // Drive the poison window through the chaos runner so the schedule,
    // the per-tick record, and the clean re-engagement are all exercised
    // by the same machinery the chaos suite uses. The runner paces one
    // 0.1 s traffic slice per tick and the tiny fleet staggers in, so
    // the fault window sits in the steady region where every tick
    // carries suppressed decisions on both sides of it.
    const POISON_FROM: u64 = 60;
    const POISON_TO: u64 = 70;
    let mut server = StreamServer::new(&p.vehigan, p.scaler.clone(), config).unwrap();
    let plan = FaultPlan::new(3).with_monitor_poison(POISON_FROM, POISON_TO);
    let report = ChaosRunner::new(plan.clone()).run(&mut server, &stream);
    assert!(report.errored_ticks().is_empty());
    assert!(!server.monitor_poisoned(), "runner must clear the fault");

    let mut poisoned_decisions = 0usize;
    let mut suppressed_before = 0usize;
    let mut suppressed_after = 0usize;
    for t in &report.ticks {
        let decisions = t.outcome.as_ref().unwrap();
        assert_eq!(t.monitor_poisoned, plan.monitor_poison_at(t.tick));
        let suppressed = decisions.iter().filter(|d| d.suppressed).count();
        if t.monitor_poisoned {
            poisoned_decisions += decisions.len();
            assert_eq!(suppressed, 0, "tick {} suppressed while poisoned", t.tick);
        } else if t.tick < POISON_FROM {
            suppressed_before += suppressed;
        } else {
            suppressed_after += suppressed;
        }
    }
    assert!(poisoned_decisions > 0, "poison window saw no decisions");
    assert!(suppressed_before > 0, "gate never engaged before the fault");
    // Monitors keep updating while distrusted, so suppression resumes
    // as soon as the fault clears — no warmup gap.
    assert!(
        suppressed_after > 0,
        "gate never re-engaged after the fault"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Re-chunking ingest moves window completions relative to scoring
    /// ticks, which legitimately changes *which* windows the
    /// carry-forward gate suppresses — but divergence stays confined to
    /// gate-suppressed windows: every window screened in both runs is
    /// bitwise identical, any disagreement involves a suppression on at
    /// least one side, and no suppressed window ever escalates or flags.
    #[test]
    fn rechunked_ingest_diverges_only_on_suppressed_windows(chunk in 41usize..600) {
        let p = pipeline();
        let stream = mixed_stream(&p);
        let members: Vec<usize> = (0..p.vehigan.k()).collect();
        let tau_esc = probe_tau_esc(&p, &stream, &members);
        let cal = calibration(&p);
        let config = ServerConfig {
            n_shards: 3,
            policy: EscalationPolicy::Threshold(tau_esc),
            members: Some(members.clone()),
            tier0: Some(cal),
            ..ServerConfig::default()
        };
        let reference = run_keyed(&p, &stream, config.clone(), 173);
        let rechunked = run_keyed(&p, &stream, config, chunk);
        prop_assert_eq!(reference.len(), rechunked.len());
        for (k, d) in &reference {
            let r = &rechunked[k];
            if !d.suppressed && !r.suppressed {
                prop_assert_eq!(d.score.to_bits(), r.score.to_bits());
                prop_assert_eq!(d.escalated, r.escalated);
                prop_assert_eq!(d.flagged, r.flagged);
            }
            for s in [d, r].into_iter().filter(|x| x.suppressed) {
                prop_assert!(!s.escalated && !s.flagged);
                prop_assert!(s.score < cal.tau);
            }
        }
    }
}
