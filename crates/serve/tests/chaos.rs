//! Acceptance-criteria chaos tests (ISSUE 8): under a seeded fault plan
//! injecting member NaN-poisoning, a shard-ingest panic, malformed and
//! replayed BSM bursts, and a 4× overload burst, the server must
//!
//! 1. stay up — every tick returns decisions or a typed error, never a
//!    crash;
//! 2. degrade by policy — sustained pressure steps `Threshold` down to
//!    gate-only scoring with hysteresis, shedding is bounded, counted,
//!    and oldest-first;
//! 3. recover — once faults clear, scoring returns **bitwise identical**
//!    to a healthy run of the same server configuration within at most
//!    5 clean ticks.
//!
//! The recovery bound works because injected faults only ever *add*
//! messages or transient flags: rejections touch no window state and the
//! captured panic loses no messages, so both runs see the exact same
//! per-vehicle window sequence, and pinned-order member reinstatement
//! restores the exact healthy ensemble reduction.

use std::collections::HashMap;
use std::sync::{Mutex, MutexGuard, OnceLock, PoisonError};
use vehigan_core::{Pipeline, PipelineConfig};
use vehigan_features::{IngestGuard, RejectCounters};
use vehigan_serve::{
    escalation_threshold, AdmissionConfig, ChaosRunner, EscalationPolicy, FaultPlan, ServeMode,
    ServerConfig, StreamServer, TickRecord,
};
use vehigan_sim::Bsm;

fn pipeline() -> MutexGuard<'static, Pipeline> {
    static SHARED: OnceLock<Mutex<Pipeline>> = OnceLock::new();
    SHARED
        .get_or_init(|| {
            let mut p = Pipeline::run(PipelineConfig::tiny());
            p.compile_int8().expect("int8 backend compiles");
            Mutex::new(p)
        })
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

/// Interleaved benign stream over the held-out test fleet, sorted by
/// arrival (timestamp, then pseudonym). Benign-only so that with an RSU
/// guard every real message is accepted and rejection counters isolate
/// the injected faults exactly.
fn benign_stream(p: &Pipeline) -> Vec<Bsm> {
    let mut stream: Vec<Bsm> = p
        .test_fleet()
        .iter()
        .flat_map(|t| &t.bsms)
        .copied()
        .collect();
    stream.sort_by(|a, b| {
        a.timestamp
            .partial_cmp(&b.timestamp)
            .unwrap()
            .then(a.vehicle_id.cmp(&b.vehicle_id))
    });
    stream
}

/// The server-under-test configuration: deployment-grade guard, a tight
/// window budget (steady state is ~3 windows/tick for the 3-vehicle
/// test fleet, so budget 4 absorbs 1× load with headroom and drains one
/// backlogged window per tick), a pending cap with headroom *above* the
/// budget (so a 4× burst builds an over-budget backlog that trips the
/// mode machine before shedding caps it), and short hysteresis/probation
/// so recovery fits the 5-clean-tick bound.
fn chaos_config(tau_esc: f32, members: &[usize]) -> ServerConfig {
    ServerConfig {
        n_shards: 2,
        policy: EscalationPolicy::Threshold(tau_esc),
        members: Some(members.to_vec()),
        guard: IngestGuard::rsu(),
        admission: AdmissionConfig {
            windows_per_tick: Some(4),
            max_pending_per_shard: Some(8),
            degrade_after: 2,
            restore_after: 3,
        },
        probation_ticks: 3,
        ..ServerConfig::default()
    }
}

fn key(d: &vehigan_serve::Decision) -> (u32, u64) {
    (d.vehicle.0, d.timestamp.to_bits())
}

#[test]
fn faulted_server_survives_degrades_by_policy_and_recovers_bitwise() {
    let p = pipeline();
    let stream = benign_stream(&p);
    let members: Vec<usize> = (0..p.vehigan.k()).collect();

    // Sanity: the benign stream passes the deployment guard everywhere,
    // so any rejection in the chaos run is an injected message.
    let guard = IngestGuard::rsu();
    let mut last_seen: HashMap<u32, f64> = HashMap::new();
    for bsm in &stream {
        assert_eq!(
            guard.validate(bsm, last_seen.get(&bsm.vehicle_id.0).copied()),
            Ok(()),
            "benign traffic rejected by the rsu guard: {bsm:?}"
        );
        last_seen.insert(bsm.vehicle_id.0, bsm.timestamp);
    }

    // Calibrate the escalation cutoff from a gate-only probe.
    let mut probe = StreamServer::new(
        &p.vehigan,
        p.scaler.clone(),
        ServerConfig {
            n_shards: 2,
            policy: EscalationPolicy::Never,
            members: Some(members.clone()),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    probe.ingest_batch(&stream);
    let gate_scores: Vec<f32> = probe.tick().unwrap().iter().map(|d| d.score).collect();
    let tau_esc = escalation_threshold(&gate_scores, 90.0);

    // Healthy reference: the same server configuration driven by the
    // same runner with an empty fault plan.
    let mut healthy_server = StreamServer::new(
        &p.vehigan,
        p.scaler.clone(),
        chaos_config(tau_esc, &members),
    )
    .unwrap();
    let healthy = ChaosRunner::new(FaultPlan::new(99)).run(&mut healthy_server, &stream);
    assert!(healthy.errored_ticks().is_empty());
    assert_eq!(healthy.stats.shed, 0, "healthy 1x load must never shed");
    assert_eq!(healthy.stats.rejected.total(), 0);
    assert_eq!(healthy.stats.degraded_ticks, 0);
    assert_eq!(healthy.stats.shard_panics, 0);
    let mut healthy_map: HashMap<(u32, u64), (u32, u32, bool, bool)> = HashMap::new();
    for d in healthy.decisions() {
        let prev = healthy_map.insert(
            key(&d),
            (
                d.score.to_bits(),
                d.threshold.to_bits(),
                d.escalated,
                d.flagged,
            ),
        );
        assert!(prev.is_none(), "healthy run scored a window twice");
    }
    assert!(
        healthy_map.len() > 100,
        "healthy run emitted too few windows"
    );

    // The fault plan: every chaos class, all after every test-fleet
    // vehicle is live (the simulator staggers vehicle entry; the third
    // vehicle's windows start flowing ~tick 52 of ~450 — before that a
    // 4× burst of one vehicle's traffic wouldn't even exceed the
    // 4-window budget), all before tick 80.
    let plan = FaultPlan::new(7)
        .with_member_poison(members[0], 60, 63)
        .with_shard_panic(66, 0)
        .with_malformed_burst(70, 6)
        .with_replay_burst(72, 5, 2.0)
        .with_overload(76, 77, 4);
    let last_fault = plan.last_fault_tick();
    let mut faulted_server = StreamServer::new(
        &p.vehigan,
        p.scaler.clone(),
        chaos_config(tau_esc, &members),
    )
    .unwrap();
    let report = ChaosRunner::new(plan).run(&mut faulted_server, &stream);

    // 1. Liveness: the runner returned and no tick errored — every
    //    fault was absorbed as a typed, counted event.
    assert!(
        report.errored_ticks().is_empty(),
        "ticks errored: {:?}",
        report.errored_ticks()
    );

    // 2. The injected panic was captured exactly once, on the scheduled
    //    shard at the scheduled tick, and lost nothing (conservation
    //    below proves zero loss).
    assert_eq!(report.stats.shard_panics, 1);
    assert_eq!(report.ticks[66].panicked_shards, vec![0]);

    // 3. Input hardening: every injected message was rejected with its
    //    exact reason class; nothing real was rejected.
    assert_eq!(
        report.stats.rejected.stale, 5,
        "replays must reject as stale"
    );
    assert_eq!(
        report.stats.rejected.non_finite + report.stats.rejected.out_of_range,
        6,
        "malformed burst must reject as non-finite/out-of-range"
    );
    assert_eq!(report.ticks[70].rejected.total(), 6);
    assert_eq!(report.ticks[72].rejected.stale, 5);

    // 4. Degraded-mode tiering under the 4x burst: the server stepped
    //    down, shed deterministically, and stepped back up.
    assert!(report.stats.degraded_ticks >= 1, "burst never degraded");
    assert!(
        report.stats.mode_switches >= 2,
        "must both degrade and restore"
    );
    assert!(report.stats.shed > 0, "4x burst must shed");
    assert_eq!(report.ticks.last().unwrap().mode_after, ServeMode::Normal);

    // 5. Member health: the poisoned member was benched and later
    //    reinstated into its pinned position.
    assert!(report.stats.member_demotions >= 1, "poison never benched");
    assert!(
        report.stats.member_reinstatements >= 1,
        "bench never expired"
    );
    assert!(report.ticks.last().unwrap().benched_after.is_empty());

    // 6. Conservation: every window the healthy run scored was either
    //    scored (exactly once) or counted shed in the faulted run —
    //    injected faults lost nothing silently.
    let fault_decisions = report.decisions();
    assert_eq!(
        healthy_map.len(),
        fault_decisions.len() + report.stats.shed as usize,
        "windows lost without being counted shed"
    );
    {
        let mut seen: HashMap<(u32, u64), u32> = HashMap::new();
        for d in &fault_decisions {
            *seen.entry(key(d)).or_insert(0) += 1;
        }
        assert!(seen.values().all(|&c| c == 1), "a window was scored twice");
        assert!(
            seen.keys().all(|k| healthy_map.contains_key(k)),
            "faulted run emitted a window the healthy run never saw"
        );
    }

    // 7. Bitwise recovery within <= 5 clean ticks: find the 5th
    //    consecutive clean tick after the last scheduled fault; from it
    //    onward every decision must match the healthy run exactly.
    let clean = |r: &TickRecord| {
        r.tick > last_fault
            && !r.faulted
            && r.mode_after == ServeMode::Normal
            && r.benched_after.is_empty()
            && r.shed == 0
            && r.panicked_shards.is_empty()
            && r.rejected == RejectCounters::default()
    };
    let mut streak = 0u32;
    let mut recovery_tick = None;
    for r in &report.ticks {
        if clean(r) {
            streak += 1;
            if streak == 5 {
                recovery_tick = Some(r.tick);
                break;
            }
        } else {
            streak = 0;
        }
    }
    let recovery_tick = recovery_tick.expect("no run of 5 clean ticks after the last fault");
    let mut compared = 0usize;
    for r in report.ticks.iter().filter(|r| r.tick >= recovery_tick) {
        for d in r.outcome.as_ref().expect("clean ticks cannot error") {
            let (score_bits, tau_bits, escalated, flagged) = healthy_map[&key(d)];
            assert_eq!(
                d.score.to_bits(),
                score_bits,
                "post-recovery score diverged for vehicle {:?} t={}",
                d.vehicle,
                d.timestamp
            );
            assert_eq!(d.threshold.to_bits(), tau_bits);
            assert_eq!(d.escalated, escalated);
            assert_eq!(d.flagged, flagged);
            compared += 1;
        }
    }
    assert!(
        compared > 50,
        "recovery window compared only {compared} decisions"
    );
}

#[test]
fn chaos_runs_are_reproducible() {
    // Same plan + same stream + same config => identical traces, down to
    // score bits and counters. This is what makes a chaos failure
    // debuggable.
    let p = pipeline();
    let stream = benign_stream(&p);
    let members: Vec<usize> = (0..p.vehigan.k()).collect();
    let run = || {
        let plan = FaultPlan::new(21)
            .with_member_poison(members[0], 55, 57)
            .with_malformed_burst(60, 4)
            .with_overload(63, 64, 4);
        let mut server =
            StreamServer::new(&p.vehigan, p.scaler.clone(), chaos_config(0.0, &members)).unwrap();
        ChaosRunner::new(plan).run(&mut server, &stream)
    };
    let (a, b) = (run(), run());
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.decisions(), b.decisions());
    assert_eq!(a.ticks.len(), b.ticks.len());
    for (x, y) in a.ticks.iter().zip(&b.ticks) {
        assert_eq!(x.rejected, y.rejected);
        assert_eq!(x.shed, y.shed);
        assert_eq!(x.mode_after, y.mode_after);
    }
}
