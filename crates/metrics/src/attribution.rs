//! Per-tier score attribution for the tiered serving pipeline
//! (DESIGN.md §12).
//!
//! The streaming server decides every window at exactly one tier —
//! tier-0 kinematic suppression, the int8 tier-1 gate, or the f32
//! tier-2 ensemble — and any accuracy drift the tiering introduces is
//! confined to the windows whose deciding tier differs from the
//! reference pipeline's. This module gives the bench/drift accounting a
//! common vocabulary: tag each window's score with its deciding
//! [`Tier`], aggregate tags into a [`TierBreakdown`], and compare a
//! gated score vector against its reference with [`auroc_drift`].

use crate::curves::auroc;

/// The tier whose score became a window's final decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Tier 0: kinematic monitors suppressed the window; the score is
    /// the monitor-implied benign score and no ensemble ran.
    Suppressed,
    /// Tier 1: the int8 gate's score stood (no escalation).
    Screened,
    /// Tier 2: the full f32 ensemble re-scored the window.
    Escalated,
}

/// Counts of windows decided at each tier. Sums to the number of
/// windows scored when every window is recorded exactly once.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TierBreakdown {
    /// Windows decided at tier 0 (suppressed).
    pub suppressed: u64,
    /// Windows decided at tier 1 (gate score stood).
    pub screened: u64,
    /// Windows decided at tier 2 (escalated).
    pub escalated: u64,
}

impl TierBreakdown {
    /// Records one window's deciding tier.
    pub fn record(&mut self, tier: Tier) {
        match tier {
            Tier::Suppressed => self.suppressed += 1,
            Tier::Screened => self.screened += 1,
            Tier::Escalated => self.escalated += 1,
        }
    }

    /// Total windows recorded.
    pub fn total(&self) -> u64 {
        self.suppressed + self.screened + self.escalated
    }

    /// Fraction of recorded windows suppressed at tier 0 (0.0 when
    /// nothing was recorded).
    pub fn suppressed_fraction(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.suppressed as f64 / self.total() as f64
        }
    }
}

/// Absolute AUROC difference between a reference score vector and a
/// gated one over the same labeled windows — the drift-accounting
/// number the tier-0 bench gates on (budget 0.01, matching the int8
/// gate's budget).
///
/// # Panics
///
/// Panics when the three slices disagree in length.
pub fn auroc_drift(reference: &[f32], gated: &[f32], labels: &[bool]) -> f64 {
    assert_eq!(reference.len(), labels.len(), "reference/labels mismatch");
    assert_eq!(gated.len(), labels.len(), "gated/labels mismatch");
    (auroc(reference, labels) - auroc(gated, labels)).abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_partitions_and_fractions() {
        let mut b = TierBreakdown::default();
        for tier in [
            Tier::Suppressed,
            Tier::Suppressed,
            Tier::Suppressed,
            Tier::Screened,
            Tier::Escalated,
        ] {
            b.record(tier);
        }
        assert_eq!(b.suppressed, 3);
        assert_eq!(b.screened, 1);
        assert_eq!(b.escalated, 1);
        assert_eq!(b.total(), 5);
        assert!((b.suppressed_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(TierBreakdown::default().suppressed_fraction(), 0.0);
    }

    #[test]
    fn drift_is_zero_for_identical_scores_and_symmetric() {
        let labels = [true, true, false, false];
        let reference = [0.9, 0.8, 0.3, 0.1];
        assert_eq!(auroc_drift(&reference, &reference, &labels), 0.0);
        // Swapping one benign score past a positive costs AUROC 0.25.
        let gated = [0.9, 0.8, 0.85, 0.1];
        let d = auroc_drift(&reference, &gated, &labels);
        assert!((d - 0.25).abs() < 1e-6, "drift {d}");
        assert_eq!(d, auroc_drift(&gated, &reference, &labels));
    }
}
