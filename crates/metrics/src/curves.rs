//! ROC and precision–recall curves with tie-aware area computation.

/// Computes the ROC curve as `(fpr, tpr)` points from `(0,0)` to `(1,1)`.
///
/// Scores are swept from +∞ downward; tied scores are grouped so the curve
/// is invariant to input order.
///
/// # Panics
///
/// Panics if lengths differ or either class is absent.
pub fn roc_curve(scores: &[f32], labels: &[bool]) -> Vec<(f64, f64)> {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let pos = labels.iter().filter(|&&l| l).count();
    let neg = labels.len() - pos;
    assert!(pos > 0, "ROC needs at least one positive sample");
    assert!(neg > 0, "ROC needs at least one negative sample");

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));

    let mut curve = vec![(0.0, 0.0)];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        // Group ties: advance through equal scores before emitting a point.
        let s = scores[order[i]];
        while i < order.len() && scores[order[i]] == s {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        curve.push((fp as f64 / neg as f64, tp as f64 / pos as f64));
    }
    curve
}

/// Area under the ROC curve by trapezoidal integration.
///
/// 0.5 = chance, 1.0 = perfect ranking of misbehavior above benign.
///
/// # Panics
///
/// Panics if lengths differ or either class is absent.
pub fn auroc(scores: &[f32], labels: &[bool]) -> f64 {
    trapezoid(&roc_curve(scores, labels))
}

/// Computes the precision–recall curve as `(recall, precision)` points.
///
/// # Panics
///
/// Panics if lengths differ or there are no positive samples.
pub fn pr_curve(scores: &[f32], labels: &[bool]) -> Vec<(f64, f64)> {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let pos = labels.iter().filter(|&&l| l).count();
    assert!(pos > 0, "PR curve needs at least one positive sample");

    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).expect("finite scores"));

    let mut curve = vec![(0.0, 1.0)];
    let (mut tp, mut fp) = (0usize, 0usize);
    let mut i = 0;
    while i < order.len() {
        let s = scores[order[i]];
        while i < order.len() && scores[order[i]] == s {
            if labels[order[i]] {
                tp += 1;
            } else {
                fp += 1;
            }
            i += 1;
        }
        let recall = tp as f64 / pos as f64;
        let precision = tp as f64 / (tp + fp) as f64;
        curve.push((recall, precision));
    }
    curve
}

/// Area under the precision–recall curve (average precision by step
/// integration over recall).
///
/// # Panics
///
/// Panics if lengths differ or there are no positive samples.
pub fn auprc(scores: &[f32], labels: &[bool]) -> f64 {
    let curve = pr_curve(scores, labels);
    let mut area = 0.0;
    for w in curve.windows(2) {
        let (r0, _) = w[0];
        let (r1, p1) = w[1];
        area += (r1 - r0) * p1;
    }
    area
}

fn trapezoid(curve: &[(f64, f64)]) -> f64 {
    let mut area = 0.0;
    for w in curve.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        area += (x1 - x0) * (y0 + y1) / 2.0;
    }
    area
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_ranking_is_one() {
        assert_eq!(
            auroc(&[0.9, 0.8, 0.2, 0.1], &[true, true, false, false]),
            1.0
        );
    }

    #[test]
    fn inverted_ranking_is_zero() {
        assert_eq!(
            auroc(&[0.1, 0.2, 0.8, 0.9], &[true, true, false, false]),
            0.0
        );
    }

    #[test]
    fn all_tied_is_half() {
        assert_eq!(
            auroc(&[0.5, 0.5, 0.5, 0.5], &[true, true, false, false]),
            0.5
        );
    }

    #[test]
    fn auroc_is_order_invariant() {
        let a = auroc(&[0.9, 0.1, 0.7, 0.3], &[true, false, true, false]);
        let b = auroc(&[0.1, 0.3, 0.7, 0.9], &[false, false, true, true]);
        assert_eq!(a, b);
    }

    #[test]
    fn auroc_equals_pairwise_probability() {
        // AUROC = P(score_pos > score_neg) + 0.5·P(tie), checked by brute
        // force on a small sample.
        let scores = [0.1f32, 0.4, 0.4, 0.8, 0.6, 0.2];
        let labels = [false, true, false, true, false, true];
        let mut wins = 0.0;
        let mut pairs = 0.0;
        for i in 0..scores.len() {
            for j in 0..scores.len() {
                if labels[i] && !labels[j] {
                    pairs += 1.0;
                    if scores[i] > scores[j] {
                        wins += 1.0;
                    } else if scores[i] == scores[j] {
                        wins += 0.5;
                    }
                }
            }
        }
        let expected = wins / pairs;
        assert!((auroc(&scores, &labels) - expected).abs() < 1e-12);
    }

    #[test]
    fn roc_curve_endpoints() {
        let curve = roc_curve(&[0.9, 0.1], &[true, false]);
        assert_eq!(curve.first(), Some(&(0.0, 0.0)));
        assert_eq!(curve.last(), Some(&(1.0, 1.0)));
    }

    #[test]
    fn roc_curve_is_monotone() {
        let scores: Vec<f32> = (0..50).map(|i| ((i * 37) % 50) as f32 / 50.0).collect();
        let labels: Vec<bool> = (0..50).map(|i| i % 3 == 0).collect();
        let curve = roc_curve(&scores, &labels);
        for w in curve.windows(2) {
            assert!(w[1].0 >= w[0].0 && w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn auprc_perfect_is_one() {
        assert!((auprc(&[0.9, 0.8, 0.2, 0.1], &[true, true, false, false]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn auprc_random_approaches_prevalence() {
        // With uninformative scores, AP ≈ positive prevalence.
        let n = 2000;
        let scores: Vec<f32> = (0..n).map(|i| ((i * 7919) % n) as f32 / n as f32).collect();
        let labels: Vec<bool> = (0..n).map(|i| ((i * 104729) % 10) < 3).collect();
        let prevalence = labels.iter().filter(|&&l| l).count() as f64 / n as f64;
        let ap = auprc(&scores, &labels);
        assert!((ap - prevalence).abs() < 0.05, "ap={ap}, prev={prevalence}");
    }

    #[test]
    #[should_panic(expected = "positive sample")]
    fn auroc_requires_positives() {
        let _ = auroc(&[0.1, 0.2], &[false, false]);
    }

    #[test]
    #[should_panic(expected = "negative sample")]
    fn auroc_requires_negatives() {
        let _ = auroc(&[0.1, 0.2], &[true, true]);
    }
}
