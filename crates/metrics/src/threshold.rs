//! Percentile threshold selection (§III-F).
//!
//! VehiGAN sets each discriminator's detection threshold τ at the p-th
//! percentile of its *benign training* anomaly scores, with p a system
//! parameter between 99 and 99.99; the adversarial-robustness experiments
//! use p = 99 so the un-attacked FPR stays below 1%.

/// The `p`-th percentile of the **finite** values in `values` by linear
/// interpolation between order statistics (the same convention as
/// NumPy's default).
///
/// Non-finite values (NaN, ±∞) are ignored: a poisoned score vector — a
/// member returning NaN mid-flight, an overflowed benign calibration
/// batch — must not be able to panic threshold selection or smuggle a
/// NaN into τ, because every downstream `score > τ` comparison would
/// then silently evaluate to `false` and the detector would go blind.
///
/// # Panics
///
/// Panics if `values` contains no finite value, or `p` is outside
/// `[0, 100]`.
///
/// # Examples
///
/// ```
/// use vehigan_metrics::percentile;
/// let v = [1.0f32, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&v, 0.0), 1.0);
/// assert_eq!(percentile(&v, 100.0), 4.0);
/// assert_eq!(percentile(&v, 50.0), 2.5);
/// // NaN poisoning is ignored, not propagated:
/// assert_eq!(percentile(&[1.0, f32::NAN, 3.0], 100.0), 3.0);
/// ```
pub fn percentile(values: &[f32], p: f64) -> f32 {
    assert!((0.0..=100.0).contains(&p), "p must be in [0, 100], got {p}");
    let mut sorted: Vec<f32> = values.iter().copied().filter(|v| v.is_finite()).collect();
    assert!(
        !sorted.is_empty(),
        "percentile of an empty slice (no finite values)"
    );
    sorted.sort_by(f32::total_cmp);
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = (rank - lo as f64) as f32;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_element() {
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
    }

    #[test]
    fn interpolates_between_order_statistics() {
        let v = [0.0f32, 10.0];
        assert_eq!(percentile(&v, 25.0), 2.5);
        assert_eq!(percentile(&v, 75.0), 7.5);
    }

    #[test]
    fn is_order_invariant() {
        let a = [5.0f32, 1.0, 3.0, 2.0, 4.0];
        let b = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&a, 99.0), percentile(&b, 99.0));
    }

    #[test]
    fn p99_bounds_fpr_below_one_percent() {
        // The §III-F property: thresholding at the 99th percentile of
        // benign scores flags at most ~1% of the benign data.
        let scores: Vec<f32> = (0..10_000).map(|i| (i as f32).sin()).collect();
        let tau = percentile(&scores, 99.0);
        let flagged = scores.iter().filter(|&&s| s > tau).count();
        assert!(flagged <= 101, "flagged {flagged} of 10000");
        assert!(flagged >= 90, "flagged {flagged} of 10000");
    }

    #[test]
    fn non_finite_values_are_ignored() {
        // A poisoned benign-score vector must yield the same threshold
        // as its finite subset — never a panic, never a NaN τ.
        let clean = [5.0f32, 1.0, 3.0, 2.0, 4.0];
        let poisoned = [
            5.0f32,
            f32::NAN,
            1.0,
            f32::INFINITY,
            3.0,
            2.0,
            f32::NEG_INFINITY,
            4.0,
            f32::NAN,
        ];
        for p in [0.0, 25.0, 50.0, 99.0, 100.0] {
            let tau = percentile(&poisoned, p);
            assert!(tau.is_finite());
            assert_eq!(tau, percentile(&clean, p), "p={p}");
        }
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_panics() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    #[should_panic(expected = "no finite values")]
    fn all_nan_panics_with_typed_message() {
        let _ = percentile(&[f32::NAN, f32::NAN], 50.0);
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn out_of_range_p_panics() {
        let _ = percentile(&[1.0], 101.0);
    }
}
