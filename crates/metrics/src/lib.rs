//! # vehigan-metrics
//!
//! Detection metrics for the VehiGAN evaluation (§IV-A.2): confusion-rate
//! metrics (TPR/FPR/FNR), ROC curves and AUROC, precision–recall curves and
//! AUPRC, and the percentile-based threshold selection of §III-F.
//!
//! Conventions: higher score = more anomalous; label `true` = misbehavior
//! (positive class). A sample is predicted positive when
//! `score > threshold`.
//!
//! # Example
//!
//! ```
//! use vehigan_metrics::{auroc, Confusion};
//!
//! let scores = [0.9, 0.8, 0.3, 0.1];
//! let labels = [true, true, false, false];
//! assert_eq!(auroc(&scores, &labels), 1.0);
//!
//! let c = Confusion::at_threshold(&scores, &labels, 0.5);
//! assert_eq!(c.tpr(), 1.0);
//! assert_eq!(c.fpr(), 0.0);
//! ```

#![warn(missing_docs)]

mod attribution;
mod confusion;
mod curves;
mod threshold;

pub use attribution::{auroc_drift, Tier, TierBreakdown};
pub use confusion::Confusion;
pub use curves::{auprc, auroc, pr_curve, roc_curve};
pub use threshold::percentile;
