//! Confusion counts and derived rates.

/// Confusion-matrix counts at a fixed threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct Confusion {
    /// Misbehavior correctly flagged.
    pub tp: usize,
    /// Benign incorrectly flagged.
    pub fp: usize,
    /// Benign correctly passed.
    pub tn: usize,
    /// Misbehavior missed.
    pub fn_: usize,
}

impl Confusion {
    /// Builds confusion counts by thresholding anomaly scores
    /// (`score > threshold` ⇒ predicted misbehavior).
    ///
    /// # Panics
    ///
    /// Panics if `scores` and `labels` have different lengths.
    pub fn at_threshold(scores: &[f32], labels: &[bool], threshold: f32) -> Self {
        assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
        let mut c = Confusion::default();
        for (&s, &l) in scores.iter().zip(labels) {
            let predicted = s > threshold;
            match (predicted, l) {
                (true, true) => c.tp += 1,
                (true, false) => c.fp += 1,
                (false, false) => c.tn += 1,
                (false, true) => c.fn_ += 1,
            }
        }
        c
    }

    /// True positive rate (recall): `TP / (TP + FN)`; 0 with no positives.
    pub fn tpr(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// False positive rate: `FP / (FP + TN)`; 0 with no negatives.
    pub fn fpr(&self) -> f64 {
        ratio(self.fp, self.fp + self.tn)
    }

    /// False negative rate: `FN / (TP + FN)`; 0 with no positives.
    pub fn fnr(&self) -> f64 {
        ratio(self.fn_, self.tp + self.fn_)
    }

    /// Precision: `TP / (TP + FP)`; 0 with no predicted positives.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall (alias of [`Confusion::tpr`]).
    pub fn recall(&self) -> f64 {
        self.tpr()
    }

    /// F1 score; 0 when precision + recall is 0.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Overall accuracy; 0 for an empty confusion.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.tp + self.tn + self.fp + self.fn_)
    }

    /// Total sample count.
    pub fn total(&self) -> usize {
        self.tp + self.fp + self.tn + self.fn_
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let c = Confusion::at_threshold(&[0.9, 0.8, 0.1, 0.2], &[true, true, false, false], 0.5);
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (2, 0, 2, 0));
        assert_eq!(c.tpr(), 1.0);
        assert_eq!(c.fpr(), 0.0);
        assert_eq!(c.fnr(), 0.0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn inverted_classifier() {
        let c = Confusion::at_threshold(&[0.1, 0.2, 0.9, 0.8], &[true, true, false, false], 0.5);
        assert_eq!((c.tp, c.fp, c.tn, c.fn_), (0, 2, 0, 2));
        assert_eq!(c.tpr(), 0.0);
        assert_eq!(c.fpr(), 1.0);
        assert_eq!(c.fnr(), 1.0);
    }

    #[test]
    fn boundary_is_exclusive() {
        // score == threshold must NOT be flagged (strict `>`).
        let c = Confusion::at_threshold(&[0.5], &[true], 0.5);
        assert_eq!(c.fn_, 1);
        assert_eq!(c.tp, 0);
    }

    #[test]
    fn degenerate_inputs_do_not_divide_by_zero() {
        let all_neg = Confusion::at_threshold(&[0.1, 0.9], &[false, false], 0.5);
        assert_eq!(all_neg.tpr(), 0.0);
        assert_eq!(all_neg.fnr(), 0.0);
        assert_eq!(all_neg.fpr(), 0.5);
        let empty = Confusion::default();
        assert_eq!(empty.accuracy(), 0.0);
        assert_eq!(empty.f1(), 0.0);
    }

    #[test]
    fn rates_complementary() {
        let c = Confusion::at_threshold(
            &[0.9, 0.1, 0.8, 0.2, 0.6],
            &[true, true, true, false, false],
            0.5,
        );
        assert!((c.tpr() + c.fnr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn total_counts() {
        let c = Confusion::at_threshold(&[0.9, 0.1], &[true, false], 0.5);
        assert_eq!(c.total(), 2);
    }
}
