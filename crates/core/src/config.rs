//! WGAN hyperparameter configuration and the grid-search space (§III-D,
//! §IV-A.1).

/// How the critic's Lipschitz constraint is enforced.
///
/// The Wasserstein objective (Eq. 1) requires a 1-Lipschitz critic. The
/// original WGAN clips weights to `[-c, c]`; at small training budgets
/// clipping binarizes the weights (everything saturates at ±c), crippling
/// the critic. Spectral normalization divides each weight matrix by its
/// largest singular value (one power-iteration step per update) —
/// first-order only, so it fits this stack, and far better conditioned.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LipschitzMode {
    /// Original WGAN weight clipping with the configured `clip` bound.
    Clip,
    /// Spectral normalization of all weight matrices (σ ≤ 1).
    Spectral,
    /// WGAN-GP: a gradient penalty `λ(‖∇ₓD(x̂)‖ − 1)²` at real/fake
    /// interpolates, with the second-order parameter gradient computed by
    /// a finite-difference directional derivative (two extra first-order
    /// passes per critic step). Drives `‖∇ₓD‖ → 1` at the data, which is
    /// what gives WGAN critics their sharp, well-conditioned scores (and
    /// what the paper's FGSM attack magnitudes implicitly rely on).
    GradientPenalty {
        /// Penalty weight λ (Gulrajani et al. use 10).
        lambda: f32,
    },
}

/// Hyperparameters of a single WGAN instance.
///
/// Paper defaults (§IV-A.1): batch size 128, learning rate 1e-3, 2×2
/// kernels, LeakyReLU; noise dims {8, 16, 32, 48, 64}; layer counts
/// {6, 7, 8}; epochs {25, 50, 75, 100}.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WganConfig {
    /// Noise vector dimension `d` of the generator input.
    pub noise_dim: usize,
    /// Number of weight layers in the critic (convs + final dense).
    pub layers: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// RMSProp learning rate.
    pub learning_rate: f32,
    /// Lipschitz enforcement mode for the critic.
    pub lipschitz: LipschitzMode,
    /// WGAN weight-clipping bound (used by [`LipschitzMode::Clip`]).
    pub clip: f32,
    /// Critic updates per generator update.
    pub n_critic: usize,
    /// Snapshot window length `w`.
    pub window: usize,
    /// Snapshot feature count `f`.
    pub features: usize,
    /// LeakyReLU negative slope.
    pub leaky_alpha: f32,
    /// Post-init gain on the generator's output layer. Values > 1 widen
    /// the initial fake distribution so the critic sees fakes across the
    /// whole feature cube from the first step instead of a blob at the
    /// origin (which would teach it "large magnitude ⇒ real" and invert
    /// its ranking of saturated attack windows).
    pub g_output_gain: f32,
    /// RNG seed (weights, noise, batching).
    pub seed: u64,
}

impl Default for WganConfig {
    fn default() -> Self {
        WganConfig {
            noise_dim: 32,
            layers: 6,
            epochs: 25,
            batch_size: 128,
            learning_rate: 1e-4,
            lipschitz: LipschitzMode::GradientPenalty { lambda: 10.0 },
            clip: 0.03,
            n_critic: 3,
            window: 10,
            features: 12,
            leaky_alpha: 0.2,
            g_output_gain: 4.0,
            seed: 0,
        }
    }
}

impl WganConfig {
    /// A deterministic human-readable identifier, e.g. `z32-l6-e25-s0`.
    pub fn id(&self) -> String {
        format!(
            "z{}-l{}-e{}-s{}",
            self.noise_dim, self.layers, self.epochs, self.seed
        )
    }

    /// Validates structural constraints.
    ///
    /// # Panics
    ///
    /// Panics if the window/feature sizes are not even (the generator
    /// upsamples a half-size seed) or the layer count is below 3.
    pub fn validate(&self) {
        assert!(self.layers >= 3, "critic needs at least 3 weight layers");
        assert!(
            self.window >= 2 && self.window.is_multiple_of(2),
            "window must be even and ≥ 2"
        );
        assert!(
            self.features >= 2 && self.features.is_multiple_of(2),
            "features must be even and ≥ 2"
        );
        assert!(self.noise_dim > 0, "noise dim must be positive");
        assert!(self.epochs > 0, "epochs must be positive");
        assert!(self.batch_size > 0, "batch size must be positive");
        assert!(self.n_critic > 0, "n_critic must be positive");
        assert!(self.clip > 0.0, "clip bound must be positive");
    }
}

/// The hyperparameter grid searched by the model zoo.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GridConfig {
    /// Noise dimensions to sweep.
    pub noise_dims: Vec<usize>,
    /// Critic layer counts to sweep.
    pub layer_counts: Vec<usize>,
    /// Epoch counts to sweep.
    pub epoch_counts: Vec<usize>,
    /// Base configuration providing the remaining fields.
    pub base: WganConfig,
}

impl GridConfig {
    /// The paper's full grid: 5 × 3 × 4 = 60 WGAN instances.
    pub fn paper() -> Self {
        GridConfig {
            noise_dims: vec![8, 16, 32, 48, 64],
            layer_counts: vec![6, 7, 8],
            epoch_counts: vec![25, 50, 75, 100],
            base: WganConfig {
                batch_size: 128,
                n_critic: 5,
                ..WganConfig::default()
            },
        }
    }

    /// A CPU-friendly grid (18 instances from 6 shared training runs)
    /// preserving the sweep structure.
    pub fn quick() -> Self {
        GridConfig {
            noise_dims: vec![8, 16, 32],
            layer_counts: vec![4, 5],
            epoch_counts: vec![2, 4, 6],
            base: WganConfig {
                batch_size: 64,
                n_critic: 2,
                ..WganConfig::default()
            },
        }
    }

    /// A minimal grid (4 instances from 2 shared runs) for tests.
    pub fn tiny() -> Self {
        GridConfig {
            noise_dims: vec![8, 16],
            layer_counts: vec![4],
            epoch_counts: vec![3, 6],
            base: WganConfig {
                batch_size: 32,
                n_critic: 2,
                ..WganConfig::default()
            },
        }
    }

    /// Expands the grid into individual configurations, each with a
    /// distinct seed derived from its grid position.
    pub fn expand(&self) -> Vec<WganConfig> {
        let mut configs = Vec::new();
        for (i, &noise_dim) in self.noise_dims.iter().enumerate() {
            for (j, &layers) in self.layer_counts.iter().enumerate() {
                for (k, &epochs) in self.epoch_counts.iter().enumerate() {
                    let seed = self.base.seed
                        ^ ((i as u64) << 32 | (j as u64) << 16 | k as u64)
                            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    configs.push(WganConfig {
                        noise_dim,
                        layers,
                        epochs,
                        seed,
                        ..self.base
                    });
                }
            }
        }
        configs
    }

    /// Number of configurations in the grid.
    pub fn len(&self) -> usize {
        self.noise_dims.len() * self.layer_counts.len() * self.epoch_counts.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn paper_grid_is_60_models() {
        let grid = GridConfig::paper();
        assert_eq!(grid.len(), 60);
        assert_eq!(grid.expand().len(), 60);
    }

    #[test]
    fn expanded_configs_are_unique() {
        let configs = GridConfig::paper().expand();
        let ids: HashSet<String> = configs.iter().map(WganConfig::id).collect();
        assert_eq!(ids.len(), 60);
        let seeds: HashSet<u64> = configs.iter().map(|c| c.seed).collect();
        assert_eq!(seeds.len(), 60);
    }

    #[test]
    fn quick_grid_is_18_models() {
        assert_eq!(GridConfig::quick().len(), 18);
    }

    #[test]
    fn expansion_respects_base() {
        let grid = GridConfig::quick();
        for c in grid.expand() {
            assert_eq!(c.batch_size, grid.base.batch_size);
            assert_eq!(c.window, 10);
            c.validate();
        }
    }

    #[test]
    fn paper_configs_validate() {
        for c in GridConfig::paper().expand() {
            c.validate();
        }
    }

    #[test]
    #[should_panic(expected = "at least 3 weight layers")]
    fn too_few_layers_rejected() {
        WganConfig {
            layers: 2,
            ..WganConfig::default()
        }
        .validate();
    }

    #[test]
    fn id_is_readable() {
        let c = WganConfig {
            noise_dim: 16,
            layers: 7,
            epochs: 50,
            seed: 3,
            ..WganConfig::default()
        };
        assert_eq!(c.id(), "z16-l7-e50-s3");
    }
}
