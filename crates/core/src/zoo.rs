//! The model zoo: grid-search training, pre-evaluation, and top-*m*
//! candidate selection (§III-D, §III-E).

use crate::config::{GridConfig, WganConfig};
use crate::wgan::Wgan;
use parking_lot::Mutex;
use vehigan_features::WindowDataset;
use vehigan_metrics::{auprc, auroc};
use vehigan_tensor::Tensor;
use vehigan_vasp::Attack;

/// The detection-score metric used for pre-evaluation (§III-E: "DS can be
/// any commonly used metrics used to evaluate a classifier, such as
/// AUROC, AUPRC, etc.").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum DetectionScore {
    /// Area under the ROC curve (the paper's reported metric).
    #[default]
    Auroc,
    /// Area under the precision–recall curve (better under heavy class
    /// imbalance).
    Auprc,
}

impl DetectionScore {
    /// Evaluates the metric on anomaly scores and labels.
    pub fn evaluate(self, scores: &[f32], labels: &[bool]) -> f64 {
        match self {
            DetectionScore::Auroc => auroc(scores, labels),
            DetectionScore::Auprc => auprc(scores, labels),
        }
    }
}

/// One trained zoo member with its pre-evaluation results.
pub struct ZooEntry {
    /// The trained WGAN.
    pub wgan: Wgan,
    /// Detection score (AUROC) per validation attack, filled by
    /// [`ModelZoo::pre_evaluate`].
    pub per_attack: Vec<(Attack, f64)>,
    /// Average discriminative score across validation attacks (Eq. 4).
    pub ads: f64,
}

impl std::fmt::Debug for ZooEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ZooEntry({}, ADS={:.3})", self.wgan.config().id(), self.ads)
    }
}

/// A collection of grid-trained WGANs.
///
/// # Examples
///
/// ```no_run
/// use vehigan_core::{GridConfig, ModelZoo};
/// use vehigan_tensor::Tensor;
///
/// let train = Tensor::zeros(&[256, 10, 12, 1]);
/// let zoo = ModelZoo::train(&GridConfig::tiny(), &train, 2);
/// assert_eq!(zoo.len(), GridConfig::tiny().len());
/// ```
pub struct ModelZoo {
    entries: Vec<ZooEntry>,
}

impl std::fmt::Debug for ModelZoo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ModelZoo({} entries)", self.entries.len())
    }
}

impl ModelZoo {
    /// Trains every configuration of the grid on benign snapshots
    /// `[n, w, f, 1]`, using up to `threads` worker threads.
    ///
    /// Configurations differing **only in epoch count** are produced as
    /// checkpoints of a single training run (the paper's 60 instances are
    /// 15 architecture runs × 4 epoch checkpoints), so a 5×3×4 grid costs
    /// 15 trainings to the maximum epoch budget, not 60 from scratch.
    ///
    /// Each run is fully determined by its group's seed, so the zoo is
    /// reproducible regardless of thread scheduling.
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty or `threads == 0`.
    pub fn train(grid: &GridConfig, train: &Tensor, threads: usize) -> Self {
        let configs = grid.expand();
        assert!(!configs.is_empty(), "empty hyperparameter grid");
        assert!(threads > 0, "need at least one worker thread");

        // Group by everything except the epoch budget: one training run
        // per group, checkpointed at each requested epoch count.
        let mut groups: Vec<(WganConfig, Vec<(usize, usize)>)> = Vec::new();
        for (idx, config) in configs.iter().enumerate() {
            let key = WganConfig {
                epochs: 0,
                seed: 0,
                ..*config
            };
            match groups.iter_mut().find(|(k, _)| {
                WganConfig {
                    epochs: 0,
                    seed: 0,
                    ..*k
                } == key
            }) {
                Some((_, members)) => members.push((idx, config.epochs)),
                None => groups.push((*config, vec![(idx, config.epochs)])),
            }
        }
        for (_, members) in &mut groups {
            members.sort_by_key(|&(_, epochs)| epochs);
        }

        let work: Mutex<Vec<(WganConfig, Vec<(usize, usize)>)>> = Mutex::new(groups);
        let results: Mutex<Vec<(usize, Wgan)>> = Mutex::new(Vec::new());
        crossbeam::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|_| loop {
                    let item = work.lock().pop();
                    let Some((base, members)) = item else { break };
                    // Seed the run from the group's first grid entry so
                    // checkpoints share one trajectory.
                    let run_seed = members
                        .first()
                        .map(|&(idx, _)| idx)
                        .expect("nonempty group");
                    let run_config = WganConfig {
                        seed: base.seed ^ (run_seed as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        ..base
                    };
                    let mut wgan = Wgan::new(run_config);
                    let mut trained = 0usize;
                    for &(idx, epochs) in &members {
                        wgan.train_epochs(train, epochs - trained);
                        trained = epochs;
                        let checkpoint_config = WganConfig {
                            epochs,
                            ..run_config
                        };
                        let mut checkpoint =
                            Wgan::from_critic_bytes(checkpoint_config, &wgan.critic_bytes())
                                .expect("checkpoint roundtrip");
                        checkpoint.set_history(wgan.history().to_vec());
                        results.lock().push((idx, checkpoint));
                    }
                });
            }
        })
        .expect("zoo training thread panicked");

        let mut trained = results.into_inner();
        trained.sort_by_key(|(idx, _)| *idx);
        ModelZoo {
            entries: trained
                .into_iter()
                .map(|(_, wgan)| ZooEntry {
                    wgan,
                    per_attack: Vec::new(),
                    ads: 0.0,
                })
                .collect(),
        }
    }

    /// Builds a zoo from already-trained models (e.g. deserialized).
    pub fn from_models(models: Vec<Wgan>) -> Self {
        ModelZoo {
            entries: models
                .into_iter()
                .map(|wgan| ZooEntry {
                    wgan,
                    per_attack: Vec::new(),
                    ads: 0.0,
                })
                .collect(),
        }
    }

    /// Number of models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the zoo is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The zoo entries.
    pub fn entries(&self) -> &[ZooEntry] {
        &self.entries
    }

    /// Mutable access to the entries (e.g. for scoring).
    pub fn entries_mut(&mut self) -> &mut [ZooEntry] {
        &mut self.entries
    }

    /// Pre-evaluates every model on labelled validation datasets with the
    /// default AUROC detection score; ADS is the mean over attacks
    /// (Eq. 4).
    ///
    /// # Panics
    ///
    /// Panics if `validation` is empty or a dataset lacks both classes.
    pub fn pre_evaluate(&mut self, validation: &[(Attack, WindowDataset)]) {
        self.pre_evaluate_with(validation, DetectionScore::Auroc);
    }

    /// Pre-evaluates with an explicit detection-score metric (§III-E lets
    /// the defender choose AUROC, AUPRC, …).
    ///
    /// Entries are evaluated in parallel on crossbeam scoped threads; each
    /// entry's result depends only on its own critic, so the outcome is
    /// identical to the serial loop regardless of scheduling.
    ///
    /// # Panics
    ///
    /// Panics if `validation` is empty or a dataset lacks both classes.
    pub fn pre_evaluate_with(
        &mut self,
        validation: &[(Attack, WindowDataset)],
        metric: DetectionScore,
    ) {
        assert!(!validation.is_empty(), "need at least one validation attack");
        let evaluate = |entry: &mut ZooEntry| {
            let mut per_attack = Vec::with_capacity(validation.len());
            let mut sum = 0.0;
            for (attack, dataset) in validation {
                let scores = entry.wgan.score_batch(&dataset.x);
                let ds = metric.evaluate(&scores, &dataset.labels);
                per_attack.push((*attack, ds));
                sum += ds;
            }
            entry.ads = sum / validation.len() as f64;
            entry.per_attack = per_attack;
        };
        if self.entries.len() <= 1 {
            for entry in &mut self.entries {
                evaluate(entry);
            }
            return;
        }
        crossbeam::thread::scope(|scope| {
            for entry in &mut self.entries {
                let evaluate = &evaluate;
                scope.spawn(move |_| evaluate(entry));
            }
        })
        .expect("zoo pre-evaluation scope");
    }

    /// Indices of the top-`m` models by ADS (descending). Requires a prior
    /// [`ModelZoo::pre_evaluate`].
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero or exceeds the zoo size.
    pub fn top_m(&self, m: usize) -> Vec<usize> {
        assert!(m >= 1 && m <= self.entries.len(), "m must be in [1, {}]", self.entries.len());
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by(|&a, &b| {
            self.entries[b]
                .ads
                .partial_cmp(&self.entries[a].ads)
                .expect("finite ADS")
        });
        order.truncate(m);
        order
    }

    /// Removes and returns the models at `indices` (order preserved).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or duplicated.
    pub fn take_models(self, indices: &[usize]) -> Vec<ZooEntry> {
        let mut seen = vec![false; self.entries.len()];
        for &i in indices {
            assert!(i < seen.len(), "index {i} out of bounds");
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        let mut slots: Vec<Option<ZooEntry>> = self.entries.into_iter().map(Some).collect();
        indices
            .iter()
            .map(|&i| slots[i].take().expect("checked above"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vehigan_tensor::init::{rand_uniform, seeded_rng};

    fn benign(n: usize, seed: u64) -> Tensor {
        let mut rng = seeded_rng(seed);
        let base = rand_uniform(&[n, 1], -0.2, 0.2, &mut rng);
        let mut data = Vec::with_capacity(n * 120);
        for i in 0..n {
            for j in 0..120 {
                data.push(base.as_slice()[i] + 0.05 * (j as f32 * 0.4).cos());
            }
        }
        Tensor::from_vec(data, &[n, 10, 12, 1])
    }

    fn synthetic_validation(seed: u64) -> Vec<(Attack, WindowDataset)> {
        // Benign windows + saturated-garbage "attack" windows.
        let mut rng = seeded_rng(seed);
        let b = benign(40, seed);
        let garbage = rand_uniform(&[40, 10, 12, 1], -1.0, 1.0, &mut rng);
        let mut data = b.as_slice().to_vec();
        data.extend_from_slice(garbage.as_slice());
        let x = Tensor::from_vec(data, &[80, 10, 12, 1]);
        let labels: Vec<bool> = (0..80).map(|i| i >= 40).collect();
        let vehicles = vec![vehigan_sim::VehicleId(0); 80];
        vec![(
            Attack::by_name("RandomSpeed").unwrap(),
            WindowDataset { x, labels, vehicles },
        )]
    }

    fn tiny_zoo() -> ModelZoo {
        let train = benign(128, 0);
        ModelZoo::train(&GridConfig::tiny(), &train, 2)
    }

    #[test]
    fn trains_all_grid_points() {
        let zoo = tiny_zoo();
        assert_eq!(zoo.len(), GridConfig::tiny().len());
        for e in zoo.entries() {
            assert!(!e.wgan.history().is_empty());
        }
    }

    #[test]
    fn parallel_training_is_deterministic() {
        let train = benign(128, 0);
        let mut a = ModelZoo::train(&GridConfig::tiny(), &train, 1);
        let mut b = ModelZoo::train(&GridConfig::tiny(), &train, 3);
        let probe = benign(8, 1);
        for (ea, eb) in a.entries_mut().iter_mut().zip(b.entries_mut()) {
            assert_eq!(ea.wgan.score_batch(&probe), eb.wgan.score_batch(&probe));
        }
    }

    #[test]
    fn pre_evaluation_fills_ads() {
        let mut zoo = tiny_zoo();
        zoo.pre_evaluate(&synthetic_validation(1));
        for e in zoo.entries() {
            assert_eq!(e.per_attack.len(), 1);
            assert!(e.ads >= 0.0 && e.ads <= 1.0);
        }
    }

    #[test]
    fn auprc_metric_also_works() {
        let mut zoo = tiny_zoo();
        zoo.pre_evaluate_with(&synthetic_validation(4), DetectionScore::Auprc);
        for e in zoo.entries() {
            assert!(e.ads > 0.0 && e.ads <= 1.0);
        }
    }

    #[test]
    fn detection_score_metrics_agree_on_perfect_ranking() {
        let scores = [0.9f32, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert_eq!(DetectionScore::Auroc.evaluate(&scores, &labels), 1.0);
        assert!((DetectionScore::Auprc.evaluate(&scores, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top_m_is_sorted_by_ads() {
        let mut zoo = tiny_zoo();
        zoo.pre_evaluate(&synthetic_validation(2));
        let top = zoo.top_m(3);
        assert_eq!(top.len(), 3);
        for w in top.windows(2) {
            assert!(zoo.entries()[w[0]].ads >= zoo.entries()[w[1]].ads);
        }
    }

    #[test]
    fn take_models_preserves_order() {
        let mut zoo = tiny_zoo();
        zoo.pre_evaluate(&synthetic_validation(3));
        let top = zoo.top_m(2);
        let expect_ids: Vec<String> =
            top.iter().map(|&i| zoo.entries()[i].wgan.config().id()).collect();
        let taken = zoo.take_models(&top);
        let got_ids: Vec<String> = taken.iter().map(|e| e.wgan.config().id()).collect();
        assert_eq!(expect_ids, got_ids);
    }

    #[test]
    #[should_panic(expected = "m must be in")]
    fn top_m_bounds_checked() {
        let zoo = tiny_zoo();
        let _ = zoo.top_m(zoo.len() + 1);
    }
}
