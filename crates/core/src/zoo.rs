//! The model zoo: grid-search training, pre-evaluation, and top-*m*
//! candidate selection (§III-D, §III-E).
//!
//! Training sixty WGANs is the most expensive and the most fragile stage of
//! the pipeline, so [`ModelZoo::train_grid`] is built to survive the three
//! failure modes that actually occur at that scale: a single configuration
//! diverging (handled inside [`Wgan::train_epochs_checked`] by rollback +
//! reseeded retry, and **quarantined** here if the retry budget runs out), a
//! worker thread panicking (isolated with `catch_unwind`; only that group's
//! unfinished members are quarantined), and the whole process dying
//! (every finished member is persisted through a [`CheckpointStore`], so the
//! next run resumes from the manifest instead of restarting).

use crate::checkpoint::{grid_fingerprint, CheckpointError, CheckpointStore, Manifest};
use crate::config::{GridConfig, WganConfig};
use crate::wgan::{SentinelPolicy, TrainError, Wgan};
use parking_lot::Mutex;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use vehigan_features::WindowDataset;
use vehigan_metrics::{auprc, auroc};
use vehigan_tensor::Tensor;
use vehigan_vasp::Attack;

/// The detection-score metric used for pre-evaluation (§III-E: "DS can be
/// any commonly used metrics used to evaluate a classifier, such as
/// AUROC, AUPRC, etc.").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum DetectionScore {
    /// Area under the ROC curve (the paper's reported metric).
    #[default]
    Auroc,
    /// Area under the precision–recall curve (better under heavy class
    /// imbalance).
    Auprc,
}

impl DetectionScore {
    /// Evaluates the metric on anomaly scores and labels.
    pub fn evaluate(self, scores: &[f32], labels: &[bool]) -> f64 {
        match self {
            DetectionScore::Auroc => auroc(scores, labels),
            DetectionScore::Auprc => auprc(scores, labels),
        }
    }
}

/// Why a grid configuration was excluded from the zoo.
#[derive(Debug, Clone, PartialEq)]
pub enum QuarantineReason {
    /// Training diverged past the sentinel retry budget (or the model was
    /// poisoned at entry).
    Train(TrainError),
    /// The worker thread training this group panicked; the payload is the
    /// panic message.
    Panicked(String),
    /// Quarantined during a previous (interrupted) run; the reason is the
    /// text recorded in the manifest.
    Recorded(String),
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineReason::Train(e) => write!(f, "{e}"),
            QuarantineReason::Panicked(msg) => write!(f, "worker panicked: {msg}"),
            QuarantineReason::Recorded(msg) => write!(f, "{msg}"),
        }
    }
}

/// A grid configuration excluded from the zoo, with the structured reason.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantineRecord {
    /// The excluded configuration.
    pub config: WganConfig,
    /// Position of the configuration in [`GridConfig::expand`] order.
    pub grid_index: usize,
    /// Why it was excluded.
    pub reason: QuarantineReason,
}

impl QuarantineRecord {
    /// The quarantined configuration's id string.
    pub fn id(&self) -> String {
        self.config.id()
    }
}

/// Error from fault-tolerant zoo training.
#[derive(Debug)]
pub enum ZooError {
    /// The hyperparameter grid expands to zero configurations.
    EmptyGrid,
    /// `threads == 0`.
    NoThreads,
    /// The checkpoint store failed (I/O, corruption, or a manifest from a
    /// different grid).
    Checkpoint(CheckpointError),
    /// Every configuration was quarantined — there is no zoo to return.
    AllQuarantined(Vec<QuarantineRecord>),
}

impl fmt::Display for ZooError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZooError::EmptyGrid => write!(f, "empty hyperparameter grid"),
            ZooError::NoThreads => write!(f, "need at least one worker thread"),
            ZooError::Checkpoint(e) => write!(f, "checkpoint store: {e}"),
            ZooError::AllQuarantined(q) => {
                write!(f, "all {} grid configurations were quarantined", q.len())
            }
        }
    }
}

impl std::error::Error for ZooError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ZooError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for ZooError {
    fn from(e: CheckpointError) -> Self {
        ZooError::Checkpoint(e)
    }
}

/// Test-only callback run on each freshly constructed training run.
#[doc(hidden)]
pub type FaultHook = Arc<dyn Fn(&mut Wgan) + Send + Sync>;

/// Options for [`ModelZoo::train_grid`].
#[derive(Clone, Default)]
pub struct ZooTrainOptions {
    /// Worker threads (must be ≥ 1; [`ZooTrainOptions::new`] sets it).
    pub threads: usize,
    /// Divergence-sentinel retry budget passed to every training run.
    pub sentinel: SentinelPolicy,
    /// When set, every finished member is checkpointed here and an
    /// interrupted run resumes from the directory's manifest.
    pub checkpoint_dir: Option<PathBuf>,
    /// Stop (cleanly) after this many training groups finish — the
    /// remaining work is left for a resumed run. Used to exercise the
    /// kill/resume path deterministically; `None` trains everything.
    pub stop_after_groups: Option<usize>,
    /// Stop (cleanly) after this many **newly trained epochs** across the
    /// whole run, which can land in the middle of a group — the
    /// epoch-granular partial checkpoint written at that boundary lets the
    /// next call resume mid-member. Used to exercise the mid-member
    /// kill/resume path deterministically; `None` trains everything.
    pub stop_after_epochs: Option<usize>,
    /// On resume, retrain previously quarantined configurations with a
    /// fresh derived seed instead of carrying the quarantine records
    /// forward. Member ids stay stable (they keep the original derived
    /// seed), so a successful retry slots into the manifest and zoo
    /// exactly where the doomed run would have.
    pub retry_quarantined: bool,
    /// Test-only hook invoked on each freshly constructed training run
    /// (e.g. to schedule fault injection for a specific config).
    #[doc(hidden)]
    pub fault_hook: Option<FaultHook>,
}

impl fmt::Debug for ZooTrainOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ZooTrainOptions")
            .field("threads", &self.threads)
            .field("sentinel", &self.sentinel)
            .field("checkpoint_dir", &self.checkpoint_dir)
            .field("stop_after_groups", &self.stop_after_groups)
            .field("stop_after_epochs", &self.stop_after_epochs)
            .field("retry_quarantined", &self.retry_quarantined)
            .field("fault_hook", &self.fault_hook.is_some())
            .finish()
    }
}

impl ZooTrainOptions {
    /// Options with the given thread count and defaults elsewhere.
    pub fn new(threads: usize) -> Self {
        ZooTrainOptions {
            threads,
            ..ZooTrainOptions::default()
        }
    }
}

/// Outcome of a fault-tolerant [`ModelZoo::train_grid`] run.
#[derive(Debug)]
pub struct ZooTrainReport {
    /// The trained zoo (quarantined configurations excluded).
    pub zoo: ModelZoo,
    /// Configurations excluded from the zoo, with reasons.
    pub quarantined: Vec<QuarantineRecord>,
    /// Members restored from the checkpoint store instead of retrained.
    pub resumed: usize,
    /// Total divergence rollbacks performed across all runs.
    pub rollbacks: usize,
    /// `false` when `stop_after_groups` halted the run before the grid was
    /// exhausted — call [`ModelZoo::train_grid`] again to continue.
    pub complete: bool,
}

/// One trained zoo member with its pre-evaluation results.
pub struct ZooEntry {
    /// The trained WGAN.
    pub wgan: Wgan,
    /// Position of this configuration in [`GridConfig::expand`] order
    /// (stable even when other configurations are quarantined).
    pub grid_index: usize,
    /// Detection score (AUROC) per validation attack, filled by
    /// [`ModelZoo::pre_evaluate`].
    pub per_attack: Vec<(Attack, f64)>,
    /// Average discriminative score across validation attacks (Eq. 4).
    pub ads: f64,
}

impl std::fmt::Debug for ZooEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ZooEntry({}, ADS={:.3})",
            self.wgan.config().id(),
            self.ads
        )
    }
}

/// A collection of grid-trained WGANs.
///
/// # Examples
///
/// ```no_run
/// use vehigan_core::{GridConfig, ModelZoo};
/// use vehigan_tensor::Tensor;
///
/// let train = Tensor::zeros(&[256, 10, 12, 1]);
/// let zoo = ModelZoo::train(&GridConfig::tiny(), &train, 2);
/// assert_eq!(zoo.len(), GridConfig::tiny().len());
/// ```
pub struct ModelZoo {
    entries: Vec<ZooEntry>,
}

impl std::fmt::Debug for ModelZoo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ModelZoo({} entries)", self.entries.len())
    }
}

/// Seed salt applied to the training run (not the member ids) when a
/// quarantined group is retried under
/// [`ZooTrainOptions::retry_quarantined`].
const RETRY_SEED_SALT: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// A training group: configurations differing only in epoch count share one
/// run, checkpointed at each requested epoch budget.
struct TrainGroup {
    base: WganConfig,
    /// `(grid index, epoch budget)`, sorted ascending by epochs.
    members: Vec<(usize, usize)>,
    /// Extra salt folded into the run seed when retraining a previously
    /// quarantined group; zero on a normal run.
    retry_salt: u64,
}

impl TrainGroup {
    /// The deterministic seed derived from the group's first grid entry
    /// (so checkpoints share one trajectory).
    fn derived_seed(&self) -> u64 {
        let run_seed = self
            .members
            .first()
            .map(|&(idx, _)| idx)
            .expect("nonempty group");
        self.base.seed ^ (run_seed as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// The seed-adjusted configuration the shared run actually trains
    /// with. A quarantine retry folds in [`RETRY_SEED_SALT`] for a fresh
    /// trajectory.
    fn run_config(&self) -> WganConfig {
        WganConfig {
            seed: self.derived_seed() ^ self.retry_salt,
            ..self.base
        }
    }

    /// The on-disk / in-zoo configuration of the member at `epochs`.
    /// Always keyed by the original derived seed — never the retry salt —
    /// so ids stay stable across retry runs and manifest accounting.
    fn member_config(&self, epochs: usize) -> WganConfig {
        WganConfig {
            epochs,
            seed: self.derived_seed(),
            ..self.base
        }
    }

    /// Stable on-disk key for the group's epoch-granular partial
    /// checkpoint: the unsalted id of its largest-budget member. Salt
    /// independence means a quarantine retry overwrites — never orphans —
    /// its predecessor's partial.
    fn partial_key(&self) -> String {
        let &(_, max_epochs) = self.members.last().expect("nonempty group");
        self.member_config(max_epochs).id()
    }
}

/// Splits a grid into training groups keyed by everything except the epoch
/// budget and seed.
fn group_grid(configs: &[WganConfig]) -> Vec<TrainGroup> {
    let mut groups: Vec<TrainGroup> = Vec::new();
    for (idx, config) in configs.iter().enumerate() {
        let key = WganConfig {
            epochs: 0,
            seed: 0,
            ..*config
        };
        match groups.iter_mut().find(|g| {
            WganConfig {
                epochs: 0,
                seed: 0,
                ..g.base
            } == key
        }) {
            Some(g) => g.members.push((idx, config.epochs)),
            None => groups.push(TrainGroup {
                base: *config,
                members: vec![(idx, config.epochs)],
                retry_salt: 0,
            }),
        }
    }
    for g in &mut groups {
        g.members.sort_by_key(|&(_, epochs)| epochs);
    }
    groups
}

/// Renders a panic payload into a printable message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Shared mutable state for the training workers.
struct TrainShared<'a> {
    work: Mutex<Vec<TrainGroup>>,
    results: Mutex<Vec<(usize, Wgan)>>,
    quarantined: Mutex<Vec<QuarantineRecord>>,
    errors: Mutex<Vec<CheckpointError>>,
    manifest: Mutex<Manifest>,
    store: Option<&'a CheckpointStore>,
    groups_done: AtomicUsize,
    rollbacks: AtomicUsize,
    /// Members restored from disk instead of retrained (pre-loaded fully
    /// accounted groups plus mid-group reloads after a partial resume).
    resumed: AtomicUsize,
    /// Newly trained epochs across the run (only tracked when
    /// `stop_after_epochs` is set).
    epochs_done: AtomicUsize,
    /// Set when the `stop_after_epochs` budget is spent: workers stop
    /// picking up groups and in-flight groups stop at the next epoch
    /// boundary.
    halted: AtomicBool,
    options: &'a ZooTrainOptions,
    train: &'a Tensor,
}

impl TrainShared<'_> {
    /// Records a finished member: into the results, the checkpoint store,
    /// and the manifest (in that order — the manifest only ever names
    /// members whose checkpoint rename has completed).
    fn commit_member(&self, idx: usize, checkpoint: Wgan) -> Result<(), CheckpointError> {
        let id = checkpoint.config().id();
        if let Some(store) = self.store {
            store.save_member(&checkpoint)?;
            let mut manifest = self.manifest.lock();
            manifest.done.push(id);
            store.write_manifest(&manifest)?;
        }
        self.results.lock().push((idx, checkpoint));
        Ok(())
    }

    /// Records a quarantined member in memory and in the manifest.
    fn quarantine(&self, record: QuarantineRecord) -> Result<(), CheckpointError> {
        if let Some(store) = self.store {
            let mut manifest = self.manifest.lock();
            manifest
                .quarantined
                .push((record.id(), record.reason.to_string()));
            store.write_manifest(&manifest)?;
        }
        self.quarantined.lock().push(record);
        Ok(())
    }

    /// Trains one group, committing each epoch checkpoint as it completes.
    /// Divergence past the retry budget quarantines the failing member and
    /// every later member of the group (they share the dead trajectory).
    ///
    /// With a checkpoint store, every healthy epoch boundary persists an
    /// epoch-granular **partial** checkpoint of the shared run (full
    /// training state: generator, optimizers, spectral vectors, RNG
    /// cursor), and a usable partial left by an interrupted run seeds this
    /// call — resuming mid-member instead of retraining the group, with a
    /// final model bitwise identical to the uninterrupted run.
    fn train_group(&self, group: &TrainGroup) -> Result<(), CheckpointError> {
        let run_config = group.run_config();
        let key = group.partial_key();
        // Member ids an interrupted run already committed: skipped below
        // (reloaded from disk) rather than re-committed.
        let done_ids: Vec<String> = match self.store {
            Some(_) => self.manifest.lock().done.clone(),
            None => Vec::new(),
        };
        let mut wgan = self.store.and_then(|store| {
            if !store.has_partial(&key) {
                return None;
            }
            // A partial that fails to load (stale run seed after a
            // quarantine retry, corruption, pre-v2 leftovers) is not an
            // error — the group deterministically retrains from scratch.
            let restored = store.load_partial(&key, run_config).ok()?;
            // Usable only if no uncommitted member budget lies *behind*
            // the restored epoch count — training can't rewind.
            let h = restored.history().len();
            let usable = group.members.iter().all(|&(_, epochs)| {
                epochs >= h || done_ids.contains(&group.member_config(epochs).id())
            });
            usable.then_some(restored)
        });
        let mut wgan = match wgan.take() {
            Some(w) => w,
            None => {
                let mut fresh = Wgan::new(run_config);
                // Scheduled fault injections describe a from-scratch
                // trajectory; they never apply to a resumed one.
                if let Some(hook) = &self.options.fault_hook {
                    hook(&mut fresh);
                }
                fresh
            }
        };
        let mut trained = wgan.history().len();
        for (pos, &(idx, epochs)) in group.members.iter().enumerate() {
            let config = group.member_config(epochs);
            if epochs > trained {
                let mut save_err: Option<CheckpointError> = None;
                let outcome = wgan.train_epochs_resumable(
                    self.train,
                    epochs - trained,
                    &self.options.sentinel,
                    |w| {
                        if self.halted.load(Ordering::SeqCst) {
                            return false;
                        }
                        // Persist before counting the epoch against the
                        // budget, so a halt always has its partial on disk.
                        if let Some(store) = self.store {
                            if let Err(e) = store.save_partial(&key, w) {
                                save_err = Some(e);
                                return false;
                            }
                        }
                        if let Some(cap) = self.options.stop_after_epochs {
                            let n = self.epochs_done.fetch_add(1, Ordering::SeqCst) + 1;
                            if n >= cap {
                                self.halted.store(true, Ordering::SeqCst);
                                return false;
                            }
                        }
                        true
                    },
                );
                match outcome {
                    Ok(report) => {
                        self.rollbacks
                            .fetch_add(report.rollbacks, Ordering::Relaxed);
                        if let Some(e) = save_err {
                            return Err(e);
                        }
                        trained = wgan.history().len();
                        if report.stopped || trained < epochs {
                            // Halted mid-member: the partial written at
                            // this boundary carries the rest of the group
                            // into the next (resumed) call.
                            return Ok(());
                        }
                    }
                    Err(err) => {
                        for &(q_idx, q_epochs) in &group.members[pos..] {
                            self.quarantine(QuarantineRecord {
                                config: group.member_config(q_epochs),
                                grid_index: q_idx,
                                reason: QuarantineReason::Train(err.clone()),
                            })?;
                        }
                        // The shared trajectory is dead; its partial must
                        // not seed anything.
                        if let Some(store) = self.store {
                            store.remove_partial(&key)?;
                        }
                        return Ok(());
                    }
                }
            }
            if done_ids.contains(&config.id()) {
                let store = self.store.expect("done ids imply a store");
                let reloaded = store.load_member(config)?;
                self.results.lock().push((idx, reloaded));
                self.resumed.fetch_add(1, Ordering::SeqCst);
                continue;
            }
            let mut checkpoint = Wgan::from_critic_bytes(config, &wgan.critic_bytes())
                .map_err(CheckpointError::Model)?;
            checkpoint.set_history(wgan.history().to_vec());
            self.commit_member(idx, checkpoint)?;
        }
        if let Some(store) = self.store {
            store.remove_partial(&key)?;
        }
        Ok(())
    }

    /// Worker loop: pop groups until the queue is empty or the
    /// `stop_after_groups` budget is spent. Panics inside a group are
    /// caught; the group's unfinished members are quarantined and the
    /// worker moves on to the next group.
    fn worker(&self) {
        loop {
            if self.halted.load(Ordering::SeqCst) {
                break;
            }
            if let Some(cap) = self.options.stop_after_groups {
                if self.groups_done.load(Ordering::SeqCst) >= cap {
                    break;
                }
            }
            let item = self.work.lock().pop();
            let Some(group) = item else { break };
            let outcome = panic::catch_unwind(AssertUnwindSafe(|| self.train_group(&group)));
            match outcome {
                Ok(Ok(())) => {}
                Ok(Err(ckpt_err)) => {
                    self.errors.lock().push(ckpt_err);
                    break;
                }
                Err(payload) => {
                    let msg = panic_message(payload);
                    let finished = self.results.lock();
                    let finished_idx: Vec<usize> = finished.iter().map(|&(idx, _)| idx).collect();
                    drop(finished);
                    for &(idx, epochs) in &group.members {
                        if finished_idx.contains(&idx) {
                            continue;
                        }
                        let record = QuarantineRecord {
                            config: group.member_config(epochs),
                            grid_index: idx,
                            reason: QuarantineReason::Panicked(msg.clone()),
                        };
                        if let Err(e) = self.quarantine(record) {
                            self.errors.lock().push(e);
                            return;
                        }
                    }
                }
            }
            self.groups_done.fetch_add(1, Ordering::SeqCst);
        }
    }
}

impl ModelZoo {
    /// Trains every configuration of the grid on benign snapshots
    /// `[n, w, f, 1]`, using up to `threads` worker threads.
    ///
    /// Configurations differing **only in epoch count** are produced as
    /// checkpoints of a single training run (the paper's 60 instances are
    /// 15 architecture runs × 4 epoch checkpoints), so a 5×3×4 grid costs
    /// 15 trainings to the maximum epoch budget, not 60 from scratch.
    ///
    /// Each run is fully determined by its group's seed, so the zoo is
    /// reproducible regardless of thread scheduling.
    ///
    /// This is the infallible convenience wrapper around
    /// [`ModelZoo::train_grid`] (no checkpointing, default sentinels).
    ///
    /// # Panics
    ///
    /// Panics if the grid is empty, `threads == 0`, or every configuration
    /// was quarantined.
    pub fn train(grid: &GridConfig, train: &Tensor, threads: usize) -> Self {
        match Self::train_grid(grid, train, &ZooTrainOptions::new(threads)) {
            Ok(report) => report.zoo,
            Err(e) => panic!("zoo training failed: {e}"),
        }
    }

    /// Fault-tolerant grid training.
    ///
    /// Beyond [`ModelZoo::train`], this:
    ///
    /// - **quarantines** configurations whose training diverges past the
    ///   sentinel retry budget (or whose worker panics) instead of taking
    ///   the whole run down — the report lists each exclusion with a
    ///   structured [`QuarantineReason`];
    /// - **checkpoints** every finished member through a
    ///   [`CheckpointStore`] when `options.checkpoint_dir` is set, and
    ///   **resumes** from the store's manifest on the next call: fully
    ///   persisted groups are loaded instead of retrained, and a group
    ///   killed mid-member resumes from its epoch-granular partial
    ///   checkpoint (full training state: generator, optimizer caches,
    ///   spectral vectors, RNG cursor) at the last finished epoch — the
    ///   resumed model is **bitwise identical** to the uninterrupted run's.
    ///
    /// # Errors
    ///
    /// [`ZooError::EmptyGrid`] / [`ZooError::NoThreads`] on bad arguments,
    /// [`ZooError::Checkpoint`] if the store fails or holds a manifest for
    /// a different grid, and [`ZooError::AllQuarantined`] when no
    /// configuration survived.
    pub fn train_grid(
        grid: &GridConfig,
        train: &Tensor,
        options: &ZooTrainOptions,
    ) -> Result<ZooTrainReport, ZooError> {
        let configs = grid.expand();
        if configs.is_empty() {
            return Err(ZooError::EmptyGrid);
        }
        if options.threads == 0 {
            return Err(ZooError::NoThreads);
        }

        let store = match &options.checkpoint_dir {
            Some(dir) => Some(CheckpointStore::open(dir)?),
            None => None,
        };
        let fingerprint = grid_fingerprint(grid);

        // Resume bookkeeping: load the manifest (if any), verify it belongs
        // to this grid, and split groups into fully-accounted (loaded from
        // disk) and pending (retrained).
        let mut manifest = Manifest {
            fingerprint,
            ..Manifest::default()
        };
        if let Some(store) = &store {
            if let Some(found) = store.read_manifest()? {
                if found.fingerprint != fingerprint {
                    return Err(CheckpointError::ManifestMismatch {
                        expected: fingerprint,
                        found: found.fingerprint,
                    }
                    .into());
                }
                manifest = found;
            } else {
                store.write_manifest(&manifest)?;
            }
        }

        let mut groups = group_grid(&configs);

        // Quarantine retry: strip every record of a quarantined group from
        // the manifest and re-queue the whole group with a salted run seed.
        // The rewritten manifest lands on disk before training starts, so a
        // crash mid-retry resumes cleanly (the group simply trains again).
        let retry_store = if options.retry_quarantined && !manifest.quarantined.is_empty() {
            store.as_ref()
        } else {
            None
        };
        if let Some(retry_store) = retry_store {
            let mut stripped = false;
            for group in &mut groups {
                let hit = group.members.iter().any(|&(_, epochs)| {
                    let id = group.member_config(epochs).id();
                    manifest.quarantined.iter().any(|(q, _)| *q == id)
                });
                if !hit {
                    continue;
                }
                group.retry_salt = RETRY_SEED_SALT;
                let ids: Vec<String> = group
                    .members
                    .iter()
                    .map(|&(_, epochs)| group.member_config(epochs).id())
                    .collect();
                manifest.done.retain(|d| !ids.contains(d));
                manifest.quarantined.retain(|(q, _)| !ids.contains(q));
                // The doomed run's partial was written under the unsalted
                // seed; it could never seed the salted retry (id check),
                // but leaving it would orphan the file.
                retry_store.remove_partial(&group.partial_key())?;
                stripped = true;
            }
            if stripped {
                retry_store.write_manifest(&manifest)?;
            }
        }

        let mut pending: Vec<TrainGroup> = Vec::new();
        let mut preloaded: Vec<(usize, Wgan)> = Vec::new();
        let mut carried: Vec<QuarantineRecord> = Vec::new();
        for group in groups {
            let accounted = store.is_some()
                && group.members.iter().all(|&(_, epochs)| {
                    let id = group.member_config(epochs).id();
                    manifest.done.contains(&id)
                        || manifest.quarantined.iter().any(|(q, _)| *q == id)
                });
            if !accounted {
                pending.push(group);
                continue;
            }
            let store = store.as_ref().expect("accounted implies store");
            // A crash between the group's last commit and its partial
            // cleanup can leave the (now useless) partial behind.
            store.remove_partial(&group.partial_key())?;
            for &(idx, epochs) in &group.members {
                let config = group.member_config(epochs);
                let id = config.id();
                if let Some((_, reason)) = manifest.quarantined.iter().find(|(q, _)| *q == id) {
                    carried.push(QuarantineRecord {
                        config,
                        grid_index: idx,
                        reason: QuarantineReason::Recorded(reason.clone()),
                    });
                } else {
                    preloaded.push((idx, store.load_member(config)?));
                }
            }
        }
        let shared = TrainShared {
            resumed: AtomicUsize::new(preloaded.len()),
            work: Mutex::new(pending),
            results: Mutex::new(preloaded),
            quarantined: Mutex::new(carried),
            errors: Mutex::new(Vec::new()),
            manifest: Mutex::new(manifest),
            store: store.as_ref(),
            groups_done: AtomicUsize::new(0),
            rollbacks: AtomicUsize::new(0),
            epochs_done: AtomicUsize::new(0),
            halted: AtomicBool::new(false),
            options,
            train,
        };
        crossbeam::thread::scope(|scope| {
            for _ in 0..options.threads {
                scope.spawn(|_| shared.worker());
            }
        })
        .expect("zoo training scope");

        if let Some(err) = shared.errors.into_inner().into_iter().next() {
            return Err(err.into());
        }
        let pending_left = shared.work.into_inner().len();
        let halted = shared.halted.into_inner();
        let resumed = shared.resumed.into_inner();

        let mut trained = shared.results.into_inner();
        trained.sort_by_key(|(idx, _)| *idx);
        let mut quarantined = shared.quarantined.into_inner();
        quarantined.sort_by_key(|r| r.grid_index);
        // An epoch-budget halt can strand a half-finished group that is no
        // longer in the work queue, so `halted` alone marks incompleteness.
        let complete = pending_left == 0 && !halted;
        if complete && trained.is_empty() {
            return Err(ZooError::AllQuarantined(quarantined));
        }
        Ok(ZooTrainReport {
            zoo: ModelZoo {
                entries: trained
                    .into_iter()
                    .map(|(grid_index, wgan)| ZooEntry {
                        wgan,
                        grid_index,
                        per_attack: Vec::new(),
                        ads: 0.0,
                    })
                    .collect(),
            },
            quarantined,
            resumed,
            rollbacks: shared.rollbacks.into_inner(),
            complete,
        })
    }

    /// Builds a zoo from already-trained models (e.g. deserialized).
    pub fn from_models(models: Vec<Wgan>) -> Self {
        ModelZoo {
            entries: models
                .into_iter()
                .enumerate()
                .map(|(grid_index, wgan)| ZooEntry {
                    wgan,
                    grid_index,
                    per_attack: Vec::new(),
                    ads: 0.0,
                })
                .collect(),
        }
    }

    /// Number of models.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the zoo is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The zoo entries.
    pub fn entries(&self) -> &[ZooEntry] {
        &self.entries
    }

    /// Mutable access to the entries (e.g. for scoring).
    pub fn entries_mut(&mut self) -> &mut [ZooEntry] {
        &mut self.entries
    }

    /// Pre-evaluates every model on labelled validation datasets with the
    /// default AUROC detection score; ADS is the mean over attacks
    /// (Eq. 4).
    ///
    /// # Panics
    ///
    /// Panics if `validation` is empty or a dataset lacks both classes.
    pub fn pre_evaluate(&mut self, validation: &[(Attack, WindowDataset)]) {
        self.pre_evaluate_with(validation, DetectionScore::Auroc);
    }

    /// Pre-evaluates with an explicit detection-score metric (§III-E lets
    /// the defender choose AUROC, AUPRC, …).
    ///
    /// Entries are evaluated in parallel on crossbeam scoped threads; each
    /// entry's result depends only on its own critic, so the outcome is
    /// identical to the serial loop regardless of scheduling. A panic while
    /// scoring one entry (e.g. a poisoned critic) is isolated: that entry's
    /// ADS is set to `-inf` so [`ModelZoo::top_m`] ranks it last, and every
    /// other entry evaluates normally.
    ///
    /// # Panics
    ///
    /// Panics if `validation` is empty or a dataset lacks both classes.
    pub fn pre_evaluate_with(
        &mut self,
        validation: &[(Attack, WindowDataset)],
        metric: DetectionScore,
    ) {
        assert!(
            !validation.is_empty(),
            "need at least one validation attack"
        );
        let evaluate = |entry: &mut ZooEntry| {
            let scored = panic::catch_unwind(AssertUnwindSafe(|| {
                let mut per_attack = Vec::with_capacity(validation.len());
                let mut sum = 0.0;
                for (attack, dataset) in validation {
                    let scores = entry.wgan.score_batch(&dataset.x);
                    let ds = metric.evaluate(&scores, &dataset.labels);
                    per_attack.push((*attack, ds));
                    sum += ds;
                }
                (per_attack, sum / validation.len() as f64)
            }));
            match scored {
                Ok((per_attack, ads)) => {
                    entry.per_attack = per_attack;
                    entry.ads = ads;
                }
                Err(_) => {
                    entry.per_attack = Vec::new();
                    entry.ads = f64::NEG_INFINITY;
                }
            }
        };
        if self.entries.len() <= 1 {
            for entry in &mut self.entries {
                evaluate(entry);
            }
            return;
        }
        crossbeam::thread::scope(|scope| {
            for entry in &mut self.entries {
                let evaluate = &evaluate;
                scope.spawn(move |_| evaluate(entry));
            }
        })
        .expect("zoo pre-evaluation scope");
    }

    /// Indices of the top-`m` models by ADS (descending). Requires a prior
    /// [`ModelZoo::pre_evaluate`]. Non-finite ADS values (a quarantine-worthy
    /// critic that slipped through, or a panicked evaluation) sort last
    /// rather than poisoning the comparison.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero or exceeds the zoo size.
    pub fn top_m(&self, m: usize) -> Vec<usize> {
        assert!(
            m >= 1 && m <= self.entries.len(),
            "m must be in [1, {}]",
            self.entries.len()
        );
        let sort_key = |ads: f64| if ads.is_nan() { f64::NEG_INFINITY } else { ads };
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by(|&a, &b| {
            sort_key(self.entries[b].ads)
                .partial_cmp(&sort_key(self.entries[a].ads))
                .expect("NaN mapped to -inf")
        });
        order.truncate(m);
        order
    }

    /// Removes and returns the models at `indices` (order preserved).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds or duplicated.
    pub fn take_models(self, indices: &[usize]) -> Vec<ZooEntry> {
        let mut seen = vec![false; self.entries.len()];
        for &i in indices {
            assert!(i < seen.len(), "index {i} out of bounds");
            assert!(!seen[i], "duplicate index {i}");
            seen[i] = true;
        }
        let mut slots: Vec<Option<ZooEntry>> = self.entries.into_iter().map(Some).collect();
        indices
            .iter()
            .map(|&i| slots[i].take().expect("checked above"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vehigan_tensor::init::{rand_uniform, seeded_rng};

    fn benign(n: usize, seed: u64) -> Tensor {
        let mut rng = seeded_rng(seed);
        let base = rand_uniform(&[n, 1], -0.2, 0.2, &mut rng);
        let mut data = Vec::with_capacity(n * 120);
        for i in 0..n {
            for j in 0..120 {
                data.push(base.as_slice()[i] + 0.05 * (j as f32 * 0.4).cos());
            }
        }
        Tensor::from_vec(data, &[n, 10, 12, 1])
    }

    fn synthetic_validation(seed: u64) -> Vec<(Attack, WindowDataset)> {
        // Benign windows + saturated-garbage "attack" windows.
        let mut rng = seeded_rng(seed);
        let b = benign(40, seed);
        let garbage = rand_uniform(&[40, 10, 12, 1], -1.0, 1.0, &mut rng);
        let mut data = b.as_slice().to_vec();
        data.extend_from_slice(garbage.as_slice());
        let x = Tensor::from_vec(data, &[80, 10, 12, 1]);
        let labels: Vec<bool> = (0..80).map(|i| i >= 40).collect();
        let vehicles = vec![vehigan_sim::VehicleId(0); 80];
        vec![(
            Attack::by_name("RandomSpeed").unwrap(),
            WindowDataset {
                x,
                labels,
                vehicles,
            },
        )]
    }

    fn tiny_zoo() -> ModelZoo {
        let train = benign(128, 0);
        ModelZoo::train(&GridConfig::tiny(), &train, 2)
    }

    #[test]
    fn trains_all_grid_points() {
        let zoo = tiny_zoo();
        assert_eq!(zoo.len(), GridConfig::tiny().len());
        for (i, e) in zoo.entries().iter().enumerate() {
            assert!(!e.wgan.history().is_empty());
            assert_eq!(e.grid_index, i);
        }
    }

    #[test]
    fn parallel_training_is_deterministic() {
        let train = benign(128, 0);
        let mut a = ModelZoo::train(&GridConfig::tiny(), &train, 1);
        let mut b = ModelZoo::train(&GridConfig::tiny(), &train, 3);
        let probe = benign(8, 1);
        for (ea, eb) in a.entries_mut().iter_mut().zip(b.entries_mut()) {
            assert_eq!(ea.wgan.score_batch(&probe), eb.wgan.score_batch(&probe));
        }
    }

    #[test]
    fn pre_evaluation_fills_ads() {
        let mut zoo = tiny_zoo();
        zoo.pre_evaluate(&synthetic_validation(1));
        for e in zoo.entries() {
            assert_eq!(e.per_attack.len(), 1);
            assert!(e.ads >= 0.0 && e.ads <= 1.0);
        }
    }

    #[test]
    fn auprc_metric_also_works() {
        let mut zoo = tiny_zoo();
        zoo.pre_evaluate_with(&synthetic_validation(4), DetectionScore::Auprc);
        for e in zoo.entries() {
            assert!(e.ads > 0.0 && e.ads <= 1.0);
        }
    }

    #[test]
    fn detection_score_metrics_agree_on_perfect_ranking() {
        let scores = [0.9f32, 0.8, 0.2, 0.1];
        let labels = [true, true, false, false];
        assert_eq!(DetectionScore::Auroc.evaluate(&scores, &labels), 1.0);
        assert!((DetectionScore::Auprc.evaluate(&scores, &labels) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn top_m_is_sorted_by_ads() {
        let mut zoo = tiny_zoo();
        zoo.pre_evaluate(&synthetic_validation(2));
        let top = zoo.top_m(3);
        assert_eq!(top.len(), 3);
        for w in top.windows(2) {
            assert!(zoo.entries()[w[0]].ads >= zoo.entries()[w[1]].ads);
        }
    }

    #[test]
    fn top_m_tolerates_nan_ads() {
        let mut zoo = tiny_zoo();
        zoo.pre_evaluate(&synthetic_validation(2));
        zoo.entries_mut()[0].ads = f64::NAN;
        let top = zoo.top_m(zoo.len());
        // The NaN entry must sort last, not crash the comparator.
        assert_eq!(*top.last().unwrap(), 0);
    }

    #[test]
    fn take_models_preserves_order() {
        let mut zoo = tiny_zoo();
        zoo.pre_evaluate(&synthetic_validation(3));
        let top = zoo.top_m(2);
        let expect_ids: Vec<String> = top
            .iter()
            .map(|&i| zoo.entries()[i].wgan.config().id())
            .collect();
        let taken = zoo.take_models(&top);
        let got_ids: Vec<String> = taken.iter().map(|e| e.wgan.config().id()).collect();
        assert_eq!(expect_ids, got_ids);
    }

    #[test]
    #[should_panic(expected = "m must be in")]
    fn top_m_bounds_checked() {
        let zoo = tiny_zoo();
        let _ = zoo.top_m(zoo.len() + 1);
    }

    #[test]
    fn train_grid_rejects_bad_arguments() {
        let train = benign(32, 0);
        let empty = GridConfig {
            noise_dims: vec![],
            ..GridConfig::tiny()
        };
        assert!(matches!(
            ModelZoo::train_grid(&empty, &train, &ZooTrainOptions::new(2)),
            Err(ZooError::EmptyGrid)
        ));
        assert!(matches!(
            ModelZoo::train_grid(&GridConfig::tiny(), &train, &ZooTrainOptions::new(0)),
            Err(ZooError::NoThreads)
        ));
    }

    #[test]
    fn unrecoverable_divergence_quarantines_only_that_group() {
        let train = benign(64, 0);
        let mut options = ZooTrainOptions::new(2);
        // Poison every attempt of the noise_dim=8 run at its first epoch:
        // the sentinel budget runs dry and both of that group's epoch
        // checkpoints must be quarantined.
        options.fault_hook = Some(Arc::new(|wgan: &mut Wgan| {
            if wgan.config().noise_dim == 8 {
                for attempt in 0..8 {
                    wgan.inject_training_fault(attempt, 0);
                }
            }
        }));
        let report = ModelZoo::train_grid(&GridConfig::tiny(), &train, &options).unwrap();
        assert!(report.complete);
        assert_eq!(report.quarantined.len(), 2);
        for q in &report.quarantined {
            assert_eq!(q.config.noise_dim, 8);
            // Every retry in the budget was spent before giving up.
            match &q.reason {
                QuarantineReason::Train(TrainError::Diverged { attempts, .. }) => {
                    assert_eq!(*attempts, SentinelPolicy::default().max_retries + 1)
                }
                other => panic!("expected Diverged quarantine, got {other:?}"),
            }
        }
        assert_eq!(report.zoo.len(), GridConfig::tiny().len() - 2);
        for e in report.zoo.entries() {
            assert_eq!(e.wgan.config().noise_dim, 16);
        }
    }

    #[test]
    fn recoverable_divergence_rolls_back_and_keeps_the_member() {
        let train = benign(64, 0);
        let mut options = ZooTrainOptions::new(1);
        // One fault on the first attempt only: rollback + reseed recovers.
        options.fault_hook = Some(Arc::new(|wgan: &mut Wgan| {
            if wgan.config().noise_dim == 8 {
                wgan.inject_training_fault(0, 0);
            }
        }));
        let report = ModelZoo::train_grid(&GridConfig::tiny(), &train, &options).unwrap();
        assert!(report.quarantined.is_empty());
        assert_eq!(report.zoo.len(), GridConfig::tiny().len());
        assert_eq!(report.rollbacks, 1);
    }

    #[test]
    fn worker_panic_quarantines_group_and_spares_the_rest() {
        let train = benign(64, 0);
        let mut options = ZooTrainOptions::new(2);
        options.fault_hook = Some(Arc::new(|wgan: &mut Wgan| {
            if wgan.config().noise_dim == 8 {
                panic!("synthetic worker crash");
            }
        }));
        let report = ModelZoo::train_grid(&GridConfig::tiny(), &train, &options).unwrap();
        assert_eq!(report.quarantined.len(), 2);
        for q in &report.quarantined {
            match &q.reason {
                QuarantineReason::Panicked(msg) => {
                    assert!(msg.contains("synthetic worker crash"))
                }
                other => panic!("expected panic quarantine, got {other:?}"),
            }
        }
        assert_eq!(report.zoo.len(), GridConfig::tiny().len() - 2);
    }

    #[test]
    fn all_quarantined_is_a_typed_error() {
        let train = benign(64, 0);
        let mut options = ZooTrainOptions::new(1);
        options.fault_hook = Some(Arc::new(|_: &mut Wgan| panic!("everything burns")));
        match ModelZoo::train_grid(&GridConfig::tiny(), &train, &options) {
            Err(ZooError::AllQuarantined(q)) => {
                assert_eq!(q.len(), GridConfig::tiny().len())
            }
            other => panic!("expected AllQuarantined, got {other:?}"),
        }
    }
}
