//! FGSM adversarial attacks against WGAN-based MBDS (§II-B, §III-G).
//!
//! Two attack families target the anomaly score `s(x) = −D(x)`:
//!
//! - **AFP** (adversarial false positive, Eq. 6): perturb a *benign*
//!   window so its anomaly score rises above τ —
//!   `x_adv = x − ε·sign(∇ₓD(x))`;
//! - **AFN** (adversarial false negative, Eq. 7): perturb a *misbehavior*
//!   window so its score falls below τ —
//!   `x_adv = x + ε·sign(∇ₓD(x))`.
//!
//! Threat-model variants: white-box (gradients of the victim), gray-box
//! transfer (gradients of a surrogate, samples deployed on others), and
//! the adaptive multi-model attack (joint gradient of the ensemble mean).
//! A random-sign perturbation of equal ε serves as the noise control.

use rand::rngs::StdRng;
use rand::Rng;
use vehigan_tensor::{Sequential, Tensor};

/// Gradient of the anomaly score w.r.t. the input: `∇ₓ s(x) = −∇ₓ D(x)`,
/// computed per sample over a batch `[n, w, f, 1]`.
///
/// Each sample's gradient is independent because the critic processes
/// batch rows independently.
pub fn score_gradient(critic: &mut Sequential, x: &Tensor) -> Tensor {
    let out = critic.forward(x);
    // d(Σᵢ sᵢ)/dx = per-sample ds/dx with grad_out = −1 per row.
    let grad_out = Tensor::full(out.shape(), -1.0);
    critic.zero_grad();
    critic.backward(&grad_out)
}

/// Clamps perturbed snapshots back into the valid feature domain
/// `[-1, 1]` (FGSM perturbations must remain within sensor encoding
/// bounds to be transmittable).
fn clamp_domain(x: Tensor) -> Tensor {
    x.clamp(-1.0, 1.0)
}

/// AFP attack (Eq. 6): maximizes anomaly scores of benign inputs.
pub fn afp_attack(critic: &mut Sequential, x_benign: &Tensor, epsilon: f32) -> Tensor {
    let grad_s = score_gradient(critic, x_benign);
    let mut adv = x_benign.clone();
    adv.add_scaled(&grad_s.sign(), epsilon);
    clamp_domain(adv)
}

/// AFN attack (Eq. 7): minimizes anomaly scores of misbehavior inputs.
pub fn afn_attack(critic: &mut Sequential, x_anom: &Tensor, epsilon: f32) -> Tensor {
    let grad_s = score_gradient(critic, x_anom);
    let mut adv = x_anom.clone();
    adv.add_scaled(&grad_s.sign(), -epsilon);
    clamp_domain(adv)
}

/// Adaptive multi-model AFP (§V-B.2): the attacker has white-box access to
/// **all** critics and ascends the gradient of the ensemble-mean anomaly
/// score.
///
/// # Panics
///
/// Panics if `critics` is empty.
pub fn multi_model_afp(critics: &mut [&mut Sequential], x_benign: &Tensor, epsilon: f32) -> Tensor {
    assert!(!critics.is_empty(), "need at least one critic");
    let mut total = Tensor::zeros(x_benign.shape());
    for critic in critics.iter_mut() {
        total += &score_gradient(critic, x_benign);
    }
    let mut adv = x_benign.clone();
    adv.add_scaled(&total.sign(), epsilon);
    clamp_domain(adv)
}

/// Projected gradient descent (PGD) AFP attack — the iterative extension
/// of FGSM (an adaptive adversary beyond the paper's §III-G threat model,
/// provided for future-work experiments): `steps` gradient-sign steps of
/// size `epsilon / steps`, re-projected into the ε-ball of the original
/// input and the `[-1, 1]` domain after every step.
///
/// # Panics
///
/// Panics if `steps == 0`.
pub fn pgd_afp_attack(
    critic: &mut Sequential,
    x_benign: &Tensor,
    epsilon: f32,
    steps: usize,
) -> Tensor {
    assert!(steps > 0, "PGD needs at least one step");
    let alpha = epsilon / steps as f32;
    let mut adv = x_benign.clone();
    for _ in 0..steps {
        let grad_s = score_gradient(critic, &adv);
        adv.add_scaled(&grad_s.sign(), alpha);
        // Project into the ε-ball around the original input.
        let orig = x_benign.as_slice();
        for (a, &o) in adv.as_mut_slice().iter_mut().zip(orig) {
            *a = a.clamp(o - epsilon, o + epsilon);
        }
        adv = clamp_domain(adv);
    }
    adv
}

/// The random-noise control: a ±ε perturbation with random signs, matching
/// the FGSM perturbation's magnitude but not its direction (§V-B).
pub fn random_noise(x: &Tensor, epsilon: f32, rng: &mut StdRng) -> Tensor {
    let mut adv = x.clone();
    for v in adv.as_mut_slice() {
        *v += if rng.gen_bool(0.5) { epsilon } else { -epsilon };
    }
    clamp_domain(adv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WganConfig;
    use crate::wgan::Wgan;
    use vehigan_tensor::init::{rand_uniform, seeded_rng};

    fn benign(n: usize, seed: u64) -> Tensor {
        let mut rng = seeded_rng(seed);
        let base = rand_uniform(&[n, 1], -0.2, 0.2, &mut rng);
        let mut data = Vec::with_capacity(n * 120);
        for i in 0..n {
            for j in 0..120 {
                data.push(base.as_slice()[i] + 0.05 * (j as f32 * 0.4).cos());
            }
        }
        Tensor::from_vec(data, &[n, 10, 12, 1])
    }

    fn trained_wgan(seed: u64) -> Wgan {
        let config = WganConfig {
            noise_dim: 8,
            layers: 3,
            epochs: 3,
            batch_size: 32,
            n_critic: 1,
            seed,
            ..WganConfig::default()
        };
        let mut w = Wgan::new(config);
        w.train(&benign(128, seed ^ 0xF00));
        w
    }

    #[test]
    fn score_gradient_matches_finite_differences() {
        let mut wgan = trained_wgan(0);
        let x = benign(1, 1);
        let analytic = score_gradient(wgan.critic_mut(), &x);
        let numeric = vehigan_tensor::gradcheck::finite_diff_grad(
            |xx| {
                let mut c = Sequential::from_bytes(&wgan.critic_bytes()).expect("roundtrip");
                -c.forward(xx).sum()
            },
            &x,
            5e-3,
        );
        let err = vehigan_tensor::gradcheck::max_relative_error(&analytic, &numeric);
        // GP-trained critics carry more curvature, so central differences
        // at this step size are less exact than the layer-level checks.
        assert!(err < 5e-2, "err={err}");
    }

    #[test]
    fn afp_raises_anomaly_scores() {
        let mut wgan = trained_wgan(2);
        let x = benign(32, 3);
        let before = wgan.score_batch(&x);
        let adv = afp_attack(wgan.critic_mut(), &x, 0.01);
        let after = wgan.score_batch(&adv);
        let raised = before.iter().zip(&after).filter(|(b, a)| a > b).count();
        assert!(raised >= 30, "only {raised}/32 scores rose");
    }

    #[test]
    fn afn_lowers_anomaly_scores() {
        let mut wgan = trained_wgan(4);
        let mut rng = seeded_rng(5);
        let anomalies = rand_uniform(&[32, 10, 12, 1], -1.0, 1.0, &mut rng);
        let before = wgan.score_batch(&anomalies);
        let adv = afn_attack(wgan.critic_mut(), &anomalies, 0.01);
        let after = wgan.score_batch(&adv);
        let lowered = before.iter().zip(&after).filter(|(b, a)| a < b).count();
        assert!(lowered >= 30, "only {lowered}/32 scores fell");
    }

    #[test]
    fn perturbation_is_epsilon_bounded() {
        let mut wgan = trained_wgan(6);
        let x = benign(8, 7);
        let eps = 0.015;
        let adv = afp_attack(wgan.critic_mut(), &x, eps);
        for (a, b) in adv.as_slice().iter().zip(x.as_slice()) {
            assert!((a - b).abs() <= eps + 1e-6);
        }
        assert!(adv.max() <= 1.0 && adv.min() >= -1.0);
    }

    #[test]
    fn afp_beats_random_noise_at_same_epsilon() {
        // The core Fig 5a contrast: gradient-directed ε-perturbations move
        // scores far more than random ±ε noise.
        let mut wgan = trained_wgan(8);
        let x = benign(64, 9);
        let eps = 0.01;
        let before = wgan.score_batch(&x);
        let adv = afp_attack(wgan.critic_mut(), &x, eps);
        let mut rng = seeded_rng(10);
        let noisy = random_noise(&x, eps, &mut rng);
        let adv_scores = wgan.score_batch(&adv);
        let noise_scores = wgan.score_batch(&noisy);
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        let adv_shift = mean(&adv_scores) - mean(&before);
        let noise_shift = (mean(&noise_scores) - mean(&before)).abs();
        assert!(
            adv_shift > 3.0 * noise_shift,
            "adv {adv_shift} vs noise {noise_shift}"
        );
    }

    #[test]
    fn multi_model_attack_raises_mean_score() {
        let mut w1 = trained_wgan(11);
        let mut w2 = trained_wgan(12);
        let x = benign(16, 13);
        let before: f32 = w1
            .score_batch(&x)
            .iter()
            .zip(w2.score_batch(&x))
            .map(|(a, b)| (a + b) / 2.0)
            .sum();
        let adv = {
            let mut critics = [w1.critic_mut(), w2.critic_mut()];
            multi_model_afp(&mut critics, &x, 0.01)
        };
        let after: f32 = w1
            .score_batch(&adv)
            .iter()
            .zip(w2.score_batch(&adv))
            .map(|(a, b)| (a + b) / 2.0)
            .sum();
        assert!(after > before);
    }

    #[test]
    fn pgd_is_at_least_as_strong_as_fgsm() {
        // The iterative attack can refine its direction; mean score shift
        // must not fall below single-step FGSM (up to small tolerance).
        let mut wgan = trained_wgan(15);
        let x = benign(32, 16);
        let eps = 0.01;
        let before = wgan.score_batch(&x);
        let fgsm = afp_attack(wgan.critic_mut(), &x, eps);
        let pgd = pgd_afp_attack(wgan.critic_mut(), &x, eps, 5);
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        let fgsm_shift = mean(&wgan.score_batch(&fgsm)) - mean(&before);
        let pgd_shift = mean(&wgan.score_batch(&pgd)) - mean(&before);
        assert!(
            pgd_shift >= fgsm_shift * 0.8,
            "pgd {pgd_shift} vs fgsm {fgsm_shift}"
        );
    }

    #[test]
    fn pgd_respects_epsilon_ball() {
        let mut wgan = trained_wgan(17);
        let x = benign(4, 18);
        let eps = 0.01;
        let adv = pgd_afp_attack(wgan.critic_mut(), &x, eps, 7);
        for (a, b) in adv.as_slice().iter().zip(x.as_slice()) {
            assert!((a - b).abs() <= eps + 1e-6);
        }
    }

    #[test]
    fn random_noise_is_plus_minus_epsilon() {
        let x = Tensor::zeros(&[2, 10, 12, 1]);
        let mut rng = seeded_rng(14);
        let noisy = random_noise(&x, 0.02, &mut rng);
        for v in noisy.as_slice() {
            assert!((v.abs() - 0.02).abs() < 1e-7);
        }
    }
}
