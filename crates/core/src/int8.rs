//! Int8 ensemble scoring backend for [`VehiGan`].
//!
//! [`VehiGan::compile_int8`] snapshots every member's trained critic into
//! [`vehigan_lite::Int8Ensemble`] fused scorers — one per critic
//! *topology group*, since zoo members differ only in depth — and
//! [`VehiGan::score_with_members_int8`] then runs each deployed subset
//! through one fused i8 GEMM per layer instead of `k` separate float
//! model walks.
//!
//! The backend is a **sidecar**: the float members stay authoritative
//! (thresholds, gradients for the adversarial experiments, quarantine
//! state all live on [`VehiGan`]); the int8 artifact is a compiled view
//! of their weights at `compile_int8` time. Mutating a member's critic
//! afterwards (e.g. adaptive attack fine-tuning) leaves the backend
//! stale — recompile it.
//!
//! Degraded-tolerance matches the float path: a member whose int8 scores
//! come back non-finite is dropped from the reduction and recorded in
//! [`EnsembleScore::dropped`]; only when every deployed member fails does
//! scoring return [`EnsembleError::AllMembersFailed`].

use crate::ensemble::{EnsembleError, EnsembleScore, VehiGan};
use parking_lot::Mutex;
use vehigan_lite::Int8Ensemble;
use vehigan_tensor::Tensor;

/// Structural topology key of one critic: per-layer `(kind, usize_attrs)`,
/// weights excluded. Members with equal keys fuse into one scorer.
type TopologyKey = Vec<(String, Vec<(String, usize)>)>;

/// Compiled int8 scorers for a [`VehiGan`]'s members, grouped by critic
/// topology.
pub struct Int8Backend {
    /// One fused scorer per topology group.
    groups: Vec<Mutex<Int8Ensemble>>,
    /// `member index → (group, local index within the group)`.
    member_map: Vec<(usize, usize)>,
    /// Flat snapshot length each scorer expects.
    input_len: usize,
}

impl std::fmt::Debug for Int8Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Int8Backend({} members in {} topology groups, {} packed weight bytes)",
            self.member_map.len(),
            self.groups.len(),
            self.weight_bytes(),
        )
    }
}

impl Int8Backend {
    /// Number of compiled members.
    pub fn members(&self) -> usize {
        self.member_map.len()
    }

    /// Number of distinct critic topologies.
    pub fn groups(&self) -> usize {
        self.groups.len()
    }

    /// Total packed int8 weight bytes — the deployable artifact size,
    /// roughly 4× smaller than the float weights.
    pub fn weight_bytes(&self) -> usize {
        self.groups.iter().map(|g| g.lock().weight_bytes()).sum()
    }

    /// Scores `indices` on a flat batch, returning per-member score
    /// vectors in `indices` order (`None` marks a member whose scores
    /// came back non-finite).
    fn member_scores(&self, indices: &[usize], windows: &[f32], n: usize) -> Vec<Option<Vec<f32>>> {
        // Partition the subset by topology group, preserving each
        // member's position in `indices` so the reduction order is
        // identical to the float path.
        let mut by_group: Vec<(Vec<usize>, Vec<usize>)> =
            vec![(Vec::new(), Vec::new()); self.groups.len()];
        for (pos, &i) in indices.iter().enumerate() {
            let (g, local) = self.member_map[i];
            by_group[g].0.push(local);
            by_group[g].1.push(pos);
        }
        let mut out: Vec<Option<Vec<f32>>> = vec![None; indices.len()];
        for (g, (locals, positions)) in by_group.into_iter().enumerate() {
            if locals.is_empty() {
                continue;
            }
            let mut scores = vec![0.0f32; locals.len() * n];
            self.groups[g]
                .lock()
                .score_subset_into(&locals, windows, n, &mut scores);
            for (s, &pos) in positions.iter().enumerate() {
                let member = scores[s * n..(s + 1) * n].to_vec();
                out[pos] = member.iter().all(|v| v.is_finite()).then_some(member);
            }
        }
        out
    }
}

impl VehiGan {
    /// Compiles every member's critic into the fused int8 backend,
    /// calibrating activation scales on `calibration` (benign training
    /// windows `[n, w, f, 1]`; a few hundred are plenty).
    ///
    /// Members are grouped by critic topology (zoo members differ only in
    /// depth) and each group becomes one fused
    /// [`vehigan_lite::Int8Ensemble`].
    ///
    /// # Errors
    ///
    /// [`EnsembleError::Int8Compile`] when a critic uses layers the int8
    /// path does not support or its weights are non-finite.
    ///
    /// # Panics
    ///
    /// Panics if `calibration` is empty or not rank 4.
    pub fn compile_int8(&mut self, calibration: &Tensor) -> Result<(), EnsembleError> {
        let shape = calibration.shape();
        assert!(
            shape.len() == 4 && shape[0] > 0,
            "calibration must be a non-empty [n, w, f, c] batch, got {shape:?}"
        );
        let input_shape = (shape[1], shape[2], shape[3]);
        let input_len = shape[1] * shape[2] * shape[3];

        let snaps: Vec<_> = self
            .members()
            .iter()
            .map(|m| m.wgan.critic().save())
            .collect();

        // Group members by structural topology: layer kinds plus integer
        // hyperparameters (depth, channels, kernel) — weights excluded.
        let keys: Vec<TopologyKey> = snaps
            .iter()
            .map(|s| {
                s.layers
                    .iter()
                    .map(|l| (l.kind.clone(), l.usize_attrs.clone()))
                    .collect()
            })
            .collect();
        let mut group_keys: Vec<&TopologyKey> = Vec::new();
        let mut group_members: Vec<Vec<usize>> = Vec::new();
        let mut member_map = vec![(0usize, 0usize); snaps.len()];
        for (i, key) in keys.iter().enumerate() {
            let g = match group_keys.iter().position(|k| *k == key) {
                Some(g) => g,
                None => {
                    group_keys.push(key);
                    group_members.push(Vec::new());
                    group_keys.len() - 1
                }
            };
            member_map[i] = (g, group_members[g].len());
            group_members[g].push(i);
        }

        let mut groups = Vec::with_capacity(group_members.len());
        for members in &group_members {
            let refs: Vec<_> = members.iter().map(|&i| &snaps[i]).collect();
            let fused =
                Int8Ensemble::compile(&refs, input_shape, calibration.as_slice()).map_err(|e| {
                    EnsembleError::Int8Compile {
                        reason: e.to_string(),
                    }
                })?;
            groups.push(Mutex::new(fused));
        }
        self.set_int8_backend(Int8Backend {
            groups,
            member_map,
            input_len,
        });
        Ok(())
    }

    /// Scores snapshots through the int8 backend with an explicit member
    /// subset — the fused counterpart of [`VehiGan::score_with_members`],
    /// with identical subset validation, reduction order, and
    /// degraded-tolerance semantics.
    ///
    /// # Errors
    ///
    /// [`EnsembleError::Int8NotCompiled`] before [`VehiGan::compile_int8`];
    /// otherwise the same errors as [`VehiGan::score_with_members`].
    pub fn score_with_members_int8(
        &self,
        indices: &[usize],
        x: &Tensor,
    ) -> Result<EnsembleScore, EnsembleError> {
        let backend = self.int8_backend().ok_or(EnsembleError::Int8NotCompiled)?;
        if indices.is_empty() {
            return Err(EnsembleError::EmptySubset);
        }
        for &i in indices {
            if i >= self.m() {
                return Err(EnsembleError::MemberOutOfBounds {
                    index: i,
                    m: self.m(),
                });
            }
        }
        let n = x.shape()[0];
        assert_eq!(
            x.as_slice().len(),
            n * backend.input_len,
            "batch shape {:?} does not match the compiled input length {}",
            x.shape(),
            backend.input_len
        );
        let mut per_member = backend.member_scores(indices, x.as_slice(), n);
        // Chaos fault injection (see [`VehiGan::chaos_poison_member`]):
        // overwrite the poisoned member's scores with NaN and re-apply
        // the same finiteness filter `member_scores` uses, so the drop
        // machinery is exercised identically to a real poisoning.
        for (slot, &i) in per_member.iter_mut().zip(indices) {
            if self.member_poisoned(i) {
                if let Some(scores) = slot.as_mut() {
                    scores.fill(f32::NAN);
                }
                *slot = slot.take().filter(|s| s.iter().all(|v| v.is_finite()));
            }
        }
        self.reduce_member_scores(indices, &per_member, n)
    }

    /// Scores snapshots through the int8 backend with a fresh random
    /// subset of `k` healthy members — the fused counterpart of
    /// [`VehiGan::score_batch`].
    ///
    /// # Errors
    ///
    /// Same as [`VehiGan::sample_subset`] and
    /// [`VehiGan::score_with_members_int8`].
    pub fn score_batch_int8(&mut self, x: &Tensor) -> Result<EnsembleScore, EnsembleError> {
        let indices = self.sample_subset()?;
        self.score_with_members_int8(&indices, x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WganConfig;
    use crate::ensemble::CriticMember;
    use crate::wgan::Wgan;
    use vehigan_tensor::init::{rand_uniform, seeded_rng};

    fn benign(n: usize, seed: u64) -> Tensor {
        let mut rng = seeded_rng(seed);
        let base = rand_uniform(&[n, 1], -0.2, 0.2, &mut rng);
        let mut data = Vec::with_capacity(n * 120);
        for i in 0..n {
            for j in 0..120 {
                data.push(base.as_slice()[i] + 0.05 * (j as f32 * 0.4).cos());
            }
        }
        Tensor::from_vec(data, &[n, 10, 12, 1])
    }

    fn member(seed: u64, layers: usize, train: &Tensor) -> CriticMember {
        let config = WganConfig {
            noise_dim: 8,
            layers,
            epochs: 2,
            batch_size: 32,
            n_critic: 1,
            seed,
            ..WganConfig::default()
        };
        let mut wgan = Wgan::new(config);
        wgan.train(train);
        CriticMember::calibrate(wgan, 0.9, train, 99.0).unwrap()
    }

    /// Mixed-depth ensemble (two topology groups) with the backend
    /// compiled, plus the benign training batch.
    fn compiled_ensemble() -> (VehiGan, Tensor) {
        let train = benign(96, 0);
        let members = vec![
            member(0, 3, &train),
            member(1, 4, &train),
            member(2, 3, &train),
        ];
        let mut v = VehiGan::new(members, 2, 7).unwrap();
        v.compile_int8(&train).unwrap();
        (v, train)
    }

    #[test]
    fn scoring_before_compile_is_a_typed_error() {
        let train = benign(96, 0);
        let v = VehiGan::new(vec![member(0, 3, &train)], 1, 7).unwrap();
        assert_eq!(
            v.score_with_members_int8(&[0], &train).unwrap_err(),
            EnsembleError::Int8NotCompiled
        );
    }

    #[test]
    fn members_group_by_topology() {
        let (v, _train) = compiled_ensemble();
        let backend = v.int8_backend().unwrap();
        assert_eq!(backend.members(), 3);
        assert_eq!(backend.groups(), 2, "depths 3/4 are two topology groups");
        assert!(backend.weight_bytes() > 0);
        let text = format!("{backend:?}");
        assert!(text.contains("2 topology groups"), "{text}");
    }

    #[test]
    fn int8_scores_track_the_float_path() {
        let (v, _train) = compiled_ensemble();
        let x = benign(24, 3);
        let all = [0usize, 1, 2];
        let f32_path = v.score_with_members(&all, &x).unwrap();
        let int8_path = v.score_with_members_int8(&all, &x).unwrap();
        assert_eq!(int8_path.members, f32_path.members);
        assert_eq!(int8_path.threshold, f32_path.threshold);
        assert!(int8_path.dropped.is_empty());
        // Same scale-invariant agreement bound as the lite crate: errors
        // small against the score spread of the batch.
        let lo = f32_path
            .scores
            .iter()
            .cloned()
            .fold(f32::INFINITY, f32::min);
        let hi = f32_path
            .scores
            .iter()
            .cloned()
            .fold(f32::NEG_INFINITY, f32::max);
        let tol = 0.05 * (hi - lo).max(1e-3);
        for (a, b) in int8_path.scores.iter().zip(&f32_path.scores) {
            assert!((a - b).abs() <= tol, "int8 {a} vs f32 {b} (tol {tol})");
        }
    }

    #[test]
    fn subset_scoring_spans_topology_groups() {
        let (v, _train) = compiled_ensemble();
        let x = benign(6, 5);
        // Members 1 (depth 4) and 2 (depth 3) live in different groups;
        // the reduction must still follow `indices` order.
        let mixed = v.score_with_members_int8(&[1, 2], &x).unwrap();
        assert_eq!(mixed.members, vec![1, 2]);
        let single = v.score_with_members_int8(&[2], &x).unwrap();
        let other = v.score_with_members_int8(&[1], &x).unwrap();
        for i in 0..6 {
            let mean = (single.scores[i] + other.scores[i]) / 2.0;
            assert!((mixed.scores[i] - mean).abs() < 1e-6);
        }
    }

    #[test]
    fn int8_scoring_is_bitwise_deterministic() {
        let (v, _train) = compiled_ensemble();
        let x = benign(8, 9);
        let a = v.score_with_members_int8(&[0, 1, 2], &x).unwrap();
        let b = v.score_with_members_int8(&[0, 1, 2], &x).unwrap();
        assert_eq!(
            a.scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>(),
            b.scores.iter().map(|s| s.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn score_batch_int8_samples_random_subsets() {
        let (mut v, _train) = compiled_ensemble();
        let x = benign(4, 11);
        let subsets: Vec<Vec<usize>> = (0..10)
            .map(|_| v.score_batch_int8(&x).unwrap().members)
            .collect();
        for s in &subsets {
            assert_eq!(s.len(), 2);
        }
        assert!(subsets.iter().any(|s| s != &subsets[0]));
    }

    #[test]
    fn bad_subsets_are_typed_errors() {
        let (v, _train) = compiled_ensemble();
        let x = benign(2, 13);
        assert_eq!(
            v.score_with_members_int8(&[], &x).unwrap_err(),
            EnsembleError::EmptySubset
        );
        assert_eq!(
            v.score_with_members_int8(&[7], &x).unwrap_err(),
            EnsembleError::MemberOutOfBounds { index: 7, m: 3 }
        );
    }
}
