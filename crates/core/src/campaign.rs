//! Parallel, cache-aware evaluation data plane for the attack campaign.
//!
//! Evaluating the Table III catalog means building 35 labelled window
//! datasets over the same fleet. Only a `malicious_fraction` (paper: 25%)
//! of vehicles differ between any attack dataset and the benign one — the
//! other 75% of traces are byte-identical in all 36 datasets, yet the
//! monolithic path re-engineered, re-scaled, and re-windowed them 36
//! times. [`CampaignPlane`] computes each benign vehicle's scaled window
//! fragment **once**, then assembles every attack dataset by splicing
//! that attack's few attacker fragments over the shared benign cache —
//! in parallel across attacks, bitwise identical to the serial
//! [`build_windows`](vehigan_features::build_windows) path.
//!
//! [`score_matrix`] parallelizes the other campaign hot loop — every
//! ensemble member scoring every dataset — across members (scoring is
//! `&self` and per-member scratch is internal, so results are identical
//! to the serial nest regardless of scheduling).

use crate::wgan::Wgan;
use vehigan_features::{
    assemble_fragments, build_fragment, engineer_trace, MinMaxScaler, WindowConfig, WindowDataset,
    WindowFragment,
};
use vehigan_sim::VehicleTrace;
use vehigan_vasp::{Attack, DatasetBuilder, DatasetConfig, LabeledTrace};

/// Worker count bounded by the host's cores and the actual job count.
fn plane_threads(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(jobs)
        .max(1)
}

/// A reusable evaluation data plane over one fleet: the benign window
/// fragment of every vehicle, computed once and shared by every dataset
/// assembled from this plane.
///
/// # Examples
///
/// ```
/// use vehigan_core::CampaignPlane;
/// use vehigan_features::{fit_scaler, WindowConfig};
/// use vehigan_sim::{SimConfig, TrafficSimulator};
/// use vehigan_vasp::{Attack, DatasetBuilder, DatasetConfig};
///
/// let fleet = TrafficSimulator::new(SimConfig::quick_test()).run();
/// let config = WindowConfig::default();
/// let builder = DatasetBuilder::new(&fleet, DatasetConfig::default());
/// let scaler = fit_scaler(&builder.benign_dataset(), config.representation);
/// let plane = CampaignPlane::new(&fleet, DatasetConfig::default(), config, &scaler);
/// let campaign = plane.campaign(&Attack::catalog());
/// assert_eq!(campaign.len(), 35);
/// ```
pub struct CampaignPlane<'a> {
    fleet: &'a [VehicleTrace],
    dataset_config: DatasetConfig,
    window: WindowConfig,
    scaler: &'a MinMaxScaler,
    /// Benign fragment per fleet index; `None` when the trace is too
    /// short to yield a feature row.
    benign: Vec<Option<WindowFragment>>,
}

impl<'a> CampaignPlane<'a> {
    /// Builds the plane: engineers, scales, and windows every benign
    /// trace once (in parallel across vehicles).
    ///
    /// # Panics
    ///
    /// Panics if the scaler width does not match the representation or
    /// the fleet is empty.
    pub fn new(
        fleet: &'a [VehicleTrace],
        dataset_config: DatasetConfig,
        window: WindowConfig,
        scaler: &'a MinMaxScaler,
    ) -> Self {
        assert!(!fleet.is_empty(), "need at least one trace");
        let mut benign: Vec<Option<WindowFragment>> = (0..fleet.len()).map(|_| None).collect();
        let fragment_of = |trace: &VehicleTrace| {
            let labeled = LabeledTrace {
                labels: vec![false; trace.len()],
                trace: trace.clone(),
                is_attacker: false,
            };
            engineer_trace(&labeled, window.representation)
                .map(|rows| build_fragment(&rows, window, scaler))
        };

        let threads = plane_threads(fleet.len());
        if threads <= 1 {
            for (trace, slot) in fleet.iter().zip(&mut benign) {
                *slot = fragment_of(trace);
            }
        } else {
            let chunk = fleet.len().div_ceil(threads);
            crossbeam::thread::scope(|s| {
                for (traces, slots) in fleet.chunks(chunk).zip(benign.chunks_mut(chunk)) {
                    let fragment_of = &fragment_of;
                    s.spawn(move |_| {
                        for (trace, slot) in traces.iter().zip(slots) {
                            *slot = fragment_of(trace);
                        }
                    });
                }
            })
            .expect("benign fragment worker panicked");
        }

        CampaignPlane {
            fleet,
            dataset_config,
            window,
            scaler,
            benign,
        }
    }

    /// The benign dataset's windows — assembled from the cached
    /// fragments, bitwise identical to
    /// `build_windows(&builder.benign_dataset(), …)`.
    pub fn benign_windows(&self) -> WindowDataset {
        assemble_fragments(self.benign.iter().flatten(), self.window)
    }

    /// One attack's labelled windows: the attacker fragments are built
    /// fresh (they differ per attack), every other vehicle reuses its
    /// cached benign fragment. Bitwise identical to
    /// `build_windows(&builder.attack_dataset(attack), …)`.
    pub fn attack_windows(&self, attack: Attack) -> WindowDataset {
        let builder = DatasetBuilder::new(self.fleet, self.dataset_config.clone());
        let attackers: Vec<(usize, Option<WindowFragment>)> = builder
            .attacker_traces(attack)
            .iter()
            .map(|(i, t)| {
                (
                    *i,
                    engineer_trace(t, self.window.representation)
                        .map(|rows| build_fragment(&rows, self.window, self.scaler)),
                )
            })
            .collect();
        let mut next_attacker = attackers.iter().peekable();
        let spliced = (0..self.fleet.len()).filter_map(|i| {
            if next_attacker.peek().is_some_and(|&&(j, _)| j == i) {
                next_attacker.next().expect("peeked").1.as_ref()
            } else {
                self.benign[i].as_ref()
            }
        });
        assemble_fragments(spliced, self.window)
    }

    /// Labelled windows for every attack, in catalog order, built in
    /// parallel across attacks. Element `i` is bitwise identical to
    /// `self.attack_windows(attacks[i])`.
    pub fn campaign(&self, attacks: &[Attack]) -> Vec<WindowDataset> {
        let threads = plane_threads(attacks.len());
        if threads <= 1 {
            return attacks.iter().map(|&a| self.attack_windows(a)).collect();
        }
        let mut out: Vec<Option<WindowDataset>> = (0..attacks.len()).map(|_| None).collect();
        let chunk = attacks.len().div_ceil(threads);
        crossbeam::thread::scope(|s| {
            for (ats, slots) in attacks.chunks(chunk).zip(out.chunks_mut(chunk)) {
                s.spawn(move |_| {
                    for (&a, slot) in ats.iter().zip(slots) {
                        *slot = Some(self.attack_windows(a));
                    }
                });
            }
        })
        .expect("campaign assembly worker panicked");
        out.into_iter()
            .map(|d| d.expect("every slot filled"))
            .collect()
    }
}

/// Scores every member on every dataset: `out[member][dataset]` are the
/// member's anomaly scores on that dataset. Members are scored in
/// parallel (each member's datasets stay serial so its internal scratch
/// is never contended); the result is identical to the serial nest.
pub fn score_matrix(members: &[&Wgan], datasets: &[&WindowDataset]) -> Vec<Vec<Vec<f32>>> {
    let threads = plane_threads(members.len());
    if threads <= 1 {
        return members
            .iter()
            .map(|m| datasets.iter().map(|ds| m.score_batch(&ds.x)).collect())
            .collect();
    }
    let mut out: Vec<Option<Vec<Vec<f32>>>> = (0..members.len()).map(|_| None).collect();
    let chunk = members.len().div_ceil(threads);
    crossbeam::thread::scope(|s| {
        for (ms, slots) in members.chunks(chunk).zip(out.chunks_mut(chunk)) {
            s.spawn(move |_| {
                for (m, slot) in ms.iter().zip(slots) {
                    *slot = Some(datasets.iter().map(|ds| m.score_batch(&ds.x)).collect());
                }
            });
        }
    })
    .expect("score matrix worker panicked");
    out.into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WganConfig;
    use vehigan_features::{build_windows, fit_scaler};
    use vehigan_sim::{SimConfig, TrafficSimulator};

    fn fleet() -> Vec<VehicleTrace> {
        TrafficSimulator::new(SimConfig {
            n_vehicles: 8,
            duration_s: 40.0,
            seed: 9,
            ..SimConfig::default()
        })
        .run()
    }

    fn setup() -> (Vec<VehicleTrace>, WindowConfig, MinMaxScaler) {
        let fleet = fleet();
        let config = WindowConfig {
            stride: 3,
            ..WindowConfig::default()
        };
        let builder = DatasetBuilder::new(&fleet, DatasetConfig::default());
        let scaler = fit_scaler(&builder.benign_dataset(), config.representation);
        (fleet, config, scaler)
    }

    fn assert_identical(a: &WindowDataset, b: &WindowDataset) {
        assert_eq!(a.x.shape(), b.x.shape());
        assert_eq!(a.x.as_slice(), b.x.as_slice(), "window bytes must match");
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.vehicles, b.vehicles);
    }

    #[test]
    fn benign_windows_match_the_monolithic_build() {
        let (fleet, config, scaler) = setup();
        let plane = CampaignPlane::new(&fleet, DatasetConfig::default(), config, &scaler);
        let builder = DatasetBuilder::new(&fleet, DatasetConfig::default());
        let want = build_windows(&builder.benign_dataset(), config, &scaler);
        assert_identical(&plane.benign_windows(), &want);
    }

    #[test]
    fn attack_windows_match_the_monolithic_build() {
        let (fleet, config, scaler) = setup();
        let plane = CampaignPlane::new(&fleet, DatasetConfig::default(), config, &scaler);
        let builder = DatasetBuilder::new(&fleet, DatasetConfig::default());
        for name in ["RandomPosition", "HighSpeed", "OppositeHeading"] {
            let attack = Attack::by_name(name).unwrap();
            let want = build_windows(&builder.attack_dataset(attack), config, &scaler);
            assert_identical(&plane.attack_windows(attack), &want);
        }
    }

    #[test]
    fn parallel_campaign_matches_per_attack_assembly() {
        let (fleet, config, scaler) = setup();
        let plane = CampaignPlane::new(&fleet, DatasetConfig::default(), config, &scaler);
        let attacks: Vec<Attack> = Attack::catalog().into_iter().take(7).collect();
        let parallel = plane.campaign(&attacks);
        for (got, &attack) in parallel.iter().zip(&attacks) {
            assert_identical(got, &plane.attack_windows(attack));
        }
    }

    #[test]
    fn score_matrix_matches_the_serial_nest() {
        let (fleet, config, scaler) = setup();
        let plane = CampaignPlane::new(&fleet, DatasetConfig::default(), config, &scaler);
        let attacks: Vec<Attack> = Attack::catalog().into_iter().take(3).collect();
        let datasets = plane.campaign(&attacks);
        let refs: Vec<&WindowDataset> = datasets.iter().collect();

        let train = plane.benign_windows();
        let wgans: Vec<Wgan> = (0..2)
            .map(|i| {
                let mut w = Wgan::new(WganConfig {
                    noise_dim: 8,
                    layers: 3,
                    epochs: 1,
                    batch_size: 16,
                    n_critic: 1,
                    seed: i,
                    ..WganConfig::default()
                });
                w.train(&train.x);
                w
            })
            .collect();
        let members: Vec<&Wgan> = wgans.iter().collect();

        let got = score_matrix(&members, &refs);
        for (mi, member) in members.iter().enumerate() {
            for (di, ds) in refs.iter().enumerate() {
                assert_eq!(
                    got[mi][di],
                    member.score_batch(&ds.x),
                    "member {mi} dataset {di}"
                );
            }
        }
    }
}
