//! A single Wasserstein GAN: generator 𝒢, critic 𝒟, and the training loop
//! (§II-A, §III-D).
//!
//! Architectures mirror the paper's Keras models: 2-D CNNs with 2×2
//! kernels and LeakyReLU; the generator projects noise to a half-size
//! spatial seed, upsamples 2×, and convolves down to a single-channel
//! `w × f` snapshot with `tanh` output; the critic stacks `same`-padding
//! convolutions and ends in an unbounded scalar (no sigmoid — Wasserstein
//! critics regress realism).
//!
//! Lipschitz enforcement is selectable ([`LipschitzMode`]): WGAN-GP via a
//! finite-difference gradient penalty (default — drives `‖∇ₓD‖ → 1` at
//! the data, the property that makes WGAN critics sharp anomaly scorers),
//! the original WGAN *weight clipping* (Arjovsky et al. 2017), or
//! *spectral normalization* of the weight matrices. DESIGN.md records the
//! finite-difference construction: exact WGAN-GP needs second-order
//! backprop, but the penalty's parameter gradient reduces to a
//! directional derivative computable with two extra first-order passes.

use crate::config::{LipschitzMode, WganConfig};
use parking_lot::Mutex;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use vehigan_tensor::init::{randn, seeded_rng};
use vehigan_tensor::layers::{Activation, Conv2D, Dense, Flatten, Padding, Reshape, UpSample2D};
use vehigan_tensor::optim::{Optimizer, RmsProp};
use vehigan_tensor::serialize::{ModelFormatError, ModelSnapshot};
use vehigan_tensor::{Init, Sequential, Tensor, Workspace};

/// Rollback state captured at every healthy epoch boundary (in-memory, so
/// no wire-format validation gets in the way of snapshotting).
struct WganSnapshot {
    generator: ModelSnapshot,
    critic: ModelSnapshot,
    history: Vec<TrainStats>,
}

/// What a divergence sentinel observed when it tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceReason {
    /// A mini-batch produced a non-finite critic mean (Wasserstein loss
    /// term) — the classic WGAN blow-up.
    NonFiniteLoss,
    /// A network parameter went NaN/Inf (gradient explosion surfaces here
    /// after the optimizer step applies the bad update).
    NonFiniteWeights,
}

impl std::fmt::Display for DivergenceReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DivergenceReason::NonFiniteLoss => write!(f, "non-finite Wasserstein loss"),
            DivergenceReason::NonFiniteWeights => write!(f, "non-finite network weights"),
        }
    }
}

/// Unrecoverable training failure surfaced by the divergence sentinels.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// Training diverged and every rollback + reseeded retry in the budget
    /// diverged again. The model is left at its last healthy state.
    Diverged {
        /// Epoch (within this call) at which the final attempt tripped.
        epoch: usize,
        /// Total attempts made (initial try + retries).
        attempts: usize,
        /// What the sentinel observed.
        reason: DivergenceReason,
    },
    /// The model was already poisoned (non-finite weights) before training
    /// started — nothing to roll back to.
    PoisonedAtEntry {
        /// What the sentinel observed.
        reason: DivergenceReason,
    },
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Diverged {
                epoch,
                attempts,
                reason,
            } => write!(
                f,
                "training diverged at epoch {epoch} after {attempts} attempts ({reason})"
            ),
            TrainError::PoisonedAtEntry { reason } => {
                write!(f, "model poisoned before training started ({reason})")
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// Divergence-sentinel policy: how many rollback + reseeded-retry cycles a
/// training call may spend before giving up with [`TrainError::Diverged`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SentinelPolicy {
    /// Maximum retries after the initial attempt (total attempts =
    /// `max_retries + 1`).
    pub max_retries: usize,
}

impl Default for SentinelPolicy {
    fn default() -> Self {
        SentinelPolicy { max_retries: 2 }
    }
}

/// Outcome of a sentinel-guarded training call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrainReport {
    /// Epochs successfully trained by this call.
    pub epochs: usize,
    /// Rollback + reseeded-retry cycles that were needed along the way.
    pub rollbacks: usize,
    /// Whether the epoch observer stopped the call early (see
    /// [`Wgan::train_epochs_resumable`]). Always `false` for
    /// [`Wgan::train_epochs_checked`].
    pub stopped: bool,
}

/// Mid-call training position carried between resumable calls: the
/// batch/noise RNG stream and the sentinel attempt counter as of the last
/// healthy epoch boundary. `None` once a call runs to completion, so the
/// next call reseeds fresh exactly like an uninterrupted sequence of
/// calls.
#[derive(Debug, Clone)]
struct TrainCursor {
    rng: rand::rngs::StdRng,
    attempt: usize,
}

/// Per-epoch training statistics.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TrainStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Estimated Wasserstein distance `mean D(real) − mean D(fake)`.
    pub wasserstein: f32,
    /// Mean critic output on real samples.
    pub critic_real: f32,
    /// Mean critic output on fake samples.
    pub critic_fake: f32,
}

/// Channel width of critic conv layer `i` (8 → 16 → 32, capped).
fn critic_channels(i: usize) -> usize {
    (8 << i).min(32)
}

/// Builds the critic 𝒟 for a configuration.
pub fn build_critic(config: &WganConfig, rng: &mut rand::rngs::StdRng) -> Sequential {
    config.validate();
    let n_convs = config.layers - 1;
    let mut critic = Sequential::new();
    let mut cin = 1;
    for i in 0..n_convs {
        let cout = critic_channels(i);
        critic.push(Conv2D::new(
            cin,
            cout,
            (2, 2),
            Padding::Same,
            Init::HeUniform,
            rng,
        ));
        critic.push(Activation::leaky_relu(config.leaky_alpha));
        cin = cout;
    }
    critic.push(Flatten::new());
    critic.push(Dense::new(
        config.window * config.features * cin,
        1,
        Init::XavierUniform,
        rng,
    ));
    critic
}

/// Builds the generator 𝒢 for a configuration.
pub fn build_generator(config: &WganConfig, rng: &mut rand::rngs::StdRng) -> Sequential {
    config.validate();
    let (h2, w2) = (config.window / 2, config.features / 2);
    let seed_channels = 16;
    let mut g = Sequential::new();
    g.push(Dense::new(
        config.noise_dim,
        h2 * w2 * seed_channels,
        Init::HeUniform,
        rng,
    ));
    g.push(Activation::leaky_relu(config.leaky_alpha));
    g.push(Reshape::new(&[h2, w2, seed_channels]));
    g.push(UpSample2D::new(2, 2));
    // layers − 2 intermediate convs, then the output conv.
    for _ in 0..config.layers.saturating_sub(2) {
        g.push(Conv2D::new(
            seed_channels,
            seed_channels,
            (2, 2),
            Padding::Same,
            Init::HeUniform,
            rng,
        ));
        g.push(Activation::leaky_relu(config.leaky_alpha));
    }
    let mut out_conv = Conv2D::new(
        seed_channels,
        1,
        (2, 2),
        Padding::Same,
        Init::XavierUniform,
        rng,
    );
    if config.g_output_gain != 1.0 {
        use vehigan_tensor::layer::Layer;
        for p in out_conv.params_mut() {
            p.value.scale_in_place(config.g_output_gain);
        }
    }
    g.push(out_conv);
    g.push(Activation::tanh());
    g
}

/// One Wasserstein GAN instance.
///
/// # Examples
///
/// ```
/// use vehigan_core::{Wgan, WganConfig};
/// use vehigan_tensor::Tensor;
///
/// let config = WganConfig { epochs: 1, batch_size: 16, layers: 3, ..WganConfig::default() };
/// let mut wgan = Wgan::new(config);
/// let benign = Tensor::zeros(&[64, 10, 12, 1]);
/// wgan.train(&benign);
/// let scores = wgan.score_batch(&benign);
/// assert_eq!(scores.len(), 64);
/// ```
pub struct Wgan {
    config: WganConfig,
    generator: Sequential,
    critic: Sequential,
    opt_g: RmsProp,
    opt_d: RmsProp,
    history: Vec<TrainStats>,
    /// Power-iteration vectors for spectral normalization, one per
    /// critic weight matrix (empty until first use).
    sn_state: Vec<Vec<f32>>,
    /// Scratch arena for the inference path: `score_batch` works through
    /// `&self`, so the workspace sits behind a mutex (uncontended in the
    /// serial case; parallel ensemble scoring gives each member its own
    /// `Wgan`, so there is no cross-thread contention either).
    scratch: Mutex<Workspace>,
    /// Test-only scheduled divergences: `(attempt, epoch)` pairs at which a
    /// critic weight is poisoned (see [`Wgan::inject_training_fault`]).
    fault_plan: Vec<(usize, usize)>,
    /// Mid-call resume position (set while a resumable call is in flight,
    /// cleared when it completes). Serialized into the training state so a
    /// killed call continues its exact RNG stream.
    cursor: Option<TrainCursor>,
}

impl std::fmt::Debug for Wgan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Wgan({}, G={} params, D={} params, {} epochs trained)",
            self.config.id(),
            self.generator.num_params(),
            self.critic.num_params(),
            self.history.len()
        )
    }
}

impl Wgan {
    /// Creates an untrained WGAN with freshly initialized networks.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`WganConfig::validate`]).
    pub fn new(config: WganConfig) -> Self {
        config.validate();
        let mut rng = seeded_rng(config.seed);
        let generator = build_generator(&config, &mut rng);
        let critic = build_critic(&config, &mut rng);
        let opt_g = RmsProp::new(config.learning_rate);
        let opt_d = RmsProp::new(config.learning_rate);
        Wgan {
            config,
            generator,
            critic,
            opt_g,
            opt_d,
            history: Vec::new(),
            sn_state: Vec::new(),
            scratch: Mutex::new(Workspace::new()),
            fault_plan: Vec::new(),
            cursor: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &WganConfig {
        &self.config
    }

    /// The training history (one entry per trained epoch).
    pub fn history(&self) -> &[TrainStats] {
        &self.history
    }

    /// Attaches a training history (used when materializing checkpoints
    /// of a shared training run).
    pub(crate) fn set_history(&mut self, history: Vec<TrainStats>) {
        self.history = history;
    }

    /// Immutable access to the critic.
    pub fn critic(&self) -> &Sequential {
        &self.critic
    }

    /// Mutable access to the critic (needed for forward passes and input
    /// gradients).
    pub fn critic_mut(&mut self) -> &mut Sequential {
        &mut self.critic
    }

    /// Trains for `config.epochs` epochs on benign snapshots `[n, w, f, 1]`.
    ///
    /// Per mini-batch the critic takes one step (real up, fake down, the
    /// configured Lipschitz enforcement applied); every `n_critic` batches
    /// the generator takes one adversarial step through the critic.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the configured snapshot shape or holds
    /// fewer than one batch.
    pub fn train(&mut self, x: &Tensor) {
        let epochs = self.config.epochs;
        self.train_epochs(x, epochs);
    }

    /// Trains for an explicit number of epochs (used by the zoo to share
    /// partially-trained models across epoch grid points).
    ///
    /// Runs under the default [`SentinelPolicy`]; see
    /// [`Wgan::train_epochs_checked`] for the non-panicking variant.
    ///
    /// # Panics
    ///
    /// Panics if training diverges beyond the default retry budget.
    pub fn train_epochs(&mut self, x: &Tensor, epochs: usize) {
        if let Err(e) = self.train_epochs_checked(x, epochs, &SentinelPolicy::default()) {
            panic!("WGAN training failed: {e}");
        }
    }

    /// Sentinel-guarded training: trains `epochs` epochs, watching every
    /// epoch for divergence (non-finite Wasserstein loss terms per batch,
    /// non-finite weights after the optimizer steps — exploding gradients
    /// surface as the latter).
    ///
    /// On a tripped sentinel the model **rolls back** to its last healthy
    /// end-of-epoch snapshot (optimizer state resets; the snapshot carries
    /// weights and history) and retries with a **derived reseed** of the
    /// batch/noise RNG, up to `policy.max_retries` times. A run that stays
    /// healthy consumes the RNG identically to the unguarded loop, so
    /// sentinel-guarded training is bitwise identical to historical
    /// behavior whenever no rollback fires.
    ///
    /// # Errors
    ///
    /// [`TrainError::Diverged`] when the retry budget is exhausted (the
    /// model is left at its last healthy state);
    /// [`TrainError::PoisonedAtEntry`] when the weights are already
    /// non-finite on entry.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the configured snapshot shape or holds
    /// fewer than one batch (programmer error, not a runtime fault).
    pub fn train_epochs_checked(
        &mut self,
        x: &Tensor,
        epochs: usize,
        policy: &SentinelPolicy,
    ) -> Result<TrainReport, TrainError> {
        self.train_epochs_resumable(x, epochs, policy, |_| true)
    }

    /// Sentinel-guarded training with an epoch-boundary observer, the
    /// primitive behind mid-member checkpoint/resume.
    ///
    /// `on_epoch` runs after **every** healthy epoch (rolled-back epochs
    /// never reach it) with the model in a consistent, serializable state —
    /// the zoo uses it to persist an epoch-granular partial checkpoint.
    /// Returning `false` stops the call early with `stopped = true` in the
    /// report; the model keeps its mid-call [`TrainCursor`] so a later
    /// resumable call (on this instance, or on one rebuilt via
    /// [`Wgan::resume_from_state`]) continues the exact RNG stream, making
    /// stop-and-continue bitwise identical to running straight through.
    /// When the call completes normally the cursor is cleared, so the next
    /// training call reseeds fresh exactly as [`Wgan::train_epochs_checked`]
    /// always has.
    ///
    /// # Errors
    ///
    /// Same contract as [`Wgan::train_epochs_checked`].
    ///
    /// # Panics
    ///
    /// Panics if `x` does not match the configured snapshot shape or holds
    /// fewer than one batch (programmer error, not a runtime fault).
    pub fn train_epochs_resumable(
        &mut self,
        x: &Tensor,
        epochs: usize,
        policy: &SentinelPolicy,
        mut on_epoch: impl FnMut(&Wgan) -> bool,
    ) -> Result<TrainReport, TrainError> {
        assert_eq!(
            &x.shape()[1..],
            &[self.config.window, self.config.features, 1],
            "training data shape {:?} does not match config ({}, {}, 1)",
            x.shape(),
            self.config.window,
            self.config.features,
        );
        let n = x.shape()[0];
        let b = self.config.batch_size.min(n);
        assert!(n >= b && b > 0, "need at least one batch of data");
        if let Some(reason) = self.health_violation() {
            return Err(TrainError::PoisonedAtEntry { reason });
        }
        // A pending cursor (restored from a partial checkpoint, or left by
        // an observer-stopped call) continues the in-flight RNG stream;
        // otherwise seed fresh — identical to historical behavior.
        let (mut rng, mut attempt) = match self.cursor.take() {
            Some(c) => (c.rng, c.attempt),
            None => (
                rand::rngs::StdRng::seed_from_u64(self.config.seed ^ 0x7264),
                0usize,
            ),
        };
        let mut snapshot = self.state_snapshot();
        let mut rollbacks = 0usize;
        let mut done = 0usize;
        let mut stopped = false;

        while done < epochs {
            // Each epoch shuffles the identity permutation, so the batch
            // order is a pure function of the RNG stream position —
            // Fisher–Yates draws the same number of values either way, and
            // a resumed call (which restores the stream via the cursor)
            // produces exactly the permutation the uninterrupted call
            // would have.
            let mut indices: Vec<usize> = (0..n).collect();
            indices.shuffle(&mut rng);
            let mut w_sum = 0.0f32;
            let mut real_sum = 0.0f32;
            let mut fake_sum = 0.0f32;
            let mut n_batches = 0usize;
            let mut violation: Option<DivergenceReason> = None;
            for (batch_idx, chunk) in indices.chunks(b).enumerate() {
                if chunk.len() < 2 {
                    continue;
                }
                let real = x.take(chunk);
                let stats = self.critic_step(&real, &mut rng);
                // Cheap per-batch sentinel: the critic means are the
                // Wasserstein loss terms; a blow-up shows here first.
                if !stats.0.is_finite() || !stats.1.is_finite() {
                    violation = Some(DivergenceReason::NonFiniteLoss);
                    break;
                }
                w_sum += stats.0 - stats.1;
                real_sum += stats.0;
                fake_sum += stats.1;
                n_batches += 1;
                if (batch_idx + 1) % self.config.n_critic == 0 {
                    self.generator_step(chunk.len(), &mut rng);
                }
            }
            if let Some(pos) = self
                .fault_plan
                .iter()
                .position(|&(a, e)| a == attempt && e == done)
            {
                // Test hook: poison one critic weight as if this epoch's
                // updates had exploded. One-shot — a consumed fault does
                // not re-fire in later incremental training calls.
                self.fault_plan.remove(pos);
                if let Some(p) = self.critic.params_mut().first_mut() {
                    p.value.as_mut_slice()[0] = f32::NAN;
                }
            }
            if violation.is_none() {
                violation = self.health_violation();
            }
            match violation {
                None => {
                    let epoch = self.history.len();
                    let nb = n_batches.max(1) as f32;
                    self.history.push(TrainStats {
                        epoch,
                        wasserstein: w_sum / nb,
                        critic_real: real_sum / nb,
                        critic_fake: fake_sum / nb,
                    });
                    done += 1;
                    snapshot = self.state_snapshot();
                    // Expose the mid-call position before the observer runs
                    // so a partial saved from inside it carries the cursor.
                    // On the final epoch the cursor is `None`: a resume
                    // lands exactly at the fresh-reseed boundary of the
                    // next training call.
                    self.cursor = (done < epochs).then(|| TrainCursor {
                        rng: rng.clone(),
                        attempt,
                    });
                    if !on_epoch(self) {
                        stopped = true;
                        break;
                    }
                }
                Some(reason) => {
                    attempt += 1;
                    self.restore_snapshot(&snapshot);
                    if attempt > policy.max_retries {
                        // A dead call leaves no continuation point.
                        self.cursor = None;
                        return Err(TrainError::Diverged {
                            epoch: done,
                            attempts: attempt,
                            reason,
                        });
                    }
                    rollbacks += 1;
                    rng = rand::rngs::StdRng::seed_from_u64(
                        self.config.seed
                            ^ 0x7264
                            ^ (attempt as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
                    );
                }
            }
        }
        if !stopped {
            self.cursor = None;
        }
        Ok(TrainReport {
            epochs: done,
            rollbacks,
            stopped,
        })
    }

    /// First sentinel violation visible in the current parameters, if any.
    fn health_violation(&self) -> Option<DivergenceReason> {
        let finite = |model: &Sequential| {
            model
                .params()
                .iter()
                .all(|p| p.value.as_slice().iter().all(|v| v.is_finite()))
        };
        if finite(&self.critic) && finite(&self.generator) {
            None
        } else {
            Some(DivergenceReason::NonFiniteWeights)
        }
    }

    /// Captures the state a rollback restores: both networks plus the
    /// training history. In-memory snapshots skip the wire format's
    /// finite-value validation, so a poisoned model can still be
    /// snapshotted/restored while the sentinel decides what to do.
    fn state_snapshot(&self) -> WganSnapshot {
        WganSnapshot {
            generator: self.generator.save(),
            critic: self.critic.save(),
            history: self.history.clone(),
        }
    }

    /// Rolls the model back to a snapshot. Optimizer moments and spectral
    /// power-iteration vectors reset — the retry starts from clean
    /// optimizer state, which is part of what breaks the divergent
    /// trajectory.
    fn restore_snapshot(&mut self, snap: &WganSnapshot) {
        self.generator =
            Sequential::from_snapshot(&snap.generator).expect("rollback snapshot is self-made");
        self.critic =
            Sequential::from_snapshot(&snap.critic).expect("rollback snapshot is self-made");
        self.history = snap.history.clone();
        self.opt_g = RmsProp::new(self.config.learning_rate);
        self.opt_d = RmsProp::new(self.config.learning_rate);
        self.sn_state = Vec::new();
    }

    /// Schedules a training fault for tests: on attempt `attempt` (0 = the
    /// first try), after epoch-offset `epoch` of a
    /// [`Wgan::train_epochs_checked`] call, one critic weight is poisoned
    /// with NaN — deterministically simulating a divergence so rollback and
    /// reseeded-retry paths can be exercised.
    #[doc(hidden)]
    pub fn inject_training_fault(&mut self, attempt: usize, epoch: usize) {
        self.fault_plan.push((attempt, epoch));
    }

    /// One critic update; returns `(mean D(real), mean D(fake))`.
    fn critic_step(&mut self, real: &Tensor, rng: &mut rand::rngs::StdRng) -> (f32, f32) {
        let bsz = real.shape()[0];
        let z = randn(&[bsz, self.config.noise_dim], rng);
        let fake = self.generator.forward(&z);
        self.critic.zero_grad();
        // Maximize mean D(real) − mean D(fake) ⇒ minimize the negative.
        let out_real = self.critic.forward(real);
        let g = Tensor::full(out_real.shape(), -1.0 / bsz as f32);
        let _ = self.critic.backward(&g);
        let out_fake = self.critic.forward(&fake);
        let g = Tensor::full(out_fake.shape(), 1.0 / bsz as f32);
        let _ = self.critic.backward(&g);
        if let LipschitzMode::GradientPenalty { lambda } = self.config.lipschitz {
            self.accumulate_gradient_penalty(real, &fake, lambda, rng);
        }
        self.opt_d.step(&mut self.critic.params_mut());
        match self.config.lipschitz {
            LipschitzMode::Clip => self.critic.clip_weights(self.config.clip),
            LipschitzMode::Spectral => self.spectral_normalize(rng),
            LipschitzMode::GradientPenalty { .. } => {}
        }
        (out_real.mean(), out_fake.mean())
    }

    /// Accumulates the WGAN-GP parameter gradients
    /// `∇_θ λ·mean_i (‖∇ₓD(x̂ᵢ)‖ − 1)²` into the critic's gradient
    /// buffers.
    ///
    /// The second-order term is evaluated by a finite-difference
    /// directional derivative: with `vᵢ = ∇ₓD(x̂ᵢ)/‖·‖`,
    /// `∇_θ ‖∇ₓD(x̂ᵢ)‖ ≈ ∇_θ [D(x̂ᵢ + h·vᵢ) − D(x̂ᵢ)] / h`, which needs
    /// only first-order backprop.
    fn accumulate_gradient_penalty(
        &mut self,
        real: &Tensor,
        fake: &Tensor,
        lambda: f32,
        rng: &mut rand::rngs::StdRng,
    ) {
        use rand::Rng;
        let bsz = real.shape()[0];
        let elems: usize = real.shape()[1..].iter().product();
        // Random interpolates x̂ = α·real + (1 − α)·fake, α ~ U(0, 1).
        let mut x_hat = real.clone();
        {
            let xh = x_hat.as_mut_slice();
            let fk = fake.as_slice();
            for i in 0..bsz {
                let alpha: f32 = rng.gen_range(0.0..1.0);
                for j in 0..elems {
                    let idx = i * elems + j;
                    xh[idx] = alpha * xh[idx] + (1.0 - alpha) * fk[idx];
                }
            }
        }
        // Input gradient per interpolate. This backward pollutes the
        // parameter-gradient buffers with ∇_θ ΣD(x̂), so run it on a
        // scratch clone of the critic. Cloned via the in-memory snapshot:
        // the wire format rejects non-finite weights, and mid-divergence
        // batches must reach the sentinel, not panic here.
        let mut scratch = Sequential::from_snapshot(&self.critic.save())
            .expect("critic clone for gradient penalty");
        let out = scratch.forward(&x_hat);
        let grad_x = scratch.backward(&Tensor::ones(out.shape()));

        // Per-sample norms nᵢ and penalty coefficients cᵢ = 2λ(nᵢ−1)/b.
        let gx = grad_x.as_slice();
        let mut coeffs = Vec::with_capacity(bsz);
        let mut norms = Vec::with_capacity(bsz);
        for i in 0..bsz {
            let row = &gx[i * elems..(i + 1) * elems];
            let n = row.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-8);
            norms.push(n);
            coeffs.push(2.0 * lambda * (n - 1.0) / bsz as f32);
        }
        // Probe points x̂ + h·v (v = unit gradient direction).
        let h = 1e-3f32;
        let mut x_probe = x_hat.clone();
        {
            let xp = x_probe.as_mut_slice();
            for (i, &norm) in norms.iter().enumerate() {
                let inv = h / norm;
                for j in 0..elems {
                    let idx = i * elems + j;
                    xp[idx] += gx[idx] * inv;
                }
            }
        }
        // ∇_θ GP ≈ Σᵢ (cᵢ/h)·[∇_θ D(x̂ᵢ + h·vᵢ) − ∇_θ D(x̂ᵢ)].
        let mut g_plus = Tensor::zeros(&[bsz, 1]);
        let mut g_minus = Tensor::zeros(&[bsz, 1]);
        for (i, &c) in coeffs.iter().enumerate() {
            g_plus.as_mut_slice()[i] = c / h;
            g_minus.as_mut_slice()[i] = -c / h;
        }
        let _ = self.critic.forward(&x_probe);
        let _ = self.critic.backward(&g_plus);
        let _ = self.critic.forward(&x_hat);
        let _ = self.critic.backward(&g_minus);
    }

    /// Rescales every critic weight matrix to spectral norm ≤ 1 using one
    /// power-iteration step (the iteration vectors persist across steps,
    /// so the estimate sharpens as training proceeds).
    fn spectral_normalize(&mut self, rng: &mut rand::rngs::StdRng) {
        use rand::Rng;
        let mut params = self.critic.params_mut();
        // Lazily initialize one u vector per 2-D parameter.
        let n_mats = params.iter().filter(|p| p.value.ndim() == 2).count();
        if self.sn_state.len() != n_mats {
            self.sn_state = params
                .iter()
                .filter(|p| p.value.ndim() == 2)
                .map(|p| {
                    let rows = p.value.shape()[0];
                    (0..rows).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
                })
                .collect();
        }
        let mut mat_idx = 0;
        for p in params.iter_mut() {
            if p.value.ndim() != 2 {
                continue;
            }
            let (rows, cols) = (p.value.shape()[0], p.value.shape()[1]);
            let w = p.value.as_mut_slice();
            let u = &mut self.sn_state[mat_idx];
            mat_idx += 1;
            // v = normalize(Wᵀ u)
            let mut v = vec![0.0f32; cols];
            for r in 0..rows {
                let ur = u[r];
                if ur == 0.0 {
                    continue;
                }
                for c in 0..cols {
                    v[c] += w[r * cols + c] * ur;
                }
            }
            let vn = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
            for x in &mut v {
                *x /= vn;
            }
            // u' = normalize(W v); σ = ‖W v‖
            let mut wu = vec![0.0f32; rows];
            for r in 0..rows {
                let mut acc = 0.0;
                for c in 0..cols {
                    acc += w[r * cols + c] * v[c];
                }
                wu[r] = acc;
            }
            let sigma = wu.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
            for (ur, &x) in u.iter_mut().zip(&wu) {
                *ur = x / sigma;
            }
            // Only shrink: enforcing σ ≤ 1 rather than σ = 1 keeps
            // low-energy layers expressive.
            if sigma > 1.0 {
                let inv = 1.0 / sigma;
                for x in w.iter_mut() {
                    *x *= inv;
                }
            }
        }
    }

    /// One generator update through the critic.
    fn generator_step(&mut self, bsz: usize, rng: &mut rand::rngs::StdRng) {
        let z = randn(&[bsz, self.config.noise_dim], rng);
        let fake = self.generator.forward(&z);
        self.critic.zero_grad();
        let out = self.critic.forward(&fake);
        // Maximize mean D(fake) ⇒ grad −1/b into the critic, then chain
        // into the generator via the critic's input gradient.
        let g = Tensor::full(out.shape(), -1.0 / bsz as f32);
        let grad_fake = self.critic.backward(&g);
        self.generator.zero_grad();
        let _ = self.generator.backward(&grad_fake);
        self.opt_g.step(&mut self.generator.params_mut());
        // Critic grads from this pass are discarded by its next zero_grad.
    }

    /// Anomaly scores `s(x) = −D(x)` for snapshots `[n, w, f, 1]` (Eq. 5).
    ///
    /// Scoring is read-only: it runs the critic's inference path
    /// ([`Sequential::infer`] — numerically identical to `forward`) with
    /// scratch served from an internal [`Workspace`], so it needs only
    /// `&self` and, once warmed up, performs no per-call heap allocation
    /// beyond the returned `Vec` (use [`Wgan::score_into`] to avoid even
    /// that).
    pub fn score_batch(&self, x: &Tensor) -> Vec<f32> {
        let mut scores = vec![0.0f32; x.shape()[0]];
        self.score_into(x, &mut scores);
        scores
    }

    /// Zero-allocation scoring primitive: writes `s(x) = −D(x)` for each
    /// snapshot into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len()` differs from the batch size.
    pub fn score_into(&self, x: &Tensor, out: &mut [f32]) {
        assert_eq!(out.len(), x.shape()[0], "score_into output length mismatch");
        let mut ws = self.scratch.lock();
        // Copy the input into a workspace buffer so the activations that
        // flow out of it can be recycled without consuming the caller's x.
        let mut buf = ws.take(x.len());
        buf.copy_from_slice(x.as_slice());
        let scores = self.critic.infer(Tensor::from_vec(buf, x.shape()), &mut ws);
        for (o, &v) in out.iter_mut().zip(scores.as_slice()) {
            *o = -v;
        }
        ws.recycle(scores.into_vec());
    }

    /// Bytes currently pooled in the internal scoring workspace. Stable
    /// across repeated identical `score_batch` calls once warmed up — the
    /// invariant the no-allocation test asserts.
    pub fn scratch_bytes(&self) -> usize {
        self.scratch.lock().pooled_bytes()
    }

    /// Generates `n` fake snapshots from fresh noise.
    pub fn generate(&mut self, n: usize, rng: &mut rand::rngs::StdRng) -> Tensor {
        let z = randn(&[n, self.config.noise_dim], rng);
        self.generator.forward(&z)
    }

    /// Serializes the critic (all a deployment needs) to bytes.
    pub fn critic_bytes(&self) -> Vec<u8> {
        self.critic.to_bytes()
    }

    /// Restores a critic-only WGAN for inference from serialized bytes.
    ///
    /// The generator is rebuilt untrained (scoring never touches it).
    ///
    /// # Errors
    ///
    /// Returns an error if the bytes are not a valid model file.
    pub fn from_critic_bytes(config: WganConfig, bytes: &[u8]) -> Result<Self, ModelFormatError> {
        let critic = Sequential::from_bytes(bytes)?;
        let mut rng = seeded_rng(config.seed);
        let generator = build_generator(&config, &mut rng);
        Ok(Wgan {
            opt_g: RmsProp::new(config.learning_rate),
            opt_d: RmsProp::new(config.learning_rate),
            config,
            generator,
            critic,
            history: Vec::new(),
            sn_state: Vec::new(),
            scratch: Mutex::new(Workspace::new()),
            fault_plan: Vec::new(),
            cursor: None,
        })
    }

    /// Serializes everything training needs beyond the critic: generator
    /// weights, both RMSProp caches, spectral-norm power-iteration vectors,
    /// and (if a resumable call is in flight) the mid-call RNG/attempt
    /// cursor. Together with [`Wgan::critic_bytes`] and the history, this
    /// is the complete training state — restoring it via
    /// [`Wgan::resume_from_state`] and continuing is bitwise identical to
    /// never having stopped.
    ///
    /// Layout (all little-endian): `u32` state version; `u64`-prefixed
    /// generator model blob; `u64`-prefixed RMSProp state blob for the
    /// generator optimizer, then the critic optimizer; `u32` spectral
    /// vector count, each vector a `u32` length plus raw `f32`s; one
    /// cursor-presence byte, followed (when 1) by the 4×`u64` xoshiro256++
    /// state and a `u64` attempt counter.
    pub fn training_state_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&TRAINING_STATE_VERSION.to_le_bytes());
        let gen = self.generator.to_bytes();
        out.extend_from_slice(&(gen.len() as u64).to_le_bytes());
        out.extend_from_slice(&gen);
        for blob in [self.opt_g.state_bytes(), self.opt_d.state_bytes()] {
            out.extend_from_slice(&(blob.len() as u64).to_le_bytes());
            out.extend_from_slice(&blob);
        }
        out.extend_from_slice(&(self.sn_state.len() as u32).to_le_bytes());
        for v in &self.sn_state {
            out.extend_from_slice(&(v.len() as u32).to_le_bytes());
            for &x in v {
                out.extend_from_slice(&x.to_le_bytes());
            }
        }
        match &self.cursor {
            None => out.push(0),
            Some(c) => {
                out.push(1);
                for w in c.rng.state() {
                    out.extend_from_slice(&w.to_le_bytes());
                }
                out.extend_from_slice(&(c.attempt as u64).to_le_bytes());
            }
        }
        out
    }

    /// Rebuilds a fully trainable WGAN from a critic blob plus the
    /// training state written by [`Wgan::training_state_bytes`].
    ///
    /// Unlike [`Wgan::from_critic_bytes`] (inference-only: untrained
    /// generator, fresh optimizers), the restored instance continues
    /// training exactly where the serialized one stopped. The history is
    /// not part of the state — attach it separately as the checkpoint
    /// layer does.
    ///
    /// # Errors
    ///
    /// Any malformed, truncated, or trailing bytes, and optimizer caches
    /// whose tensor shapes do not match the restored networks, surface as
    /// [`ModelFormatError`].
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`WganConfig::validate`]).
    pub fn resume_from_state(
        config: WganConfig,
        critic_bytes: &[u8],
        state: &[u8],
    ) -> Result<Self, ModelFormatError> {
        config.validate();
        let critic = Sequential::from_bytes(critic_bytes)?;
        let mut r = state;
        if ts_read_u32(&mut r)? != TRAINING_STATE_VERSION {
            return Err(ModelFormatError::Corrupt("unknown training-state version"));
        }
        let gen_len = ts_read_u64(&mut r)? as usize;
        let generator = Sequential::from_bytes(ts_read_slice(&mut r, gen_len)?)?;
        let mut opt_g = RmsProp::new(config.learning_rate);
        let og_len = ts_read_u64(&mut r)? as usize;
        opt_g.restore_state(ts_read_slice(&mut r, og_len)?)?;
        let mut opt_d = RmsProp::new(config.learning_rate);
        let od_len = ts_read_u64(&mut r)? as usize;
        opt_d.restore_state(ts_read_slice(&mut r, od_len)?)?;
        let n_vecs = ts_read_u32(&mut r)? as usize;
        if n_vecs > 1 << 10 {
            return Err(ModelFormatError::Corrupt("too many spectral vectors"));
        }
        let mut sn_state = Vec::with_capacity(n_vecs);
        for _ in 0..n_vecs {
            let len = ts_read_u32(&mut r)? as usize;
            if len > 1 << 20 {
                return Err(ModelFormatError::Corrupt("spectral vector too long"));
            }
            let raw = ts_read_slice(&mut r, len * 4)?;
            let mut v = Vec::with_capacity(len);
            for chunk in raw.chunks_exact(4) {
                let x = f32::from_le_bytes(chunk.try_into().expect("chunk of 4"));
                if !x.is_finite() {
                    return Err(ModelFormatError::Corrupt("non-finite spectral state"));
                }
                v.push(x);
            }
            sn_state.push(v);
        }
        let cursor = match ts_read_slice(&mut r, 1)?[0] {
            0 => None,
            1 => {
                let mut s = [0u64; 4];
                for w in &mut s {
                    *w = ts_read_u64(&mut r)?;
                }
                let attempt = ts_read_u64(&mut r)? as usize;
                Some(TrainCursor {
                    rng: rand::rngs::StdRng::from_state(s),
                    attempt,
                })
            }
            _ => return Err(ModelFormatError::Corrupt("bad cursor flag")),
        };
        if !r.is_empty() {
            return Err(ModelFormatError::Corrupt("trailing training-state bytes"));
        }
        // A deserialized cache must drive the network it was saved with:
        // a count/shape mismatch would silently zip caches onto the wrong
        // parameters on the next step. Empty caches (never-stepped
        // optimizers) are valid.
        ts_check_cache(
            &opt_g,
            &generator,
            "generator optimizer cache shape mismatch",
        )?;
        ts_check_cache(&opt_d, &critic, "critic optimizer cache shape mismatch")?;
        Ok(Wgan {
            opt_g,
            opt_d,
            config,
            generator,
            critic,
            history: Vec::new(),
            sn_state,
            scratch: Mutex::new(Workspace::new()),
            fault_plan: Vec::new(),
            cursor,
        })
    }
}

/// Version tag of the [`Wgan::training_state_bytes`] encoding (independent
/// of the checkpoint container version).
const TRAINING_STATE_VERSION: u32 = 1;

fn ts_read_slice<'a>(r: &mut &'a [u8], n: usize) -> Result<&'a [u8], ModelFormatError> {
    if r.len() < n {
        return Err(ModelFormatError::Corrupt("training state truncated"));
    }
    let (head, tail) = r.split_at(n);
    *r = tail;
    Ok(head)
}

fn ts_read_u32(r: &mut &[u8]) -> Result<u32, ModelFormatError> {
    Ok(u32::from_le_bytes(
        ts_read_slice(r, 4)?.try_into().expect("slice of 4"),
    ))
}

fn ts_read_u64(r: &mut &[u8]) -> Result<u64, ModelFormatError> {
    Ok(u64::from_le_bytes(
        ts_read_slice(r, 8)?.try_into().expect("slice of 8"),
    ))
}

fn ts_check_cache(
    opt: &RmsProp,
    model: &Sequential,
    what: &'static str,
) -> Result<(), ModelFormatError> {
    let shapes = opt.cache_shapes();
    if shapes.is_empty() {
        return Ok(());
    }
    let params = model.params();
    if shapes.len() != params.len()
        || shapes
            .iter()
            .zip(&params)
            .any(|(s, p)| s.as_slice() != p.value.shape())
    {
        return Err(ModelFormatError::Corrupt(what));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use vehigan_tensor::init::rand_uniform;

    fn quick_config() -> WganConfig {
        WganConfig {
            noise_dim: 8,
            layers: 3,
            epochs: 2,
            batch_size: 32,
            n_critic: 2,
            ..WganConfig::default()
        }
    }

    /// Synthetic "benign" manifold: smooth low-amplitude snapshots.
    fn benign_snapshots(n: usize, seed: u64) -> Tensor {
        let mut rng = seeded_rng(seed);
        let base = rand_uniform(&[n, 1], -0.3, 0.3, &mut rng);
        let mut data = Vec::with_capacity(n * 120);
        for i in 0..n {
            let level = base.as_slice()[i];
            for j in 0..120 {
                data.push(level + 0.05 * ((j as f32) * 0.3).sin());
            }
        }
        Tensor::from_vec(data, &[n, 10, 12, 1])
    }

    #[test]
    fn networks_have_declared_shapes() {
        let config = quick_config();
        let mut rng = seeded_rng(0);
        let g = build_generator(&config, &mut rng);
        let d = build_critic(&config, &mut rng);
        assert_eq!(g.output_shape(&[config.noise_dim]), vec![10, 12, 1]);
        assert_eq!(d.output_shape(&[10, 12, 1]), vec![1]);
    }

    #[test]
    fn layer_count_scales_critic_depth() {
        let mut rng = seeded_rng(0);
        let d6 = build_critic(
            &WganConfig {
                layers: 6,
                ..quick_config()
            },
            &mut rng,
        );
        let d8 = build_critic(
            &WganConfig {
                layers: 8,
                ..quick_config()
            },
            &mut rng,
        );
        let convs = |m: &Sequential| m.layer_names().iter().filter(|n| **n == "Conv2D").count();
        assert_eq!(convs(&d6), 5);
        assert_eq!(convs(&d8), 7);
    }

    #[test]
    fn generator_output_is_tanh_bounded() {
        let mut wgan = Wgan::new(quick_config());
        let mut rng = seeded_rng(1);
        let fake = wgan.generate(4, &mut rng);
        assert_eq!(fake.shape(), &[4, 10, 12, 1]);
        assert!(fake.max() <= 1.0 && fake.min() >= -1.0);
    }

    #[test]
    fn training_runs_and_records_history() {
        let mut wgan = Wgan::new(quick_config());
        let x = benign_snapshots(64, 2);
        wgan.train(&x);
        assert_eq!(wgan.history().len(), 2);
        for s in wgan.history() {
            assert!(s.wasserstein.is_finite());
        }
    }

    #[test]
    fn critic_weights_stay_clipped_after_training() {
        let mut wgan = Wgan::new(WganConfig {
            lipschitz: LipschitzMode::Clip,
            ..quick_config()
        });
        let x = benign_snapshots(64, 3);
        wgan.train(&x);
        let clip = wgan.config().clip;
        for p in wgan.critic().params() {
            assert!(p.value.max() <= clip && p.value.min() >= -clip);
        }
    }

    #[test]
    fn spectral_mode_bounds_singular_values() {
        let mut wgan = Wgan::new(WganConfig {
            lipschitz: LipschitzMode::Spectral,
            ..quick_config()
        });
        let x = benign_snapshots(64, 3);
        wgan.train(&x);
        // Power-iterate each weight matrix to estimate sigma <= ~1.
        for p in wgan.critic().params() {
            if p.value.ndim() != 2 {
                continue;
            }
            let (rows, cols) = (p.value.shape()[0], p.value.shape()[1]);
            let w = p.value.as_slice();
            let mut u = vec![1.0f32; rows];
            let mut sigma = 0.0f32;
            for _ in 0..30 {
                let mut v = vec![0.0f32; cols];
                for r in 0..rows {
                    for c in 0..cols {
                        v[c] += w[r * cols + c] * u[r];
                    }
                }
                let vn = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-12);
                v.iter_mut().for_each(|x| *x /= vn);
                let mut wu = vec![0.0f32; rows];
                for r in 0..rows {
                    wu[r] = (0..cols).map(|c| w[r * cols + c] * v[c]).sum();
                }
                sigma = wu.iter().map(|x| x * x).sum::<f32>().sqrt();
                let un = sigma.max(1e-12);
                u = wu.iter().map(|x| x / un).collect();
            }
            assert!(sigma <= 1.2, "sigma {sigma} exceeds bound");
        }
    }

    #[test]
    fn gradient_penalty_tightens_input_gradients() {
        // After GP training the critic's gradient norm at data points
        // must sit near 1 (the defining property of WGAN-GP).
        let mut wgan = Wgan::new(WganConfig {
            epochs: 4,
            ..quick_config()
        });
        let x = benign_snapshots(128, 21);
        wgan.train(&x);
        let probe = benign_snapshots(16, 22);
        let out = wgan.critic_mut().forward(&probe);
        let grads = wgan.critic_mut().backward(&Tensor::ones(out.shape()));
        let elems: usize = probe.shape()[1..].iter().product();
        let mut mean_norm = 0.0f32;
        for i in 0..16 {
            let row = &grads.as_slice()[i * elems..(i + 1) * elems];
            mean_norm += row.iter().map(|v| v * v).sum::<f32>().sqrt() / 16.0;
        }
        assert!(
            (0.2..5.0).contains(&mean_norm),
            "GP should keep gradient norms near 1, got {mean_norm}"
        );
    }

    #[test]
    fn trained_critic_separates_benign_from_garbage() {
        let config = WganConfig {
            epochs: 6,
            ..quick_config()
        };
        let mut wgan = Wgan::new(config);
        let x = benign_snapshots(256, 4);
        wgan.train(&x);
        let benign_scores = wgan.score_batch(&benign_snapshots(32, 5));
        // Garbage: saturated random snapshots far off the manifold.
        let mut rng = seeded_rng(6);
        let garbage = rand_uniform(&[32, 10, 12, 1], -1.0, 1.0, &mut rng);
        let garbage_scores = wgan.score_batch(&garbage);
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            mean(&garbage_scores) > mean(&benign_scores),
            "garbage {} vs benign {}",
            mean(&garbage_scores),
            mean(&benign_scores)
        );
    }

    #[test]
    fn score_is_negative_critic_output() {
        let mut wgan = Wgan::new(quick_config());
        let x = benign_snapshots(8, 7);
        let out = wgan.critic_mut().forward(&x);
        let scores = wgan.score_batch(&x);
        for (s, o) in scores.iter().zip(out.as_slice()) {
            assert_eq!(*s, -o);
        }
    }

    #[test]
    fn steady_state_scoring_does_not_allocate() {
        let wgan = Wgan::new(quick_config());
        let x = benign_snapshots(16, 30);
        for _ in 0..3 {
            let _ = wgan.score_batch(&x); // warm up the workspace pool
        }
        let settled = wgan.scratch_bytes();
        assert!(settled > 0, "workspace should hold pooled buffers");
        let mut out = vec![0.0f32; 16];
        for _ in 0..10 {
            wgan.score_into(&x, &mut out);
            assert_eq!(
                wgan.scratch_bytes(),
                settled,
                "steady-state scoring must not allocate"
            );
        }
    }

    #[test]
    fn critic_serialization_roundtrip_preserves_scores() {
        let mut wgan = Wgan::new(quick_config());
        let x = benign_snapshots(64, 8);
        wgan.train(&x);
        let bytes = wgan.critic_bytes();
        let back = Wgan::from_critic_bytes(quick_config(), &bytes).unwrap();
        assert_eq!(wgan.score_batch(&x), back.score_batch(&x));
    }

    #[test]
    fn deterministic_training() {
        let x = benign_snapshots(64, 9);
        let mut a = Wgan::new(quick_config());
        let mut b = Wgan::new(quick_config());
        a.train(&x);
        b.train(&x);
        assert_eq!(a.score_batch(&x), b.score_batch(&x));
    }

    #[test]
    fn sentinel_rolls_back_and_retries_deterministically() {
        let x = benign_snapshots(64, 2);
        let mut faulty = Wgan::new(quick_config());
        faulty.inject_training_fault(0, 1); // first attempt trips after epoch 1
        let report = faulty
            .train_epochs_checked(&x, 2, &SentinelPolicy::default())
            .expect("fault is recoverable within the budget");
        assert_eq!(report.rollbacks, 1);
        assert_eq!(report.epochs, 2);
        assert_eq!(faulty.history().len(), 2);
        for s in faulty.history() {
            assert!(s.wasserstein.is_finite());
        }
        // The rollback + reseed path is itself deterministic.
        let mut again = Wgan::new(quick_config());
        again.inject_training_fault(0, 1);
        again
            .train_epochs_checked(&x, 2, &SentinelPolicy::default())
            .unwrap();
        assert_eq!(faulty.score_batch(&x), again.score_batch(&x));
    }

    #[test]
    fn sentinel_gives_up_beyond_retry_budget() {
        let x = benign_snapshots(64, 2);
        let mut wgan = Wgan::new(quick_config());
        for attempt in 0..=3 {
            wgan.inject_training_fault(attempt, 0);
        }
        let err = wgan
            .train_epochs_checked(&x, 2, &SentinelPolicy { max_retries: 2 })
            .unwrap_err();
        assert!(
            matches!(
                err,
                TrainError::Diverged {
                    attempts: 3,
                    reason: DivergenceReason::NonFiniteWeights,
                    ..
                }
            ),
            "got {err:?}"
        );
        // The instance is rolled back to its last healthy state, not left
        // poisoned.
        assert!(wgan.score_batch(&x).iter().all(|s| s.is_finite()));
    }

    #[test]
    fn poisoned_model_rejected_at_entry() {
        let mut wgan = Wgan::new(quick_config());
        wgan.critic_mut().params_mut()[0].value.as_mut_slice()[0] = f32::NAN;
        let x = benign_snapshots(64, 2);
        assert!(matches!(
            wgan.train_epochs_checked(&x, 1, &SentinelPolicy::default()),
            Err(TrainError::PoisonedAtEntry { .. })
        ));
    }

    #[test]
    fn recovered_training_still_separates_benign_from_garbage() {
        let mut wgan = Wgan::new(WganConfig {
            epochs: 6,
            ..quick_config()
        });
        wgan.inject_training_fault(0, 2);
        let x = benign_snapshots(256, 4);
        let report = wgan
            .train_epochs_checked(&x, 6, &SentinelPolicy::default())
            .unwrap();
        assert_eq!(report.rollbacks, 1);
        let benign_scores = wgan.score_batch(&benign_snapshots(32, 5));
        let mut rng = seeded_rng(6);
        let garbage = rand_uniform(&[32, 10, 12, 1], -1.0, 1.0, &mut rng);
        let garbage_scores = wgan.score_batch(&garbage);
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(mean(&garbage_scores) > mean(&benign_scores));
    }

    #[test]
    #[should_panic(expected = "does not match config")]
    fn wrong_shape_rejected() {
        let mut wgan = Wgan::new(quick_config());
        wgan.train(&Tensor::zeros(&[16, 8, 8, 1]));
    }
}
