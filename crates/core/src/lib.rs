//! # vehigan-core
//!
//! The primary contribution of the VehiGAN paper (ICDCS 2024): an
//! adversarially robust, ensemble-WGAN misbehavior detection system for
//! V2X networks.
//!
//! The training phase (Fig 2, top) trains a grid of Wasserstein GANs on
//! benign `w × f` BSM snapshots ([`ModelZoo`]), pre-evaluates every critic
//! on a validation set with representative attacks (average discriminative
//! score, Eq. 4), and selects the top-*m* candidates. The testing phase
//! (Fig 2, bottom) randomly deploys *k ≤ m* critics per inference
//! ([`VehiGan`]), averages their scores, and reports vehicles whose score
//! exceeds the calibrated threshold (§III-F).
//!
//! The [`adversarial`] module implements the paper's FGSM-based AFP/AFN
//! attacks (Eqs. 6–7) in white-box, gray-box-transfer, and adaptive
//! multi-model variants.
//!
//! # Example
//!
//! ```no_run
//! use vehigan_core::{Pipeline, PipelineConfig};
//! use vehigan_vasp::Attack;
//! use vehigan_metrics::auroc;
//!
//! let mut pipeline = Pipeline::run(PipelineConfig::quick());
//! let test = pipeline.test_attack_windows(Attack::by_name("HighSpeed").unwrap());
//! let result = pipeline.vehigan.score_batch(&test.x);
//! println!("HighSpeed AUROC: {:.3}", auroc(&result.scores, &test.labels));
//! ```

#![warn(missing_docs)]

pub mod adversarial;
mod config;
mod ensemble;
mod pipeline;
mod wgan;
mod zoo;

pub use config::{GridConfig, LipschitzMode, WganConfig};
pub use ensemble::{CriticMember, EnsembleScore, MisbehaviorReport, VehiGan};
pub use pipeline::{Pipeline, PipelineConfig};
pub use wgan::{build_critic, build_generator, TrainStats, Wgan};
pub use zoo::{DetectionScore, ModelZoo, ZooEntry};
