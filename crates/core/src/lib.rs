//! # vehigan-core
//!
//! The primary contribution of the VehiGAN paper (ICDCS 2024): an
//! adversarially robust, ensemble-WGAN misbehavior detection system for
//! V2X networks.
//!
//! The training phase (Fig 2, top) trains a grid of Wasserstein GANs on
//! benign `w × f` BSM snapshots ([`ModelZoo`]), pre-evaluates every critic
//! on a validation set with representative attacks (average discriminative
//! score, Eq. 4), and selects the top-*m* candidates. The testing phase
//! (Fig 2, bottom) randomly deploys *k ≤ m* critics per inference
//! ([`VehiGan`]), averages their scores, and reports vehicles whose score
//! exceeds the calibrated threshold (§III-F).
//!
//! The [`adversarial`] module implements the paper's FGSM-based AFP/AFN
//! attacks (Eqs. 6–7) in white-box, gray-box-transfer, and adaptive
//! multi-model variants.
//!
//! # Example
//!
//! ```no_run
//! use vehigan_core::{Pipeline, PipelineConfig};
//! use vehigan_vasp::Attack;
//! use vehigan_metrics::auroc;
//!
//! let mut pipeline = Pipeline::run(PipelineConfig::quick());
//! let test = pipeline.test_attack_windows(Attack::by_name("HighSpeed").unwrap());
//! let result = pipeline.vehigan.score_batch(&test.x).unwrap();
//! println!("HighSpeed AUROC: {:.3}", auroc(&result.scores, &test.labels));
//! ```
//!
//! # Fault tolerance
//!
//! Training sixty models and scoring with a random subset of them must
//! survive individual failures. Divergence sentinels inside
//! [`Wgan::train_epochs_checked`] roll back and retry a diverging run;
//! unrecoverable configurations are quarantined by
//! [`ModelZoo::train_grid`] (with a structured [`QuarantineReason`])
//! rather than failing the grid; every finished member is persisted
//! crash-safely through a [`CheckpointStore`] so an interrupted run
//! resumes from its manifest; and [`VehiGan`] scoring degrades gracefully,
//! dropping members that panic or emit non-finite scores as long as a
//! healthy subset remains.

#![warn(missing_docs)]

pub mod adversarial;
mod campaign;
mod checkpoint;
mod config;
mod ensemble;
mod int8;
mod pipeline;
mod wgan;
mod zoo;

pub use campaign::{score_matrix, CampaignPlane};
pub use checkpoint::{
    crc32, grid_fingerprint, CheckpointError, CheckpointStore, Manifest, CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION, CHECKPOINT_VERSION_V1,
};
pub use config::{GridConfig, LipschitzMode, WganConfig};
pub use ensemble::{CriticMember, EnsembleError, EnsembleScore, MisbehaviorReport, VehiGan};
pub use int8::Int8Backend;
pub use pipeline::{Pipeline, PipelineConfig, PipelineError};
pub use wgan::{
    build_critic, build_generator, DivergenceReason, SentinelPolicy, TrainError, TrainReport,
    TrainStats, Wgan,
};
pub use zoo::{
    DetectionScore, ModelZoo, QuarantineReason, QuarantineRecord, ZooEntry, ZooError,
    ZooTrainOptions, ZooTrainReport,
};
