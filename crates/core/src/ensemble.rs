//! The VEHIGAN ensemble detector (§III-A.2, §III-F).
//!
//! From the top-*m* candidate critics, each inference randomly deploys
//! *k ≤ m* of them, averages their critic outputs into an ensemble score
//! `s_ens(x) = −(1/k)·Σ D_i(x)`, and flags a vehicle when the score
//! exceeds the mean of the deployed members' thresholds. The per-inference
//! random subset is exactly what defeats single-surrogate adversarial
//! transfer (Fig 7a).
//!
//! Scoring is **degraded-tolerant**: quarantined members are never sampled,
//! and a member that panics mid-score or emits non-finite values is dropped
//! from that inference (recorded in [`EnsembleScore::dropped`]) rather than
//! poisoning the ensemble mean. Only when no deployed member survives does
//! scoring return a typed [`EnsembleError`].

use crate::wgan::Wgan;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use vehigan_metrics::percentile;
use vehigan_sim::VehicleId;
use vehigan_tensor::Tensor;

/// Error constructing or scoring a [`VehiGan`] ensemble.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnsembleError {
    /// The ensemble was given zero members.
    NoMembers,
    /// `k` outside `[1, m]`.
    InvalidK {
        /// The requested deployment size.
        k: usize,
        /// The number of candidate members.
        m: usize,
    },
    /// An explicit member index was out of bounds.
    MemberOutOfBounds {
        /// The offending index.
        index: usize,
        /// The number of candidate members.
        m: usize,
    },
    /// An explicit subset was empty.
    EmptySubset,
    /// Too few healthy (non-quarantined) members remain to deploy `k`.
    InsufficientHealthy {
        /// Healthy members available.
        healthy: usize,
        /// Members needed per inference.
        k: usize,
    },
    /// Every deployed member failed to score (panic or non-finite output).
    AllMembersFailed {
        /// The member indices that were attempted.
        attempted: Vec<usize>,
    },
    /// A per-vehicle check was handed a tensor that is not a single
    /// snapshot `[1, w, f, 1]`.
    BadSnapshotShape {
        /// The shape actually received.
        shape: Vec<usize>,
    },
    /// Calibration found no finite anomaly scores on the benign set, so no
    /// threshold percentile exists.
    NoFiniteCalibrationScores {
        /// Config id of the member being calibrated.
        id: String,
    },
    /// Compiling the int8 backend failed (unsupported critic layer or
    /// non-finite weights).
    Int8Compile {
        /// The underlying compile error, rendered.
        reason: String,
    },
    /// An int8 scoring path was used before [`VehiGan::compile_int8`].
    Int8NotCompiled,
}

impl fmt::Display for EnsembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnsembleError::NoMembers => write!(f, "ensemble needs at least one member"),
            EnsembleError::InvalidK { k, m } => {
                write!(f, "k must be in [1, m={m}], got {k}")
            }
            EnsembleError::MemberOutOfBounds { index, m } => {
                write!(f, "member index {index} out of bounds (m={m})")
            }
            EnsembleError::EmptySubset => write!(f, "need at least one member to score"),
            EnsembleError::InsufficientHealthy { healthy, k } => write!(
                f,
                "only {healthy} healthy members remain but k={k} are required"
            ),
            EnsembleError::AllMembersFailed { attempted } => write!(
                f,
                "all {} deployed members failed to produce finite scores",
                attempted.len()
            ),
            EnsembleError::BadSnapshotShape { shape } => write!(
                f,
                "expected a single snapshot [1, w, f, 1], got shape {shape:?}"
            ),
            EnsembleError::NoFiniteCalibrationScores { id } => write!(
                f,
                "member {id} produced no finite scores on the calibration set"
            ),
            EnsembleError::Int8Compile { reason } => {
                write!(f, "int8 backend compilation failed: {reason}")
            }
            EnsembleError::Int8NotCompiled => {
                write!(f, "int8 backend not compiled — call compile_int8 first")
            }
        }
    }
}

impl std::error::Error for EnsembleError {}

/// A calibrated ensemble member: a trained critic plus its detection
/// threshold τ (p-th percentile of benign training scores).
pub struct CriticMember {
    /// Model identifier (from its config).
    pub id: String,
    /// The trained WGAN (critic used for scoring).
    pub wgan: Wgan,
    /// Detection threshold τ.
    pub threshold: f32,
    /// Pre-evaluation ADS (for reporting).
    pub ads: f64,
    /// Whether this member is quarantined (excluded from subset sampling;
    /// set when its critic is found unhealthy at runtime).
    pub quarantined: bool,
}

impl std::fmt::Debug for CriticMember {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CriticMember({}, τ={:.4}, ADS={:.3}{})",
            self.id,
            self.threshold,
            self.ads,
            if self.quarantined {
                ", QUARANTINED"
            } else {
                ""
            }
        )
    }
}

impl CriticMember {
    /// Calibrates a member's threshold at the `p`-th percentile of its
    /// anomaly scores on benign training snapshots (§III-F).
    ///
    /// Non-finite scores (a degraded critic can emit NaN/Inf without
    /// failing outright) are excluded from the percentile, consistent with
    /// the NaN-robust pre-evaluation ranking.
    ///
    /// # Errors
    ///
    /// [`EnsembleError::NoFiniteCalibrationScores`] when no finite score
    /// remains to take a percentile of.
    ///
    /// # Panics
    ///
    /// Panics if `benign` is empty or `p` outside `[0, 100]`.
    pub fn calibrate(wgan: Wgan, ads: f64, benign: &Tensor, p: f64) -> Result<Self, EnsembleError> {
        let mut scores = wgan.score_batch(benign);
        scores.retain(|s| s.is_finite());
        if scores.is_empty() {
            return Err(EnsembleError::NoFiniteCalibrationScores {
                id: wgan.config().id(),
            });
        }
        let threshold = percentile(&scores, p);
        Ok(CriticMember {
            id: wgan.config().id(),
            wgan,
            threshold,
            ads,
            quarantined: false,
        })
    }
}

/// The result of one ensemble inference.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleScore {
    /// Per-snapshot ensemble anomaly scores.
    pub scores: Vec<f32>,
    /// The ensemble threshold (mean of deployed members' τ).
    pub threshold: f32,
    /// Which members actually contributed to the score.
    pub members: Vec<usize>,
    /// Deployed members that failed (panicked or produced non-finite
    /// scores) and were excluded from the mean. Empty on a healthy run.
    pub dropped: Vec<usize>,
}

impl EnsembleScore {
    /// Per-snapshot detection decisions (`score > threshold`).
    pub fn detections(&self) -> Vec<bool> {
        self.scores.iter().map(|&s| s > self.threshold).collect()
    }

    /// Whether this inference ran degraded (at least one deployed member
    /// was dropped).
    pub fn is_degraded(&self) -> bool {
        !self.dropped.is_empty()
    }
}

/// A misbehavior report (MBR) sent to the misbehavior authority (§I, §III-F).
#[derive(Debug, Clone, PartialEq)]
pub struct MisbehaviorReport {
    /// The suspected vehicle.
    pub vehicle: VehicleId,
    /// Ensemble anomaly score of the offending window.
    pub score: f32,
    /// Threshold it exceeded.
    pub threshold: f32,
    /// Members that produced the verdict.
    pub members: Vec<usize>,
    /// The offending snapshot (evidence), shape `[1, w, f, 1]`.
    pub evidence: Tensor,
}

/// The `VEHIGAN_m^k` detector.
///
/// # Examples
///
/// See [`crate::Pipeline`] for an end-to-end construction; unit
/// construction requires calibrated members.
pub struct VehiGan {
    members: Vec<CriticMember>,
    k: usize,
    rng: StdRng,
    /// Compiled int8 sidecar ([`VehiGan::compile_int8`]); `None` until
    /// compiled, stale if member critics are mutated afterwards.
    int8: Option<crate::int8::Int8Backend>,
    /// Fault-injection bitmask ([`VehiGan::chaos_poison_member`]): bit
    /// `i` set forces member `i`'s score vectors to NaN on both scoring
    /// backends, exercising the non-finite drop machinery end to end.
    /// Atomic so the serve plane's chaos harness can flip it through a
    /// shared `&VehiGan`. Always zero outside fault-injection runs.
    chaos_poison: std::sync::atomic::AtomicU64,
}

impl std::fmt::Debug for VehiGan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "VehiGan(m={}, k={}{})",
            self.members.len(),
            self.k,
            if self.int8.is_some() { ", int8" } else { "" }
        )
    }
}

impl VehiGan {
    /// Creates a `VEHIGAN_m^k` from `m` calibrated members.
    ///
    /// # Errors
    ///
    /// [`EnsembleError::NoMembers`] if `members` is empty,
    /// [`EnsembleError::InvalidK`] if `k` is not in `[1, m]`.
    pub fn new(members: Vec<CriticMember>, k: usize, seed: u64) -> Result<Self, EnsembleError> {
        if members.is_empty() {
            return Err(EnsembleError::NoMembers);
        }
        if k < 1 || k > members.len() {
            return Err(EnsembleError::InvalidK {
                k,
                m: members.len(),
            });
        }
        Ok(VehiGan {
            members,
            k,
            rng: StdRng::seed_from_u64(seed),
            int8: None,
            chaos_poison: std::sync::atomic::AtomicU64::new(0),
        })
    }

    /// Fault-injection hook for chaos testing: while set, member
    /// `index`'s score vectors are overwritten with NaN *before* the
    /// non-finite filter on both scoring backends, so the member is
    /// dropped from the reduction exactly as a genuinely poisoned member
    /// would be (recorded in [`EnsembleScore::dropped`]). Takes `&self`
    /// (atomic) so a running serve plane holding a shared reference can
    /// inject and clear faults mid-flight. Limited to the first 64
    /// members — far above any deployed `m`.
    ///
    /// This simulates the *output* corruption path (bad weights, bad
    /// activation scales, hardware faults); it never mutates weights, so
    /// clearing the flag restores bitwise-identical scoring immediately.
    pub fn chaos_poison_member(&self, index: usize, poisoned: bool) {
        use std::sync::atomic::Ordering;
        assert!(index < 64, "chaos poison mask covers members 0..64");
        let bit = 1u64 << index;
        if poisoned {
            self.chaos_poison.fetch_or(bit, Ordering::Relaxed);
        } else {
            self.chaos_poison.fetch_and(!bit, Ordering::Relaxed);
        }
    }

    /// Whether [`VehiGan::chaos_poison_member`] is active for `index`.
    pub fn member_poisoned(&self, index: usize) -> bool {
        use std::sync::atomic::Ordering;
        index < 64 && self.chaos_poison.load(Ordering::Relaxed) & (1u64 << index) != 0
    }

    /// The number of candidate members `m`.
    pub fn m(&self) -> usize {
        self.members.len()
    }

    /// The number of members deployed per inference `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Changes `k`.
    ///
    /// # Errors
    ///
    /// [`EnsembleError::InvalidK`] if `k` is not in `[1, m]`.
    pub fn set_k(&mut self, k: usize) -> Result<(), EnsembleError> {
        if k < 1 || k > self.members.len() {
            return Err(EnsembleError::InvalidK {
                k,
                m: self.members.len(),
            });
        }
        self.k = k;
        Ok(())
    }

    /// The calibrated members.
    pub fn members(&self) -> &[CriticMember] {
        &self.members
    }

    /// Mutable access to members (adversarial experiments need the
    /// critics' gradients).
    ///
    /// Mutating a member's critic weights leaves a compiled int8 backend
    /// stale; call [`VehiGan::compile_int8`] again afterwards.
    pub fn members_mut(&mut self) -> &mut [CriticMember] {
        &mut self.members
    }

    /// The compiled int8 backend, if [`VehiGan::compile_int8`] has run.
    pub fn int8_backend(&self) -> Option<&crate::int8::Int8Backend> {
        self.int8.as_ref()
    }

    pub(crate) fn set_int8_backend(&mut self, backend: crate::int8::Int8Backend) {
        self.int8 = Some(backend);
    }

    /// Marks a member quarantined so subset sampling skips it.
    ///
    /// # Errors
    ///
    /// [`EnsembleError::MemberOutOfBounds`] on a bad index.
    pub fn quarantine_member(&mut self, index: usize) -> Result<(), EnsembleError> {
        let m = self.members.len();
        let member = self
            .members
            .get_mut(index)
            .ok_or(EnsembleError::MemberOutOfBounds { index, m })?;
        member.quarantined = true;
        Ok(())
    }

    /// Indices of the non-quarantined members.
    pub fn healthy_members(&self) -> Vec<usize> {
        (0..self.members.len())
            .filter(|&i| !self.members[i].quarantined)
            .collect()
    }

    /// Samples a fresh random subset of `k` healthy members (the paper's
    /// per-inference randomization), sorted ascending.
    ///
    /// # Errors
    ///
    /// [`EnsembleError::InsufficientHealthy`] when fewer than `k` healthy
    /// members remain.
    pub fn sample_subset(&mut self) -> Result<Vec<usize>, EnsembleError> {
        let mut indices = self.healthy_members();
        if indices.len() < self.k {
            return Err(EnsembleError::InsufficientHealthy {
                healthy: indices.len(),
                k: self.k,
            });
        }
        indices.shuffle(&mut self.rng);
        indices.truncate(self.k);
        indices.sort_unstable();
        Ok(indices)
    }

    /// Scores snapshots with a fresh random subset of `k` healthy members.
    ///
    /// # Errors
    ///
    /// [`EnsembleError::InsufficientHealthy`] when fewer than `k` healthy
    /// members remain, [`EnsembleError::AllMembersFailed`] when every
    /// deployed member fails to produce finite scores.
    pub fn score_batch(&mut self, x: &Tensor) -> Result<EnsembleScore, EnsembleError> {
        let indices = self.sample_subset()?;
        self.score_with_members(&indices, x)
    }

    /// Scores snapshots with an explicit member subset (used by the
    /// evaluation harness for deterministic sweeps).
    ///
    /// Members are scored in parallel on crossbeam scoped threads; the
    /// per-member results are joined and reduced in `indices` order, so the
    /// output is bitwise identical to scoring the members serially.
    ///
    /// Failures are isolated per member: a panic while scoring, or a score
    /// vector containing NaN/Inf, drops that member from the reduction (its
    /// index is recorded in [`EnsembleScore::dropped`]) and the remaining
    /// members' mean is returned.
    ///
    /// # Errors
    ///
    /// [`EnsembleError::EmptySubset`] /
    /// [`EnsembleError::MemberOutOfBounds`] on a bad subset,
    /// [`EnsembleError::AllMembersFailed`] when no member survives.
    pub fn score_with_members(
        &self,
        indices: &[usize],
        x: &Tensor,
    ) -> Result<EnsembleScore, EnsembleError> {
        if indices.is_empty() {
            return Err(EnsembleError::EmptySubset);
        }
        for &i in indices {
            if i >= self.members.len() {
                return Err(EnsembleError::MemberOutOfBounds {
                    index: i,
                    m: self.members.len(),
                });
            }
        }
        let n = x.shape()[0];
        let score_one = |i: usize| -> Option<Vec<f32>> {
            let member = &self.members[i];
            panic::catch_unwind(AssertUnwindSafe(|| member.wgan.score_batch(x)))
                .ok()
                .map(|mut scores| {
                    if self.member_poisoned(i) {
                        scores.fill(f32::NAN);
                    }
                    scores
                })
                .filter(|scores| scores.iter().all(|s| s.is_finite()))
        };
        let per_member: Vec<Option<Vec<f32>>> = if indices.len() == 1 {
            vec![score_one(indices[0])]
        } else {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = indices
                    .iter()
                    .map(|&i| scope.spawn(move |_| score_one(i)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("member scoring join"))
                    .collect()
            })
            .expect("ensemble scoring scope")
        };
        self.reduce_member_scores(indices, &per_member, n)
    }

    /// Reduces per-member score vectors (in `indices` order) into the
    /// ensemble mean, dropping failed members — the shared tail of the
    /// float and int8 scoring paths.
    pub(crate) fn reduce_member_scores(
        &self,
        indices: &[usize],
        per_member: &[Option<Vec<f32>>],
        n: usize,
    ) -> Result<EnsembleScore, EnsembleError> {
        let mut sum = vec![0.0f32; n];
        let mut tau = 0.0f32;
        let mut survivors = Vec::with_capacity(indices.len());
        let mut dropped = Vec::new();
        for (scores, &i) in per_member.iter().zip(indices) {
            let Some(scores) = scores else {
                dropped.push(i);
                continue;
            };
            for (acc, s) in sum.iter_mut().zip(scores) {
                *acc += s;
            }
            tau += self.members[i].threshold;
            survivors.push(i);
        }
        if survivors.is_empty() {
            return Err(EnsembleError::AllMembersFailed {
                attempted: indices.to_vec(),
            });
        }
        let k = survivors.len() as f32;
        for s in &mut sum {
            *s /= k;
        }
        Ok(EnsembleScore {
            scores: sum,
            threshold: tau / k,
            members: survivors,
            dropped,
        })
    }

    /// Scores one vehicle's latest snapshot and, if it exceeds the
    /// ensemble threshold, produces a misbehavior report for the MA.
    ///
    /// # Errors
    ///
    /// [`EnsembleError::BadSnapshotShape`] when `snapshot` is not a
    /// single-snapshot batch; otherwise propagates
    /// [`VehiGan::score_batch`] errors.
    pub fn check_vehicle(
        &mut self,
        vehicle: VehicleId,
        snapshot: &Tensor,
    ) -> Result<Option<MisbehaviorReport>, EnsembleError> {
        // A wrong shape is a caller bug, but this API is the degraded-mode
        // scoring path: it reports faults, it does not take the MDS down.
        if snapshot.shape().first() != Some(&1) {
            return Err(EnsembleError::BadSnapshotShape {
                shape: snapshot.shape().to_vec(),
            });
        }
        let result = self.score_batch(snapshot)?;
        let score = result.scores[0];
        Ok((score > result.threshold).then(|| MisbehaviorReport {
            vehicle,
            score,
            threshold: result.threshold,
            members: result.members,
            evidence: snapshot.clone(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WganConfig;
    use vehigan_tensor::init::{rand_uniform, seeded_rng};

    fn benign(n: usize, seed: u64) -> Tensor {
        let mut rng = seeded_rng(seed);
        let base = rand_uniform(&[n, 1], -0.2, 0.2, &mut rng);
        let mut data = Vec::with_capacity(n * 120);
        for i in 0..n {
            for j in 0..120 {
                data.push(base.as_slice()[i] + 0.05 * (j as f32 * 0.4).cos());
            }
        }
        Tensor::from_vec(data, &[n, 10, 12, 1])
    }

    fn member(seed: u64, train: &Tensor) -> CriticMember {
        let config = WganConfig {
            noise_dim: 8,
            layers: 3,
            epochs: 2,
            batch_size: 32,
            n_critic: 1,
            seed,
            ..WganConfig::default()
        };
        let mut wgan = Wgan::new(config);
        wgan.train(train);
        CriticMember::calibrate(wgan, 0.9, train, 99.0).unwrap()
    }

    fn ensemble(m: usize, k: usize) -> VehiGan {
        let train = benign(96, 0);
        let members: Vec<CriticMember> = (0..m as u64).map(|s| member(s, &train)).collect();
        VehiGan::new(members, k, 7).unwrap()
    }

    /// Overwrites one weight of a member's critic with NaN.
    fn poison_member(v: &mut VehiGan, i: usize) {
        let critic = v.members_mut()[i].wgan.critic_mut();
        let mut params = critic.params_mut();
        params
            .first_mut()
            .expect("critic has params")
            .value
            .as_mut_slice()[0] = f32::NAN;
    }

    #[test]
    fn construction_validates_k() {
        let v = ensemble(3, 2);
        assert_eq!((v.m(), v.k()), (3, 2));
    }

    #[test]
    fn k_exceeding_m_is_a_typed_error() {
        let train = benign(96, 0);
        let members: Vec<CriticMember> = (0..2u64).map(|s| member(s, &train)).collect();
        assert_eq!(
            VehiGan::new(members, 3, 7).unwrap_err(),
            EnsembleError::InvalidK { k: 3, m: 2 }
        );
        assert_eq!(
            VehiGan::new(Vec::new(), 1, 7).unwrap_err(),
            EnsembleError::NoMembers
        );
    }

    #[test]
    fn set_k_validates_range() {
        let mut v = ensemble(3, 2);
        assert!(v.set_k(3).is_ok());
        assert_eq!(
            v.set_k(4).unwrap_err(),
            EnsembleError::InvalidK { k: 4, m: 3 }
        );
        assert_eq!(
            v.set_k(0).unwrap_err(),
            EnsembleError::InvalidK { k: 0, m: 3 }
        );
    }

    #[test]
    fn random_subsets_vary_across_inferences() {
        let mut v = ensemble(4, 2);
        let x = benign(4, 1);
        let subsets: Vec<Vec<usize>> = (0..10)
            .map(|_| v.score_batch(&x).unwrap().members)
            .collect();
        assert!(subsets.iter().any(|s| s != &subsets[0]));
        for s in &subsets {
            assert_eq!(s.len(), 2);
        }
    }

    #[test]
    fn full_ensemble_score_is_member_mean() {
        let mut v = ensemble(3, 3);
        let x = benign(5, 2);
        let all: Vec<usize> = (0..3).collect();
        let ens = v.score_with_members(&all, &x).unwrap();
        let mut expected = vec![0.0f32; 5];
        for i in 0..3 {
            let s = v.members_mut()[i].wgan.score_batch(&x);
            for (e, si) in expected.iter_mut().zip(&s) {
                *e += si / 3.0;
            }
        }
        for (a, b) in ens.scores.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn parallel_scoring_is_identical_to_serial_order() {
        let v = ensemble(3, 3);
        let x = benign(6, 5);
        let all = [0usize, 1, 2];
        let par = v.score_with_members(&all, &x).unwrap();
        // Serial reference: accumulate member scores in `all` order.
        let mut sum = vec![0.0f32; 6];
        let mut tau = 0.0f32;
        for &i in &all {
            let s = v.members()[i].wgan.score_batch(&x);
            for (acc, si) in sum.iter_mut().zip(&s) {
                *acc += si;
            }
            tau += v.members()[i].threshold;
        }
        for s in &mut sum {
            *s /= 3.0;
        }
        assert_eq!(par.scores, sum, "parallel must equal serial bitwise");
        assert_eq!(par.threshold, tau / 3.0);
        assert!(par.dropped.is_empty());
    }

    #[test]
    fn ensemble_threshold_is_member_mean() {
        let v = ensemble(3, 3);
        let x = benign(2, 3);
        let ens = v.score_with_members(&[0, 1, 2], &x).unwrap();
        let expect: f32 = v.members().iter().map(|m| m.threshold).sum::<f32>() / 3.0;
        assert!((ens.threshold - expect).abs() < 1e-6);
    }

    #[test]
    fn benign_fpr_is_low_after_calibration() {
        let v = ensemble(3, 3);
        let x = benign(200, 4);
        let ens = v.score_with_members(&[0, 1, 2], &x).unwrap();
        let fpr = ens.detections().iter().filter(|&&d| d).count() as f64 / 200.0;
        assert!(fpr < 0.1, "fpr={fpr}");
    }

    #[test]
    fn garbage_triggers_reports() {
        let mut v = ensemble(3, 2);
        let mut rng = seeded_rng(9);
        let garbage = rand_uniform(&[1, 10, 12, 1], -1.0, 1.0, &mut rng);
        // Not guaranteed for every seed, but this configuration flags it.
        let report = v.check_vehicle(VehicleId(7), &garbage).unwrap();
        if let Some(r) = report {
            assert_eq!(r.vehicle, VehicleId(7));
            assert!(r.score > r.threshold);
            assert_eq!(r.evidence.shape(), &[1, 10, 12, 1]);
        }
    }

    #[test]
    fn detections_threshold_semantics() {
        let es = EnsembleScore {
            scores: vec![0.1, 0.9, 0.5],
            threshold: 0.5,
            members: vec![0],
            dropped: vec![],
        };
        assert_eq!(es.detections(), vec![false, true, false]);
        assert!(!es.is_degraded());
    }

    #[test]
    fn quarantined_member_is_never_sampled() {
        let mut v = ensemble(4, 2);
        v.quarantine_member(1).unwrap();
        assert_eq!(v.healthy_members(), vec![0, 2, 3]);
        for _ in 0..20 {
            let subset = v.sample_subset().unwrap();
            assert!(!subset.contains(&1), "sampled quarantined member");
        }
        assert_eq!(
            v.quarantine_member(9).unwrap_err(),
            EnsembleError::MemberOutOfBounds { index: 9, m: 4 }
        );
    }

    #[test]
    fn degraded_ensemble_scores_when_healthy_at_least_k() {
        let mut v = ensemble(3, 2);
        let x = benign(5, 6);
        v.quarantine_member(0).unwrap();
        // healthy = 2 ≥ k = 2: still scores, with only the healthy pair.
        let ens = v.score_batch(&x).unwrap();
        assert_eq!(ens.members, vec![1, 2]);
        // Quarantining one more leaves healthy = 1 < k = 2: typed error.
        v.quarantine_member(1).unwrap();
        assert_eq!(
            v.score_batch(&x).unwrap_err(),
            EnsembleError::InsufficientHealthy { healthy: 1, k: 2 }
        );
    }

    #[test]
    fn poisoned_member_is_dropped_not_averaged() {
        let mut v = ensemble(3, 3);
        let x = benign(5, 7);
        let clean = v.score_with_members(&[1, 2], &x).unwrap();
        poison_member(&mut v, 0);
        let ens = v.score_with_members(&[0, 1, 2], &x).unwrap();
        assert_eq!(ens.dropped, vec![0]);
        assert_eq!(ens.members, vec![1, 2]);
        assert!(ens.is_degraded());
        // The degraded mean equals the healthy pair's mean — the NaN never
        // leaked into the reduction.
        assert_eq!(ens.scores, clean.scores);
        assert!(ens.scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn all_members_failing_is_a_typed_error() {
        let mut v = ensemble(2, 2);
        let x = benign(3, 8);
        poison_member(&mut v, 0);
        poison_member(&mut v, 1);
        assert_eq!(
            v.score_with_members(&[0, 1], &x).unwrap_err(),
            EnsembleError::AllMembersFailed {
                attempted: vec![0, 1]
            }
        );
    }

    #[test]
    fn out_of_bounds_subset_is_a_typed_error() {
        let v = ensemble(2, 1);
        let x = benign(2, 9);
        assert_eq!(
            v.score_with_members(&[5], &x).unwrap_err(),
            EnsembleError::MemberOutOfBounds { index: 5, m: 2 }
        );
        assert_eq!(
            v.score_with_members(&[], &x).unwrap_err(),
            EnsembleError::EmptySubset
        );
    }
}
