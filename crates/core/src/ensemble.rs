//! The VEHIGAN ensemble detector (§III-A.2, §III-F).
//!
//! From the top-*m* candidate critics, each inference randomly deploys
//! *k ≤ m* of them, averages their critic outputs into an ensemble score
//! `s_ens(x) = −(1/k)·Σ D_i(x)`, and flags a vehicle when the score
//! exceeds the mean of the deployed members' thresholds. The per-inference
//! random subset is exactly what defeats single-surrogate adversarial
//! transfer (Fig 7a).

use crate::wgan::Wgan;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use vehigan_metrics::percentile;
use vehigan_sim::VehicleId;
use vehigan_tensor::Tensor;

/// A calibrated ensemble member: a trained critic plus its detection
/// threshold τ (p-th percentile of benign training scores).
pub struct CriticMember {
    /// Model identifier (from its config).
    pub id: String,
    /// The trained WGAN (critic used for scoring).
    pub wgan: Wgan,
    /// Detection threshold τ.
    pub threshold: f32,
    /// Pre-evaluation ADS (for reporting).
    pub ads: f64,
}

impl std::fmt::Debug for CriticMember {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CriticMember({}, τ={:.4}, ADS={:.3})", self.id, self.threshold, self.ads)
    }
}

impl CriticMember {
    /// Calibrates a member's threshold at the `p`-th percentile of its
    /// anomaly scores on benign training snapshots (§III-F).
    ///
    /// # Panics
    ///
    /// Panics if `benign` is empty or `p` outside `[0, 100]`.
    pub fn calibrate(wgan: Wgan, ads: f64, benign: &Tensor, p: f64) -> Self {
        let scores = wgan.score_batch(benign);
        let threshold = percentile(&scores, p);
        CriticMember {
            id: wgan.config().id(),
            wgan,
            threshold,
            ads,
        }
    }
}

/// The result of one ensemble inference.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleScore {
    /// Per-snapshot ensemble anomaly scores.
    pub scores: Vec<f32>,
    /// The ensemble threshold (mean of deployed members' τ).
    pub threshold: f32,
    /// Which members were deployed.
    pub members: Vec<usize>,
}

impl EnsembleScore {
    /// Per-snapshot detection decisions (`score > threshold`).
    pub fn detections(&self) -> Vec<bool> {
        self.scores.iter().map(|&s| s > self.threshold).collect()
    }
}

/// A misbehavior report (MBR) sent to the misbehavior authority (§I, §III-F).
#[derive(Debug, Clone, PartialEq)]
pub struct MisbehaviorReport {
    /// The suspected vehicle.
    pub vehicle: VehicleId,
    /// Ensemble anomaly score of the offending window.
    pub score: f32,
    /// Threshold it exceeded.
    pub threshold: f32,
    /// Members that produced the verdict.
    pub members: Vec<usize>,
    /// The offending snapshot (evidence), shape `[1, w, f, 1]`.
    pub evidence: Tensor,
}

/// The `VEHIGAN_m^k` detector.
///
/// # Examples
///
/// See [`crate::Pipeline`] for an end-to-end construction; unit
/// construction requires calibrated members.
pub struct VehiGan {
    members: Vec<CriticMember>,
    k: usize,
    rng: StdRng,
}

impl std::fmt::Debug for VehiGan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "VehiGan(m={}, k={})", self.members.len(), self.k)
    }
}

impl VehiGan {
    /// Creates a `VEHIGAN_m^k` from `m` calibrated members.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty or `k` is not in `[1, m]`.
    pub fn new(members: Vec<CriticMember>, k: usize, seed: u64) -> Self {
        assert!(!members.is_empty(), "ensemble needs at least one member");
        assert!(
            k >= 1 && k <= members.len(),
            "k must be in [1, m={}], got {k}",
            members.len()
        );
        VehiGan {
            members,
            k,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The number of candidate members `m`.
    pub fn m(&self) -> usize {
        self.members.len()
    }

    /// The number of members deployed per inference `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Changes `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is not in `[1, m]`.
    pub fn set_k(&mut self, k: usize) {
        assert!(k >= 1 && k <= self.members.len(), "k out of range");
        self.k = k;
    }

    /// The calibrated members.
    pub fn members(&self) -> &[CriticMember] {
        &self.members
    }

    /// Mutable access to members (adversarial experiments need the
    /// critics' gradients).
    pub fn members_mut(&mut self) -> &mut [CriticMember] {
        &mut self.members
    }

    /// Scores snapshots with a fresh random subset of `k` members (the
    /// paper's per-inference randomization).
    pub fn score_batch(&mut self, x: &Tensor) -> EnsembleScore {
        let mut indices: Vec<usize> = (0..self.members.len()).collect();
        indices.shuffle(&mut self.rng);
        indices.truncate(self.k);
        indices.sort_unstable();
        self.score_with_members(&indices, x)
    }

    /// Scores snapshots with an explicit member subset (used by the
    /// evaluation harness for deterministic sweeps).
    ///
    /// Members are scored in parallel on crossbeam scoped threads; the
    /// per-member results are joined and reduced in `indices` order, so the
    /// output is bitwise identical to scoring the members serially.
    ///
    /// # Panics
    ///
    /// Panics if `indices` is empty or out of bounds.
    pub fn score_with_members(&self, indices: &[usize], x: &Tensor) -> EnsembleScore {
        assert!(!indices.is_empty(), "need at least one member");
        for &i in indices {
            assert!(i < self.members.len(), "member index {i} out of bounds");
        }
        let n = x.shape()[0];
        let per_member: Vec<Vec<f32>> = if indices.len() == 1 {
            vec![self.members[indices[0]].wgan.score_batch(x)]
        } else {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = indices
                    .iter()
                    .map(|&i| {
                        let member = &self.members[i];
                        scope.spawn(move |_| member.wgan.score_batch(x))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("member scoring thread panicked"))
                    .collect()
            })
            .expect("ensemble scoring scope")
        };
        let mut sum = vec![0.0f32; n];
        let mut tau = 0.0f32;
        for (scores, &i) in per_member.iter().zip(indices) {
            for (acc, s) in sum.iter_mut().zip(scores) {
                *acc += s;
            }
            tau += self.members[i].threshold;
        }
        let k = indices.len() as f32;
        for s in &mut sum {
            *s /= k;
        }
        EnsembleScore {
            scores: sum,
            threshold: tau / k,
            members: indices.to_vec(),
        }
    }

    /// Scores one vehicle's latest snapshot and, if it exceeds the
    /// ensemble threshold, produces a misbehavior report for the MA.
    pub fn check_vehicle(&mut self, vehicle: VehicleId, snapshot: &Tensor) -> Option<MisbehaviorReport> {
        assert_eq!(snapshot.shape()[0], 1, "expected a single snapshot");
        let result = self.score_batch(snapshot);
        let score = result.scores[0];
        (score > result.threshold).then(|| MisbehaviorReport {
            vehicle,
            score,
            threshold: result.threshold,
            members: result.members,
            evidence: snapshot.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WganConfig;
    use vehigan_tensor::init::{rand_uniform, seeded_rng};

    fn benign(n: usize, seed: u64) -> Tensor {
        let mut rng = seeded_rng(seed);
        let base = rand_uniform(&[n, 1], -0.2, 0.2, &mut rng);
        let mut data = Vec::with_capacity(n * 120);
        for i in 0..n {
            for j in 0..120 {
                data.push(base.as_slice()[i] + 0.05 * (j as f32 * 0.4).cos());
            }
        }
        Tensor::from_vec(data, &[n, 10, 12, 1])
    }

    fn member(seed: u64, train: &Tensor) -> CriticMember {
        let config = WganConfig {
            noise_dim: 8,
            layers: 3,
            epochs: 2,
            batch_size: 32,
            n_critic: 1,
            seed,
            ..WganConfig::default()
        };
        let mut wgan = Wgan::new(config);
        wgan.train(train);
        CriticMember::calibrate(wgan, 0.9, train, 99.0)
    }

    fn ensemble(m: usize, k: usize) -> VehiGan {
        let train = benign(96, 0);
        let members: Vec<CriticMember> = (0..m as u64).map(|s| member(s, &train)).collect();
        VehiGan::new(members, k, 7)
    }

    #[test]
    fn construction_validates_k() {
        let v = ensemble(3, 2);
        assert_eq!((v.m(), v.k()), (3, 2));
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn k_exceeding_m_rejected() {
        let _ = ensemble(2, 3);
    }

    #[test]
    fn random_subsets_vary_across_inferences() {
        let mut v = ensemble(4, 2);
        let x = benign(4, 1);
        let subsets: Vec<Vec<usize>> = (0..10).map(|_| v.score_batch(&x).members).collect();
        assert!(subsets.iter().any(|s| s != &subsets[0]));
        for s in &subsets {
            assert_eq!(s.len(), 2);
        }
    }

    #[test]
    fn full_ensemble_score_is_member_mean() {
        let mut v = ensemble(3, 3);
        let x = benign(5, 2);
        let all: Vec<usize> = (0..3).collect();
        let ens = v.score_with_members(&all, &x);
        let mut expected = vec![0.0f32; 5];
        for i in 0..3 {
            let s = v.members_mut()[i].wgan.score_batch(&x);
            for (e, si) in expected.iter_mut().zip(&s) {
                *e += si / 3.0;
            }
        }
        for (a, b) in ens.scores.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn parallel_scoring_is_identical_to_serial_order() {
        let v = ensemble(3, 3);
        let x = benign(6, 5);
        let all = [0usize, 1, 2];
        let par = v.score_with_members(&all, &x);
        // Serial reference: accumulate member scores in `all` order.
        let mut sum = vec![0.0f32; 6];
        let mut tau = 0.0f32;
        for &i in &all {
            let s = v.members()[i].wgan.score_batch(&x);
            for (acc, si) in sum.iter_mut().zip(&s) {
                *acc += si;
            }
            tau += v.members()[i].threshold;
        }
        for s in &mut sum {
            *s /= 3.0;
        }
        assert_eq!(par.scores, sum, "parallel must equal serial bitwise");
        assert_eq!(par.threshold, tau / 3.0);
    }

    #[test]
    fn ensemble_threshold_is_member_mean() {
        let v = ensemble(3, 3);
        let x = benign(2, 3);
        let ens = v.score_with_members(&[0, 1, 2], &x);
        let expect: f32 =
            v.members().iter().map(|m| m.threshold).sum::<f32>() / 3.0;
        assert!((ens.threshold - expect).abs() < 1e-6);
    }

    #[test]
    fn benign_fpr_is_low_after_calibration() {
        let v = ensemble(3, 3);
        let x = benign(200, 4);
        let ens = v.score_with_members(&[0, 1, 2], &x);
        let fpr = ens.detections().iter().filter(|&&d| d).count() as f64 / 200.0;
        assert!(fpr < 0.1, "fpr={fpr}");
    }

    #[test]
    fn garbage_triggers_reports() {
        let mut v = ensemble(3, 2);
        let mut rng = seeded_rng(9);
        let garbage = rand_uniform(&[1, 10, 12, 1], -1.0, 1.0, &mut rng);
        // Not guaranteed for every seed, but this configuration flags it.
        let report = v.check_vehicle(VehicleId(7), &garbage);
        if let Some(r) = report {
            assert_eq!(r.vehicle, VehicleId(7));
            assert!(r.score > r.threshold);
            assert_eq!(r.evidence.shape(), &[1, 10, 12, 1]);
        }
    }

    #[test]
    fn detections_threshold_semantics() {
        let es = EnsembleScore {
            scores: vec![0.1, 0.9, 0.5],
            threshold: 0.5,
            members: vec![0],
        };
        assert_eq!(es.detections(), vec![false, true, false]);
    }
}
