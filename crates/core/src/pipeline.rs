//! End-to-end VehiGAN pipeline: simulate → engineer features → train the
//! zoo → pre-evaluate → select → calibrate → deploy (Fig 2).

use crate::campaign::CampaignPlane;
use crate::config::{GridConfig, WganConfig};
use crate::ensemble::{CriticMember, EnsembleError, VehiGan};
use crate::wgan::Wgan;
use crate::zoo::{ModelZoo, QuarantineRecord, ZooError, ZooTrainOptions};
use std::fmt;
use std::path::PathBuf;
use vehigan_features::{
    build_windows, build_windows_from_rows, engineer_rows, fit_scaler_from_rows, MinMaxScaler,
    Representation, WindowConfig, WindowDataset,
};
use vehigan_sim::{SimConfig, TrafficSimulator, VehicleTrace};
use vehigan_tensor::serialize::ModelFormatError;
use vehigan_tensor::Tensor;
use vehigan_vasp::{Attack, DatasetBuilder, DatasetConfig};

/// Error from the fallible pipeline entry point [`Pipeline::try_run`].
#[derive(Debug)]
pub enum PipelineError {
    /// A degenerate configuration (empty splits, `top_m` larger than the
    /// grid, `deploy_k > top_m`, …).
    InvalidConfig(&'static str),
    /// Zoo training failed (checkpoint store trouble or every
    /// configuration quarantined).
    Zoo(ZooError),
    /// Cloning a selected critic for calibration failed.
    Model(ModelFormatError),
    /// Assembling the deployed ensemble failed.
    Ensemble(EnsembleError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::InvalidConfig(msg) => write!(f, "{msg}"),
            PipelineError::Zoo(e) => write!(f, "zoo training: {e}"),
            PipelineError::Model(e) => write!(f, "critic clone: {e}"),
            PipelineError::Ensemble(e) => write!(f, "ensemble assembly: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::InvalidConfig(_) => None,
            PipelineError::Zoo(e) => Some(e),
            PipelineError::Model(e) => Some(e),
            PipelineError::Ensemble(e) => Some(e),
        }
    }
}

impl From<ZooError> for PipelineError {
    fn from(e: ZooError) -> Self {
        PipelineError::Zoo(e)
    }
}

impl From<EnsembleError> for PipelineError {
    fn from(e: EnsembleError) -> Self {
        PipelineError::Ensemble(e)
    }
}

/// Full pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Traffic simulation parameters.
    pub sim: SimConfig,
    /// Attack dataset parameters (malicious fraction, policy, ranges).
    pub dataset: DatasetConfig,
    /// Snapshot windowing parameters.
    pub window: WindowConfig,
    /// WGAN hyperparameter grid.
    pub grid: GridConfig,
    /// Candidate pool size `m` (paper: 5–10).
    pub top_m: usize,
    /// Deployed subset size `k ≤ m`.
    pub deploy_k: usize,
    /// Threshold percentile `p` (paper: 99–99.99).
    pub threshold_percentile: f64,
    /// Attacks present in the validation set (the defender's
    /// "representative anomalies", §III-E).
    pub validation_attacks: Vec<Attack>,
    /// Fraction of vehicles reserved for benign training.
    pub train_fraction: f64,
    /// Fraction of vehicles reserved for validation (the rest is test).
    pub valid_fraction: f64,
    /// Worker threads for zoo training.
    pub zoo_threads: usize,
    /// Ensemble randomization seed.
    pub seed: u64,
    /// When set, zoo training checkpoints every finished member here and
    /// an interrupted run resumes from the directory's manifest.
    pub checkpoint_dir: Option<PathBuf>,
    /// Retrain previously quarantined grid configurations with a fresh
    /// derived seed instead of skipping them on resume.
    pub retry_quarantined: bool,
    /// Stop zoo training cleanly after this many groups finish, leaving
    /// the rest for a resumed run (kill simulation; `None` trains
    /// everything). See [`crate::ZooTrainOptions::stop_after_groups`].
    pub stop_after_groups: Option<usize>,
}

impl PipelineConfig {
    /// One representative validation attack per targeted field.
    pub fn default_validation_attacks() -> Vec<Attack> {
        [
            "RandomPosition",
            "RandomSpeed",
            "RandomAcceleration",
            "OppositeHeading",
            "RandomYawRate",
            "HighHeadingYawRate",
        ]
        .iter()
        .map(|n| Attack::by_name(n).expect("catalog name"))
        .collect()
    }

    /// A CPU-friendly configuration that still exercises every stage.
    pub fn quick() -> Self {
        PipelineConfig {
            sim: SimConfig {
                n_vehicles: 24,
                duration_s: 90.0,
                seed: 0,
                ..SimConfig::default()
            },
            dataset: DatasetConfig::default(),
            window: WindowConfig {
                stride: 3,
                ..WindowConfig::default()
            },
            grid: GridConfig::quick(),
            top_m: 5,
            deploy_k: 3,
            threshold_percentile: 99.0,
            validation_attacks: Self::default_validation_attacks(),
            train_fraction: 0.5,
            valid_fraction: 0.25,
            zoo_threads: 4,
            seed: 0,
            checkpoint_dir: None,
            retry_quarantined: false,
            stop_after_groups: None,
        }
    }

    /// A demo configuration for the runnable examples: one small zoo run
    /// per architecture (6 models), a 20-vehicle fleet — minutes of CPU
    /// while still exercising every stage meaningfully.
    pub fn demo() -> Self {
        PipelineConfig {
            sim: SimConfig {
                n_vehicles: 20,
                duration_s: 75.0,
                seed: 0,
                ..SimConfig::default()
            },
            window: WindowConfig {
                stride: 4,
                ..WindowConfig::default()
            },
            grid: GridConfig {
                noise_dims: vec![8, 16, 32],
                layer_counts: vec![4],
                epoch_counts: vec![2, 4],
                base: WganConfig {
                    batch_size: 64,
                    n_critic: 2,
                    ..WganConfig::default()
                },
            },
            top_m: 4,
            deploy_k: 3,
            ..Self::quick()
        }
    }

    /// A minimal configuration for unit tests.
    pub fn tiny() -> Self {
        PipelineConfig {
            sim: SimConfig {
                n_vehicles: 12,
                duration_s: 45.0,
                // Seed 1 gives a healthy draw at this tiny scale under the
                // vendored deterministic RNG (seed 0 trains an inverted
                // ensemble that fails the gross-misbehavior smoke test).
                seed: 1,
                ..SimConfig::default()
            },
            window: WindowConfig {
                stride: 3,
                ..WindowConfig::default()
            },
            grid: GridConfig::tiny(),
            top_m: 3,
            deploy_k: 2,
            ..Self::quick()
        }
    }
}

/// A fully trained VehiGAN system plus everything needed to evaluate it.
pub struct Pipeline {
    /// The configuration used.
    pub config: PipelineConfig,
    /// Scaler fitted on benign training rows.
    pub scaler: MinMaxScaler,
    /// Benign training windows.
    pub train_windows: WindowDataset,
    /// Validation datasets used for pre-evaluation.
    pub validation: Vec<(Attack, WindowDataset)>,
    /// The full trained zoo (retained: Fig 3 evaluates all models).
    pub zoo: ModelZoo,
    /// Indices of the selected top-`m` models within the zoo.
    pub selected: Vec<usize>,
    /// The deployed `VEHIGAN_m^k` ensemble.
    pub vehigan: VehiGan,
    /// Grid configurations the zoo quarantined during training (empty on a
    /// healthy run).
    pub quarantined: Vec<QuarantineRecord>,
    /// Scaler for the raw 6-field representation (used by the `Base`
    /// baselines of Table III).
    pub raw_scaler: MinMaxScaler,
    train_fleet: Vec<VehicleTrace>,
    test_fleet: Vec<VehicleTrace>,
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Pipeline(zoo={}, selected={:?}, ensemble={:?})",
            self.zoo.len(),
            self.selected,
            self.vehigan
        )
    }
}

impl Pipeline {
    /// Runs the full training phase.
    ///
    /// This is the infallible wrapper around [`Pipeline::try_run`].
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (empty splits, `top_m` larger
    /// than the grid, `deploy_k > top_m`) or any [`PipelineError`].
    pub fn run(config: PipelineConfig) -> Pipeline {
        match Self::try_run(config) {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the full training phase, surfacing every failure mode as a
    /// typed [`PipelineError`] instead of a panic.
    ///
    /// When `config.checkpoint_dir` is set, zoo training is crash-safe: a
    /// rerun of the same configuration resumes from the checkpoint
    /// manifest. Quarantined grid configurations shrink the candidate pool
    /// (`top_m` is clamped to the surviving zoo) rather than failing the
    /// pipeline, as long as at least `deploy_k` members survive.
    ///
    /// # Errors
    ///
    /// [`PipelineError::InvalidConfig`] on degenerate configurations,
    /// otherwise the wrapped zoo / model / ensemble error.
    pub fn try_run(config: PipelineConfig) -> Result<Pipeline, PipelineError> {
        if config.top_m > config.grid.len() {
            return Err(PipelineError::InvalidConfig("top_m exceeds grid size"));
        }
        if config.deploy_k > config.top_m {
            return Err(PipelineError::InvalidConfig("deploy_k exceeds top_m"));
        }
        if !(config.train_fraction > 0.0
            && config.valid_fraction > 0.0
            && config.train_fraction + config.valid_fraction < 1.0)
        {
            return Err(PipelineError::InvalidConfig(
                "fractions must leave room for a test split",
            ));
        }

        // 1. Simulate and split the fleet.
        let fleet = TrafficSimulator::new(config.sim.clone()).run();
        let n = fleet.len();
        let n_train = ((n as f64 * config.train_fraction) as usize).max(1);
        let n_valid = ((n as f64 * config.valid_fraction) as usize).max(1);
        if n_train + n_valid >= n {
            return Err(PipelineError::InvalidConfig(
                "fleet too small for a 3-way split",
            ));
        }
        let train_fleet = fleet[..n_train].to_vec();
        let valid_fleet = &fleet[n_train..n_train + n_valid];
        let test_fleet = fleet[n_train + n_valid..].to_vec();

        // 2. Features: fit the scalers on benign training data only. Rows
        //    are engineered once per representation and reused for both the
        //    scaler fit and the window build (the old fit-then-build path
        //    recomputed every feature row twice).
        let train_builder = DatasetBuilder::new(&train_fleet, config.dataset.clone());
        let benign_train = train_builder.benign_dataset();
        let train_rows = engineer_rows(&benign_train, config.window.representation);
        let scaler = fit_scaler_from_rows(&train_rows);
        let raw_scaler = fit_scaler_from_rows(&engineer_rows(&benign_train, Representation::Raw));
        let train_windows = build_windows_from_rows(&train_rows, config.window, &scaler);

        // 3. Validation datasets with representative attacks, assembled
        //    through the campaign plane so each benign validation trace is
        //    engineered once rather than once per attack.
        let valid_plane =
            CampaignPlane::new(valid_fleet, config.dataset.clone(), config.window, &scaler);
        let validation: Vec<(Attack, WindowDataset)> = config
            .validation_attacks
            .iter()
            .copied()
            .zip(valid_plane.campaign(&config.validation_attacks))
            .collect();
        drop(valid_plane);

        // 4. Train the zoo (fault-tolerant, resumable) and pre-evaluate.
        let zoo_options = ZooTrainOptions {
            threads: config.zoo_threads,
            checkpoint_dir: config.checkpoint_dir.clone(),
            retry_quarantined: config.retry_quarantined,
            stop_after_groups: config.stop_after_groups,
            ..ZooTrainOptions::default()
        };
        let report = ModelZoo::train_grid(&config.grid, &train_windows.x, &zoo_options)?;
        let mut zoo = report.zoo;
        let quarantined = report.quarantined;
        // Quarantined configurations shrink the candidate pool, but the
        // deployment size is a hard requirement.
        let top_m = config.top_m.min(zoo.len());
        if top_m < config.deploy_k {
            return Err(EnsembleError::InsufficientHealthy {
                healthy: top_m,
                k: config.deploy_k,
            }
            .into());
        }
        zoo.pre_evaluate(&validation);
        let selected = zoo.top_m(top_m);

        // 5. Calibrate thresholds for the selected critics (cloned via
        //    serialization so the zoo stays intact for whole-zoo analyses).
        let members: Vec<CriticMember> = selected
            .iter()
            .map(|&i| {
                let entry = &zoo.entries()[i];
                let clone =
                    Wgan::from_critic_bytes(*entry.wgan.config(), &entry.wgan.critic_bytes())
                        .map_err(PipelineError::Model)?;
                CriticMember::calibrate(
                    clone,
                    entry.ads,
                    &train_windows.x,
                    config.threshold_percentile,
                )
                .map_err(PipelineError::from)
            })
            .collect::<Result<_, PipelineError>>()?;
        let vehigan = VehiGan::new(members, config.deploy_k, config.seed)?;

        Ok(Pipeline {
            config,
            scaler,
            train_windows,
            validation,
            zoo,
            selected,
            vehigan,
            quarantined,
            raw_scaler,
            train_fleet,
            test_fleet,
        })
    }

    /// The raw-representation window config (same `w`/stride, raw fields).
    fn raw_window_config(&self) -> WindowConfig {
        WindowConfig {
            representation: Representation::Raw,
            ..self.config.window
        }
    }

    /// Benign training windows in the raw representation (for the `Base`
    /// baselines).
    pub fn train_benign_windows_raw(&self) -> WindowDataset {
        let builder = DatasetBuilder::new(&self.train_fleet, self.config.dataset.clone());
        build_windows(
            &builder.benign_dataset(),
            self.raw_window_config(),
            &self.raw_scaler,
        )
    }

    /// Raw-representation labelled test windows for one attack.
    pub fn test_attack_windows_raw(&self, attack: Attack) -> WindowDataset {
        let builder = DatasetBuilder::new(&self.test_fleet, self.config.dataset.clone());
        build_windows(
            &builder.attack_dataset(attack),
            self.raw_window_config(),
            &self.raw_scaler,
        )
    }

    /// The held-out test fleet (never seen in training or selection).
    pub fn test_fleet(&self) -> &[VehicleTrace] {
        &self.test_fleet
    }

    /// The benign training fleet — the traces the scaler (and any
    /// serve-time calibration, e.g. the tier-0 kinematic gate's decision
    /// intervals) may legitimately be fit on without touching held-out
    /// data.
    pub fn train_fleet(&self) -> &[VehicleTrace] {
        &self.train_fleet
    }

    /// A campaign evaluation plane over the held-out test fleet: each
    /// benign trace's windows are computed once and shared across all 35
    /// attack datasets (plus the benign one). Datasets assembled from the
    /// plane are bitwise identical to [`Self::test_attack_windows`] /
    /// [`Self::test_benign_windows`].
    pub fn campaign_plane(&self) -> CampaignPlane<'_> {
        CampaignPlane::new(
            &self.test_fleet,
            self.config.dataset.clone(),
            self.config.window,
            &self.scaler,
        )
    }

    /// Builds labelled test windows for one attack on the held-out fleet.
    pub fn test_attack_windows(&self, attack: Attack) -> WindowDataset {
        let builder = DatasetBuilder::new(&self.test_fleet, self.config.dataset.clone());
        build_windows(
            &builder.attack_dataset(attack),
            self.config.window,
            &self.scaler,
        )
    }

    /// Builds benign test windows on the held-out fleet.
    pub fn test_benign_windows(&self) -> WindowDataset {
        let builder = DatasetBuilder::new(&self.test_fleet, self.config.dataset.clone());
        build_windows(&builder.benign_dataset(), self.config.window, &self.scaler)
    }

    /// Compiles the deployed ensemble's int8 backend, calibrating
    /// activation scales on (a subsample of) the benign training windows.
    ///
    /// After this, [`VehiGan::score_batch_int8`] /
    /// [`VehiGan::score_with_members_int8`] run the fused int8 path.
    ///
    /// # Errors
    ///
    /// Propagates [`EnsembleError::Int8Compile`].
    pub fn compile_int8(&mut self) -> Result<(), EnsembleError> {
        // A few hundred windows pin the activation ranges; more adds
        // calibration time, not accuracy.
        const MAX_CALIBRATION_WINDOWS: usize = 256;
        let x = &self.train_windows.x;
        let n = x.shape()[0];
        let shape = x.shape().to_vec();
        let take = n.min(MAX_CALIBRATION_WINDOWS);
        let len = shape[1] * shape[2] * shape[3];
        let calibration = Tensor::from_vec(
            x.as_slice()[..take * len].to_vec(),
            &[take, shape[1], shape[2], shape[3]],
        );
        self.vehigan.compile_int8(&calibration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex, MutexGuard, OnceLock};
    use vehigan_metrics::auroc;

    /// Pipeline training is the expensive part; share one instance.
    fn pipeline() -> MutexGuard<'static, Pipeline> {
        static SHARED: OnceLock<Mutex<Pipeline>> = OnceLock::new();
        SHARED
            .get_or_init(|| Mutex::new(Pipeline::run(PipelineConfig::tiny())))
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn pipeline_trains_selects_and_deploys() {
        let p = pipeline();
        assert_eq!(p.zoo.len(), GridConfig::tiny().len());
        assert_eq!(p.selected.len(), 3);
        assert_eq!(p.vehigan.m(), 3);
        assert_eq!(p.vehigan.k(), 2);
        assert!(!p.test_fleet().is_empty());
    }

    #[test]
    fn selected_models_have_best_ads() {
        let p = pipeline();
        let selected_min = p
            .selected
            .iter()
            .map(|&i| p.zoo.entries()[i].ads)
            .fold(f64::INFINITY, f64::min);
        for (i, e) in p.zoo.entries().iter().enumerate() {
            if !p.selected.contains(&i) {
                assert!(e.ads <= selected_min + 1e-12);
            }
        }
    }

    #[test]
    fn ensemble_detects_gross_misbehavior_on_test_fleet() {
        let p = pipeline();
        let ds = p.test_attack_windows(Attack::by_name("RandomPosition").unwrap());
        let all: Vec<usize> = (0..p.vehigan.m()).collect();
        let result = p.vehigan.score_with_members(&all, &ds.x).unwrap();
        let score = auroc(&result.scores, &ds.labels);
        assert!(score > 0.8, "AUROC {score} too low for RandomPosition");
    }

    #[test]
    fn benign_test_fpr_is_bounded() {
        let p = pipeline();
        let ds = p.test_benign_windows();
        let all: Vec<usize> = (0..p.vehigan.m()).collect();
        let result = p.vehigan.score_with_members(&all, &ds.x).unwrap();
        let fpr = result.detections().iter().filter(|&&d| d).count() as f64 / ds.len() as f64;
        assert!(fpr < 0.15, "fpr={fpr}");
    }

    #[test]
    fn campaign_plane_matches_the_serial_accessors() {
        let p = pipeline();
        let plane = p.campaign_plane();
        let attack = Attack::by_name("HighSpeed").unwrap();
        let via_plane = plane.attack_windows(attack);
        let serial = p.test_attack_windows(attack);
        assert_eq!(via_plane.x.as_slice(), serial.x.as_slice());
        assert_eq!(via_plane.labels, serial.labels);
        assert_eq!(via_plane.vehicles, serial.vehicles);
        let benign = plane.benign_windows();
        let serial_benign = p.test_benign_windows();
        assert_eq!(benign.x.as_slice(), serial_benign.x.as_slice());
        assert_eq!(benign.labels, serial_benign.labels);
    }

    #[test]
    #[should_panic(expected = "deploy_k exceeds top_m")]
    fn invalid_k_rejected() {
        let mut c = PipelineConfig::tiny();
        c.deploy_k = 10;
        let _ = Pipeline::run(c);
    }

    #[test]
    fn try_run_surfaces_invalid_config_as_typed_error() {
        let mut c = PipelineConfig::tiny();
        c.top_m = c.grid.len() + 1;
        match Pipeline::try_run(c) {
            Err(PipelineError::InvalidConfig(msg)) => {
                assert!(msg.contains("top_m"))
            }
            other => panic!("expected InvalidConfig, got {other:?}"),
        }
    }
}
