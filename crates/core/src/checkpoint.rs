//! Crash-safe persistence for zoo training runs.
//!
//! A grid run trains up to 60 WGANs; losing the whole run to one killed
//! process is not acceptable at production scale. The [`CheckpointStore`]
//! persists each finished zoo member to its own file — written atomically
//! (temp file + rename) with a CRC32-checksummed, versioned header — plus a
//! run **manifest** recording which members are done and which were
//! quarantined. An interrupted [`crate::ModelZoo::train_grid`] run resumes
//! exactly where it left off; corrupted files surface as typed
//! [`CheckpointError`]s instead of loading garbage into the scoring path.
//!
//! File layout (`<id>.ckpt` / `<key>.partial.ckpt`, little-endian):
//!
//! ```text
//! magic  "VZCK" | version u32 | payload_len u64 | crc32 u32 | payload
//! payload (v2):
//!          id string (u32 len + utf-8)
//!          history count u32, then per epoch: epoch u64 + 3×f32
//!          critic model bytes (u64 len + VGAN wire format)
//!          training-state flag u8
//!          [flag = 1] training state (u64 len + Wgan state blob)
//! ```
//!
//! The trailing training-state section is what distinguishes **v2** from
//! v1 (whose payload ended at the critic bytes): member checkpoints write
//! flag 0 — a deployed critic needs nothing more — while the
//! epoch-granular *partial* checkpoints ([`CheckpointStore::save_partial`])
//! write flag 1 with the complete [`crate::Wgan::training_state_bytes`]
//! blob (generator weights, both RMSProp caches, spectral-norm vectors,
//! and the mid-call RNG cursor), so a killed run resumes mid-member and
//! finishes **bitwise identical** to an uninterrupted one. v1 files still
//! load for inference via version dispatch; they carry no training state,
//! so they can never seed a resumed *training* run.
//!
//! The manifest (`manifest.tsv`) is a line-oriented text file, rewritten
//! atomically after every member completes:
//!
//! ```text
//! vehigan-zoo-manifest\tv1\t<grid fingerprint, hex>
//! done\t<config id>
//! quarantined\t<config id>\t<reason>
//! ```

use crate::config::{GridConfig, WganConfig};
use crate::wgan::{TrainStats, Wgan};
use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use vehigan_tensor::serialize::ModelFormatError;

/// Magic bytes identifying a VehiGAN zoo checkpoint file.
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"VZCK";
/// Current checkpoint wire-format version (v2: optional trailing
/// training-state section).
pub const CHECKPOINT_VERSION: u32 = 2;
/// The original wire-format version (critic + history only). Still
/// readable for inference.
pub const CHECKPOINT_VERSION_V1: u32 = 1;

/// Error reading or writing a checkpoint or manifest.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure (open, read, write, rename).
    Io(io::Error),
    /// The magic bytes did not match [`CHECKPOINT_MAGIC`].
    BadMagic,
    /// Unsupported checkpoint format version.
    BadVersion(u32),
    /// The file ended before the declared payload length.
    Truncated {
        /// Bytes the header declared.
        expected: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// The payload checksum did not match the header (bit rot, torn
    /// write, tampering).
    ChecksumMismatch {
        /// CRC32 recorded in the header.
        expected: u32,
        /// CRC32 of the payload as read.
        got: u32,
    },
    /// Structural corruption inside a payload that passed the checksum
    /// (should not happen; indicates a writer bug).
    Corrupt(&'static str),
    /// The checkpoint belongs to a different configuration than requested.
    IdMismatch {
        /// Config id the caller asked for.
        expected: String,
        /// Config id stored in the file.
        found: String,
    },
    /// The embedded critic failed model-format validation (including the
    /// non-finite-weight rejection).
    Model(ModelFormatError),
    /// The manifest on disk belongs to a different hyperparameter grid.
    ManifestMismatch {
        /// Fingerprint of the grid being trained.
        expected: u64,
        /// Fingerprint recorded in the manifest.
        found: u64,
    },
    /// The manifest file is malformed.
    BadManifest(&'static str),
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a VehiGAN checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::Truncated { expected, got } => {
                write!(f, "truncated checkpoint: expected {expected} payload bytes, got {got}")
            }
            CheckpointError::ChecksumMismatch { expected, got } => write!(
                f,
                "checkpoint checksum mismatch: header {expected:#010x}, payload {got:#010x}"
            ),
            CheckpointError::Corrupt(what) => write!(f, "corrupt checkpoint payload: {what}"),
            CheckpointError::IdMismatch { expected, found } => {
                write!(f, "checkpoint id mismatch: wanted `{expected}`, file holds `{found}`")
            }
            CheckpointError::Model(e) => write!(f, "checkpointed critic invalid: {e}"),
            CheckpointError::ManifestMismatch { expected, found } => write!(
                f,
                "manifest belongs to a different grid: expected {expected:#018x}, found {found:#018x}"
            ),
            CheckpointError::BadManifest(what) => write!(f, "malformed manifest: {what}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<ModelFormatError> for CheckpointError {
    fn from(e: ModelFormatError) -> Self {
        CheckpointError::Model(e)
    }
}

/// CRC32 (IEEE 802.3 polynomial, reflected) over a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Nibble-driven table: 16 entries, no build-time codegen needed.
    const TABLE: [u32; 16] = [
        0x0000_0000,
        0x1DB7_1064,
        0x3B6E_20C8,
        0x26D9_30AC,
        0x76DC_4190,
        0x6B6B_51F4,
        0x4DB2_6158,
        0x5005_713C,
        0xEDB8_8320,
        0xF00F_9344,
        0xD6D6_A3E8,
        0xCB61_B38C,
        0x9B64_C2B0,
        0x86D3_D2D4,
        0xA00A_E278,
        0xBDBD_F21C,
    ];
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        crc = (crc >> 4) ^ TABLE[(crc & 0xF) as usize];
        crc = (crc >> 4) ^ TABLE[(crc & 0xF) as usize];
    }
    !crc
}

/// Deterministic fingerprint of a hyperparameter grid (FNV-1a over the
/// expanded config ids), used to guard a manifest against being resumed
/// with a different grid.
pub fn grid_fingerprint(grid: &GridConfig) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for config in grid.expand() {
        for b in config.id().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^= b'|' as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The run manifest: which members of a grid run are complete, and which
/// were quarantined (with their reasons).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Manifest {
    /// Fingerprint of the grid this run belongs to.
    pub fingerprint: u64,
    /// Config ids of members whose checkpoints are fully written.
    pub done: Vec<String>,
    /// Config ids quarantined in a previous (interrupted) run, with the
    /// structured reason rendered as text.
    pub quarantined: Vec<(String, String)>,
}

/// A directory of atomically-written, checksummed zoo-member checkpoints
/// plus the run manifest.
///
/// # Examples
///
/// ```no_run
/// use vehigan_core::{CheckpointStore, Wgan, WganConfig};
///
/// let store = CheckpointStore::open("/tmp/zoo-run").unwrap();
/// let config = WganConfig::default();
/// let wgan = Wgan::new(config);
/// store.save_member(&wgan).unwrap();
/// let restored = store.load_member(config).unwrap();
/// assert_eq!(restored.config().id(), config.id());
/// ```
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// Returns an error if the directory cannot be created.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, CheckpointError> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        Ok(CheckpointStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the checkpoint file for a config id.
    pub fn member_path(&self, id: &str) -> PathBuf {
        self.dir.join(format!("{id}.ckpt"))
    }

    /// Whether a checkpoint file exists for a config id (existence only —
    /// integrity is verified at load time).
    pub fn has_member(&self, id: &str) -> bool {
        self.member_path(id).exists()
    }

    /// Persists one zoo member atomically: the payload is written to a
    /// `.tmp` sibling, flushed, then renamed over the final path, so a
    /// crash mid-write never leaves a half-written `.ckpt` behind.
    ///
    /// # Errors
    ///
    /// Returns an error on any I/O failure.
    pub fn save_member(&self, wgan: &Wgan) -> Result<(), CheckpointError> {
        let id = wgan.config().id();
        let file = frame_checkpoint(&build_payload(wgan, None)?);
        self.write_atomic(&self.member_path(&id), &file)
    }

    /// Path of the partial (mid-group) checkpoint file for a group key.
    ///
    /// Keys are salt-independent so a retrained group overwrites — rather
    /// than orphans — the partial of its quarantined predecessor.
    pub fn partial_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.partial.ckpt"))
    }

    /// Whether a partial checkpoint exists for a group key.
    pub fn has_partial(&self, key: &str) -> bool {
        self.partial_path(key).exists()
    }

    /// Persists the full mid-training state of a group's shared run at an
    /// epoch boundary: critic + history (as in [`save_member`]) plus the
    /// complete [`Wgan::training_state_bytes`] blob, so
    /// [`load_partial`] can resume training bitwise-identically instead of
    /// retraining the group from scratch.
    ///
    /// The payload id is the run config's id (which embeds the — possibly
    /// retry-salted — seed); the file name is the caller's stable `key`.
    ///
    /// # Errors
    ///
    /// Returns an error on any I/O failure.
    ///
    /// [`save_member`]: CheckpointStore::save_member
    /// [`load_partial`]: CheckpointStore::load_partial
    pub fn save_partial(&self, key: &str, wgan: &Wgan) -> Result<(), CheckpointError> {
        let state = wgan.training_state_bytes();
        let file = frame_checkpoint(&build_payload(wgan, Some(&state))?);
        self.write_atomic(&self.partial_path(key), &file)
    }

    /// Removes a partial checkpoint (a no-op when none exists) — called
    /// once its group completes or is quarantined.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure other than the file being absent.
    pub fn remove_partial(&self, key: &str) -> Result<(), CheckpointError> {
        match fs::remove_file(self.partial_path(key)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Loads a partial checkpoint, rebuilding a **trainable** [`Wgan`]
    /// (generator, optimizer caches, spectral vectors, RNG cursor,
    /// history) for `config` — which must be the group's *run* config; a
    /// partial written under a different seed (e.g. before a quarantine
    /// retry re-salted the run) fails with
    /// [`CheckpointError::IdMismatch`].
    ///
    /// # Errors
    ///
    /// All of [`load_member`]'s corruption modes, plus
    /// [`CheckpointError::Corrupt`] for a checkpoint that carries no
    /// training state (e.g. a v1 file renamed into place).
    ///
    /// [`load_member`]: CheckpointStore::load_member
    pub fn load_partial(&self, key: &str, config: WganConfig) -> Result<Wgan, CheckpointError> {
        let bytes = fs::read(self.partial_path(key))?;
        let raw = parse_checkpoint(&bytes, &config.id())?;
        let state = raw
            .state
            .ok_or(CheckpointError::Corrupt("partial without training state"))?;
        let mut wgan = Wgan::resume_from_state(config, raw.critic, state)?;
        wgan.set_history(raw.history);
        Ok(wgan)
    }

    /// Loads and verifies the checkpoint for `config`, reconstructing an
    /// inference-ready [`Wgan`] (critic weights + training history; the
    /// generator is rebuilt untrained, as in
    /// [`Wgan::from_critic_bytes`]).
    ///
    /// # Errors
    ///
    /// Every corruption mode is a typed error: missing file / short reads
    /// ([`CheckpointError::Io`] / [`CheckpointError::Truncated`]), bit
    /// flips ([`CheckpointError::ChecksumMismatch`]), id mixups
    /// ([`CheckpointError::IdMismatch`]), and invalid or non-finite critic
    /// weights ([`CheckpointError::Model`]).
    pub fn load_member(&self, config: WganConfig) -> Result<Wgan, CheckpointError> {
        let id = config.id();
        let bytes = fs::read(self.member_path(&id))?;
        // Any training state in the file is ignored here: a loaded member
        // is inference-only, exactly as v1 members always were.
        let raw = parse_checkpoint(&bytes, &id)?;
        let mut wgan = Wgan::from_critic_bytes(config, raw.critic)?;
        wgan.set_history(raw.history);
        Ok(wgan)
    }

    /// Reads the run manifest, or `Ok(None)` when no run has started here.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure or a malformed manifest.
    pub fn read_manifest(&self) -> Result<Option<Manifest>, CheckpointError> {
        let path = self.manifest_path();
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let mut lines = text.lines();
        let header = lines
            .next()
            .ok_or(CheckpointError::BadManifest("empty file"))?;
        let mut fields = header.split('\t');
        if fields.next() != Some("vehigan-zoo-manifest") || fields.next() != Some("v1") {
            return Err(CheckpointError::BadManifest("bad header"));
        }
        let fp_hex = fields
            .next()
            .ok_or(CheckpointError::BadManifest("missing fingerprint"))?;
        let fingerprint = u64::from_str_radix(fp_hex.trim_start_matches("0x"), 16)
            .map_err(|_| CheckpointError::BadManifest("unparseable fingerprint"))?;
        let mut manifest = Manifest {
            fingerprint,
            ..Manifest::default()
        };
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split('\t');
            match fields.next() {
                Some("done") => {
                    let id = fields
                        .next()
                        .ok_or(CheckpointError::BadManifest("done without id"))?;
                    manifest.done.push(id.to_string());
                }
                Some("quarantined") => {
                    let id = fields
                        .next()
                        .ok_or(CheckpointError::BadManifest("quarantined without id"))?;
                    let reason = fields.next().unwrap_or("unknown");
                    manifest
                        .quarantined
                        .push((id.to_string(), reason.to_string()));
                }
                _ => return Err(CheckpointError::BadManifest("unknown record")),
            }
        }
        Ok(Some(manifest))
    }

    /// Atomically rewrites the run manifest.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure.
    pub fn write_manifest(&self, manifest: &Manifest) -> Result<(), CheckpointError> {
        let mut out = format!("vehigan-zoo-manifest\tv1\t{:#018x}\n", manifest.fingerprint);
        for id in &manifest.done {
            out.push_str("done\t");
            out.push_str(id);
            out.push('\n');
        }
        for (id, reason) in &manifest.quarantined {
            out.push_str("quarantined\t");
            out.push_str(id);
            out.push('\t');
            // Reasons are free text; keep the format line-oriented.
            out.push_str(&reason.replace(['\t', '\n'], " "));
            out.push('\n');
        }
        self.write_atomic(&self.manifest_path(), out.as_bytes())
    }

    /// Path of the manifest file.
    pub fn manifest_path(&self) -> PathBuf {
        self.dir.join("manifest.tsv")
    }

    /// Temp-file + rename write. The rename is atomic on POSIX filesystems,
    /// so readers either see the old file or the complete new one.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
        let tmp = path.with_extension("tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        // The rename reaches disk only when the *directory* is flushed:
        // fsyncing just the temp file leaves the new directory entry in
        // the page cache, so a crash here could roll back a checkpoint
        // (or manifest) this function already reported durable.
        let dir = path.parent().unwrap_or(Path::new("."));
        fs::File::open(dir)?.sync_all()?;
        Ok(())
    }
}

/// Parsed checkpoint payload, borrowing the critic / training-state
/// sections from the raw file bytes.
struct RawCheckpoint<'a> {
    history: Vec<TrainStats>,
    critic: &'a [u8],
    /// `Some` only for v2 files written with a training state
    /// ([`CheckpointStore::save_partial`]).
    state: Option<&'a [u8]>,
}

/// Serializes a checkpoint payload: id + history + critic, and — when
/// `state` is given — the v2 trailing training-state section.
fn build_payload(wgan: &Wgan, state: Option<&[u8]>) -> Result<Vec<u8>, CheckpointError> {
    let mut payload = Vec::new();
    write_str(&mut payload, &wgan.config().id())?;
    let history = wgan.history();
    payload.write_all(&(history.len() as u32).to_le_bytes())?;
    for s in history {
        payload.write_all(&(s.epoch as u64).to_le_bytes())?;
        payload.write_all(&s.wasserstein.to_le_bytes())?;
        payload.write_all(&s.critic_real.to_le_bytes())?;
        payload.write_all(&s.critic_fake.to_le_bytes())?;
    }
    let critic = wgan.critic_bytes();
    payload.write_all(&(critic.len() as u64).to_le_bytes())?;
    payload.write_all(&critic)?;
    match state {
        None => payload.push(0),
        Some(s) => {
            payload.push(1);
            payload.write_all(&(s.len() as u64).to_le_bytes())?;
            payload.write_all(s)?;
        }
    }
    Ok(payload)
}

/// Wraps a payload in the 20-byte checkpoint header (magic, current
/// version, length, CRC32).
fn frame_checkpoint(payload: &[u8]) -> Vec<u8> {
    let mut file = Vec::with_capacity(payload.len() + 20);
    file.extend_from_slice(CHECKPOINT_MAGIC);
    file.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
    file.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    file.extend_from_slice(&crc32(payload).to_le_bytes());
    file.extend_from_slice(payload);
    file
}

/// Validates the header (magic before length: a garbage non-checkpoint
/// file diagnoses as [`CheckpointError::BadMagic`] even when shorter than
/// a full header, as long as its available prefix already fails the magic
/// check) and parses the payload, dispatching on the format version.
fn parse_checkpoint<'a>(
    bytes: &'a [u8],
    expected_id: &str,
) -> Result<RawCheckpoint<'a>, CheckpointError> {
    let head = &bytes[..bytes.len().min(CHECKPOINT_MAGIC.len())];
    if head != &CHECKPOINT_MAGIC[..head.len()] {
        return Err(CheckpointError::BadMagic);
    }
    if bytes.len() < 20 {
        return Err(CheckpointError::Truncated {
            expected: 20,
            got: bytes.len(),
        });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != CHECKPOINT_VERSION_V1 && version != CHECKPOINT_VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let expected_crc = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
    let payload = &bytes[20..];
    if payload.len() != payload_len {
        return Err(CheckpointError::Truncated {
            expected: payload_len,
            got: payload.len(),
        });
    }
    let got_crc = crc32(payload);
    if got_crc != expected_crc {
        return Err(CheckpointError::ChecksumMismatch {
            expected: expected_crc,
            got: got_crc,
        });
    }

    let mut r = payload;
    let found = read_str(&mut r)?;
    if found != expected_id {
        return Err(CheckpointError::IdMismatch {
            expected: expected_id.to_string(),
            found,
        });
    }
    let n_epochs = read_u32(&mut r)? as usize;
    if n_epochs > 1 << 20 {
        return Err(CheckpointError::Corrupt("history too long"));
    }
    let mut history = Vec::with_capacity(n_epochs);
    for _ in 0..n_epochs {
        let epoch = read_u64(&mut r)? as usize;
        let wasserstein = read_f32(&mut r)?;
        let critic_real = read_f32(&mut r)?;
        let critic_fake = read_f32(&mut r)?;
        history.push(TrainStats {
            epoch,
            wasserstein,
            critic_real,
            critic_fake,
        });
    }
    let critic_len = read_u64(&mut r)? as usize;
    let (critic, state) = if version == CHECKPOINT_VERSION_V1 {
        // v1 payloads end at the critic bytes.
        if critic_len != r.len() {
            return Err(CheckpointError::Corrupt("critic length mismatch"));
        }
        (r, None)
    } else {
        if critic_len > r.len() {
            return Err(CheckpointError::Corrupt("critic length mismatch"));
        }
        let (critic, mut rest) = r.split_at(critic_len);
        let state = match read_exact_array::<1>(&mut rest)?[0] {
            0 => {
                if !rest.is_empty() {
                    return Err(CheckpointError::Corrupt("trailing payload bytes"));
                }
                None
            }
            1 => {
                let state_len = read_u64(&mut rest)? as usize;
                if state_len != rest.len() {
                    return Err(CheckpointError::Corrupt("training-state length mismatch"));
                }
                Some(rest)
            }
            _ => return Err(CheckpointError::Corrupt("bad training-state flag")),
        };
        (critic, state)
    };
    Ok(RawCheckpoint {
        history,
        critic,
        state,
    })
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    w.write_all(&(s.len() as u32).to_le_bytes())?;
    w.write_all(s.as_bytes())
}

fn read_str(r: &mut &[u8]) -> Result<String, CheckpointError> {
    let len = read_u32(r)? as usize;
    if len > 1 << 16 {
        return Err(CheckpointError::Corrupt("string too long"));
    }
    if r.len() < len {
        return Err(CheckpointError::Corrupt("string past end of payload"));
    }
    let (head, rest) = r.split_at(len);
    let s = std::str::from_utf8(head)
        .map_err(|_| CheckpointError::Corrupt("invalid utf-8"))?
        .to_string();
    *r = rest;
    Ok(s)
}

fn read_exact_array<const N: usize>(r: &mut &[u8]) -> Result<[u8; N], CheckpointError> {
    if r.len() < N {
        return Err(CheckpointError::Corrupt("payload ended early"));
    }
    let (head, rest) = r.split_at(N);
    *r = rest;
    Ok(head.try_into().expect("split_at guarantees length"))
}

fn read_u32(r: &mut &[u8]) -> Result<u32, CheckpointError> {
    Ok(u32::from_le_bytes(read_exact_array::<4>(r)?))
}

fn read_u64(r: &mut &[u8]) -> Result<u64, CheckpointError> {
    Ok(u64::from_le_bytes(read_exact_array::<8>(r)?))
}

fn read_f32(r: &mut &[u8]) -> Result<f32, CheckpointError> {
    Ok(f32::from_le_bytes(read_exact_array::<4>(r)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn scratch_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "vehigan-ckpt-test-{}-{tag}-{n}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn quick_wgan() -> Wgan {
        let config = WganConfig {
            noise_dim: 8,
            layers: 3,
            epochs: 1,
            batch_size: 16,
            n_critic: 2,
            ..WganConfig::default()
        };
        Wgan::new(config)
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_preserves_scores_and_history() {
        let dir = scratch_dir("roundtrip");
        let store = CheckpointStore::open(&dir).unwrap();
        let mut wgan = quick_wgan();
        let x = vehigan_tensor::init::rand_uniform(
            &[32, 10, 12, 1],
            -0.5,
            0.5,
            &mut vehigan_tensor::init::seeded_rng(0),
        );
        wgan.train(&x);
        store.save_member(&wgan).unwrap();
        let back = store.load_member(*wgan.config()).unwrap();
        assert_eq!(wgan.score_batch(&x), back.score_batch(&x));
        assert_eq!(wgan.history(), back.history());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncation_is_a_typed_error() {
        let dir = scratch_dir("trunc");
        let store = CheckpointStore::open(&dir).unwrap();
        let wgan = quick_wgan();
        store.save_member(&wgan).unwrap();
        let path = store.member_path(&wgan.config().id());
        let bytes = fs::read(&path).unwrap();
        for keep in [5, 19, bytes.len() / 2, bytes.len() - 1] {
            fs::write(&path, &bytes[..keep]).unwrap();
            let err = store.load_member(*wgan.config()).unwrap_err();
            assert!(
                matches!(err, CheckpointError::Truncated { .. }),
                "keep={keep}: got {err:?}"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_is_a_checksum_mismatch() {
        let dir = scratch_dir("flip");
        let store = CheckpointStore::open(&dir).unwrap();
        let wgan = quick_wgan();
        store.save_member(&wgan).unwrap();
        let path = store.member_path(&wgan.config().id());
        let mut bytes = fs::read(&path).unwrap();
        let mid = 20 + (bytes.len() - 20) / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            store.load_member(*wgan.config()),
            Err(CheckpointError::ChecksumMismatch { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_member_is_io_error() {
        let dir = scratch_dir("missing");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(matches!(
            store.load_member(*quick_wgan().config()),
            Err(CheckpointError::Io(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_roundtrip() {
        let dir = scratch_dir("manifest");
        let store = CheckpointStore::open(&dir).unwrap();
        assert_eq!(store.read_manifest().unwrap(), None);
        let manifest = Manifest {
            fingerprint: 0xDEAD_BEEF_1234_5678,
            done: vec!["z8-l4-e3-s0".into(), "z8-l4-e6-s0".into()],
            quarantined: vec![("z16-l4-e3-s1".into(), "diverged:\tnon-finite loss".into())],
        };
        store.write_manifest(&manifest).unwrap();
        let back = store.read_manifest().unwrap().unwrap();
        assert_eq!(back.fingerprint, manifest.fingerprint);
        assert_eq!(back.done, manifest.done);
        assert_eq!(back.quarantined.len(), 1);
        assert_eq!(back.quarantined[0].0, "z16-l4-e3-s1");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn grid_fingerprint_distinguishes_grids() {
        let a = grid_fingerprint(&GridConfig::tiny());
        let b = grid_fingerprint(&GridConfig::quick());
        assert_ne!(a, b);
        assert_eq!(a, grid_fingerprint(&GridConfig::tiny()));
    }
}
