//! Integration tests for the fault-tolerant training runtime: crash-safe
//! checkpoints, kill/resume of an interrupted grid run, divergence
//! quarantine, and degraded ensemble scoring.

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use vehigan_core::{
    CheckpointError, CheckpointStore, CriticMember, EnsembleError, GridConfig, ModelZoo, VehiGan,
    Wgan, WganConfig, ZooTrainOptions,
};
use vehigan_features::WindowDataset;
use vehigan_tensor::init::{rand_uniform, seeded_rng};
use vehigan_tensor::Tensor;
use vehigan_vasp::Attack;

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("vehigan-ft-test-{}-{tag}-{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn benign(n: usize, seed: u64) -> Tensor {
    let mut rng = seeded_rng(seed);
    let base = rand_uniform(&[n, 1], -0.2, 0.2, &mut rng);
    let mut data = Vec::with_capacity(n * 120);
    for i in 0..n {
        for j in 0..120 {
            data.push(base.as_slice()[i] + 0.05 * (j as f32 * 0.4).cos());
        }
    }
    Tensor::from_vec(data, &[n, 10, 12, 1])
}

fn synthetic_validation(seed: u64) -> Vec<(Attack, WindowDataset)> {
    let mut rng = seeded_rng(seed);
    let b = benign(40, seed);
    let garbage = rand_uniform(&[40, 10, 12, 1], -1.0, 1.0, &mut rng);
    let mut data = b.as_slice().to_vec();
    data.extend_from_slice(garbage.as_slice());
    let x = Tensor::from_vec(data, &[80, 10, 12, 1]);
    let labels: Vec<bool> = (0..80).map(|i| i >= 40).collect();
    let vehicles = vec![vehigan_sim::VehicleId(0); 80];
    vec![(
        Attack::by_name("RandomSpeed").unwrap(),
        WindowDataset {
            x,
            labels,
            vehicles,
        },
    )]
}

/// ADS ranking of a zoo after pre-evaluation: `(config id, ADS)` in
/// `top_m(len)` order.
fn ads_ranking(mut zoo: ModelZoo) -> Vec<(String, f64)> {
    zoo.pre_evaluate(&synthetic_validation(11));
    let order = zoo.top_m(zoo.len());
    order
        .into_iter()
        .map(|i| {
            let e = &zoo.entries()[i];
            (e.wgan.config().id(), e.ads)
        })
        .collect()
}

#[test]
fn interrupted_grid_run_resumes_to_identical_ads_ranking() {
    let train = benign(96, 0);
    let grid = GridConfig::tiny();
    let dir = scratch_dir("resume");

    // Reference: one uninterrupted run, no checkpointing.
    let reference = ModelZoo::train_grid(&grid, &train, &ZooTrainOptions::new(1))
        .unwrap()
        .zoo;
    let want = ads_ranking(reference);

    // "Killed" run: stop after the first training group, leaving the
    // manifest naming only that group's members.
    let mut options = ZooTrainOptions::new(1);
    options.checkpoint_dir = Some(dir.clone());
    options.stop_after_groups = Some(1);
    let partial = ModelZoo::train_grid(&grid, &train, &options).unwrap();
    assert!(
        !partial.complete,
        "stop_after_groups must interrupt the run"
    );
    assert!(partial.zoo.len() < grid.len());

    // Resumed run: same directory, no stop. Finished members load from
    // disk; the rest train now.
    let mut options = ZooTrainOptions::new(1);
    options.checkpoint_dir = Some(dir.clone());
    let resumed = ModelZoo::train_grid(&grid, &train, &options).unwrap();
    assert!(resumed.complete);
    assert_eq!(
        resumed.resumed,
        partial.zoo.len(),
        "persisted members must load, not retrain"
    );
    assert_eq!(resumed.zoo.len(), grid.len());

    // The acceptance bar: identical pre-evaluation ADS ranking.
    let got = ads_ranking(resumed.zoo);
    assert_eq!(
        got, want,
        "resumed zoo must rank identically to an uninterrupted run"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn completed_run_is_a_pure_reload() {
    let train = benign(96, 0);
    let grid = GridConfig::tiny();
    let dir = scratch_dir("reload");

    let mut options = ZooTrainOptions::new(2);
    options.checkpoint_dir = Some(dir.clone());
    let first = ModelZoo::train_grid(&grid, &train, &options).unwrap();
    assert!(first.complete);
    assert_eq!(first.resumed, 0);

    let second = ModelZoo::train_grid(&grid, &train, &options).unwrap();
    assert_eq!(
        second.resumed,
        grid.len(),
        "second run must load everything"
    );
    let probe = benign(8, 3);
    for (a, b) in first.zoo.entries().iter().zip(second.zoo.entries()) {
        assert_eq!(a.wgan.score_batch(&probe), b.wgan.score_batch(&probe));
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn manifest_from_a_different_grid_is_rejected() {
    let train = benign(96, 0);
    let dir = scratch_dir("gridswap");

    let mut options = ZooTrainOptions::new(1);
    options.checkpoint_dir = Some(dir.clone());
    options.stop_after_groups = Some(1);
    ModelZoo::train_grid(&GridConfig::tiny(), &train, &options).unwrap();

    // Same directory, different grid: typed mismatch, not silent reuse.
    let other = GridConfig {
        noise_dims: vec![4],
        ..GridConfig::tiny()
    };
    match ModelZoo::train_grid(&other, &train, &options) {
        Err(vehigan_core::ZooError::Checkpoint(CheckpointError::ManifestMismatch { .. })) => {}
        other => panic!("expected ManifestMismatch, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_checkpoints_yield_typed_errors() {
    let dir = scratch_dir("corrupt");
    let store = CheckpointStore::open(&dir).unwrap();
    let config = WganConfig {
        noise_dim: 8,
        layers: 3,
        epochs: 1,
        batch_size: 16,
        n_critic: 1,
        ..WganConfig::default()
    };
    let mut wgan = Wgan::new(config);
    wgan.train(&benign(32, 1));
    store.save_member(&wgan).unwrap();
    let path = store.member_path(&config.id());
    let pristine = fs::read(&path).unwrap();

    // Truncation at several depths.
    for keep in [3, 12, pristine.len() / 3, pristine.len() - 2] {
        fs::write(&path, &pristine[..keep]).unwrap();
        assert!(
            matches!(
                store.load_member(config),
                Err(CheckpointError::Truncated { .. })
            ),
            "keep={keep}"
        );
    }

    // A single flipped bit deep in the payload.
    let mut flipped = pristine.clone();
    let mid = 20 + (flipped.len() - 20) * 2 / 3;
    flipped[mid] ^= 0x01;
    fs::write(&path, &flipped).unwrap();
    assert!(matches!(
        store.load_member(config),
        Err(CheckpointError::ChecksumMismatch { .. })
    ));

    // Wrong magic.
    let mut wrong_magic = pristine.clone();
    wrong_magic[0] = b'X';
    fs::write(&path, &wrong_magic).unwrap();
    assert!(matches!(
        store.load_member(config),
        Err(CheckpointError::BadMagic)
    ));

    // Intact bytes still load after all that.
    fs::write(&path, &pristine).unwrap();
    let restored = store.load_member(config).unwrap();
    let probe = benign(4, 2);
    assert_eq!(restored.score_batch(&probe), wgan.score_batch(&probe));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn nan_injection_triggers_deterministic_rollback_and_retry() {
    let x = benign(48, 5);
    let config = WganConfig {
        noise_dim: 8,
        layers: 3,
        epochs: 3,
        batch_size: 16,
        n_critic: 1,
        seed: 77,
        ..WganConfig::default()
    };
    let run = |inject: bool| -> (usize, Vec<f32>) {
        let mut wgan = Wgan::new(config);
        if inject {
            wgan.inject_training_fault(0, 1);
        }
        let report = wgan
            .train_epochs_checked(&x, 3, &vehigan_core::SentinelPolicy::default())
            .unwrap();
        (report.rollbacks, wgan.score_batch(&x))
    };
    let (rollbacks_a, scores_a) = run(true);
    let (rollbacks_b, scores_b) = run(true);
    assert_eq!(rollbacks_a, 1, "one injected fault, one rollback");
    assert_eq!(
        (rollbacks_a, &scores_a),
        (rollbacks_b, &scores_b),
        "recovery must be deterministic"
    );
    for s in &scores_a {
        assert!(s.is_finite(), "recovered model must score finitely");
    }
    // The reseeded retry takes a different trajectory than a clean run.
    let (_, clean) = run(false);
    assert_ne!(clean, scores_a, "reseed must change the trajectory");
}

#[test]
fn zoo_with_quarantined_member_still_scores_degraded() {
    // Train a small pool, quarantine one deployed member, and verify the
    // ensemble still detects with the healthy subset (healthy ≥ k).
    let train = benign(96, 0);
    let report =
        ModelZoo::train_grid(&GridConfig::tiny(), &train, &ZooTrainOptions::new(2)).unwrap();
    let mut zoo = report.zoo;
    zoo.pre_evaluate(&synthetic_validation(13));
    let selected = zoo.top_m(3);
    let members: Vec<CriticMember> = zoo
        .take_models(&selected)
        .into_iter()
        .map(|e| CriticMember::calibrate(e.wgan, e.ads, &train, 99.0).unwrap())
        .collect();
    let mut vehigan = VehiGan::new(members, 2, 7).unwrap();

    vehigan.quarantine_member(0).unwrap();
    let x = benign(20, 9);
    // healthy = 2 ≥ k = 2: scoring succeeds using only healthy members.
    let ens = vehigan.score_batch(&x).unwrap();
    assert_eq!(ens.members, vec![1, 2]);
    assert!(ens.scores.iter().all(|s| s.is_finite()));

    // One more quarantine starves the ensemble: typed error, no panic.
    vehigan.quarantine_member(2).unwrap();
    assert_eq!(
        vehigan.score_batch(&x).unwrap_err(),
        EnsembleError::InsufficientHealthy { healthy: 1, k: 2 }
    );
}

#[test]
fn quarantine_survives_resume() {
    // A group that diverges unrecoverably is recorded in the manifest; a
    // resumed run carries the quarantine records instead of retraining the
    // doomed group.
    let train = benign(64, 0);
    let dir = scratch_dir("qresume");
    let mut options = ZooTrainOptions::new(1);
    options.checkpoint_dir = Some(dir.clone());
    options.fault_hook = Some(Arc::new(|wgan: &mut Wgan| {
        if wgan.config().noise_dim == 8 {
            for attempt in 0..8 {
                wgan.inject_training_fault(attempt, 0);
            }
        }
    }));
    let first = ModelZoo::train_grid(&GridConfig::tiny(), &train, &options).unwrap();
    assert_eq!(first.quarantined.len(), 2);

    // Resume without the fault hook: the quarantine must come from the
    // manifest, not from re-diverging.
    let mut options = ZooTrainOptions::new(1);
    options.checkpoint_dir = Some(dir.clone());
    let second = ModelZoo::train_grid(&GridConfig::tiny(), &train, &options).unwrap();
    assert_eq!(second.quarantined.len(), 2);
    for q in &second.quarantined {
        assert!(
            matches!(q.reason, vehigan_core::QuarantineReason::Recorded(_)),
            "expected manifest-carried quarantine, got {:?}",
            q.reason
        );
    }
    assert_eq!(second.resumed, second.zoo.len());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn retry_quarantined_retrains_with_a_fresh_seed() {
    // First run: the noise_dim=8 group diverges past the retry budget and
    // is quarantined in the manifest. A resume with `retry_quarantined`
    // (and the fault gone) must retrain exactly that group on a fresh
    // trajectory and return a full zoo under the original member ids.
    let train = benign(64, 0);
    let grid = GridConfig::tiny();
    let dir = scratch_dir("qretry");
    let mut options = ZooTrainOptions::new(1);
    options.checkpoint_dir = Some(dir.clone());
    options.fault_hook = Some(Arc::new(|wgan: &mut Wgan| {
        if wgan.config().noise_dim == 8 {
            for attempt in 0..8 {
                wgan.inject_training_fault(attempt, 0);
            }
        }
    }));
    let first = ModelZoo::train_grid(&grid, &train, &options).unwrap();
    assert_eq!(first.quarantined.len(), 2);

    // Reference ids from an untouched full run: retry must not change
    // member identity.
    let reference = ModelZoo::train_grid(&grid, &train, &ZooTrainOptions::new(1))
        .unwrap()
        .zoo;
    let want_ids: Vec<String> = reference
        .entries()
        .iter()
        .map(|e| e.wgan.config().id())
        .collect();

    let mut options = ZooTrainOptions::new(1);
    options.checkpoint_dir = Some(dir.clone());
    options.retry_quarantined = true;
    let retried = ModelZoo::train_grid(&grid, &train, &options).unwrap();
    assert!(retried.complete);
    assert!(
        retried.quarantined.is_empty(),
        "retry must clear the quarantine"
    );
    assert_eq!(retried.zoo.len(), grid.len());
    let got_ids: Vec<String> = retried
        .zoo
        .entries()
        .iter()
        .map(|e| e.wgan.config().id())
        .collect();
    assert_eq!(
        got_ids, want_ids,
        "member ids must stay stable across retry"
    );

    // The retried members trained on a salted trajectory — different
    // weights than a clean same-seed run, proving the fresh seed was used.
    let probe = benign(8, 3);
    for (r, e) in reference.entries().iter().zip(retried.zoo.entries()) {
        if e.wgan.config().noise_dim == 8 {
            assert_ne!(
                r.wgan.score_batch(&probe),
                e.wgan.score_batch(&probe),
                "retried member must come from a reseeded run"
            );
        } else {
            assert_eq!(
                r.wgan.score_batch(&probe),
                e.wgan.score_batch(&probe),
                "untouched members must be bit-identical resumes"
            );
        }
    }

    // A further resume without the flag is a pure reload of the now-full
    // manifest.
    let mut options = ZooTrainOptions::new(1);
    options.checkpoint_dir = Some(dir.clone());
    let reloaded = ModelZoo::train_grid(&grid, &train, &options).unwrap();
    assert_eq!(reloaded.resumed, grid.len());
    assert!(reloaded.quarantined.is_empty());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn mid_member_kill_resume_is_bitwise_identical() {
    // The headline guarantee of the v2 checkpoint format: killing training
    // at ANY epoch boundary and resuming from the partial checkpoint must
    // reproduce the uninterrupted run bit for bit — critic weights,
    // history, and the full training state (generator, optimizer caches,
    // spectral vectors, RNG cursor).
    let x = benign(48, 5);
    let config = WganConfig {
        noise_dim: 8,
        layers: 3,
        epochs: 4,
        batch_size: 16,
        n_critic: 1,
        seed: 21,
        ..WganConfig::default()
    };
    let policy = vehigan_core::SentinelPolicy::default();

    let mut reference = Wgan::new(config);
    reference
        .train_epochs_resumable(&x, 4, &policy, |_| true)
        .unwrap();

    for kill_after in 1..=3 {
        let dir = scratch_dir("midkill");
        let store = CheckpointStore::open(&dir).unwrap();
        let mut victim = Wgan::new(config);
        let mut seen = 0usize;
        let report = victim
            .train_epochs_resumable(&x, 4, &policy, |w| {
                store.save_partial("grp", w).unwrap();
                seen += 1;
                seen < kill_after
            })
            .unwrap();
        assert!(report.stopped, "kill_after={kill_after}");
        assert_eq!(report.epochs, kill_after);
        drop(victim); // the "process" dies; only the partial survives

        let mut resumed = store.load_partial("grp", config).unwrap();
        assert_eq!(resumed.history().len(), kill_after);
        resumed
            .train_epochs_resumable(&x, 4 - kill_after, &policy, |_| true)
            .unwrap();

        assert_eq!(
            resumed.critic_bytes(),
            reference.critic_bytes(),
            "kill_after={kill_after}: critic bytes must match the uninterrupted run"
        );
        assert_eq!(
            resumed.history(),
            reference.history(),
            "kill_after={kill_after}: history must match"
        );
        assert_eq!(
            resumed.training_state_bytes(),
            reference.training_state_bytes(),
            "kill_after={kill_after}: full training state must match"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn zoo_kill_resume_matrix_is_bitwise_identical() {
    // Grid-level version of the same guarantee: `stop_after_epochs` lands
    // the kill mid-member / mid-group / at a group boundary, and the
    // resumed grid must be bitwise identical to an uninterrupted run.
    // GridConfig::tiny() trains 2 groups of 6 shared epochs each; the kill
    // sites cover: mid first member (1), between member budgets (4), and
    // inside the second group (7).
    let train = benign(64, 0);
    let grid = GridConfig::tiny();

    let reference = ModelZoo::train_grid(&grid, &train, &ZooTrainOptions::new(1))
        .unwrap()
        .zoo;

    for kill_after in [1usize, 4, 7] {
        let dir = scratch_dir("zookill");
        let mut options = ZooTrainOptions::new(1);
        options.checkpoint_dir = Some(dir.clone());
        options.stop_after_epochs = Some(kill_after);
        let killed = ModelZoo::train_grid(&grid, &train, &options).unwrap();
        assert!(!killed.complete, "kill_after={kill_after}");

        let mut options = ZooTrainOptions::new(1);
        options.checkpoint_dir = Some(dir.clone());
        let resumed = ModelZoo::train_grid(&grid, &train, &options).unwrap();
        assert!(resumed.complete);
        assert_eq!(resumed.zoo.len(), grid.len());

        let mut got: Vec<_> = resumed.zoo.entries().iter().collect();
        got.sort_by_key(|e| e.grid_index);
        let mut want: Vec<_> = reference.entries().iter().collect();
        want.sort_by_key(|e| e.grid_index);
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.wgan.config().id(), w.wgan.config().id());
            assert_eq!(
                g.wgan.history(),
                w.wgan.history(),
                "kill_after={kill_after}: history differs for {}",
                g.wgan.config().id()
            );
            assert!(
                g.wgan.critic_bytes() == w.wgan.critic_bytes(),
                "kill_after={kill_after}: critic bytes differ for {} — resume is not bitwise identical",
                g.wgan.config().id()
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn partial_checkpoints_round_trip_and_clear() {
    let dir = scratch_dir("partial");
    let store = CheckpointStore::open(&dir).unwrap();
    let config = WganConfig {
        noise_dim: 8,
        layers: 3,
        epochs: 2,
        batch_size: 16,
        n_critic: 1,
        seed: 9,
        ..WganConfig::default()
    };
    let mut wgan = Wgan::new(config);
    wgan.train(&benign(32, 1));

    assert!(!store.has_partial("g"));
    store.save_partial("g", &wgan).unwrap();
    assert!(store.has_partial("g"));

    let restored = store.load_partial("g", config).unwrap();
    assert_eq!(restored.history(), wgan.history());
    assert_eq!(restored.critic_bytes(), wgan.critic_bytes());
    assert_eq!(restored.training_state_bytes(), wgan.training_state_bytes());

    // A partial written under a different run seed (quarantine retry) is
    // an id mismatch, not a silent resume of the stale trajectory.
    let stale = WganConfig { seed: 10, ..config };
    assert!(matches!(
        store.load_partial("g", stale),
        Err(CheckpointError::IdMismatch { .. })
    ));

    // A v1-style file (no training state) cannot seed a resume.
    store.save_member(&wgan).unwrap();
    fs::copy(
        store.member_path(&config.id()),
        store.partial_path("v2-member"),
    )
    .unwrap();
    assert!(matches!(
        store.load_partial("v2-member", config),
        Err(CheckpointError::Corrupt(_))
    ));

    store.remove_partial("g").unwrap();
    assert!(!store.has_partial("g"));
    store.remove_partial("g").unwrap(); // absent: still Ok
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn v1_checkpoint_fixture_still_loads() {
    // Wire-format back-compat: a checkpoint written by the v1 code (the
    // committed fixture) must still load for inference under the v2
    // reader, reproducing exactly the model that wrote it.
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/v1-z8-l3-e1-s0.ckpt"
    );
    let bytes = fs::read(fixture).expect("v1 fixture present");
    assert_eq!(&bytes[..4], b"VZCK");
    assert_eq!(&bytes[4..8], &1u32.to_le_bytes(), "fixture must be v1");

    let config = WganConfig {
        noise_dim: 8,
        layers: 3,
        epochs: 1,
        batch_size: 16,
        n_critic: 1,
        seed: 0,
        ..WganConfig::default()
    };
    let dir = scratch_dir("v1compat");
    let store = CheckpointStore::open(&dir).unwrap();
    fs::write(store.member_path(&config.id()), &bytes).unwrap();
    let restored = store.load_member(config).unwrap();

    // The fixture was produced by training this exact config on this
    // exact data; the deterministic retrain must agree bit for bit.
    let mut retrained = Wgan::new(config);
    retrained.train(&benign(32, 1));
    assert_eq!(restored.critic_bytes(), retrained.critic_bytes());
    assert_eq!(restored.history(), retrained.history());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn short_garbage_file_is_bad_magic_not_truncated() {
    // A sub-20-byte file whose available prefix already contradicts the
    // magic is diagnosed as BadMagic (wrong file), not Truncated (torn
    // write) — the two faults have different remediations.
    let dir = scratch_dir("badmagic");
    let store = CheckpointStore::open(&dir).unwrap();
    let config = WganConfig {
        noise_dim: 8,
        layers: 3,
        epochs: 1,
        batch_size: 16,
        n_critic: 1,
        ..WganConfig::default()
    };
    let path = store.member_path(&config.id());

    fs::write(&path, b"hello").unwrap();
    assert!(matches!(
        store.load_member(config),
        Err(CheckpointError::BadMagic)
    ));

    // A short file that IS a valid magic prefix stays a truncation.
    fs::write(&path, b"VZ").unwrap();
    assert!(matches!(
        store.load_member(config),
        Err(CheckpointError::Truncated { .. })
    ));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn calibrate_filters_non_finite_scores() {
    let config = WganConfig {
        noise_dim: 8,
        layers: 3,
        epochs: 1,
        batch_size: 16,
        n_critic: 1,
        seed: 4,
        ..WganConfig::default()
    };
    let mut wgan = Wgan::new(config);
    wgan.train(&benign(32, 1));
    let clone = Wgan::from_critic_bytes(config, &wgan.critic_bytes()).unwrap();

    // Poison one calibration window with NaN: its score is dropped, the
    // threshold comes from the finite remainder.
    let mut data = benign(8, 2).as_slice().to_vec();
    data[0] = f32::NAN;
    let poisoned = Tensor::from_vec(data, &[8, 10, 12, 1]);
    let member = CriticMember::calibrate(wgan, 0.5, &poisoned, 99.0).unwrap();
    assert!(member.threshold.is_finite());

    // All-NaN calibration data: typed error, not a NaN threshold.
    let all_nan = Tensor::from_vec(vec![f32::NAN; 2 * 120], &[2, 10, 12, 1]);
    assert!(matches!(
        CriticMember::calibrate(clone, 0.5, &all_nan, 99.0),
        Err(EnsembleError::NoFiniteCalibrationScores { .. })
    ));
}

#[test]
fn wrong_snapshot_shape_is_a_typed_error() {
    let config = WganConfig {
        noise_dim: 8,
        layers: 3,
        epochs: 1,
        batch_size: 16,
        n_critic: 1,
        seed: 6,
        ..WganConfig::default()
    };
    let train = benign(32, 1);
    let mut wgan = Wgan::new(config);
    wgan.train(&train);
    let member = CriticMember::calibrate(wgan, 0.5, &train, 99.0).unwrap();
    let mut vehigan = VehiGan::new(vec![member], 1, 7).unwrap();

    // A multi-snapshot batch through the single-vehicle API: typed error
    // carrying the offending shape, not an abort of the whole MDS.
    let bad = Tensor::zeros(&[2, 10, 12, 1]);
    match vehigan.check_vehicle(vehigan_sim::VehicleId(3), &bad) {
        Err(EnsembleError::BadSnapshotShape { shape }) => {
            assert_eq!(shape, vec![2, 10, 12, 1]);
        }
        other => panic!("expected BadSnapshotShape, got {other:?}"),
    }

    // The well-shaped call still works afterwards.
    let good = benign(1, 8);
    vehigan
        .check_vehicle(vehigan_sim::VehicleId(3), &good)
        .unwrap();
}
