//! The campaign data plane's contract: parallel, cache-aware assembly and
//! scoring are *bitwise* identical to the serial monolithic path — same
//! window bytes, labels, vehicle ids, and member scores, for every attack
//! in the full Table III catalog.

use vehigan_core::{score_matrix, CampaignPlane, Wgan, WganConfig};
use vehigan_features::{build_windows, fit_scaler, WindowConfig, WindowDataset};
use vehigan_sim::{SimConfig, TrafficSimulator, VehicleTrace};
use vehigan_vasp::{Attack, DatasetBuilder, DatasetConfig};

fn fleet() -> Vec<VehicleTrace> {
    TrafficSimulator::new(SimConfig {
        n_vehicles: 8,
        duration_s: 45.0,
        seed: 3,
        ..SimConfig::default()
    })
    .run()
}

fn assert_identical(got: &WindowDataset, want: &WindowDataset, ctx: &str) {
    assert_eq!(got.x.shape(), want.x.shape(), "{ctx}: shape");
    assert_eq!(got.x.as_slice(), want.x.as_slice(), "{ctx}: window bytes");
    assert_eq!(got.labels, want.labels, "{ctx}: labels");
    assert_eq!(got.vehicles, want.vehicles, "{ctx}: vehicle ids");
}

#[test]
fn full_catalog_campaign_is_bitwise_identical_to_serial() {
    let fleet = fleet();
    let window = WindowConfig {
        stride: 3,
        ..WindowConfig::default()
    };
    let builder = DatasetBuilder::new(&fleet, DatasetConfig::default());
    let scaler = fit_scaler(&builder.benign_dataset(), window.representation);
    let attacks = Attack::catalog();

    let plane = CampaignPlane::new(&fleet, DatasetConfig::default(), window, &scaler);
    let parallel = plane.campaign(&attacks);
    assert_eq!(parallel.len(), attacks.len());

    for (got, &attack) in parallel.iter().zip(&attacks) {
        let want = build_windows(&builder.attack_dataset(attack), window, &scaler);
        assert_identical(got, &want, &attack.name());
    }
    assert_identical(
        &plane.benign_windows(),
        &build_windows(&builder.benign_dataset(), window, &scaler),
        "benign",
    );
}

#[test]
fn parallel_score_cache_is_bitwise_identical_to_serial() {
    let fleet = fleet();
    let window = WindowConfig {
        stride: 3,
        ..WindowConfig::default()
    };
    let builder = DatasetBuilder::new(&fleet, DatasetConfig::default());
    let scaler = fit_scaler(&builder.benign_dataset(), window.representation);
    let plane = CampaignPlane::new(&fleet, DatasetConfig::default(), window, &scaler);

    // A few catalog attacks plus benign — the exact dataset list the bench
    // harness feeds score_matrix.
    let attacks: Vec<Attack> = Attack::catalog().into_iter().take(4).collect();
    let mut datasets = plane.campaign(&attacks);
    datasets.push(plane.benign_windows());
    let refs: Vec<&WindowDataset> = datasets.iter().collect();

    let train = plane.benign_windows();
    let wgans: Vec<Wgan> = (0..3)
        .map(|seed| {
            let mut w = Wgan::new(WganConfig {
                noise_dim: 8,
                layers: 3,
                epochs: 1,
                batch_size: 16,
                n_critic: 1,
                seed,
                ..WganConfig::default()
            });
            w.train(&train.x);
            w
        })
        .collect();
    let members: Vec<&Wgan> = wgans.iter().collect();

    let parallel = score_matrix(&members, &refs);
    for (mi, member) in members.iter().enumerate() {
        for (di, ds) in refs.iter().enumerate() {
            assert_eq!(
                parallel[mi][di],
                member.score_batch(&ds.x),
                "member {mi}, dataset {di}: scores must be bitwise identical"
            );
        }
    }
}
