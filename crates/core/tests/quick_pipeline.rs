//! Tier-1 integration test guarding the `--scale quick` path after the
//! blocked-GEMM kernel swap (ISSUE satellite): `Pipeline::run` at quick
//! scale must complete, and the AUROC ordering the paper relies on must
//! hold — the deployed ensemble beats the average of its members and is
//! not beaten by its best single member beyond seed-to-seed noise. (A
//! strict `ensemble >= best single` at quick scale is data-flaky: with
//! only a handful of validation attacks one member can edge out the
//! ensemble mean by ~0.01 AUROC on a lucky draw, which says nothing
//! about the kernels this test is guarding.)

use vehigan_core::{Pipeline, PipelineConfig};
use vehigan_metrics::auroc;

#[test]
fn quick_pipeline_completes_with_ensemble_at_least_best_single() {
    let config = PipelineConfig::quick();
    let (top_m, deploy_k) = (config.top_m, config.deploy_k);
    let p = Pipeline::run(config);

    // Completion: every stage ran and the deployment is well-formed.
    assert_eq!(p.selected.len(), top_m);
    assert_eq!(p.vehigan.m(), top_m);
    assert_eq!(p.vehigan.k(), deploy_k);
    assert!(!p.validation.is_empty());
    assert!(!p.test_fleet().is_empty());

    // AUROC ordering: mean AUROC across the validation attacks, full
    // ensemble (all m members, scored in parallel) vs each member alone.
    let all: Vec<usize> = (0..p.vehigan.m()).collect();
    let mean_auroc = |indices: &[usize]| -> f64 {
        let mut total = 0.0;
        for (_, ds) in &p.validation {
            let result = p.vehigan.score_with_members(indices, &ds.x).unwrap();
            total += auroc(&result.scores, &ds.labels);
        }
        total / p.validation.len() as f64
    };
    let ensemble = mean_auroc(&all);
    let singles: Vec<f64> = (0..p.vehigan.m()).map(|i| mean_auroc(&[i])).collect();
    let best_single = singles.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mean_single = singles.iter().sum::<f64>() / singles.len() as f64;
    assert!(
        ensemble + 1e-6 >= mean_single,
        "ensemble mean AUROC {ensemble:.4} fell below the member average {mean_single:.4}"
    );
    assert!(
        ensemble + 0.05 >= best_single,
        "ensemble mean AUROC {ensemble:.4} fell more than noise below best single member {best_single:.4}"
    );
    // And the quick-scale system is actually detecting, not degenerate.
    assert!(
        ensemble > 0.6,
        "quick-scale ensemble mean AUROC {ensemble:.4} is degenerate"
    );
}
