//! # vehigan-lite
//!
//! Lightweight critic inference for resource-constrained OBUs — the
//! substitute for the paper's TensorFlow-Lite deployment (§V-D, Fig 8b).
//!
//! A trained float critic is compiled once ([`LiteCritic::compile`]) into:
//!
//! - **int8 weights** with per-tensor symmetric scales ([`quant`]) — WGAN
//!   weight clipping bounds the ranges, so the quantization step is tiny;
//! - **fused kernels** (conv + LeakyReLU in one pass);
//! - **static arenas** — per-inference scoring performs zero heap
//!   allocation.
//!
//! The result reproduces Fig 8's shape: lite inference is consistently
//! faster than the float path, ships 4× smaller weights, and sits far
//! below the 100 ms BSM interval with only a mild slope in critic depth.
//! (The paper's 100× Keras→TFLite gap is mostly interpreter overhead;
//! with both paths compiled Rust the ratio compresses while the ordering
//! and the latency-budget claims hold — see EXPERIMENTS.md.)
//!
//! # Example
//!
//! See [`LiteCritic`].

#![warn(missing_docs)]

mod critic;
pub mod ensemble;
pub mod quant;

pub use critic::{CompileError, LiteCritic};
pub use ensemble::Int8Ensemble;
