//! The fused int8 multi-member inference backend.
//!
//! [`Int8Ensemble`] compiles `m` same-topology critics into one packed
//! int8 artifact and scores any sampled subset of them through **one
//! fused i8 GEMM per layer** instead of `k` separate model walks:
//!
//! - **per-channel symmetric weight quantization** — each output channel
//!   of every conv kernel / dense matrix gets its own scale
//!   ([`crate::quant::PerChannelQuantized`]);
//! - **range-guarded activation scales** — per member and per layer, a
//!   floor scale is calibrated from representative windows pushed through
//!   the dequantized float reference; at runtime each window whose
//!   activations exceed the calibrated range widens its own scale
//!   (`max(calibrated, window_max/127)`) instead of clipping, so
//!   out-of-distribution inputs — the attack windows the detector
//!   exists for — keep their score ranking. A window's scale depends
//!   only on that window, so scores are batch-independent;
//! - **packed multi-member weights** — every member's weights are packed
//!   once at compile time into the [`vehigan_tensor::gemm::PackedI8`]
//!   strip layout, so inference never repacks (the f32 path packs `B` on
//!   every call);
//! - **fused layer sweep** — layer 1 quantizes the shared window batch
//!   once and runs a single [`vehigan_tensor::gemm::gemm_i8_fused`] call
//!   over all deployed members' packed weights; deeper layers quantize
//!   each member's activations and sweep them through the same fused
//!   call.
//!
//! # Determinism
//!
//! The i8×i8→i32 accumulation is exact integer arithmetic, bitwise
//! identical between the portable and AVX2 kernels; the dequantize /
//! bias / activation / requantize stages are plain scalar f32 code shared
//! by every ISA. The whole int8 scoring pipeline is therefore **bitwise
//! reproducible across machines** — stronger than the f32 path, whose
//! AVX2 FMA kernels are only bit-stable per machine.

use crate::critic::CompileError;
use crate::quant::{activation_scale, quantize_activations, PerChannelQuantized};
use vehigan_tensor::gemm::{gemm, gemm_i8_fused, PackedI8};
use vehigan_tensor::serialize::ModelSnapshot;

/// One member's quantized parameters for one fused op.
struct OpMember {
    /// Packed int8 weights `[kk, cout]` / `[in, out]`.
    pack: PackedI8,
    /// Per-output-channel weight scales.
    w_scales: Vec<f32>,
    /// Float bias (never quantized — it adds once per output, not per
    /// `k`-step, so f32 costs nothing and loses nothing).
    bias: Vec<f32>,
    /// Fused LeakyReLU slope, if the next source layer was one.
    alpha: Option<f32>,
    /// Calibrated floor scale for this op's *input* activations (the
    /// runtime range guard may widen it per window, never narrow it).
    in_scale: f32,
    /// Dequantized weights, kept only between parsing and calibration.
    deq: Vec<f32>,
}

/// One fused op shared by all members (topology is identical; only the
/// per-member parameters differ).
enum FusedOp {
    /// Same-padding conv `[h, w, cin] → [h, w, cout]`.
    Conv {
        h: usize,
        w: usize,
        cin: usize,
        cout: usize,
        kh: usize,
        kw: usize,
        pad_top: usize,
        pad_left: usize,
        members: Vec<OpMember>,
    },
    /// Dense `in → out` (weights stay `[in, out]` — exactly the GEMM
    /// orientation, no transpose needed).
    Dense {
        in_dim: usize,
        out_dim: usize,
        members: Vec<OpMember>,
    },
}

impl FusedOp {
    fn members(&self) -> &[OpMember] {
        match self {
            FusedOp::Conv { members, .. } | FusedOp::Dense { members, .. } => members,
        }
    }

    fn members_mut(&mut self) -> &mut Vec<OpMember> {
        match self {
            FusedOp::Conv { members, .. } | FusedOp::Dense { members, .. } => members,
        }
    }

    /// Output length per input snapshot.
    fn out_len(&self) -> usize {
        match self {
            FusedOp::Conv { h, w, cout, .. } => h * w * cout,
            FusedOp::Dense { out_dim, .. } => *out_dim,
        }
    }

    /// Input length per input snapshot.
    fn in_len(&self) -> usize {
        match self {
            FusedOp::Conv { h, w, cin, .. } => h * w * cin,
            FusedOp::Dense { in_dim, .. } => *in_dim,
        }
    }

    /// GEMM shared dimension.
    fn kk(&self) -> usize {
        match self {
            FusedOp::Conv { kh, kw, cin, .. } => kh * kw * cin,
            FusedOp::Dense { in_dim, .. } => *in_dim,
        }
    }

    /// GEMM row count for a batch of `n` snapshots.
    fn gemm_rows(&self, n: usize) -> usize {
        match self {
            FusedOp::Conv { h, w, .. } => n * h * w,
            FusedOp::Dense { .. } => n,
        }
    }

    /// Structural fingerprint for topology equality across members.
    fn signature(&self) -> (usize, usize, usize, usize, usize, usize) {
        match self {
            FusedOp::Conv {
                h,
                w,
                cin,
                cout,
                kh,
                kw,
                ..
            } => (*h, *w, *cin, *cout, *kh, *kw),
            FusedOp::Dense {
                in_dim, out_dim, ..
            } => (0, 0, *in_dim, *out_dim, 0, 0),
        }
    }
}

/// Gathers a same-padding conv input into im2col rows.
///
/// Row `(img·h + oy)·w + ox` holds the `[ky][kx][ic]` patch around output
/// pixel `(oy, ox)`, matching the `[ky·kw·ic, oc]` weight layout.
/// Out-of-bounds taps stay `Default` (0 — exact for symmetric int8).
#[allow(clippy::too_many_arguments)]
fn im2col<T: Copy + Default>(
    src: &[T],
    n: usize,
    h: usize,
    w: usize,
    cin: usize,
    kh: usize,
    kw: usize,
    pad_top: usize,
    pad_left: usize,
    dst: &mut [T],
) {
    let kk = kh * kw * cin;
    debug_assert_eq!(src.len(), n * h * w * cin);
    debug_assert_eq!(dst.len(), n * h * w * kk);
    for img in 0..n {
        let src_img = &src[img * h * w * cin..(img + 1) * h * w * cin];
        for oy in 0..h {
            let ky_lo = pad_top.saturating_sub(oy);
            let ky_hi = kh.min(h + pad_top - oy);
            for ox in 0..w {
                let kx_lo = pad_left.saturating_sub(ox);
                let kx_hi = kw.min(w + pad_left - ox);
                let row = &mut dst[((img * h + oy) * w + ox) * kk..][..kk];
                // Zero only the clipped taps (a full-dst memset would
                // rewrite the whole gather buffer just to feed the edge
                // pixels); interior pixels skip this entirely.
                if ky_lo > 0 || ky_hi < kh || kx_lo > 0 || kx_hi < kw {
                    for v in row.iter_mut() {
                        *v = T::default();
                    }
                }
                // The in-range kx taps are contiguous in both src
                // (consecutive x) and dst (consecutive kx), so the whole
                // horizontal extent moves as one copy per ky.
                let span = (kx_hi - kx_lo) * cin;
                for ky in ky_lo..ky_hi {
                    let iy = oy + ky - pad_top;
                    let ix = ox + kx_lo - pad_left;
                    let src_off = (iy * w + ix) * cin;
                    let dst_off = (ky * kw + kx_lo) * cin;
                    row[dst_off..dst_off + span].copy_from_slice(&src_img[src_off..src_off + span]);
                }
            }
        }
    }
}

/// Dequantizes one window of GEMM accumulators:
/// `dst[r·cout + j] = acc[r·cout + j] · mult[j] + bias[j]`, optionally
/// through select-form LeakyReLU (`v > 0 ? v : α·v`).
///
/// Dispatches to an AVX-512 body that mirrors the scalar ops lane for
/// lane (i32→f32 convert, multiply, add, compare-blend — all with the
/// same IEEE rounding), so both paths are **bitwise identical** and
/// `VEHIGAN_FORCE_PORTABLE` stays a pure performance switch.
fn dequant_window(acc: &[i32], mult: &[f32], bias: &[f32], alpha: Option<f32>, dst: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if vehigan_tensor::gemm::avx512_available() {
        // SAFETY: guarded by cached runtime detection of avx512f.
        unsafe { dequant_window_avx512(acc, mult, bias, alpha, dst) };
        return;
    }
    dequant_window_portable(acc, mult, bias, alpha, dst);
}

/// Portable scalar body of [`dequant_window`].
fn dequant_window_portable(
    acc: &[i32],
    mult: &[f32],
    bias: &[f32],
    alpha: Option<f32>,
    dst: &mut [f32],
) {
    let cout = mult.len();
    match alpha {
        Some(alpha) => {
            for (row_acc, row_dst) in acc.chunks_exact(cout).zip(dst.chunks_exact_mut(cout)) {
                for ((d, &a), (&mu, &b)) in
                    row_dst.iter_mut().zip(row_acc).zip(mult.iter().zip(bias))
                {
                    let v = a as f32 * mu + b;
                    // Select-form LeakyReLU — a single blend per lane;
                    // the max+min form costs two maxnum NaN-checked ops.
                    *d = if v > 0.0 { v } else { alpha * v };
                }
            }
        }
        None => {
            for (row_acc, row_dst) in acc.chunks_exact(cout).zip(dst.chunks_exact_mut(cout)) {
                for ((d, &a), (&mu, &b)) in
                    row_dst.iter_mut().zip(row_acc).zip(mult.iter().zip(bias))
                {
                    *d = a as f32 * mu + b;
                }
            }
        }
    }
}

/// AVX-512 body of [`dequant_window`]: masked 16-lane chunks over each
/// `cout`-channel row. Every lane performs exactly the scalar sequence
/// (cvt, mul, add, ordered-greater blend), so the result is bitwise
/// identical to [`dequant_window_portable`] — including ±0 handling in
/// the LeakyReLU blend (`-0.0 > 0.0` is false in both forms).
///
/// # Safety
///
/// Callers must ensure the CPU supports AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn dequant_window_avx512(
    acc: &[i32],
    mult: &[f32],
    bias: &[f32],
    alpha: Option<f32>,
    dst: &mut [f32],
) {
    use std::arch::x86_64::*;
    let cout = mult.len();
    let zero = _mm512_setzero_ps();
    for (row_acc, row_dst) in acc.chunks_exact(cout).zip(dst.chunks_exact_mut(cout)) {
        let mut j = 0;
        while j < cout {
            let width = (cout - j).min(16);
            let mask: __mmask16 = if width == 16 {
                0xffff
            } else {
                (1u16 << width) - 1
            };
            let av = _mm512_maskz_loadu_epi32(mask, row_acc.as_ptr().add(j));
            let mv = _mm512_maskz_loadu_ps(mask, mult.as_ptr().add(j));
            let bv = _mm512_maskz_loadu_ps(mask, bias.as_ptr().add(j));
            // Separate mul + add (not FMA): the scalar body rounds twice.
            let v = _mm512_add_ps(_mm512_mul_ps(_mm512_cvtepi32_ps(av), mv), bv);
            let out = match alpha {
                Some(alpha) => {
                    let leak = _mm512_mul_ps(v, _mm512_set1_ps(alpha));
                    let pos = _mm512_cmp_ps_mask::<_CMP_GT_OQ>(v, zero);
                    _mm512_mask_mov_ps(leak, pos, v)
                }
                None => v,
            };
            _mm512_mask_storeu_ps(row_dst.as_mut_ptr().add(j), mask, out);
            j += 16;
        }
    }
}

/// Reusable runtime buffers (grow once, steady state allocates nothing).
#[derive(Default)]
struct Scratch {
    /// Quantized activations, member-major.
    q: Vec<i8>,
    /// im2col gather, member-major.
    col: Vec<i8>,
    /// i32 GEMM accumulators, member-major.
    acc: Vec<i32>,
    /// f32 activations ping-pong, member-major.
    act_a: Vec<f32>,
    act_b: Vec<f32>,
    /// Per-(member, window) effective activation scales for the current op.
    eff: Vec<f32>,
    /// Per-channel dequantization multipliers for the current window.
    mult: Vec<f32>,
}

fn grown<T: Copy + Default>(buf: &mut Vec<T>, len: usize) -> &mut [T] {
    if buf.len() < len {
        buf.resize(len, T::default());
    }
    &mut buf[..len]
}

/// A compiled fused int8 multi-member ensemble scorer.
///
/// # Examples
///
/// ```
/// use vehigan_tensor::{Sequential, Init, init::seeded_rng};
/// use vehigan_tensor::layers::{Conv2D, Padding, Activation, Flatten, Dense};
/// use vehigan_lite::Int8Ensemble;
///
/// let mut members = Vec::new();
/// for seed in 0..3u64 {
///     let mut rng = seeded_rng(seed);
///     let mut critic = Sequential::new();
///     critic.push(Conv2D::new(1, 8, (2, 2), Padding::Same, Init::HeUniform, &mut rng));
///     critic.push(Activation::leaky_relu(0.2));
///     critic.push(Flatten::new());
///     critic.push(Dense::new(10 * 12 * 8, 1, Init::XavierUniform, &mut rng));
///     members.push(critic.save());
/// }
/// let snaps: Vec<&_> = members.iter().collect();
/// let calibration = vec![0.1f32; 4 * 120]; // 4 representative windows
/// let mut fused = Int8Ensemble::compile(&snaps, (10, 12, 1), &calibration)?;
/// let window = vec![0.0f32; 120];
/// let mut scores = vec![0.0f32; 3];
/// fused.score_subset_into(&[0, 1, 2], &window, 1, &mut scores);
/// assert!(scores.iter().all(|s| s.is_finite()));
/// # Ok::<(), vehigan_lite::CompileError>(())
/// ```
pub struct Int8Ensemble {
    ops: Vec<FusedOp>,
    members: usize,
    input_len: usize,
    scratch: Scratch,
}

impl std::fmt::Debug for Int8Ensemble {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Int8Ensemble({} members, {} fused ops, input {} floats, {} packed weight bytes)",
            self.members,
            self.ops.len(),
            self.input_len,
            self.weight_bytes(),
        )
    }
}

/// Parses one member snapshot into per-op quantized parameters, checking
/// the same topology constraints as `LiteCritic`.
fn parse_member(
    snap: &ModelSnapshot,
    input_shape: (usize, usize, usize),
) -> Result<Vec<FusedOp>, CompileError> {
    let (h, w, mut c) = input_shape;
    let mut flat = h * w * c;
    let mut flattened = false;
    let mut ops: Vec<FusedOp> = Vec::new();
    let mut i = 0;
    while i < snap.layers.len() {
        let layer = &snap.layers[i];
        let fused_next = snap
            .layers
            .get(i + 1)
            .filter(|l| l.kind == "LeakyReLU")
            .map(|l| l.f32_attr("alpha"))
            .transpose()?;
        match layer.kind.as_str() {
            "Conv2D" => {
                let cin = layer.usize_attr("cin")?;
                let cout = layer.usize_attr("cout")?;
                let kh = layer.usize_attr("kh")?;
                let kw = layer.usize_attr("kw")?;
                let padding = layer.usize_attr("padding")?;
                if padding != 0 {
                    return Err(CompileError::UnsupportedLayer(
                        "Conv2D(valid) — int8 critics use same padding".into(),
                    ));
                }
                if cin != c {
                    return Err(CompileError::NotACritic("conv channel mismatch"));
                }
                let raw = layer.tensor("w")?.as_slice();
                let q = PerChannelQuantized::quantize(kh * kw * cin, cout, raw)?;
                let deq = q.dequantize();
                let member = OpMember {
                    pack: PackedI8::pack(kh * kw * cin, cout, &q.values),
                    w_scales: q.scales,
                    bias: layer.tensor("b")?.as_slice().to_vec(),
                    alpha: fused_next,
                    in_scale: 1.0,
                    deq,
                };
                if fused_next.is_some() {
                    i += 1;
                }
                ops.push(FusedOp::Conv {
                    h,
                    w,
                    cin,
                    cout,
                    kh,
                    kw,
                    pad_top: (kh - 1) / 2,
                    pad_left: (kw - 1) / 2,
                    members: vec![member],
                });
                c = cout;
                flat = h * w * c;
            }
            "Flatten" => {
                flattened = true;
            }
            "Dense" => {
                if !flattened && (h != 1 || w != 1) {
                    return Err(CompileError::NotACritic("dense before flatten"));
                }
                let in_dim = layer.usize_attr("in_dim")?;
                let out_dim = layer.usize_attr("out_dim")?;
                if in_dim != flat {
                    return Err(CompileError::NotACritic("dense input size mismatch"));
                }
                let raw = layer.tensor("w")?.as_slice();
                let q = PerChannelQuantized::quantize(in_dim, out_dim, raw)?;
                let deq = q.dequantize();
                let member = OpMember {
                    pack: PackedI8::pack(in_dim, out_dim, &q.values),
                    w_scales: q.scales,
                    bias: layer.tensor("b")?.as_slice().to_vec(),
                    alpha: fused_next,
                    in_scale: 1.0,
                    deq,
                };
                if fused_next.is_some() {
                    i += 1;
                }
                ops.push(FusedOp::Dense {
                    in_dim,
                    out_dim,
                    members: vec![member],
                });
                flat = out_dim;
                c = out_dim;
                flattened = true;
            }
            other => return Err(CompileError::UnsupportedLayer(other.to_string())),
        }
        i += 1;
    }
    if flat != 1 {
        return Err(CompileError::NotACritic("output is not a scalar"));
    }
    Ok(ops)
}

impl Int8Ensemble {
    /// Compiles same-topology critic snapshots into the fused int8
    /// representation, calibrating activation scales on `calibration`
    /// (flat `n × h·w·c` representative windows, at least one).
    ///
    /// # Errors
    ///
    /// Everything [`crate::LiteCritic::compile`] rejects, plus
    /// [`CompileError::NotACritic`] when members disagree on topology and
    /// [`CompileError::Quant`] when weights or calibration activations
    /// are non-finite.
    ///
    /// # Panics
    ///
    /// Panics if `snaps` or `calibration` is empty, or `calibration` is
    /// not a whole number of windows.
    pub fn compile(
        snaps: &[&ModelSnapshot],
        input_shape: (usize, usize, usize),
        calibration: &[f32],
    ) -> Result<Self, CompileError> {
        assert!(!snaps.is_empty(), "need at least one member");
        let input_len = input_shape.0 * input_shape.1 * input_shape.2;
        assert!(
            !calibration.is_empty() && calibration.len().is_multiple_of(input_len),
            "calibration must be a non-empty whole number of windows"
        );

        // Parse every member and merge into the fused per-op layout.
        let mut ops = parse_member(snaps[0], input_shape)?;
        for snap in &snaps[1..] {
            let member_ops = parse_member(snap, input_shape)?;
            if member_ops.len() != ops.len()
                || member_ops
                    .iter()
                    .zip(&ops)
                    .any(|(a, b)| a.signature() != b.signature())
            {
                return Err(CompileError::NotACritic(
                    "members disagree on topology — fuse per topology group",
                ));
            }
            for (fused, mut single) in ops.iter_mut().zip(member_ops) {
                fused.members_mut().append(single.members_mut());
            }
        }

        let mut this = Int8Ensemble {
            ops,
            members: snaps.len(),
            input_len,
            scratch: Scratch::default(),
        };
        this.calibrate(calibration)?;
        // Calibration done — drop the dequantized float copies.
        for op in &mut this.ops {
            for m in op.members_mut() {
                m.deq = Vec::new();
                m.deq.shrink_to_fit();
            }
        }
        Ok(this)
    }

    /// Runs the dequantized float reference over the calibration windows,
    /// recording each member's per-layer input activation *floor* scale
    /// (the runtime range guard widens it for out-of-range windows).
    fn calibrate(&mut self, calibration: &[f32]) -> Result<(), CompileError> {
        let n = calibration.len() / self.input_len;
        for g in 0..self.members {
            let mut act = calibration.to_vec();
            for oi in 0..self.ops.len() {
                let scale = activation_scale(&act)?;
                let op = &self.ops[oi];
                let rows = op.gemm_rows(n);
                let kk = op.kk();
                let m = &op.members()[g];
                let mut out = vec![0.0f32; rows * m.bias.len()];
                match op {
                    FusedOp::Conv {
                        h,
                        w,
                        cin,
                        kh,
                        kw,
                        pad_top,
                        pad_left,
                        ..
                    } => {
                        let mut col = vec![0.0f32; rows * kk];
                        im2col(
                            &act, n, *h, *w, *cin, *kh, *kw, *pad_top, *pad_left, &mut col,
                        );
                        gemm(rows, kk, m.bias.len(), &col, &m.deq, &mut out);
                    }
                    FusedOp::Dense { in_dim, .. } => {
                        gemm(rows, *in_dim, m.bias.len(), &act, &m.deq, &mut out);
                    }
                }
                let cout = m.bias.len();
                for row in out.chunks_exact_mut(cout) {
                    for (v, &b) in row.iter_mut().zip(&m.bias) {
                        *v += b;
                        if let Some(alpha) = m.alpha {
                            if *v < 0.0 {
                                *v *= alpha;
                            }
                        }
                    }
                }
                self.ops[oi].members_mut()[g].in_scale = scale;
                act = out;
            }
        }
        Ok(())
    }

    /// Number of compiled members.
    pub fn members(&self) -> usize {
        self.members
    }

    /// Number of fused ops (layers after activation fusion).
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Compiled input length per snapshot.
    pub fn input_len(&self) -> usize {
        self.input_len
    }

    /// Total packed int8 weight bytes across all members (the deployable
    /// artifact size).
    pub fn weight_bytes(&self) -> usize {
        self.ops
            .iter()
            .flat_map(|op| op.members().iter().map(|m| m.pack.packed_bytes()))
            .sum()
    }

    /// Raw critic outputs `D(x)` for a batch through a member subset.
    ///
    /// `windows` holds `n` flat snapshots; `out` receives member-major
    /// results: `out[s·n + i]` is subset member `s`'s output on snapshot
    /// `i`. Each layer is one fused GEMM over every subset member's
    /// packed weights.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches or an out-of-range member index.
    pub fn infer_subset_into(
        &mut self,
        subset: &[usize],
        windows: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        assert_eq!(windows.len(), n * self.input_len, "windows length mismatch");
        assert_eq!(out.len(), subset.len() * n, "output length mismatch");
        for &g in subset {
            assert!(g < self.members, "member {g} out of range");
        }
        if subset.is_empty() || n == 0 {
            return;
        }
        let gsel = subset.len();

        // Widest activation slab any layer needs, per member.
        let max_len = self
            .ops
            .iter()
            .map(|op| (op.in_len().max(op.out_len())) * n)
            .max()
            .expect("at least one op");
        let act_cur = grown(&mut self.scratch.act_a, gsel * max_len);
        // Seed every member's slab with the shared input.
        for s in 0..gsel {
            act_cur[s * max_len..s * max_len + windows.len()].copy_from_slice(windows);
        }
        let act_nxt = grown(&mut self.scratch.act_b, gsel * max_len);

        let (mut cur, mut nxt) = (act_cur, act_nxt);
        for (oi, op) in self.ops.iter().enumerate() {
            let rows = op.gemm_rows(n);
            let kk = op.kk();
            let in_per = op.in_len();
            let in_len = in_per * n;
            let out_per = op.out_len() * n;

            // Per-(member, window) effective scales: the calibrated scale
            // is the floor, expanded when a window's own activations
            // exceed the calibrated range — out-of-distribution inputs
            // (attacks!) widen their step instead of clipping. A window's
            // scale depends only on that window and the member, so scores
            // are independent of what else is in the batch.
            let eff = grown(&mut self.scratch.eff, gsel * n);
            for (s, &g) in subset.iter().enumerate() {
                let floor = op.members()[g].in_scale;
                for i in 0..n {
                    let win = &cur[s * max_len + i * in_per..s * max_len + (i + 1) * in_per];
                    // Eight parallel max lanes: a single fold is a serial
                    // dependency chain the compiler can't vectorize. Max
                    // is order-independent, so the result is bit-exact.
                    let (chunks, tail) = win.as_chunks::<16>();
                    let mut lanes = [0.0f32; 16];
                    for ch in chunks {
                        for (l, &v) in lanes.iter_mut().zip(ch) {
                            // `if a > l` instead of `f32::max`: the plain
                            // ordered compare + select vectorizes to
                            // vmaxps; maxnum's NaN bookkeeping does not.
                            // Identical result: NaN compares false, so
                            // NaN lanes are skipped exactly like maxnum.
                            let a = v.abs();
                            if a > *l {
                                *l = a;
                            }
                        }
                    }
                    let mut max_abs = 0.0f32;
                    for &v in tail {
                        let a = v.abs();
                        if a > max_abs {
                            max_abs = a;
                        }
                    }
                    for &l in &lanes {
                        if l > max_abs {
                            max_abs = l;
                        }
                    }
                    eff[s * n + i] = floor.max(max_abs / 127.0);
                }
            }

            // Quantize + gather activations, member-major, per window.
            let col = match op {
                FusedOp::Conv {
                    h,
                    w,
                    cin,
                    kh,
                    kw,
                    pad_top,
                    pad_left,
                    ..
                } => {
                    let col = grown(&mut self.scratch.col, gsel * rows * kk);
                    if oi == 0 {
                        // Shared input: every member sees the same windows
                        // and the same layer-0 scale (identical calibrated
                        // floor, identical range guard), so one quantize +
                        // one gather feed the whole fused GEMM.
                        let q = grown(&mut self.scratch.q, in_len);
                        for i in 0..n {
                            quantize_activations(
                                &cur[i * in_per..(i + 1) * in_per],
                                eff[i],
                                &mut q[i * in_per..(i + 1) * in_per],
                            );
                        }
                        im2col(
                            &q[..in_len],
                            n,
                            *h,
                            *w,
                            *cin,
                            *kh,
                            *kw,
                            *pad_top,
                            *pad_left,
                            &mut col[..rows * kk],
                        );
                        &col[..rows * kk]
                    } else {
                        let q = grown(&mut self.scratch.q, gsel * in_len);
                        for s in 0..gsel {
                            for i in 0..n {
                                quantize_activations(
                                    &cur[s * max_len + i * in_per..s * max_len + (i + 1) * in_per],
                                    eff[s * n + i],
                                    &mut q[s * in_len + i * in_per..s * in_len + (i + 1) * in_per],
                                );
                            }
                        }
                        for s in 0..gsel {
                            im2col(
                                &q[s * in_len..(s + 1) * in_len],
                                n,
                                *h,
                                *w,
                                *cin,
                                *kh,
                                *kw,
                                *pad_top,
                                *pad_left,
                                &mut col[s * rows * kk..(s + 1) * rows * kk],
                            );
                        }
                        &col[..gsel * rows * kk]
                    }
                }
                FusedOp::Dense { .. } => {
                    let q = grown(&mut self.scratch.q, gsel * in_len);
                    for s in 0..gsel {
                        for i in 0..n {
                            quantize_activations(
                                &cur[s * max_len + i * in_per..s * max_len + (i + 1) * in_per],
                                eff[s * n + i],
                                &mut q[s * in_len + i * in_per..s * in_len + (i + 1) * in_per],
                            );
                        }
                    }
                    &self.scratch.q[..gsel * in_len]
                }
            };

            // One fused GEMM over every deployed member's packed weights.
            let packs: Vec<&PackedI8> = subset.iter().map(|&g| &op.members()[g].pack).collect();
            let acc = grown(&mut self.scratch.acc, gsel * out_per);
            for v in acc.iter_mut() {
                *v = 0;
            }
            gemm_i8_fused(rows, col, &packs, acc);

            // Dequantize + bias + fused activation, per member, with each
            // window's effective input scale. The per-channel multipliers
            // are hoisted per window; `dequant_window` dispatches to an
            // AVX-512 mirror that is bitwise identical to the portable loop.
            let per_win = rows / n;
            let mult = grown(&mut self.scratch.mult, op.out_len() / per_win);
            for (s, &g) in subset.iter().enumerate() {
                let m = &op.members()[g];
                let cout = m.bias.len();
                let mult = &mut mult[..cout];
                let acc_m = &acc[s * out_per..(s + 1) * out_per];
                let dst = &mut nxt[s * max_len..s * max_len + out_per];
                for i in 0..n {
                    let es = eff[s * n + i];
                    for (mu, &ws) in mult.iter_mut().zip(&m.w_scales) {
                        *mu = es * ws;
                    }
                    let a_win = &acc_m[i * per_win * cout..(i + 1) * per_win * cout];
                    let d_win = &mut dst[i * per_win * cout..(i + 1) * per_win * cout];
                    dequant_window(a_win, mult, &m.bias, m.alpha, d_win);
                }
            }
            std::mem::swap(&mut cur, &mut nxt);
        }

        // Final op produced one scalar per snapshot per member.
        for s in 0..gsel {
            out[s * n..(s + 1) * n].copy_from_slice(&cur[s * max_len..s * max_len + n]);
        }
    }

    /// Anomaly scores `s(x) = −D(x)` for a batch through a member subset
    /// (member-major, like [`Int8Ensemble::infer_subset_into`]).
    ///
    /// # Panics
    ///
    /// Same as [`Int8Ensemble::infer_subset_into`].
    pub fn score_subset_into(
        &mut self,
        subset: &[usize],
        windows: &[f32],
        n: usize,
        out: &mut [f32],
    ) {
        self.infer_subset_into(subset, windows, n, out);
        for v in out.iter_mut() {
            *v = -*v;
        }
    }

    /// Convenience: anomaly scores for all members, member-major.
    pub fn score_all(&mut self, windows: &[f32], n: usize) -> Vec<f32> {
        let subset: Vec<usize> = (0..self.members).collect();
        let mut out = vec![0.0f32; self.members * n];
        self.score_subset_into(&subset, windows, n, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vehigan_tensor::init::seeded_rng;
    use vehigan_tensor::layers::{Activation, Conv2D, Dense, Flatten, Padding};
    use vehigan_tensor::{Init, Sequential, Tensor};

    const H: usize = 10;
    const W: usize = 12;

    fn build_critic(depth: usize, seed: u64) -> Sequential {
        let mut rng = seeded_rng(seed);
        let mut m = Sequential::new();
        let mut cin = 1;
        for i in 0..depth - 1 {
            let cout = (8usize << i).min(32);
            m.push(Conv2D::new(
                cin,
                cout,
                (2, 2),
                Padding::Same,
                Init::HeUniform,
                &mut rng,
            ));
            m.push(Activation::leaky_relu(0.2));
            cin = cout;
        }
        m.push(Flatten::new());
        m.push(Dense::new(H * W * cin, 1, Init::XavierUniform, &mut rng));
        m
    }

    fn random_windows(n: usize, seed: u64) -> Vec<f32> {
        use rand::Rng;
        let mut rng = seeded_rng(seed);
        (0..n * H * W).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn compile_fused(
        depth: usize,
        members: usize,
        calibration: &[f32],
    ) -> (Int8Ensemble, Vec<Sequential>) {
        let floats: Vec<Sequential> = (0..members as u64)
            .map(|s| build_critic(depth, 100 + s))
            .collect();
        let snaps: Vec<_> = floats.iter().map(|m| m.save()).collect();
        let refs: Vec<&_> = snaps.iter().collect();
        let fused = Int8Ensemble::compile(&refs, (H, W, 1), calibration).unwrap();
        (fused, floats)
    }

    #[test]
    fn fused_scores_track_float_reference() {
        let calibration = random_windows(16, 7);
        let (mut fused, mut floats) = compile_fused(4, 3, &calibration);
        let n = 8;
        let windows = random_windows(n, 11);
        let scores = fused.score_all(&windows, n);
        for (g, float) in floats.iter_mut().enumerate() {
            let x = Tensor::from_vec(windows.clone(), &[n, H, W, 1]);
            let d = float.forward(&x);
            for i in 0..n {
                let want = -d.as_slice()[i];
                let got = scores[g * n + i];
                let tol = 0.05 * want.abs().max(1.0);
                assert!(
                    (want - got).abs() <= tol,
                    "member {g} snapshot {i}: int8 {got} vs f32 {want}"
                );
            }
        }
    }

    #[test]
    fn subset_scoring_is_bitwise_consistent_with_full_run() {
        let calibration = random_windows(8, 3);
        let (mut fused, _floats) = compile_fused(5, 4, &calibration);
        let n = 3;
        let windows = random_windows(n, 21);
        let all = fused.score_all(&windows, n);
        // Every subset, in any order, reproduces the full run bitwise.
        for subset in [&[2usize][..], &[3, 0], &[1, 3, 2]] {
            let mut out = vec![0.0f32; subset.len() * n];
            fused.score_subset_into(subset, &windows, n, &mut out);
            for (s, &g) in subset.iter().enumerate() {
                for i in 0..n {
                    assert_eq!(
                        out[s * n + i].to_bits(),
                        all[g * n + i].to_bits(),
                        "subset {subset:?} member {g} snapshot {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn repeated_runs_are_bitwise_deterministic() {
        let calibration = random_windows(8, 5);
        let (mut fused, _floats) = compile_fused(4, 2, &calibration);
        let windows = random_windows(4, 9);
        let a = fused.score_all(&windows, 4);
        let b = fused.score_all(&windows, 4);
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn topology_mismatch_is_rejected() {
        let a = build_critic(4, 1).save();
        let b = build_critic(5, 2).save();
        let calibration = random_windows(4, 1);
        let err = Int8Ensemble::compile(&[&a, &b], (H, W, 1), &calibration).unwrap_err();
        assert!(matches!(err, CompileError::NotACritic(_)), "{err}");
    }

    #[test]
    fn batch_and_single_snapshot_agree() {
        let calibration = random_windows(8, 13);
        let (mut fused, _floats) = compile_fused(4, 2, &calibration);
        let n = 5;
        let windows = random_windows(n, 17);
        let batch = fused.score_all(&windows, n);
        for i in 0..n {
            let one = &windows[i * H * W..(i + 1) * H * W];
            let scores = fused.score_all(one, 1);
            for g in 0..2 {
                assert_eq!(
                    scores[g].to_bits(),
                    batch[g * n + i].to_bits(),
                    "member {g} snapshot {i}"
                );
            }
        }
    }

    #[test]
    fn debug_reports_artifact_size() {
        let calibration = random_windows(4, 2);
        let (fused, _floats) = compile_fused(4, 2, &calibration);
        let text = format!("{fused:?}");
        assert!(text.contains("2 members"), "{text}");
        assert!(fused.weight_bytes() > 0);
    }
}
