//! Post-training int8 weight quantization.

/// An int8-quantized weight tensor with a per-tensor affine scale
/// (symmetric, zero-point 0 — the standard scheme for weights).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedWeights {
    /// Quantized values in `[-127, 127]`.
    pub values: Vec<i8>,
    /// Dequantization scale: `w ≈ values · scale`.
    pub scale: f32,
}

impl QuantizedWeights {
    /// Quantizes float weights symmetrically to int8.
    ///
    /// All-zero inputs get scale 1.0 (anything dequantizes to 0).
    pub fn quantize(weights: &[f32]) -> Self {
        let max_abs = weights.iter().fold(0.0f32, |m, &w| m.max(w.abs()));
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
        let values = weights
            .iter()
            .map(|&w| (w / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        QuantizedWeights { values, scale }
    }

    /// Dequantizes back to floats.
    pub fn dequantize(&self) -> Vec<f32> {
        self.values.iter().map(|&q| q as f32 * self.scale).collect()
    }

    /// Worst-case absolute quantization error (half a quantization step).
    pub fn max_error(&self) -> f32 {
        self.scale / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_is_bounded() {
        let w: Vec<f32> = (0..100).map(|i| (i as f32 * 0.7).sin() * 0.03).collect();
        let q = QuantizedWeights::quantize(&w);
        let back = q.dequantize();
        for (orig, deq) in w.iter().zip(&back) {
            assert!((orig - deq).abs() <= q.max_error() + 1e-9);
        }
    }

    #[test]
    fn extreme_value_maps_to_127() {
        let q = QuantizedWeights::quantize(&[0.5, -0.25, 0.0]);
        assert_eq!(q.values[0], 127);
        assert_eq!(q.values[1], -64);
        assert_eq!(q.values[2], 0);
    }

    #[test]
    fn all_zero_weights_are_stable() {
        let q = QuantizedWeights::quantize(&[0.0; 8]);
        assert_eq!(q.scale, 1.0);
        assert!(q.dequantize().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn clipped_wgan_weights_quantize_finely() {
        // WGAN critics clip weights to ±c, so the quantization step is
        // c/127 — tiny relative to the weight range. This is why int8
        // preserves critic score ordering so well.
        let c = 0.03f32;
        let w: Vec<f32> = (0..50).map(|i| (i as f32 / 49.0) * 2.0 * c - c).collect();
        let q = QuantizedWeights::quantize(&w);
        assert!(q.max_error() < 0.00013);
    }
}
