//! Post-training int8 quantization: per-tensor and per-channel weight
//! schemes plus activation-scale calibration.
//!
//! All schemes are **symmetric** (zero-point 0): WGAN critics regress an
//! unbounded scalar from Lipschitz-constrained weights, so the weight
//! distributions are centered and narrow, and symmetric quantization
//! keeps zero exactly representable — padding and ReLU-dead activations
//! stay exact through the int8 pipeline.
//!
//! Non-finite inputs are **rejected with a typed error** rather than
//! silently mapped to 0 (a NaN slips straight past an `f32::max` fold,
//! and `as i8` saturates NaN to 0) — the same poisoned-model policy as
//! `ModelFormatError::NonFinite` in `vehigan_tensor::serialize`.

use std::fmt;

/// Error quantizing weights or calibrating activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantError {
    /// A value to quantize or calibrate was NaN/Inf. Mirrors
    /// `ModelFormatError::NonFinite`: a poisoned tensor must never be
    /// folded into a deployable artifact.
    NonFinite {
        /// Flat element index of the first offending value.
        index: usize,
    },
    /// A per-channel matrix's length was not `rows × channels`.
    ShapeMismatch {
        /// Length actually received.
        len: usize,
        /// Rows expected.
        rows: usize,
        /// Channels expected.
        channels: usize,
    },
}

impl fmt::Display for QuantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuantError::NonFinite { index } => {
                write!(f, "non-finite value at element {index} (poisoned weights)")
            }
            QuantError::ShapeMismatch {
                len,
                rows,
                channels,
            } => write!(f, "matrix length {len} != {rows}×{channels}"),
        }
    }
}

impl std::error::Error for QuantError {}

/// Returns the index of the first non-finite value, if any.
fn check_finite(values: &[f32]) -> Result<(), QuantError> {
    match values.iter().position(|v| !v.is_finite()) {
        Some(index) => Err(QuantError::NonFinite { index }),
        None => Ok(()),
    }
}

/// Symmetric scale for a value range: `max_abs / 127`, or 1.0 for an
/// all-zero range (anything dequantizes to 0).
fn symmetric_scale(max_abs: f32) -> f32 {
    if max_abs == 0.0 {
        1.0
    } else {
        max_abs / 127.0
    }
}

#[inline]
fn quantize_one(w: f32, scale: f32) -> i8 {
    (w / scale).round().clamp(-127.0, 127.0) as i8
}

/// An int8-quantized weight tensor with a per-tensor affine scale
/// (symmetric, zero-point 0 — the standard scheme for weights).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedWeights {
    /// Quantized values in `[-127, 127]`.
    pub values: Vec<i8>,
    /// Dequantization scale: `w ≈ values · scale`.
    pub scale: f32,
}

impl QuantizedWeights {
    /// Quantizes float weights symmetrically to int8.
    ///
    /// All-zero inputs get scale 1.0 (anything dequantizes to 0).
    ///
    /// # Errors
    ///
    /// [`QuantError::NonFinite`] if any weight is NaN/Inf.
    pub fn quantize(weights: &[f32]) -> Result<Self, QuantError> {
        check_finite(weights)?;
        let max_abs = weights.iter().fold(0.0f32, |m, &w| m.max(w.abs()));
        let scale = symmetric_scale(max_abs);
        let values = weights.iter().map(|&w| quantize_one(w, scale)).collect();
        Ok(QuantizedWeights { values, scale })
    }

    /// Dequantizes back to floats.
    pub fn dequantize(&self) -> Vec<f32> {
        self.values.iter().map(|&q| q as f32 * self.scale).collect()
    }

    /// Worst-case absolute quantization error (half a quantization step).
    pub fn max_error(&self) -> f32 {
        self.scale / 2.0
    }
}

/// An int8-quantized weight matrix with **per-channel** symmetric scales.
///
/// The source is a row-major `rows × channels` matrix where the channel
/// axis is the *output* dimension — `[ky·kw·ic, oc]` conv kernels and
/// `[in, out]` dense weights as the tensor stack stores them. Each output
/// channel gets its own scale, so one wide-ranged channel no longer
/// inflates the quantization step of every other channel (the main
/// accuracy leak of per-tensor quantization).
#[derive(Debug, Clone, PartialEq)]
pub struct PerChannelQuantized {
    /// Quantized values in `[-127, 127]`, same row-major layout as input.
    pub values: Vec<i8>,
    /// Per-channel dequantization scales (`channels` entries):
    /// `w[r][c] ≈ values[r][c] · scales[c]`.
    pub scales: Vec<f32>,
    /// Row count (the shared/GEMM dimension).
    pub rows: usize,
    /// Channel count (the output dimension).
    pub channels: usize,
}

impl PerChannelQuantized {
    /// Quantizes a row-major `rows × channels` float matrix with one
    /// symmetric scale per channel (column).
    ///
    /// # Errors
    ///
    /// [`QuantError::NonFinite`] if any weight is NaN/Inf,
    /// [`QuantError::ShapeMismatch`] if `weights.len() != rows ·
    /// channels`.
    pub fn quantize(rows: usize, channels: usize, weights: &[f32]) -> Result<Self, QuantError> {
        if weights.len() != rows * channels {
            return Err(QuantError::ShapeMismatch {
                len: weights.len(),
                rows,
                channels,
            });
        }
        check_finite(weights)?;
        let mut max_abs = vec![0.0f32; channels];
        for row in weights.chunks_exact(channels.max(1)) {
            for (m, &w) in max_abs.iter_mut().zip(row) {
                *m = m.max(w.abs());
            }
        }
        let scales: Vec<f32> = max_abs.into_iter().map(symmetric_scale).collect();
        let values = weights
            .chunks_exact(channels.max(1))
            .flat_map(|row| {
                row.iter()
                    .zip(&scales)
                    .map(|(&w, &s)| quantize_one(w, s))
                    .collect::<Vec<i8>>()
            })
            .collect();
        Ok(PerChannelQuantized {
            values,
            scales,
            rows,
            channels,
        })
    }

    /// Dequantizes back to floats (row-major, original layout).
    pub fn dequantize(&self) -> Vec<f32> {
        self.values
            .chunks_exact(self.channels.max(1))
            .flat_map(|row| {
                row.iter()
                    .zip(&self.scales)
                    .map(|(&q, &s)| q as f32 * s)
                    .collect::<Vec<f32>>()
            })
            .collect()
    }

    /// Worst-case absolute quantization error for one channel.
    pub fn channel_max_error(&self, channel: usize) -> f32 {
        self.scales[channel] / 2.0
    }

    /// Worst-case absolute quantization error across all channels.
    pub fn max_error(&self) -> f32 {
        self.scales.iter().fold(0.0f32, |m, &s| m.max(s / 2.0))
    }
}

/// Calibrates a symmetric int8 activation scale from observed values:
/// `max |x| / 127`, with 1.0 for an all-zero sample (the choice is
/// irrelevant — everything quantizes to 0).
///
/// Calibration runs over representative f32 activations (e.g. benign
/// training windows pushed through the float critic); at inference time
/// activations outside the calibrated range saturate at ±127.
///
/// # Errors
///
/// [`QuantError::NonFinite`] if any observed value is NaN/Inf.
pub fn activation_scale(observed: &[f32]) -> Result<f32, QuantError> {
    check_finite(observed)?;
    let max_abs = observed.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    Ok(symmetric_scale(max_abs))
}

/// Quantizes activations with a calibrated scale, saturating at ±127.
/// Symmetric with zero-point 0, so exact zeros stay exact (padding!).
///
/// Hot path: multiplies by the reciprocal scale and rounds half away
/// from zero via truncation (`x + copysign(0.5, x)`). NaN inputs map to
/// 0 through an explicit ordered compare so the float→int conversion
/// can use `to_int_unchecked` — Rust's saturating `as i32` cast carries
/// NaN/range fixups that keep LLVM from vectorizing the narrowing loop,
/// and `f32::round` would be a libm call per element.
pub fn quantize_activations(values: &[f32], scale: f32, out: &mut [i8]) {
    debug_assert_eq!(values.len(), out.len());
    let inv = 1.0 / scale;
    #[cfg(target_arch = "x86_64")]
    if vehigan_tensor::gemm::avx512_available() {
        // SAFETY: guarded by cached runtime detection of avx512f.
        unsafe { quantize_activations_avx512(values, inv, out) };
        return;
    }
    quantize_activations_portable(values, inv, out);
}

/// Portable scalar body of [`quantize_activations`] (post-reciprocal).
fn quantize_activations_portable(values: &[f32], inv: f32, out: &mut [i8]) {
    for (o, &v) in out.iter_mut().zip(values) {
        let x = (v * inv).clamp(-127.0, 127.0);
        let x = x + 0.5f32.copysign(x);
        let x = if x.is_nan() { 0.0 } else { x };
        // SAFETY: `x` is NaN-free (previous line) and clamped to
        // [-127.5, 127.5], well inside i32 range.
        *o = unsafe { x.to_int_unchecked::<i32>() as i8 };
    }
}

/// AVX-512 lane-for-lane mirror of the scalar quantizer — every step
/// reproduces the portable op exactly (clamp via ordered compares so NaN
/// passes through like `f32::clamp`, copysign via sign-bit OR, NaN→0 via
/// an unordered-compare mask, truncating convert, wrapping narrow), so
/// the two paths are **bitwise identical** on every input including NaN
/// and the ±x.5 rounding boundaries.
///
/// # Safety
///
/// Callers must ensure the CPU supports AVX-512F.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn quantize_activations_avx512(values: &[f32], inv: f32, out: &mut [i8]) {
    use std::arch::x86_64::*;
    let n = values.len();
    let vinv = _mm512_set1_ps(inv);
    let lo = _mm512_set1_ps(-127.0);
    let hi = _mm512_set1_ps(127.0);
    let half = _mm512_set1_ps(0.5);
    let sign_bit = _mm512_set1_ps(-0.0);
    let mut i = 0;
    while i + 16 <= n {
        let t = _mm512_mul_ps(_mm512_loadu_ps(values.as_ptr().add(i)), vinv);
        // f32::clamp semantics: `x < lo → lo`, `x > hi → hi`, NaN stays.
        let below = _mm512_cmp_ps_mask::<_CMP_LT_OQ>(t, lo);
        let t = _mm512_mask_mov_ps(t, below, lo);
        let above = _mm512_cmp_ps_mask::<_CMP_GT_OQ>(t, hi);
        let t = _mm512_mask_mov_ps(t, above, hi);
        // x + copysign(0.5, x)
        let signed_half = _mm512_castsi512_ps(_mm512_or_si512(
            _mm512_castps_si512(half),
            _mm512_and_si512(_mm512_castps_si512(t), _mm512_castps_si512(sign_bit)),
        ));
        let t = _mm512_add_ps(t, signed_half);
        // NaN → 0 (unordered self-compare), then truncate like
        // `to_int_unchecked::<i32>` — every lane is in [-127.5, 127.5].
        let ord = _mm512_cmp_ps_mask::<_CMP_ORD_Q>(t, t);
        let t = _mm512_maskz_mov_ps(ord, t);
        let q = _mm512_cvttps_epi32(t);
        // Wrapping i32→i8 narrow (`as i8`); lanes already fit.
        _mm_storeu_si128(
            out.as_mut_ptr().add(i) as *mut __m128i,
            _mm512_cvtepi32_epi8(q),
        );
        i += 16;
    }
    quantize_activations_portable(&values[i..], inv, &mut out[i..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_error_is_bounded() {
        let w: Vec<f32> = (0..100).map(|i| (i as f32 * 0.7).sin() * 0.03).collect();
        let q = QuantizedWeights::quantize(&w).unwrap();
        let back = q.dequantize();
        for (orig, deq) in w.iter().zip(&back) {
            assert!((orig - deq).abs() <= q.max_error() + 1e-9);
        }
    }

    #[test]
    fn extreme_value_maps_to_127() {
        let q = QuantizedWeights::quantize(&[0.5, -0.25, 0.0]).unwrap();
        assert_eq!(q.values[0], 127);
        assert_eq!(q.values[1], -64);
        assert_eq!(q.values[2], 0);
    }

    #[test]
    fn all_zero_weights_are_stable() {
        let q = QuantizedWeights::quantize(&[0.0; 8]).unwrap();
        assert_eq!(q.scale, 1.0);
        assert!(q.dequantize().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn clipped_wgan_weights_quantize_finely() {
        // WGAN critics clip weights to ±c, so the quantization step is
        // c/127 — tiny relative to the weight range. This is why int8
        // preserves critic score ordering so well.
        let c = 0.03f32;
        let w: Vec<f32> = (0..50).map(|i| (i as f32 / 49.0) * 2.0 * c - c).collect();
        let q = QuantizedWeights::quantize(&w).unwrap();
        assert!(q.max_error() < 0.00013);
    }

    #[test]
    fn non_finite_weights_are_rejected_with_index() {
        // The old fold silently mapped NaN → 0 (`f32::max` skips NaN,
        // `as i8` saturates); now it is a typed error.
        assert_eq!(
            QuantizedWeights::quantize(&[0.1, f32::NAN, 0.2]),
            Err(QuantError::NonFinite { index: 1 })
        );
        assert_eq!(
            QuantizedWeights::quantize(&[f32::INFINITY]),
            Err(QuantError::NonFinite { index: 0 })
        );
        assert_eq!(
            PerChannelQuantized::quantize(1, 2, &[0.0, f32::NEG_INFINITY]),
            Err(QuantError::NonFinite { index: 1 })
        );
        assert_eq!(
            activation_scale(&[1.0, f32::NAN]),
            Err(QuantError::NonFinite { index: 1 })
        );
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn simd_quantize_matches_portable_bitwise() {
        if !std::arch::is_x86_feature_detected!("avx512f") {
            return;
        }
        // Edge soup: rounding boundaries (±x.5 after scaling), clamp
        // saturation, NaN/Inf, ±0, denormals, and a dense random sweep —
        // the SIMD path must match the scalar path on every one.
        let mut values = vec![
            0.0,
            -0.0,
            0.5,
            -0.5,
            1.5,
            -1.5,
            126.5,
            -126.5,
            127.0,
            -127.0,
            500.0,
            -500.0,
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            f32::MIN_POSITIVE / 2.0,
        ];
        for i in 0..1000 {
            values.push(((i as f32 * 0.7311).sin() * 200.0) + (i % 7) as f32 * 0.25);
        }
        for &scale in &[1.0f32, 0.037, 2.5] {
            let inv = 1.0 / scale;
            let mut scalar = vec![0i8; values.len()];
            let mut simd = vec![0i8; values.len()];
            quantize_activations_portable(&values, inv, &mut scalar);
            // SAFETY: avx512f presence checked above.
            unsafe { quantize_activations_avx512(&values, inv, &mut simd) };
            assert_eq!(scalar, simd, "scale {scale}");
        }
    }

    #[test]
    fn per_channel_isolates_wide_channels() {
        // Channel 1 has 100× the range of channel 0; per-tensor would
        // burn channel 0's precision, per-channel keeps both fine.
        let w = [0.01f32, 1.0, -0.005, 0.5, 0.0075, -1.0];
        let q = PerChannelQuantized::quantize(3, 2, &w).unwrap();
        assert!(q.channel_max_error(0) < 1e-4);
        let back = q.dequantize();
        for (orig, deq) in w.iter().zip(&back) {
            let ch = if (orig.abs() - 1.0).abs() < 0.51 {
                1
            } else {
                0
            };
            assert!((orig - deq).abs() <= q.channel_max_error(ch) + 1e-9);
        }
    }

    #[test]
    fn per_channel_shape_mismatch_is_typed() {
        assert_eq!(
            PerChannelQuantized::quantize(2, 3, &[0.0; 5]),
            Err(QuantError::ShapeMismatch {
                len: 5,
                rows: 2,
                channels: 3
            })
        );
    }

    #[test]
    fn activation_scale_covers_range() {
        let s = activation_scale(&[-0.6, 0.2, 0.5]).unwrap();
        assert!((s - 0.6 / 127.0).abs() < 1e-9);
        assert_eq!(activation_scale(&[]).unwrap(), 1.0);
        assert_eq!(activation_scale(&[0.0, 0.0]).unwrap(), 1.0);
    }

    #[test]
    fn activation_quantization_saturates() {
        let mut out = [0i8; 4];
        quantize_activations(&[0.0, 1.0, -1.0, 10.0], 1.0 / 127.0, &mut out);
        assert_eq!(out, [0, 127, -127, 127]);
    }

    #[test]
    fn error_display_is_informative() {
        assert!(QuantError::NonFinite { index: 3 }
            .to_string()
            .contains("element 3"));
        assert!(QuantError::ShapeMismatch {
            len: 5,
            rows: 2,
            channels: 3
        }
        .to_string()
        .contains("5"));
    }
}
