//! The compiled lightweight critic: fused, quantized, allocation-free
//! single-snapshot inference.
//!
//! This is the TensorFlow-Lite substitute of Fig 8b. Compilation performs
//! the optimizations an OBU deployment converter would:
//!
//! - **int8 weight quantization** (per-tensor symmetric) — compute uses
//!   the dequantized values, so scores carry exactly the quantization
//!   error of the int8 representation;
//! - **weight re-layout** — conv kernels are stored `[oc][ky][kw·ic]` and
//!   dense weights `[out][in]`, turning every inner loop into a
//!   contiguous dot product;
//! - **op fusion** — conv + LeakyReLU execute as one kernel;
//! - **static arenas** — per-inference scoring allocates nothing.

use crate::quant::{QuantError, QuantizedWeights};
use std::fmt;
use vehigan_tensor::serialize::{ModelFormatError, ModelSnapshot};
use vehigan_tensor::Sequential;

/// Error compiling a model into a lite critic.
#[derive(Debug)]
pub enum CompileError {
    /// The model contains a layer the lite runtime does not support.
    UnsupportedLayer(String),
    /// The model format itself was invalid.
    Format(ModelFormatError),
    /// The model topology is not a critic (must end in a scalar).
    NotACritic(&'static str),
    /// Weight quantization failed (non-finite weights).
    Quant(QuantError),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::UnsupportedLayer(k) => write!(f, "unsupported layer kind `{k}`"),
            CompileError::Format(e) => write!(f, "invalid model: {e}"),
            CompileError::NotACritic(why) => write!(f, "model is not a critic: {why}"),
            CompileError::Quant(e) => write!(f, "weight quantization failed: {e}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Format(e) => Some(e),
            CompileError::Quant(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelFormatError> for CompileError {
    fn from(e: ModelFormatError) -> Self {
        CompileError::Format(e)
    }
}

impl From<QuantError> for CompileError {
    fn from(e: QuantError) -> Self {
        CompileError::Quant(e)
    }
}

/// Fused activation applied inside a kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FusedActivation {
    None,
    LeakyRelu(f32),
}

impl FusedActivation {
    #[inline]
    fn apply(self, x: f32) -> f32 {
        match self {
            FusedActivation::None => x,
            FusedActivation::LeakyRelu(alpha) => {
                if x >= 0.0 {
                    x
                } else {
                    alpha * x
                }
            }
        }
    }
}

/// One compiled op.
enum LiteOp {
    /// Same-padding conv `[h, w, cin] → [h, w, cout]`, fused activation.
    /// `kernels` keeps the `[ky·kw·ic, oc]` layout so the inner loop
    /// accumulates across the contiguous `oc` lane (SIMD-friendly
    /// independent adds).
    Conv {
        h: usize,
        w: usize,
        cin: usize,
        cout: usize,
        kh: usize,
        kw: usize,
        pad_top: usize,
        pad_left: usize,
        kernels: Vec<f32>,
        bias: Vec<f32>,
        activation: FusedActivation,
        /// int8 master copy (the deployable artifact; `kernels` is its
        /// dequantization).
        quantized: QuantizedWeights,
    },
    /// Dense `in → out`, weights `[out][in]` (transposed), fused
    /// activation.
    Dense {
        in_dim: usize,
        out_dim: usize,
        weights: Vec<f32>,
        bias: Vec<f32>,
        activation: FusedActivation,
        quantized: QuantizedWeights,
    },
}

impl LiteOp {
    fn out_len(&self) -> usize {
        match self {
            LiteOp::Conv { h, w, cout, .. } => h * w * cout,
            LiteOp::Dense { out_dim, .. } => *out_dim,
        }
    }
}

/// Dot product with 8 independent accumulators so the float reduction
/// vectorizes (a plain `acc += x·y` loop is a serial dependency chain the
/// compiler must not reorder).
#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let chunks = a.len() / 8;
    for i in 0..chunks {
        let ai = &a[i * 8..i * 8 + 8];
        let bi = &b[i * 8..i * 8 + 8];
        for j in 0..8 {
            acc[j] += ai[j] * bi[j];
        }
    }
    let mut sum: f32 = acc.iter().sum();
    for i in chunks * 8..a.len() {
        sum += a[i] * b[i];
    }
    sum
}

/// `out[j] += a · w[j]` over a contiguous lane (vectorizable).
#[inline]
fn axpy(out: &mut [f32], a: f32, w: &[f32]) {
    debug_assert_eq!(out.len(), w.len());
    for (o, &wv) in out.iter_mut().zip(w) {
        *o += a * wv;
    }
}

/// A compiled lightweight critic.
///
/// # Examples
///
/// ```
/// use vehigan_tensor::{Sequential, Init, init::seeded_rng};
/// use vehigan_tensor::layers::{Conv2D, Padding, Activation, Flatten, Dense};
/// use vehigan_lite::LiteCritic;
///
/// let mut rng = seeded_rng(0);
/// let mut critic = Sequential::new();
/// critic.push(Conv2D::new(1, 8, (2, 2), Padding::Same, Init::HeUniform, &mut rng));
/// critic.push(Activation::leaky_relu(0.2));
/// critic.push(Flatten::new());
/// critic.push(Dense::new(10 * 12 * 8, 1, Init::XavierUniform, &mut rng));
///
/// let mut lite = LiteCritic::compile(&critic, (10, 12, 1))?;
/// let window = vec![0.0f32; 120];
/// let score = lite.score(&window); // anomaly score −D(x)
/// assert!(score.is_finite());
/// # Ok::<(), vehigan_lite::CompileError>(())
/// ```
pub struct LiteCritic {
    ops: Vec<LiteOp>,
    input_len: usize,
    arena_a: Vec<f32>,
    arena_b: Vec<f32>,
}

impl fmt::Debug for LiteCritic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LiteCritic({} fused ops, input {} floats, arena {} floats, {} int8 weight bytes)",
            self.ops.len(),
            self.input_len,
            self.arena_a.len(),
            self.weight_bytes(),
        )
    }
}

impl LiteCritic {
    /// Compiles a float critic into the lite representation.
    ///
    /// `input_shape` is the snapshot shape `(h, w, c)` (e.g. `(10, 12, 1)`).
    ///
    /// # Errors
    ///
    /// Returns an error if the model uses layers beyond
    /// Conv2D(same)/LeakyReLU/Flatten/Dense or does not end in a scalar.
    pub fn compile(
        model: &Sequential,
        input_shape: (usize, usize, usize),
    ) -> Result<Self, CompileError> {
        Self::compile_snapshot(&model.save(), input_shape)
    }

    /// Compiles from a serialized snapshot (the deployment path: trained
    /// critics arrive at the OBU as model files).
    ///
    /// # Errors
    ///
    /// See [`LiteCritic::compile`].
    pub fn compile_snapshot(
        snap: &ModelSnapshot,
        input_shape: (usize, usize, usize),
    ) -> Result<Self, CompileError> {
        let (h, w, mut c) = input_shape;
        let mut flat = h * w * c;
        let mut flattened = false;
        let mut ops: Vec<LiteOp> = Vec::new();
        let mut i = 0;
        while i < snap.layers.len() {
            let layer = &snap.layers[i];
            let fused_next = snap
                .layers
                .get(i + 1)
                .filter(|l| l.kind == "LeakyReLU")
                .map(|l| l.f32_attr("alpha"))
                .transpose()?;
            match layer.kind.as_str() {
                "Conv2D" => {
                    let cin = layer.usize_attr("cin")?;
                    let cout = layer.usize_attr("cout")?;
                    let kh = layer.usize_attr("kh")?;
                    let kw = layer.usize_attr("kw")?;
                    let padding = layer.usize_attr("padding")?;
                    if padding != 0 {
                        return Err(CompileError::UnsupportedLayer(
                            "Conv2D(valid) — lite critics use same padding".into(),
                        ));
                    }
                    if cin != c {
                        return Err(CompileError::NotACritic("conv channel mismatch"));
                    }
                    // Source layout [ky·kw·ic, oc] is kept: inference
                    // accumulates across the contiguous `oc` lane.
                    let raw = layer.tensor("w")?.as_slice();
                    let quantized = QuantizedWeights::quantize(raw)?;
                    let kernels = quantized.dequantize();
                    let bias = layer.tensor("b")?.as_slice().to_vec();
                    let activation = match fused_next {
                        Some(alpha) => {
                            i += 1;
                            FusedActivation::LeakyRelu(alpha)
                        }
                        None => FusedActivation::None,
                    };
                    ops.push(LiteOp::Conv {
                        h,
                        w,
                        cin,
                        cout,
                        kh,
                        kw,
                        pad_top: (kh - 1) / 2,
                        pad_left: (kw - 1) / 2,
                        kernels,
                        bias,
                        activation,
                        quantized,
                    });
                    c = cout;
                    flat = h * w * c;
                }
                "Flatten" => {
                    flattened = true;
                }
                "Dense" => {
                    if !flattened && (h != 1 || w != 1) {
                        return Err(CompileError::NotACritic("dense before flatten"));
                    }
                    let in_dim = layer.usize_attr("in_dim")?;
                    let out_dim = layer.usize_attr("out_dim")?;
                    if in_dim != flat {
                        return Err(CompileError::NotACritic("dense input size mismatch"));
                    }
                    let raw = layer.tensor("w")?.as_slice();
                    let quantized = QuantizedWeights::quantize(raw)?;
                    let deq = quantized.dequantize();
                    // Transpose [in, out] → [out][in].
                    let mut weights = vec![0.0f32; in_dim * out_dim];
                    for r in 0..in_dim {
                        for j in 0..out_dim {
                            weights[j * in_dim + r] = deq[r * out_dim + j];
                        }
                    }
                    let bias = layer.tensor("b")?.as_slice().to_vec();
                    let activation = match fused_next {
                        Some(alpha) => {
                            i += 1;
                            FusedActivation::LeakyRelu(alpha)
                        }
                        None => FusedActivation::None,
                    };
                    ops.push(LiteOp::Dense {
                        in_dim,
                        out_dim,
                        weights,
                        bias,
                        activation,
                        quantized,
                    });
                    flat = out_dim;
                    c = out_dim;
                    flattened = true;
                }
                other => return Err(CompileError::UnsupportedLayer(other.to_string())),
            }
            i += 1;
        }
        if flat != 1 {
            return Err(CompileError::NotACritic("output is not a scalar"));
        }
        let arena = ops
            .iter()
            .map(LiteOp::out_len)
            .max()
            .unwrap_or(1)
            .max(input_shape.0 * input_shape.1 * input_shape.2);
        Ok(LiteCritic {
            ops,
            input_len: input_shape.0 * input_shape.1 * input_shape.2,
            arena_a: vec![0.0; arena],
            arena_b: vec![0.0; arena],
        })
    }

    /// Number of compiled (fused) ops.
    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }

    /// Size of the int8 weight representation in bytes (the deployable
    /// artifact — Fig 8b's "lightweight" models are also smaller).
    pub fn weight_bytes(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                LiteOp::Conv { quantized, .. } | LiteOp::Dense { quantized, .. } => {
                    quantized.values.len()
                }
            })
            .sum()
    }

    /// Raw critic output `D(x)` for one flat snapshot (row-major
    /// `h × w × c`). Allocation-free after compilation.
    ///
    /// # Panics
    ///
    /// Panics if `window.len()` differs from the compiled input size.
    pub fn infer(&mut self, window: &[f32]) -> f32 {
        assert_eq!(window.len(), self.input_len, "input length mismatch");
        self.arena_a[..window.len()].copy_from_slice(window);
        let mut src_is_a = true;
        for op in &self.ops {
            let (src, dst) = if src_is_a {
                (&self.arena_a[..], &mut self.arena_b)
            } else {
                (&self.arena_b[..], &mut self.arena_a)
            };
            match op {
                LiteOp::Conv {
                    h,
                    w,
                    cin,
                    cout,
                    kh,
                    kw,
                    pad_top,
                    pad_left,
                    kernels,
                    bias,
                    activation,
                    ..
                } => {
                    let (h, w, cin, cout, kh, kw) = (*h, *w, *cin, *cout, *kh, *kw);
                    for oy in 0..h {
                        let ky_lo = pad_top.saturating_sub(oy);
                        let ky_hi = kh.min(h + pad_top - oy);
                        for ox in 0..w {
                            let kx_lo = pad_left.saturating_sub(ox);
                            let kx_hi = kw.min(w + pad_left - ox);
                            let out_base = (oy * w + ox) * cout;
                            let out_row = &mut dst[out_base..out_base + cout];
                            out_row.copy_from_slice(bias);
                            for ky in ky_lo..ky_hi {
                                let iy = oy + ky - pad_top;
                                for kx in kx_lo..kx_hi {
                                    let ix = ox + kx - pad_left;
                                    let in_off = (iy * w + ix) * cin;
                                    let w_base = (ky * kw + kx) * cin * cout;
                                    for ic in 0..cin {
                                        let a = src[in_off + ic];
                                        let w_off = w_base + ic * cout;
                                        axpy(out_row, a, &kernels[w_off..w_off + cout]);
                                    }
                                }
                            }
                            for v in out_row.iter_mut() {
                                *v = activation.apply(*v);
                            }
                        }
                    }
                }
                LiteOp::Dense {
                    in_dim,
                    out_dim,
                    weights,
                    bias,
                    activation,
                    ..
                } => {
                    for j in 0..*out_dim {
                        let row = &weights[j * in_dim..(j + 1) * in_dim];
                        let acc = bias[j] + dot(&src[..*in_dim], row);
                        dst[j] = activation.apply(acc);
                    }
                }
            }
            src_is_a = !src_is_a;
        }
        if src_is_a {
            self.arena_a[0]
        } else {
            self.arena_b[0]
        }
    }

    /// Anomaly score `s(x) = −D(x)` for one flat snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `window.len()` differs from the compiled input size.
    pub fn score(&mut self, window: &[f32]) -> f32 {
        -self.infer(window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vehigan_tensor::init::{rand_uniform, seeded_rng};
    use vehigan_tensor::layers::{Activation, Conv2D, Dense, Flatten, Padding};
    use vehigan_tensor::{Init, Tensor};

    fn sample_critic(seed: u64, convs: usize) -> Sequential {
        let mut rng = seeded_rng(seed);
        let mut m = Sequential::new();
        let mut cin = 1;
        for i in 0..convs {
            let cout = (8 << i).min(32);
            m.push(Conv2D::new(
                cin,
                cout,
                (2, 2),
                Padding::Same,
                Init::HeUniform,
                &mut rng,
            ));
            m.push(Activation::leaky_relu(0.2));
            cin = cout;
        }
        m.push(Flatten::new());
        m.push(Dense::new(10 * 12 * cin, 1, Init::XavierUniform, &mut rng));
        m
    }

    #[test]
    fn compiles_and_fuses() {
        let critic = sample_critic(0, 3);
        let lite = LiteCritic::compile(&critic, (10, 12, 1)).unwrap();
        // 3 fused convs + 1 dense = 4 ops (activations absorbed).
        assert_eq!(lite.num_ops(), 4);
        assert!(lite.weight_bytes() > 0);
    }

    #[test]
    fn lite_matches_float_critic_closely() {
        let mut critic = sample_critic(1, 2);
        let mut lite = LiteCritic::compile(&critic, (10, 12, 1)).unwrap();
        let mut rng = seeded_rng(2);
        for _ in 0..10 {
            let x = rand_uniform(&[1, 10, 12, 1], -1.0, 1.0, &mut rng);
            let float_out = critic.forward(&x).as_slice()[0];
            let lite_out = lite.infer(x.as_slice());
            let denom = float_out.abs().max(1.0);
            assert!(
                (float_out - lite_out).abs() / denom < 0.05,
                "float {float_out} vs lite {lite_out}"
            );
        }
    }

    #[test]
    fn lite_with_3x3_kernels_matches_float() {
        // 3×3 same-padding exercises the top/left padding path
        // (pad_top = 1), unlike the paper's 2×2 kernels.
        let mut rng = seeded_rng(31);
        let mut critic = Sequential::new();
        critic.push(Conv2D::new(
            1,
            4,
            (3, 3),
            Padding::Same,
            Init::HeUniform,
            &mut rng,
        ));
        critic.push(Activation::leaky_relu(0.2));
        critic.push(Flatten::new());
        critic.push(Dense::new(10 * 12 * 4, 1, Init::XavierUniform, &mut rng));
        let mut lite = LiteCritic::compile(&critic, (10, 12, 1)).unwrap();
        let x = rand_uniform(&[1, 10, 12, 1], -1.0, 1.0, &mut rng);
        let float_out = critic.forward(&x).as_slice()[0];
        let lite_out = lite.infer(x.as_slice());
        assert!(
            (float_out - lite_out).abs() / float_out.abs().max(1.0) < 0.05,
            "float {float_out} vs lite {lite_out}"
        );
    }

    #[test]
    fn lite_preserves_score_ordering() {
        // Quantization must not reorder scores across a meaningful gap —
        // the property that keeps AUROC intact (Fig 8's implicit claim).
        let mut critic = sample_critic(3, 3);
        let mut lite = LiteCritic::compile(&critic, (10, 12, 1)).unwrap();
        let mut rng = seeded_rng(4);
        let xs: Vec<Tensor> = (0..20)
            .map(|_| rand_uniform(&[1, 10, 12, 1], -1.0, 1.0, &mut rng))
            .collect();
        let float_scores: Vec<f32> = xs
            .iter()
            .map(|x| -critic.forward(x).as_slice()[0])
            .collect();
        let lite_scores: Vec<f32> = xs.iter().map(|x| lite.score(x.as_slice())).collect();
        let mut agree = 0;
        let mut pairs = 0;
        for i in 0..20 {
            for j in 0..20 {
                if float_scores[i] > float_scores[j] + 0.05 {
                    pairs += 1;
                    if lite_scores[i] > lite_scores[j] {
                        agree += 1;
                    }
                }
            }
        }
        assert!(pairs > 0);
        assert_eq!(
            agree,
            pairs,
            "quantization reordered {}/{pairs} pairs",
            pairs - agree
        );
    }

    #[test]
    fn score_is_negative_infer() {
        let critic = sample_critic(5, 1);
        let mut lite = LiteCritic::compile(&critic, (10, 12, 1)).unwrap();
        let x = vec![0.1f32; 120];
        assert_eq!(lite.score(&x), -lite.infer(&x));
    }

    #[test]
    fn compile_from_snapshot_bytes() {
        let critic = sample_critic(6, 2);
        let bytes = critic.to_bytes();
        let snap = ModelSnapshot::from_bytes(&bytes).unwrap();
        let mut lite = LiteCritic::compile_snapshot(&snap, (10, 12, 1)).unwrap();
        assert!(lite.infer(&vec![0.0; 120]).is_finite());
    }

    #[test]
    fn rejects_generator_topologies() {
        let mut rng = seeded_rng(7);
        let mut g = Sequential::new();
        g.push(Dense::new(8, 60, Init::HeUniform, &mut rng));
        g.push(vehigan_tensor::layers::Reshape::new(&[5, 6, 2]));
        let err = LiteCritic::compile(&g, (1, 1, 8));
        assert!(matches!(
            err,
            Err(CompileError::UnsupportedLayer(_)) | Err(CompileError::NotACritic(_))
        ));
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn wrong_input_length_panics() {
        let critic = sample_critic(8, 1);
        let mut lite = LiteCritic::compile(&critic, (10, 12, 1)).unwrap();
        let _ = lite.infer(&[0.0; 64]);
    }

    #[test]
    fn error_display_is_informative() {
        let e = CompileError::UnsupportedLayer("Tanh".into());
        assert!(e.to_string().contains("Tanh"));
    }

    #[test]
    fn lite_is_faster_than_float_path() {
        // The whole point of Fig 8b. Compare single-snapshot latency.
        let mut critic = sample_critic(9, 5);
        let mut lite = LiteCritic::compile(&critic, (10, 12, 1)).unwrap();
        let mut rng = seeded_rng(10);
        let x = rand_uniform(&[1, 10, 12, 1], -1.0, 1.0, &mut rng);
        let flat: Vec<f32> = x.as_slice().to_vec();
        // Warm up.
        let _ = critic.forward(&x);
        let _ = lite.infer(&flat);
        let reps = 50;
        let t0 = std::time::Instant::now();
        for _ in 0..reps {
            let _ = critic.forward(&x);
        }
        let float_t = t0.elapsed();
        let t1 = std::time::Instant::now();
        for _ in 0..reps {
            let _ = lite.infer(&flat);
        }
        let lite_t = t1.elapsed();
        assert!(
            lite_t < float_t,
            "lite ({lite_t:?}) must beat the float path ({float_t:?})"
        );
    }
}
