//! Property-based tests for per-channel symmetric quantization (satellite
//! of the int8-backend ISSUE): round-trip error is bounded by half a
//! quantization step per channel, channels are isolated (one wide channel
//! cannot degrade another's precision), and activation quantization
//! saturates exactly at ±127 — the invariants the fused int8 scorer's
//! accuracy argument rests on.

use proptest::prelude::*;
use vehigan_lite::quant::{activation_scale, quantize_activations, PerChannelQuantized};

fn weights(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-4.0f32..4.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn per_channel_round_trip_error_is_half_a_step(
        (rows, channels, w) in (1usize..20, 1usize..10).prop_flat_map(|(r, c)| {
            (Just(r), Just(c), weights(r * c))
        })
    ) {
        let q = PerChannelQuantized::quantize(rows, channels, &w).unwrap();
        let deq = q.dequantize();
        for ch in 0..channels {
            // Symmetric round-to-nearest: error ≤ scale/2, and the scale
            // is the channel's own max|w|/127, never another channel's.
            let bound = q.scales[ch] * 0.5 + 1e-7;
            for r in 0..rows {
                let i = r * channels + ch;
                prop_assert!(
                    (w[i] - deq[i]).abs() <= bound,
                    "channel {} row {}: |{} - {}| > {}",
                    ch, r, w[i], deq[i], bound
                );
            }
            prop_assert!(q.channel_max_error(ch) <= bound);
        }
    }

    #[test]
    fn channel_scales_are_independent(
        (rows, w_narrow) in (1usize..16,).prop_flat_map(|(r,)| (Just(r), weights(r)))
    ) {
        // Put a 100× wider second channel next to the narrow one; the
        // narrow channel's quantization must not coarsen.
        let rows_n = rows;
        let mut interleaved = Vec::with_capacity(rows_n * 2);
        for wi in w_narrow.iter().take(rows_n) {
            interleaved.push(*wi);
            interleaved.push(*wi * 100.0);
        }
        let alone = PerChannelQuantized::quantize(rows_n, 1, &w_narrow).unwrap();
        let paired = PerChannelQuantized::quantize(rows_n, 2, &interleaved).unwrap();
        prop_assert_eq!(alone.scales[0].to_bits(), paired.scales[0].to_bits());
        for r in 0..rows_n {
            prop_assert_eq!(alone.values[r], paired.values[r * 2]);
        }
    }

    #[test]
    fn activation_round_trip_error_is_half_a_step(
        x in weights(64)
    ) {
        let scale = activation_scale(&x).unwrap();
        let mut q = vec![0i8; x.len()];
        quantize_activations(&x, scale, &mut q);
        for (xi, qi) in x.iter().zip(&q) {
            let back = *qi as f32 * scale;
            // Half a step, plus a few ulps for the reciprocal-scale
            // multiply the hot path uses instead of a division.
            prop_assert!(
                (xi - back).abs() <= scale * 0.50001 + 1e-7,
                "|{} - {}| > {}", xi, back, scale * 0.5
            );
        }
    }

    #[test]
    fn out_of_range_activations_saturate_to_127(
        (x, factor) in (weights(32), 1.5f32..10.0)
    ) {
        // Calibrate on x, then quantize amplified values: anything past
        // the calibrated range pins at ±127 instead of wrapping.
        let scale = activation_scale(&x).unwrap();
        let amplified: Vec<f32> = x.iter().map(|v| v * factor).collect();
        let mut q = vec![0i8; x.len()];
        quantize_activations(&amplified, scale, &mut q);
        for (a, qi) in amplified.iter().zip(&q) {
            prop_assert!(*qi >= -127, "symmetric range excludes -128");
            if a.abs() > scale * 127.0 {
                prop_assert_eq!(qi.abs(), 127, "{} should saturate", a);
            }
        }
    }

    #[test]
    fn non_finite_weights_always_rejected(
        (len, pos, bad) in (1usize..40).prop_flat_map(|l| {
            (Just(l), 0..l, prop_oneof![Just(f32::NAN), Just(f32::INFINITY), Just(f32::NEG_INFINITY)])
        })
    ) {
        let mut w = vec![0.5f32; len];
        w[pos] = bad;
        prop_assert!(PerChannelQuantized::quantize(len, 1, &w).is_err());
        prop_assert!(activation_scale(&w).is_err());
    }
}
