//! # vehigan-baselines
//!
//! The comparison detectors of the VehiGAN evaluation (§IV-B):
//!
//! - [`PcaDetector`] — linear model: Mahalanobis distance in the benign
//!   covariance eigenbasis (Jacobi eigendecomposition, no LAPACK);
//! - [`KnnDetector`] — proximity model: distance to the k-th nearest
//!   benign training sample;
//! - [`GmmDetector`] — probabilistic model: negative log-likelihood under
//!   a diagonal-covariance Gaussian mixture fitted by EM;
//! - [`AeDetector`] — deep model: autoencoder reconstruction error
//!   (`BaseAE` on raw features, `VehiAE` on the engineered features).
//!
//! All detectors implement [`AnomalyDetector`] (fit on benign, score with
//! higher-is-more-anomalous), so Table III's comparison is a single loop.
//!
//! # Example
//!
//! ```
//! use vehigan_baselines::{AnomalyDetector, PcaDetector, flatten_windows};
//! use vehigan_tensor::Tensor;
//!
//! let windows = Tensor::zeros(&[8, 10, 12, 1]);
//! let mut det = PcaDetector::new();
//! det.fit(&flatten_windows(&windows));
//! let scores = det.score_batch(&flatten_windows(&windows));
//! assert_eq!(scores.len(), 8);
//! ```

#![warn(missing_docs)]

mod ae;
mod detector;
mod gmm;
mod knn;
pub mod linalg;
mod pca;

pub use ae::{AeConfig, AeDetector};
pub use detector::{flatten_windows, AnomalyDetector};
pub use gmm::GmmDetector;
pub use knn::KnnDetector;
pub use pca::PcaDetector;
