//! Dense symmetric linear algebra: covariance and Jacobi eigendecomposition.
//!
//! Supports the PCA baseline (and anything else needing spectra) without
//! pulling in a LAPACK binding. Snapshot dimensionality is small
//! (`w·f = 120`), where cyclic Jacobi is accurate and plenty fast.

/// A dense symmetric matrix stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Creates an `n×n` zero matrix.
    pub fn zeros(n: usize) -> Self {
        SymMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Dimension `n`.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Element access.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Symmetric element assignment (sets both `(i,j)` and `(j,i)`).
    pub fn set_sym(&mut self, i: usize, j: usize, v: f64) {
        self.data[i * self.n + j] = v;
        self.data[j * self.n + i] = v;
    }

    /// Sample covariance of rows (each row one observation), with the mean
    /// returned alongside.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 rows are given.
    pub fn covariance(rows: &[Vec<f64>]) -> (SymMatrix, Vec<f64>) {
        assert!(rows.len() >= 2, "covariance needs at least 2 observations");
        let n = rows[0].len();
        let m = rows.len() as f64;
        let mut mean = vec![0.0; n];
        for row in rows {
            assert_eq!(row.len(), n, "ragged rows");
            for (mu, &v) in mean.iter_mut().zip(row) {
                *mu += v;
            }
        }
        for mu in &mut mean {
            *mu /= m;
        }
        let mut cov = SymMatrix::zeros(n);
        for row in rows {
            for i in 0..n {
                let di = row[i] - mean[i];
                for j in i..n {
                    let dj = row[j] - mean[j];
                    cov.data[i * n + j] += di * dj;
                }
            }
        }
        for i in 0..n {
            for j in i..n {
                let v = cov.data[i * n + j] / (m - 1.0);
                cov.set_sym(i, j, v);
            }
        }
        (cov, mean)
    }

    /// Eigendecomposition by cyclic Jacobi rotations.
    ///
    /// Returns `(eigenvalues, eigenvectors)` sorted by descending
    /// eigenvalue; `eigenvectors[k]` is the unit eigenvector for
    /// `eigenvalues[k]`.
    pub fn eigen(&self) -> (Vec<f64>, Vec<Vec<f64>>) {
        let n = self.n;
        let mut a = self.data.clone();
        // v starts as identity; columns accumulate the eigenvectors.
        let mut v = vec![0.0; n * n];
        for i in 0..n {
            v[i * n + i] = 1.0;
        }
        let max_sweeps = 64;
        for _ in 0..max_sweeps {
            // Off-diagonal Frobenius norm as convergence measure.
            let mut off = 0.0;
            for i in 0..n {
                for j in (i + 1)..n {
                    off += a[i * n + j] * a[i * n + j];
                }
            }
            if off.sqrt() < 1e-12 {
                break;
            }
            for p in 0..n {
                for q in (p + 1)..n {
                    let apq = a[p * n + q];
                    if apq.abs() < 1e-15 {
                        continue;
                    }
                    let app = a[p * n + p];
                    let aqq = a[q * n + q];
                    let theta = (aqq - app) / (2.0 * apq);
                    let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                    let c = 1.0 / (t * t + 1.0).sqrt();
                    let s = t * c;
                    // Rotate rows/cols p and q of `a`.
                    for k in 0..n {
                        let akp = a[k * n + p];
                        let akq = a[k * n + q];
                        a[k * n + p] = c * akp - s * akq;
                        a[k * n + q] = s * akp + c * akq;
                    }
                    for k in 0..n {
                        let apk = a[p * n + k];
                        let aqk = a[q * n + k];
                        a[p * n + k] = c * apk - s * aqk;
                        a[q * n + k] = s * apk + c * aqk;
                    }
                    // Accumulate the rotation into `v`.
                    for k in 0..n {
                        let vkp = v[k * n + p];
                        let vkq = v[k * n + q];
                        v[k * n + p] = c * vkp - s * vkq;
                        v[k * n + q] = s * vkp + c * vkq;
                    }
                }
            }
        }
        let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
            .map(|j| {
                let val = a[j * n + j];
                let vec: Vec<f64> = (0..n).map(|i| v[i * n + j]).collect();
                (val, vec)
            })
            .collect();
        pairs.sort_by(|x, y| y.0.partial_cmp(&x.0).expect("finite eigenvalues"));
        let (vals, vecs) = pairs.into_iter().unzip();
        (vals, vecs)
    }
}

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

/// Squared Euclidean distance between two equal-length slices.
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eigen_of_diagonal() {
        let mut m = SymMatrix::zeros(3);
        m.set_sym(0, 0, 3.0);
        m.set_sym(1, 1, 1.0);
        m.set_sym(2, 2, 2.0);
        let (vals, vecs) = m.eigen();
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 2.0).abs() < 1e-9);
        assert!((vals[2] - 1.0).abs() < 1e-9);
        assert!((vecs[0][0].abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn eigen_of_2x2_known() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let mut m = SymMatrix::zeros(2);
        m.set_sym(0, 0, 2.0);
        m.set_sym(1, 1, 2.0);
        m.set_sym(0, 1, 1.0);
        let (vals, vecs) = m.eigen();
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 1.0).abs() < 1e-9);
        // Eigenvector for 3 is (1,1)/√2 up to sign.
        let v = &vecs[0];
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        assert!((v[0] - v[1]).abs() < 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        // Random-ish symmetric matrix.
        let n = 8;
        let mut m = SymMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                m.set_sym(i, j, ((i * 31 + j * 17) % 13) as f64 / 13.0);
            }
        }
        let (_, vecs) = m.eigen();
        for i in 0..n {
            for j in 0..n {
                let d = dot(&vecs[i], &vecs[j]);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-8, "({i},{j}) dot={d}");
            }
        }
    }

    #[test]
    fn eigen_reconstructs_matrix_action() {
        // A·v = λ·v for every eigenpair.
        let n = 6;
        let mut m = SymMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                m.set_sym(i, j, ((i + 2 * j) % 7) as f64 - 3.0);
            }
        }
        let (vals, vecs) = m.eigen();
        for (lambda, v) in vals.iter().zip(&vecs) {
            for i in 0..n {
                let av: f64 = (0..n).map(|j| m.get(i, j) * v[j]).sum();
                assert!((av - lambda * v[i]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn covariance_of_known_data() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 6.0], vec![5.0, 10.0]];
        let (cov, mean) = SymMatrix::covariance(&rows);
        assert_eq!(mean, vec![3.0, 6.0]);
        assert!((cov.get(0, 0) - 4.0).abs() < 1e-12);
        assert!((cov.get(1, 1) - 16.0).abs() < 1e-12);
        assert!((cov.get(0, 1) - 8.0).abs() < 1e-12); // perfectly correlated
    }

    #[test]
    fn distance_helpers() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(dist_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
    }
}
