//! The common anomaly-detector interface all baselines implement.

use vehigan_tensor::Tensor;

/// An unsupervised anomaly detector over flattened snapshots.
///
/// Detectors are fitted on benign data only and score test samples with
/// *higher = more anomalous*, matching VehiGAN's `s(x) = −D(x)` convention
/// so all detectors share the same evaluation harness.
pub trait AnomalyDetector: Send {
    /// Fits the detector on benign samples, shape `[n, d]`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not 2-D or `n < 2`.
    fn fit(&mut self, x: &Tensor);

    /// Anomaly scores for samples, shape `[n, d]`. Requires a prior `fit`.
    ///
    /// # Panics
    ///
    /// Panics if called before `fit` or on a dimension mismatch.
    fn score_batch(&mut self, x: &Tensor) -> Vec<f32>;

    /// Short detector name for reports, e.g. `"PCA"`.
    fn name(&self) -> &'static str;
}

/// Flattens snapshot windows `[n, w, f, 1]` (or any `[n, …]`) to `[n, d]`.
///
/// # Examples
///
/// ```
/// use vehigan_tensor::Tensor;
/// use vehigan_baselines::flatten_windows;
///
/// let x = Tensor::zeros(&[4, 10, 12, 1]);
/// assert_eq!(flatten_windows(&x).shape(), &[4, 120]);
/// ```
pub fn flatten_windows(x: &Tensor) -> Tensor {
    let n = x.shape()[0];
    let d: usize = x.shape()[1..].iter().product();
    x.reshape(&[n, d])
}

/// Extracts row `i` of a `[n, d]` tensor as `f64` values.
pub(crate) fn row_f64(x: &Tensor, i: usize) -> Vec<f64> {
    let d = x.shape()[1];
    x.as_slice()[i * d..(i + 1) * d]
        .iter()
        .map(|&v| v as f64)
        .collect()
}

/// All rows of a `[n, d]` tensor as `f64` vectors.
pub(crate) fn rows_f64(x: &Tensor) -> Vec<Vec<f64>> {
    assert_eq!(x.ndim(), 2, "expected [n, d] samples, got {:?}", x.shape());
    (0..x.shape()[0]).map(|i| row_f64(x, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_keeps_batch_dim() {
        let x = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[2, 3, 2, 1]);
        let flat = flatten_windows(&x);
        assert_eq!(flat.shape(), &[2, 6]);
        assert_eq!(flat.as_slice()[6], 6.0);
    }

    #[test]
    fn rows_roundtrip() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let rows = rows_f64(&x);
        assert_eq!(rows, vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
    }
}
