//! PCA outlier detection (§IV-B.1, [27]).
//!
//! Fits the benign covariance spectrum and scores samples by the sum of
//! squared projections onto the eigenvectors weighted by inverse
//! eigenvalue — the Mahalanobis distance in the eigenbasis. Deviations
//! along minor (low-variance) components, which benign physics never
//! exercises, dominate the score.

use crate::detector::{rows_f64, AnomalyDetector};
use crate::linalg::{dot, SymMatrix};
use vehigan_tensor::Tensor;

/// PCA-based outlier detector.
///
/// # Examples
///
/// ```
/// use vehigan_baselines::{AnomalyDetector, PcaDetector};
/// use vehigan_tensor::Tensor;
///
/// // Benign data lives on the x-axis; the outlier is off-axis.
/// let train = Tensor::from_vec(vec![1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0], &[4, 2]);
/// let mut pca = PcaDetector::new();
/// pca.fit(&train);
/// let scores = pca.score_batch(&Tensor::from_vec(vec![2.5, 0.0, 2.5, 5.0], &[2, 2]));
/// assert!(scores[1] > scores[0]);
/// ```
#[derive(Debug, Default)]
pub struct PcaDetector {
    mean: Vec<f64>,
    eigenvalues: Vec<f64>,
    eigenvectors: Vec<Vec<f64>>,
}

impl PcaDetector {
    /// Creates an unfitted detector.
    pub fn new() -> Self {
        PcaDetector::default()
    }

    fn fitted(&self) -> bool {
        !self.eigenvectors.is_empty()
    }
}

impl AnomalyDetector for PcaDetector {
    fn fit(&mut self, x: &Tensor) {
        let rows = rows_f64(x);
        let (cov, mean) = SymMatrix::covariance(&rows);
        let (vals, vecs) = cov.eigen();
        self.mean = mean;
        // Floor tiny/negative eigenvalues so inverse weighting stays sane.
        let floor = vals.first().copied().unwrap_or(1.0).abs().max(1e-12) * 1e-6;
        self.eigenvalues = vals.into_iter().map(|v| v.max(floor)).collect();
        self.eigenvectors = vecs;
    }

    fn score_batch(&mut self, x: &Tensor) -> Vec<f32> {
        assert!(self.fitted(), "PcaDetector::score_batch before fit");
        rows_f64(x)
            .into_iter()
            .map(|row| {
                let centered: Vec<f64> = row.iter().zip(&self.mean).map(|(&v, &m)| v - m).collect();
                let score: f64 = self
                    .eigenvectors
                    .iter()
                    .zip(&self.eigenvalues)
                    .map(|(vec, &lambda)| {
                        let proj = dot(&centered, vec);
                        proj * proj / lambda
                    })
                    .sum();
                score as f32
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "PCA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Correlated benign data: y ≈ 2x. Outliers break the correlation.
    fn correlated_data(n: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * 2);
        for _ in 0..n {
            let x: f32 = rng.gen_range(-1.0..1.0);
            let noise: f32 = rng.gen_range(-0.01..0.01);
            data.push(x);
            data.push(2.0 * x + noise);
        }
        Tensor::from_vec(data, &[n, 2])
    }

    #[test]
    fn detects_correlation_violations() {
        let mut pca = PcaDetector::new();
        pca.fit(&correlated_data(500, 1));
        // In-manifold point vs off-manifold point of the same magnitude.
        let queries = Tensor::from_vec(vec![0.5, 1.0, 0.5, -1.0], &[2, 2]);
        let scores = pca.score_batch(&queries);
        assert!(
            scores[1] > scores[0] * 10.0,
            "off-manifold {} vs on-manifold {}",
            scores[1],
            scores[0]
        );
    }

    #[test]
    fn benign_scores_are_small() {
        let mut pca = PcaDetector::new();
        let train = correlated_data(500, 2);
        pca.fit(&train);
        let scores = pca.score_batch(&correlated_data(100, 3));
        // Mahalanobis² of in-distribution 2-D data ≈ χ²(2), mean 2.
        let mean: f32 = scores.iter().sum::<f32>() / scores.len() as f32;
        assert!(mean < 10.0, "mean benign score {mean}");
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn score_before_fit_panics() {
        let mut pca = PcaDetector::new();
        let _ = pca.score_batch(&Tensor::zeros(&[1, 2]));
    }

    #[test]
    fn name_is_pca() {
        assert_eq!(PcaDetector::new().name(), "PCA");
    }
}
