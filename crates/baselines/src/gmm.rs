//! Gaussian mixture model outlier detection (§IV-B.3, [29]).
//!
//! Diagonal-covariance GMM fitted by EM; the anomaly score is the negative
//! log-likelihood under the fitted mixture.

use crate::detector::{rows_f64, AnomalyDetector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vehigan_tensor::Tensor;

/// GMM-based outlier detector with diagonal covariances.
///
/// # Examples
///
/// ```
/// use vehigan_baselines::{AnomalyDetector, GmmDetector};
/// use vehigan_tensor::Tensor;
///
/// let train = Tensor::from_vec((0..100).map(|i| (i % 10) as f32 * 0.01).collect(), &[100, 1]);
/// let mut gmm = GmmDetector::new(2, 30, 7);
/// gmm.fit(&train);
/// let s = gmm.score_batch(&Tensor::from_vec(vec![0.05, 10.0], &[2, 1]));
/// assert!(s[1] > s[0]);
/// ```
#[derive(Debug)]
pub struct GmmDetector {
    n_components: usize,
    n_iters: usize,
    seed: u64,
    weights: Vec<f64>,
    means: Vec<Vec<f64>>,
    variances: Vec<Vec<f64>>,
}

const VAR_FLOOR: f64 = 1e-6;

impl GmmDetector {
    /// Creates a detector with `n_components` Gaussians, `n_iters` EM
    /// iterations and a deterministic `seed` for initialization.
    ///
    /// # Panics
    ///
    /// Panics if `n_components == 0` or `n_iters == 0`.
    pub fn new(n_components: usize, n_iters: usize, seed: u64) -> Self {
        assert!(n_components > 0, "need at least one component");
        assert!(n_iters > 0, "need at least one EM iteration");
        GmmDetector {
            n_components,
            n_iters,
            seed,
            weights: Vec::new(),
            means: Vec::new(),
            variances: Vec::new(),
        }
    }

    /// Log density of `row` under component `k` (diagonal Gaussian).
    fn log_component(&self, k: usize, row: &[f64]) -> f64 {
        let mut log_p = 0.0;
        for ((&x, &mu), &var) in row.iter().zip(&self.means[k]).zip(&self.variances[k]) {
            let d = x - mu;
            log_p += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + d * d / var);
        }
        log_p
    }

    /// Log-likelihood of `row` under the mixture (log-sum-exp).
    fn log_likelihood(&self, row: &[f64]) -> f64 {
        let logs: Vec<f64> = (0..self.n_components)
            .map(|k| self.weights[k].max(1e-300).ln() + self.log_component(k, row))
            .collect();
        log_sum_exp(&logs)
    }
}

impl Default for GmmDetector {
    /// Four components, 40 EM iterations, seed 0.
    fn default() -> Self {
        GmmDetector::new(4, 40, 0)
    }
}

fn log_sum_exp(logs: &[f64]) -> f64 {
    let m = logs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if m.is_infinite() {
        return m;
    }
    m + logs.iter().map(|&l| (l - m).exp()).sum::<f64>().ln()
}

impl AnomalyDetector for GmmDetector {
    fn fit(&mut self, x: &Tensor) {
        let rows = rows_f64(x);
        let n = rows.len();
        let d = rows[0].len();
        assert!(n >= self.n_components, "fewer samples than components");
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Init: means at random data points, shared global variance.
        let mut global_var = vec![0.0; d];
        let mut mean_all = vec![0.0; d];
        for row in &rows {
            for (m, &v) in mean_all.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean_all {
            *m /= n as f64;
        }
        for row in &rows {
            for ((gv, &v), &m) in global_var.iter_mut().zip(row).zip(&mean_all) {
                *gv += (v - m) * (v - m);
            }
        }
        for gv in &mut global_var {
            *gv = (*gv / n as f64).max(VAR_FLOOR);
        }
        self.weights = vec![1.0 / self.n_components as f64; self.n_components];
        self.means = (0..self.n_components)
            .map(|_| rows[rng.gen_range(0..n)].clone())
            .collect();
        self.variances = vec![global_var.clone(); self.n_components];

        let mut resp = vec![vec![0.0f64; self.n_components]; n];
        for _ in 0..self.n_iters {
            // E step.
            for (i, row) in rows.iter().enumerate() {
                let logs: Vec<f64> = (0..self.n_components)
                    .map(|k| self.weights[k].max(1e-300).ln() + self.log_component(k, row))
                    .collect();
                let lse = log_sum_exp(&logs);
                for k in 0..self.n_components {
                    resp[i][k] = (logs[k] - lse).exp();
                }
            }
            // M step.
            for k in 0..self.n_components {
                let nk: f64 = resp.iter().map(|r| r[k]).sum();
                if nk < 1e-9 {
                    // Dead component: re-seed at a random data point.
                    self.means[k] = rows[rng.gen_range(0..n)].clone();
                    self.variances[k] = global_var.clone();
                    self.weights[k] = 1e-6;
                    continue;
                }
                self.weights[k] = nk / n as f64;
                for j in 0..d {
                    let mu: f64 = rows
                        .iter()
                        .zip(&resp)
                        .map(|(row, r)| r[k] * row[j])
                        .sum::<f64>()
                        / nk;
                    self.means[k][j] = mu;
                }
                for j in 0..d {
                    let var: f64 = rows
                        .iter()
                        .zip(&resp)
                        .map(|(row, r)| {
                            let dlt = row[j] - self.means[k][j];
                            r[k] * dlt * dlt
                        })
                        .sum::<f64>()
                        / nk;
                    self.variances[k][j] = var.max(VAR_FLOOR);
                }
            }
            let wsum: f64 = self.weights.iter().sum();
            for w in &mut self.weights {
                *w /= wsum;
            }
        }
    }

    fn score_batch(&mut self, x: &Tensor) -> Vec<f32> {
        assert!(
            !self.means.is_empty(),
            "GmmDetector::score_batch before fit"
        );
        rows_f64(x)
            .into_iter()
            .map(|row| (-self.log_likelihood(&row)) as f32)
            .collect()
    }

    fn name(&self) -> &'static str {
        "GMM"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated clusters.
    fn bimodal(n: usize) -> Tensor {
        let mut data = Vec::with_capacity(n * 2);
        for i in 0..n {
            let center = if i % 2 == 0 { -2.0 } else { 2.0 };
            let jitter = ((i * 31) % 100) as f32 / 500.0 - 0.1;
            data.push(center + jitter);
            data.push(center * 0.5 + jitter);
        }
        Tensor::from_vec(data, &[n, 2])
    }

    #[test]
    fn bimodal_data_scored_correctly() {
        let mut gmm = GmmDetector::new(2, 50, 1);
        gmm.fit(&bimodal(200));
        // Both cluster centers should be likely; the midpoint unlikely.
        let q = Tensor::from_vec(vec![-2.0, -1.0, 2.0, 1.0, 0.0, 0.0], &[3, 2]);
        let s = gmm.score_batch(&q);
        assert!(s[2] > s[0] && s[2] > s[1], "{s:?}");
    }

    #[test]
    fn weights_sum_to_one() {
        let mut gmm = GmmDetector::new(3, 30, 2);
        gmm.fit(&bimodal(150));
        let sum: f64 = gmm.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn far_outlier_has_extreme_score() {
        let mut gmm = GmmDetector::default();
        gmm.fit(&bimodal(200));
        let s = gmm.score_batch(&Tensor::from_vec(vec![-2.0, -1.0, 100.0, 100.0], &[2, 2]));
        assert!(s[1] > s[0] + 100.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = GmmDetector::new(2, 20, 5);
        let mut b = GmmDetector::new(2, 20, 5);
        a.fit(&bimodal(100));
        b.fit(&bimodal(100));
        let q = bimodal(10);
        assert_eq!(a.score_batch(&q), b.score_batch(&q));
    }

    #[test]
    fn log_sum_exp_stable() {
        assert!((log_sum_exp(&[-1000.0, -1000.0]) - (-1000.0 + 2f64.ln())).abs() < 1e-9);
        assert_eq!(log_sum_exp(&[f64::NEG_INFINITY]), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn score_before_fit_panics() {
        let mut gmm = GmmDetector::default();
        let _ = gmm.score_batch(&Tensor::zeros(&[1, 2]));
    }
}
