//! Autoencoder outlier detection (§IV-B.4, [30]).
//!
//! The paper's DL baseline: an autoencoder trained to reconstruct benign
//! snapshots; the anomaly score is the reconstruction error. Trained on
//! raw features it is `BaseAE`; on the engineered features it is `VehiAE`
//! (Table III).

use crate::detector::AnomalyDetector;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use vehigan_tensor::init::seeded_rng;
use vehigan_tensor::layers::{Activation, Dense};
use vehigan_tensor::optim::{Adam, Optimizer};
use vehigan_tensor::{Init, Sequential, Tensor};

/// Autoencoder training hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AeConfig {
    /// Bottleneck width.
    pub bottleneck: usize,
    /// Hidden layer width (encoder and decoder mirror each other).
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// RNG seed (init + shuffling).
    pub seed: u64,
}

impl Default for AeConfig {
    fn default() -> Self {
        AeConfig {
            bottleneck: 16,
            hidden: 64,
            epochs: 20,
            batch_size: 64,
            learning_rate: 1e-3,
            seed: 0,
        }
    }
}

/// Autoencoder-based outlier detector (reconstruction error score).
#[derive(Debug)]
pub struct AeDetector {
    config: AeConfig,
    model: Option<Sequential>,
    input_dim: usize,
    /// Mean training loss per epoch (observability for experiments).
    pub loss_history: Vec<f32>,
}

impl AeDetector {
    /// Creates an unfitted detector.
    pub fn new(config: AeConfig) -> Self {
        AeDetector {
            config,
            model: None,
            input_dim: 0,
            loss_history: Vec::new(),
        }
    }

    fn build_model(&self, d: usize) -> Sequential {
        let mut rng = seeded_rng(self.config.seed);
        let h = self.config.hidden.min(d * 4).max(self.config.bottleneck);
        let mut m = Sequential::new();
        m.push(Dense::new(d, h, Init::HeUniform, &mut rng));
        m.push(Activation::leaky_relu(0.2));
        m.push(Dense::new(
            h,
            self.config.bottleneck,
            Init::HeUniform,
            &mut rng,
        ));
        m.push(Activation::leaky_relu(0.2));
        m.push(Dense::new(
            self.config.bottleneck,
            h,
            Init::HeUniform,
            &mut rng,
        ));
        m.push(Activation::leaky_relu(0.2));
        m.push(Dense::new(h, d, Init::XavierUniform, &mut rng));
        m
    }
}

impl Default for AeDetector {
    fn default() -> Self {
        AeDetector::new(AeConfig::default())
    }
}

impl AnomalyDetector for AeDetector {
    fn fit(&mut self, x: &Tensor) {
        assert_eq!(x.ndim(), 2, "expected [n, d] samples");
        let n = x.shape()[0];
        let d = x.shape()[1];
        assert!(n >= 2, "need at least 2 training samples");
        self.input_dim = d;
        let mut model = self.build_model(d);
        let mut opt = Adam::new(self.config.learning_rate);
        let mut shuffle_rng = rand::rngs::StdRng::seed_from_u64(self.config.seed ^ 0xAE);
        let mut indices: Vec<usize> = (0..n).collect();
        self.loss_history.clear();

        for _epoch in 0..self.config.epochs {
            indices.shuffle(&mut shuffle_rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0;
            for chunk in indices.chunks(self.config.batch_size) {
                let batch = x.take(chunk);
                let out = model.forward(&batch);
                // MSE loss: L = mean((out − x)²); dL/dout = 2(out − x)/N.
                let diff = &out - &batch;
                let loss = diff.map(|v| v * v).mean();
                let grad = &diff * (2.0 / diff.len() as f32);
                model.zero_grad();
                model.backward(&grad);
                opt.step(&mut model.params_mut());
                epoch_loss += loss;
                batches += 1;
            }
            self.loss_history.push(epoch_loss / batches.max(1) as f32);
        }
        self.model = Some(model);
    }

    fn score_batch(&mut self, x: &Tensor) -> Vec<f32> {
        let model = self
            .model
            .as_mut()
            .expect("AeDetector::score_batch before fit");
        assert_eq!(x.shape()[1], self.input_dim, "input dim mismatch");
        let out = model.forward(x);
        let n = x.shape()[0];
        let d = self.input_dim;
        let xo = x.as_slice();
        let oo = out.as_slice();
        (0..n)
            .map(|i| {
                let mut mse = 0.0f32;
                for j in 0..d {
                    let e = oo[i * d + j] - xo[i * d + j];
                    mse += e * e;
                }
                mse / d as f32
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "AE"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Benign data on a 1-D manifold inside 4-D space.
    fn manifold_data(n: usize, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * 4);
        for _ in 0..n {
            let t: f32 = rng.gen_range(-1.0..1.0);
            data.extend_from_slice(&[t, 0.5 * t, -t, 0.8 * t]);
        }
        Tensor::from_vec(data, &[n, 4])
    }

    fn quick_config() -> AeConfig {
        AeConfig {
            bottleneck: 2,
            hidden: 16,
            epochs: 60,
            batch_size: 32,
            learning_rate: 3e-3,
            seed: 1,
        }
    }

    #[test]
    fn training_loss_decreases() {
        let mut ae = AeDetector::new(quick_config());
        ae.fit(&manifold_data(256, 0));
        let first = ae.loss_history[0];
        let last = *ae.loss_history.last().unwrap();
        assert!(last < first * 0.5, "loss {first} → {last}");
    }

    #[test]
    fn off_manifold_scores_higher() {
        let mut ae = AeDetector::new(quick_config());
        ae.fit(&manifold_data(512, 2));
        let queries = Tensor::from_vec(
            vec![
                0.5, 0.25, -0.5, 0.4, // on-manifold
                0.5, -0.9, 0.5, -0.9, // off-manifold
            ],
            &[2, 4],
        );
        let s = ae.score_batch(&queries);
        assert!(s[1] > s[0] * 3.0, "{s:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = AeDetector::new(quick_config());
        let mut b = AeDetector::new(quick_config());
        let x = manifold_data(128, 3);
        a.fit(&x);
        b.fit(&x);
        let q = manifold_data(8, 4);
        assert_eq!(a.score_batch(&q), b.score_batch(&q));
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn score_before_fit_panics() {
        let mut ae = AeDetector::default();
        let _ = ae.score_batch(&Tensor::zeros(&[1, 4]));
    }

    #[test]
    #[should_panic(expected = "input dim mismatch")]
    fn dim_mismatch_panics() {
        let mut ae = AeDetector::new(quick_config());
        ae.fit(&manifold_data(64, 5));
        let _ = ae.score_batch(&Tensor::zeros(&[1, 7]));
    }
}
