//! k-nearest-neighbor outlier detection (§IV-B.2, [28]).
//!
//! Scores a sample by its distance to the k-th nearest benign training
//! sample. Exact brute force over a (deterministic) training subsample —
//! at snapshot dimensionality there is no point in an index structure.

use crate::detector::{rows_f64, AnomalyDetector};
use crate::linalg::dist_sq;
use vehigan_tensor::Tensor;

/// KNN-based outlier detector.
///
/// # Examples
///
/// ```
/// use vehigan_baselines::{AnomalyDetector, KnnDetector};
/// use vehigan_tensor::Tensor;
///
/// let train = Tensor::from_vec(vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5], &[6, 1]);
/// let mut knn = KnnDetector::new(2, 1000);
/// knn.fit(&train);
/// let scores = knn.score_batch(&Tensor::from_vec(vec![0.25, 9.0], &[2, 1]));
/// assert!(scores[1] > scores[0]);
/// ```
#[derive(Debug)]
pub struct KnnDetector {
    k: usize,
    max_train: usize,
    train: Vec<Vec<f64>>,
}

impl KnnDetector {
    /// Creates a detector using the `k`-th neighbor distance, keeping at
    /// most `max_train` training samples (evenly strided subsample).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `max_train <= k`.
    pub fn new(k: usize, max_train: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(max_train > k, "max_train must exceed k");
        KnnDetector {
            k,
            max_train,
            train: Vec::new(),
        }
    }
}

impl Default for KnnDetector {
    /// `k = 5`, up to 2,000 retained training samples.
    fn default() -> Self {
        KnnDetector::new(5, 2000)
    }
}

impl AnomalyDetector for KnnDetector {
    fn fit(&mut self, x: &Tensor) {
        let rows = rows_f64(x);
        assert!(
            rows.len() > self.k,
            "need more than k={} training samples, got {}",
            self.k,
            rows.len()
        );
        if rows.len() <= self.max_train {
            self.train = rows;
        } else {
            // Deterministic even-stride subsample preserves coverage.
            let stride = rows.len() as f64 / self.max_train as f64;
            self.train = (0..self.max_train)
                .map(|i| rows[(i as f64 * stride) as usize].clone())
                .collect();
        }
    }

    fn score_batch(&mut self, x: &Tensor) -> Vec<f32> {
        assert!(
            !self.train.is_empty(),
            "KnnDetector::score_batch before fit"
        );
        rows_f64(x)
            .into_iter()
            .map(|query| {
                let mut dists: Vec<f64> = self.train.iter().map(|t| dist_sq(&query, t)).collect();
                let kth = self.k - 1;
                dists.select_nth_unstable_by(kth, |a, b| {
                    a.partial_cmp(b).expect("finite distances")
                });
                dists[kth].sqrt() as f32
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "KNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize) -> Tensor {
        // Tight cluster around the origin.
        let data: Vec<f32> = (0..n * 2)
            .map(|i| ((i * 37) % 100) as f32 / 1000.0)
            .collect();
        Tensor::from_vec(data, &[n, 2])
    }

    #[test]
    fn outlier_scores_higher_than_inlier() {
        let mut knn = KnnDetector::new(3, 1000);
        knn.fit(&cluster(50));
        let q = Tensor::from_vec(vec![0.05, 0.05, 5.0, 5.0], &[2, 2]);
        let s = knn.score_batch(&q);
        assert!(s[1] > s[0] * 10.0);
    }

    #[test]
    fn kth_distance_is_exact() {
        // Train at 0, 1, 2, 3 on a line. Query at 0: distances 0,1,2,3;
        // k=2 → 1.0.
        let train = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[4, 1]);
        let mut knn = KnnDetector::new(2, 100);
        knn.fit(&train);
        let s = knn.score_batch(&Tensor::from_vec(vec![0.0], &[1, 1]));
        assert!((s[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn subsampling_caps_training_set() {
        let mut knn = KnnDetector::new(2, 10);
        knn.fit(&cluster(100));
        assert_eq!(knn.train.len(), 10);
        // Still functional.
        let s = knn.score_batch(&Tensor::from_vec(vec![9.0, 9.0], &[1, 2]));
        assert!(s[0] > 1.0);
    }

    #[test]
    fn deterministic() {
        let mut a = KnnDetector::new(3, 20);
        let mut b = KnnDetector::new(3, 20);
        a.fit(&cluster(100));
        b.fit(&cluster(100));
        let q = cluster(5);
        assert_eq!(a.score_batch(&q), b.score_batch(&q));
    }

    #[test]
    #[should_panic(expected = "before fit")]
    fn score_before_fit_panics() {
        let mut knn = KnnDetector::default();
        let _ = knn.score_batch(&Tensor::zeros(&[1, 2]));
    }
}
