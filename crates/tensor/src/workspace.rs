//! Reusable scratch-buffer arena for inference and im2col expansion.
//!
//! The steady-state scoring path (`Wgan::score_batch` → `Sequential::infer`)
//! used to allocate a fresh `Vec<f32>` for every layer activation and every
//! im2col expansion of every call. A [`Workspace`] turns that into a pool:
//! buffers are taken by capacity, zero-filled, and recycled when the caller
//! is done with them, so after warm-up a scoring call performs no heap
//! allocation at all ([`Workspace::pooled_bytes`] is stable — a property the
//! test suite pins down).
//!
//! The pool is intentionally simple: a handful of `Vec<f32>`s per model
//! (one per distinct activation size), best-fit matched by capacity. It is
//! not a general allocator — buffers the caller never gives back are simply
//! reallocated on the next round, which converges after one pass because
//! layer shapes are static.

/// A pool of reusable `f32` buffers.
#[derive(Debug, Default)]
pub struct Workspace {
    pool: Vec<Vec<f32>>,
}

impl Workspace {
    /// Creates an empty workspace; buffers are created on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a zero-filled buffer of exactly `len` elements from the pool,
    /// growing one if no pooled buffer is large enough. Best-fit by
    /// capacity so one big buffer does not get burned on a small request.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let mut best: Option<usize> = None;
        for (i, b) in self.pool.iter().enumerate() {
            if b.capacity() >= len {
                let better = match best {
                    Some(j) => b.capacity() < self.pool[j].capacity(),
                    None => true,
                };
                if better {
                    best = Some(i);
                }
            }
        }
        match best {
            Some(i) => {
                let mut buf = self.pool.swap_remove(i);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => vec![0.0; len],
        }
    }

    /// Returns a buffer to the pool for reuse. Contents are discarded.
    pub fn recycle(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 {
            self.pool.push(buf);
        }
    }

    /// Total capacity currently held by the pool, in bytes. Stable across
    /// repeated identical inference calls once warmed up — the invariant
    /// the no-allocation tests assert.
    pub fn pooled_bytes(&self) -> usize {
        self.pool
            .iter()
            .map(|b| b.capacity() * std::mem::size_of::<f32>())
            .sum()
    }

    /// Number of buffers currently pooled.
    pub fn pooled_buffers(&self) -> usize {
        self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_returns_zeroed_buffer_of_exact_len() {
        let mut ws = Workspace::new();
        let mut b = ws.take(10);
        assert_eq!(b.len(), 10);
        assert!(b.iter().all(|&v| v == 0.0));
        b[3] = 7.0;
        ws.recycle(b);
        let b2 = ws.take(10);
        assert_eq!(b2.len(), 10);
        assert!(
            b2.iter().all(|&v| v == 0.0),
            "recycled buffer must be re-zeroed"
        );
    }

    #[test]
    fn pool_is_stable_after_warmup() {
        let mut ws = Workspace::new();
        // Simulate a two-layer inference: one big + one small buffer.
        for _ in 0..3 {
            let big = ws.take(1024);
            let small = ws.take(16);
            ws.recycle(big);
            ws.recycle(small);
        }
        let settled = ws.pooled_bytes();
        for _ in 0..10 {
            let big = ws.take(1024);
            let small = ws.take(16);
            ws.recycle(big);
            ws.recycle(small);
        }
        assert_eq!(ws.pooled_bytes(), settled, "steady state must not allocate");
        assert_eq!(ws.pooled_buffers(), 2);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        ws.recycle(Vec::with_capacity(1000));
        ws.recycle(Vec::with_capacity(100));
        let b = ws.take(50);
        assert!(b.capacity() < 1000, "should have used the 100-cap buffer");
        assert_eq!(ws.pooled_buffers(), 1);
    }

    #[test]
    fn zero_len_take_is_fine() {
        let mut ws = Workspace::new();
        let b = ws.take(0);
        assert!(b.is_empty());
        ws.recycle(b); // zero-capacity buffers are dropped, not pooled
        assert_eq!(ws.pooled_buffers(), 0);
    }
}
