//! # vehigan-tensor
//!
//! The deep-learning substrate of the VehiGAN reproduction: a small,
//! dependency-free (beyond `rand`/`serde`) CPU tensor library with
//! hand-written exact backpropagation.
//!
//! The VehiGAN paper (ICDCS 2024) trains Wasserstein GANs in
//! Keras/TensorFlow; since no comparable Rust training stack exists, this
//! crate rebuilds the needed subset from scratch:
//!
//! - [`Tensor`]: dense row-major `f32` tensors with shape checking;
//! - [`layers`]: `Dense`, `Conv2D` (im2col, 2×2 kernels), `UpSample2D`,
//!   `LeakyReLU`/`Tanh`/`Sigmoid`, `Flatten`, `Reshape`;
//! - [`Sequential`]: a model container whose backward pass propagates
//!   gradients **to the input** — the primitive behind both WGAN training
//!   and the paper's FGSM attacks (Eqs. 6–7);
//! - [`optim`]: `Sgd`, `RmsProp` (the WGAN-with-clipping pairing), `Adam`;
//! - [`serialize`]: a flat binary model format for shipping trained critics
//!   to the OBU/RSU testing phase;
//! - [`gradcheck`]: finite-difference verification used throughout the test
//!   suite to prove every backward pass exact.
//!
//! # Example: a miniature critic
//!
//! ```
//! use vehigan_tensor::{Sequential, Tensor, Init, init::seeded_rng};
//! use vehigan_tensor::layers::{Conv2D, Padding, Activation, Flatten, Dense};
//!
//! let mut rng = seeded_rng(42);
//! let mut critic = Sequential::new();
//! critic.push(Conv2D::new(1, 8, (2, 2), Padding::Same, Init::HeUniform, &mut rng));
//! critic.push(Activation::leaky_relu(0.2));
//! critic.push(Flatten::new());
//! critic.push(Dense::new(10 * 12 * 8, 1, Init::XavierUniform, &mut rng));
//!
//! let window = Tensor::zeros(&[1, 10, 12, 1]); // one w×f BSM snapshot
//! let realism = critic.forward(&window);
//! assert_eq!(realism.shape(), &[1, 1]);
//!
//! // ∇ₓ D(x) — the FGSM primitive.
//! let grad = critic.input_gradient(&window);
//! assert_eq!(grad.shape(), window.shape());
//! ```

#![warn(missing_docs)]

pub mod gemm;
pub mod gradcheck;
pub mod init;
pub mod layer;
pub mod layers;
mod model;
pub mod optim;
pub mod serialize;
mod tensor;
pub mod workspace;

pub use init::Init;
pub use model::Sequential;
pub use tensor::Tensor;
pub use workspace::Workspace;

#[cfg(test)]
mod send_sync_tests {
    use super::*;

    #[test]
    fn tensor_is_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Tensor>();
        assert_sync::<Tensor>();
    }

    #[test]
    fn sequential_is_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Sequential>();
        // Sync is what lets parallel ensemble scoring share models across
        // scoped threads through `&self`.
        assert_sync::<Sequential>();
    }
}
