//! The [`Layer`] trait and trainable [`Param`] storage.
//!
//! Every layer implements an explicit forward pass that caches whatever the
//! backward pass needs, and a backward pass that (a) accumulates gradients
//! into its parameters and (b) returns the gradient with respect to its
//! *input*. Propagating input gradients all the way back to the data is what
//! enables both WGAN training and the FGSM adversarial attacks of the paper
//! (Eqs. 6–7), which differentiate the critic score w.r.t. the BSM window.

use crate::workspace::Workspace;
use crate::Tensor;

/// A trainable parameter: a value tensor paired with its gradient
/// accumulator.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current parameter values.
    pub value: Tensor,
    /// Accumulated gradient of the loss w.r.t. `value`.
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter with a zeroed gradient of matching shape.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Resets the gradient accumulator to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }
}

/// A differentiable network layer.
///
/// Layers are stateful: `forward` caches activations needed by `backward`.
/// A layer must therefore not be shared across concurrent forward passes;
/// each training thread owns its own model.
pub trait Layer: Send + Sync {
    /// Computes the layer output for `input`.
    ///
    /// The leading axis of `input` is always the batch dimension.
    fn forward(&mut self, input: &Tensor) -> Tensor;

    /// Inference-only forward pass: numerically identical to [`forward`]
    /// (same kernels, same reduction order) but caches nothing, works
    /// through `&self`, and serves scratch from `ws` so the steady state
    /// performs no heap allocation. Takes `input` by value so intermediate
    /// activations can be recycled into the workspace (or mutated in
    /// place) as they flow through a [`crate::Sequential`].
    ///
    /// [`forward`]: Layer::forward
    fn infer(&self, input: Tensor, ws: &mut Workspace) -> Tensor;

    /// Back-propagates `grad_out` (gradient w.r.t. this layer's output),
    /// accumulating parameter gradients and returning the gradient w.r.t.
    /// the layer input.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` (no cached activation).
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Hands a dead output tensor of this layer back so its allocation can
    /// be reused by the next [`forward`]. Called by
    /// [`crate::Sequential::forward`] once the following layer has consumed
    /// the activation; the default implementation simply drops it.
    ///
    /// [`forward`]: Layer::forward
    fn reclaim(&mut self, _output: Tensor) {}

    /// Mutable access to the layer's trainable parameters (possibly empty).
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Immutable access to the layer's trainable parameters.
    fn params(&self) -> Vec<&Param>;

    /// Human-readable layer kind, e.g. `"Dense"`.
    fn name(&self) -> &'static str;

    /// Output shape (excluding batch) for a given input shape (excluding
    /// batch). Used for model construction-time shape validation.
    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize>;

    /// Serializes layer hyperparameters + weights into `spec`/`blob` form.
    fn save(&self) -> crate::serialize::LayerSnapshot;
}
