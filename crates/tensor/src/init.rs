//! Weight initializers and RNG helpers.
//!
//! All randomness in the VehiGAN stack flows through explicitly seeded
//! [`rand::rngs::StdRng`] values so experiments are reproducible.

use crate::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Strategy used to initialize layer weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Init {
    /// Xavier/Glorot uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    ///
    /// Suited to tanh/linear activations (the generator output).
    XavierUniform,
    /// He/Kaiming uniform: `U(-a, a)` with `a = sqrt(6 / fan_in)`.
    ///
    /// Suited to (Leaky)ReLU activations (generator/critic hidden layers).
    HeUniform,
    /// All zeros (biases).
    Zeros,
}

impl Init {
    /// Samples a tensor of the given shape using `fan_in`/`fan_out`.
    pub fn sample(
        self,
        shape: &[usize],
        fan_in: usize,
        fan_out: usize,
        rng: &mut StdRng,
    ) -> Tensor {
        let n: usize = shape.iter().product();
        let data: Vec<f32> = match self {
            Init::XavierUniform => {
                let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
                (0..n).map(|_| rng.gen_range(-a..=a)).collect()
            }
            Init::HeUniform => {
                let a = (6.0 / fan_in as f32).sqrt();
                (0..n).map(|_| rng.gen_range(-a..=a)).collect()
            }
            Init::Zeros => vec![0.0; n],
        };
        Tensor::from_vec(data, shape)
    }
}

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use vehigan_tensor::init::seeded_rng;
/// use rand::Rng;
///
/// let mut a = seeded_rng(7);
/// let mut b = seeded_rng(7);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Samples a standard-normal tensor (Box–Muller), used for WGAN noise `z`.
pub fn randn(shape: &[usize], rng: &mut StdRng) -> Tensor {
    let n: usize = shape.iter().product();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos());
        if data.len() < n {
            data.push(r * theta.sin());
        }
    }
    Tensor::from_vec(data, shape)
}

/// Samples a uniform tensor in `[lo, hi)`.
pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut StdRng) -> Tensor {
    let n: usize = shape.iter().product();
    let data: Vec<f32> = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
    Tensor::from_vec(data, shape)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        let ta = randn(&[100], &mut a);
        let tb = randn(&[100], &mut b);
        assert_eq!(ta, tb);
    }

    #[test]
    fn randn_moments_are_plausible() {
        let mut rng = seeded_rng(1);
        let t = randn(&[10_000], &mut rng);
        assert!(t.mean().abs() < 0.05, "mean={}", t.mean());
        let var = t.map(|x| x * x).mean() - t.mean() * t.mean();
        assert!((var - 1.0).abs() < 0.1, "var={var}");
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = seeded_rng(3);
        let t = Init::XavierUniform.sample(&[64, 64], 64, 64, &mut rng);
        let a = (6.0f32 / 128.0).sqrt();
        assert!(t.max() <= a && t.min() >= -a);
        assert!(t.max() > 0.0 && t.min() < 0.0);
    }

    #[test]
    fn he_bounds() {
        let mut rng = seeded_rng(3);
        let t = Init::HeUniform.sample(&[32, 32], 32, 32, &mut rng);
        let a = (6.0f32 / 32.0).sqrt();
        assert!(t.max() <= a && t.min() >= -a);
    }

    #[test]
    fn zeros_init() {
        let mut rng = seeded_rng(3);
        let t = Init::Zeros.sample(&[5], 5, 5, &mut rng);
        assert_eq!(t.sum(), 0.0);
    }

    #[test]
    fn rand_uniform_bounds() {
        let mut rng = seeded_rng(9);
        let t = rand_uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.min() >= -0.5 && t.max() < 0.5);
    }
}
