//! Dense row-major `f32` tensors with shape checking.
//!
//! [`Tensor`] is the value type threaded through every layer, optimizer and
//! model in the VehiGAN stack. It is deliberately small: a shape vector plus
//! a flat `Vec<f32>` in row-major order. All binary operations validate
//! shapes and panic with a descriptive message on mismatch — shape errors
//! are programming bugs, not recoverable conditions.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// A dense row-major tensor of `f32` values.
///
/// # Examples
///
/// ```
/// use vehigan_tensor::Tensor;
///
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(t.shape(), &[2, 2]);
/// assert_eq!(t.get(&[1, 0]), 3.0);
/// ```
#[derive(PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.clone(),
        }
    }

    /// Clones into an existing tensor, reusing its heap allocations when
    /// capacity allows. Layer activation caches call this every training
    /// step, so steady-state forward passes stop churning the allocator.
    fn clone_from(&mut self, source: &Self) {
        self.shape.clone_from(&source.shape);
        self.data.clone_from(&source.data);
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.data.len() <= 16 {
            write!(f, "Tensor{:?} {:?}", self.shape, self.data)
        } else {
            write!(
                f,
                "Tensor{:?} [{} elements, first={:?}...]",
                self.shape,
                self.data.len(),
                &self.data[..4.min(self.data.len())]
            )
        }
    }
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    ///
    /// # Examples
    ///
    /// ```
    /// use vehigan_tensor::Tensor;
    /// let z = Tensor::zeros(&[3, 4]);
    /// assert_eq!(z.len(), 12);
    /// ```
    pub fn zeros(shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n: usize = shape.iter().product();
        Tensor {
            shape: shape.to_vec(),
            data: vec![value; n],
        }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor from a flat vector and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let n: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            n,
            "data length {} does not match shape {:?} (= {n})",
            data.len(),
            shape
        );
        Tensor {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: vec![data.len()],
            data: data.to_vec(),
        }
    }

    /// Creates a 2-D tensor from nested rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows: expected {c}, got {}", row.len());
            data.extend_from_slice(row);
        }
        Tensor {
            shape: vec![r, c],
            data,
        }
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Immutable view of the underlying flat data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying flat data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the flat data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    fn flat_index(&self, idx: &[usize]) -> usize {
        debug_assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut flat = 0;
        for (i, (&ix, &dim)) in idx.iter().zip(&self.shape).enumerate() {
            debug_assert!(
                ix < dim,
                "index {ix} out of bounds for dim {i} (size {dim})"
            );
            flat = flat * dim + ix;
        }
        flat
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the index rank or bounds are invalid.
    pub fn get(&self, idx: &[usize]) -> f32 {
        self.data[self.flat_index(idx)]
    }

    /// Sets the element at a multi-dimensional index.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let i = self.flat_index(idx);
        self.data[i] = value;
    }

    /// Returns a reshaped copy sharing the same data order.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        let n: usize = shape.iter().product();
        assert_eq!(
            n,
            self.data.len(),
            "cannot reshape {:?} ({} elems) to {:?} ({n} elems)",
            self.shape,
            self.data.len(),
            shape
        );
        Tensor {
            shape: shape.to_vec(),
            data: self.data.clone(),
        }
    }

    /// Reshapes in place without copying data.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        let n: usize = shape.iter().product();
        assert_eq!(n, self.data.len(), "reshape element count mismatch");
        self.shape = shape.to_vec();
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination of two equally-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(other, "zip_map");
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    fn assert_same_shape(&self, other: &Tensor, op: &str) {
        assert_eq!(
            self.shape, other.shape,
            "{op}: shape mismatch {:?} vs {:?}",
            self.shape, other.shape
        );
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (−∞ for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (+∞ for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// L2 norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Element-wise sign (−1, 0, or 1), as used by FGSM perturbations.
    pub fn sign(&self) -> Tensor {
        self.map(|x| {
            if x > 0.0 {
                1.0
            } else if x < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
    }

    /// Clamps every element into `[lo, hi]`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    /// Scales all elements by `s` in place.
    pub fn scale_in_place(&mut self, s: f32) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// Adds `other * alpha` into `self` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, alpha: f32) {
        self.assert_same_shape(other, "add_scaled");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Fills the tensor with zeros.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Matrix multiplication of two 2-D tensors: `(m×k) · (k×n) = (m×n)`.
    ///
    /// Backed by the blocked, register-tiled kernel in [`crate::gemm`];
    /// per output element the reduction runs in strictly increasing `k`
    /// order, matching the historical naive loop's association.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.ndim(),
            2,
            "matmul lhs must be 2-D, got {:?}",
            self.shape
        );
        assert_eq!(
            other.ndim(),
            2,
            "matmul rhs must be 2-D, got {:?}",
            other.shape
        );
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(
            k, k2,
            "matmul inner dims: {:?} · {:?}",
            self.shape, other.shape
        );
        let mut out = vec![0.0f32; m * n];
        crate::gemm::gemm(m, k, n, &self.data, &other.data, &mut out);
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// `self · otherᵀ` without materializing the transpose: `self` is
    /// `(m×k)`, `other` is `(n×k)`, the result is `(m×n)`.
    ///
    /// This is the backward-pass primitive `dX = dY · Wᵀ` with `W` read in
    /// its stored layout.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the shared dimensions differ.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.ndim(),
            2,
            "matmul_nt lhs must be 2-D, got {:?}",
            self.shape
        );
        assert_eq!(
            other.ndim(),
            2,
            "matmul_nt rhs must be 2-D, got {:?}",
            other.shape
        );
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(
            k, k2,
            "matmul_nt shared dims: {:?} · {:?}ᵀ",
            self.shape, other.shape
        );
        let mut out = vec![0.0f32; m * n];
        crate::gemm::gemm_nt(m, n, k, &self.data, &other.data, &mut out);
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// `selfᵀ · other` without materializing the transpose: `self` is
    /// `(k×m)`, `other` is `(k×n)`, the result is `(m×n)`.
    ///
    /// This is the backward-pass primitive `dW = Xᵀ · dY` with `X` read in
    /// its stored layout; bitwise identical to
    /// `self.transpose().matmul(other)`.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not 2-D or the shared dimensions differ.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(
            self.ndim(),
            2,
            "matmul_tn lhs must be 2-D, got {:?}",
            self.shape
        );
        assert_eq!(
            other.ndim(),
            2,
            "matmul_tn rhs must be 2-D, got {:?}",
            other.shape
        );
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(
            k, k2,
            "matmul_tn shared dims: {:?}ᵀ · {:?}",
            self.shape, other.shape
        );
        let mut out = vec![0.0f32; m * n];
        crate::gemm::gemm_tn(m, n, k, &self.data, &other.data, &mut out);
        Tensor {
            shape: vec![m, n],
            data: out,
        }
    }

    /// Transpose of a 2-D tensor, in 32×32 cache tiles.
    ///
    /// The hot paths (layer backward passes) no longer transpose at all —
    /// see [`Tensor::matmul_nt`]/[`Tensor::matmul_tn`] — but serialization
    /// and tests still want a materialized transpose.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D.
    pub fn transpose(&self) -> Tensor {
        assert_eq!(
            self.ndim(),
            2,
            "transpose requires 2-D, got {:?}",
            self.shape
        );
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        crate::gemm::transpose_into(m, n, &self.data, &mut out);
        Tensor {
            shape: vec![n, m],
            data: out,
        }
    }

    /// Extracts row `i` of a 2-D tensor as a 1-D tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not 2-D or `i` is out of bounds.
    pub fn row(&self, i: usize) -> Tensor {
        assert_eq!(self.ndim(), 2, "row() requires 2-D");
        let n = self.shape[1];
        assert!(
            i < self.shape[0],
            "row {i} out of bounds ({})",
            self.shape[0]
        );
        Tensor::from_slice(&self.data[i * n..(i + 1) * n])
    }

    /// Stacks equally-shaped tensors along a new leading axis.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or shapes differ.
    pub fn stack(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "stack of zero tensors");
        let inner = items[0].shape.clone();
        let mut data = Vec::with_capacity(items.len() * items[0].len());
        for t in items {
            assert_eq!(t.shape, inner, "stack: inconsistent shapes");
            data.extend_from_slice(&t.data);
        }
        let mut shape = vec![items.len()];
        shape.extend_from_slice(&inner);
        Tensor { shape, data }
    }

    /// Splits the leading axis, returning one tensor per index.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is 0-dimensional.
    pub fn unstack(&self) -> Vec<Tensor> {
        assert!(self.ndim() >= 1, "unstack requires ndim >= 1");
        let n = self.shape[0];
        let inner: Vec<usize> = self.shape[1..].to_vec();
        let chunk: usize = inner.iter().product::<usize>().max(1);
        (0..n)
            .map(|i| Tensor {
                shape: inner.clone(),
                data: self.data[i * chunk..(i + 1) * chunk].to_vec(),
            })
            .collect()
    }

    /// Selects rows of the leading axis by index, returning a new tensor.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn take(&self, indices: &[usize]) -> Tensor {
        let n = self.shape[0];
        let inner: usize = self.shape[1..].iter().product::<usize>().max(1);
        let mut data = Vec::with_capacity(indices.len() * inner);
        for &i in indices {
            assert!(i < n, "take index {i} out of bounds ({n})");
            data.extend_from_slice(&self.data[i * inner..(i + 1) * inner]);
        }
        let mut shape = vec![indices.len()];
        shape.extend_from_slice(&self.shape[1..]);
        Tensor { shape, data }
    }
}

impl Add<&Tensor> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a + b)
    }
}

impl Sub<&Tensor> for &Tensor {
    type Output = Tensor;
    fn sub(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a - b)
    }
}

impl Mul<&Tensor> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a * b)
    }
}

impl Div<&Tensor> for &Tensor {
    type Output = Tensor;
    fn div(self, rhs: &Tensor) -> Tensor {
        self.zip_map(rhs, |a, b| a / b)
    }
}

impl Mul<f32> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: f32) -> Tensor {
        self.map(|x| x * rhs)
    }
}

impl Add<f32> for &Tensor {
    type Output = Tensor;
    fn add(self, rhs: f32) -> Tensor {
        self.map(|x| x + rhs)
    }
}

impl Neg for &Tensor {
    type Output = Tensor;
    fn neg(self) -> Tensor {
        self.map(|x| -x)
    }
}

impl AddAssign<&Tensor> for Tensor {
    fn add_assign(&mut self, rhs: &Tensor) {
        self.add_scaled(rhs, 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[2, 3, 4]);
        assert_eq!(t.shape(), &[2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert_eq!(t.sum(), 0.0);
        assert!(!t.is_empty());
    }

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.get(&[0, 0]), 1.0);
        assert_eq!(t.get(&[1, 2]), 6.0);
        assert_eq!(t.into_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_shape_panics() {
        let _ = Tensor::from_vec(vec![1.0, 2.0], &[3]);
    }

    #[test]
    fn set_get() {
        let mut t = Tensor::zeros(&[3, 3]);
        t.set(&[1, 1], 5.0);
        assert_eq!(t.get(&[1, 1]), 5.0);
        assert_eq!(t.sum(), 5.0);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Tensor::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0]]);
        assert_eq!(a.matmul(&i), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[vec![7.0, 8.0], vec![9.0, 10.0], vec![11.0, 12.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    #[should_panic(expected = "matmul inner dims")]
    fn matmul_dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Tensor::from_rows(&[vec![1.0, 0.5, -1.0], vec![2.0, -2.0, 0.0]]);
        let fast = a.matmul_nt(&b);
        let reference = a.matmul(&b.transpose());
        assert_eq!(fast.shape(), &[2, 2]);
        for (f, r) in fast.as_slice().iter().zip(reference.as_slice()) {
            assert!((f - r).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let b = Tensor::from_rows(&[vec![1.0, -1.0], vec![0.5, 2.0], vec![-2.0, 0.0]]);
        let fast = a.matmul_tn(&b);
        let reference = a.transpose().matmul(&b);
        assert_eq!(fast, reference); // tn is bitwise identical by design
    }

    #[test]
    fn clone_from_reuses_allocation() {
        let src = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let mut dst = Tensor::zeros(&[4]);
        let cap = dst.data.capacity();
        dst.clone_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.data.capacity(), cap);
    }

    #[test]
    fn transpose_involution() {
        let a = Tensor::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let att = a.transpose().transpose();
        assert_eq!(att, a);
        assert_eq!(a.transpose().shape(), &[3, 2]);
        assert_eq!(a.transpose().get(&[2, 1]), 6.0);
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!((&a + &b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!((&b - &a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!((&a * &b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!((&b / &a).as_slice(), &[4.0, 2.5, 2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0, 6.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0, -3.0]);
    }

    #[test]
    fn sign_matches_fgsm_semantics() {
        let t = Tensor::from_slice(&[-3.0, 0.0, 0.5]);
        assert_eq!(t.sign().as_slice(), &[-1.0, 0.0, 1.0]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0, -4.0]);
        assert_eq!(t.sum(), -2.0);
        assert_eq!(t.mean(), -0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -4.0);
        assert!((t.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn stack_unstack_roundtrip() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[3.0, 4.0]);
        let s = Tensor::stack(&[a.clone(), b.clone()]);
        assert_eq!(s.shape(), &[2, 2]);
        let parts = s.unstack();
        assert_eq!(parts, vec![a, b]);
    }

    #[test]
    fn take_selects_rows() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let picked = t.take(&[2, 0]);
        assert_eq!(picked.shape(), &[2, 2]);
        assert_eq!(picked.as_slice(), &[5.0, 6.0, 1.0, 2.0]);
    }

    #[test]
    fn reshape_preserves_order() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = t.reshape(&[2, 3]);
        assert_eq!(r.get(&[1, 0]), 4.0);
    }

    #[test]
    fn clamp_bounds() {
        let t = Tensor::from_slice(&[-2.0, 0.5, 2.0]);
        assert_eq!(t.clamp(-1.0, 1.0).as_slice(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    fn add_scaled_axpy() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let b = Tensor::from_slice(&[2.0, 4.0]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn row_extraction() {
        let t = Tensor::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(t.row(1).as_slice(), &[3.0, 4.0]);
    }
}
