//! Cache-blocked, register-tiled f32 GEMM kernels.
//!
//! Every experiment in the VehiGAN stack — WGAN training, ensemble
//! scoring, FGSM attacks — bottoms out in one of three matrix products:
//!
//! - `C += A·B`   ([`gemm`]): layer forward passes (input/im2col × weights);
//! - `C += Aᵀ·B`  ([`gemm_tn`]): weight gradients `dW = Xᵀ·dY` without
//!   materializing `Xᵀ`;
//! - `C += A·Bᵀ`  ([`gemm_nt`]): input gradients `dX = dY·Wᵀ` without
//!   materializing `Wᵀ`.
//!
//! # Kernel layout
//!
//! [`gemm`] follows the classic panel-packing scheme: the shared dimension
//! is split into `KC`-deep panels; each panel of `B` is packed into
//! `NR`-wide column strips and each `MC`-row block of `A` into `MR`-tall
//! row strips, both laid out so the micro-kernel reads one contiguous
//! `[f32; MR]` / `[f32; NR]` pair per `k`-step. The micro-kernel is a
//! broadcast-multiply-accumulate over a fixed `MR × NR` accumulator array,
//! which LLVM autovectorizes — no intrinsics. Two instantiations exist:
//!
//! - a portable 4×8 kernel compiled for the baseline target (one 256-bit
//!   row as two SSE registers; near machine peak on SSE2-only hardware);
//! - a 6×16 kernel compiled with `#[target_feature(enable = "avx2,fma")]`
//!   and `f32::mul_add`, selected at runtime when the CPU supports it
//!   (twelve YMM accumulators — enough independent FMA chains to hide
//!   the fused-multiply-add latency).
//!
//! # Determinism
//!
//! For every kernel the reduction over `k` runs in strictly increasing
//! order *per output element*: micro-kernel accumulators are loaded from
//! `C` at panel entry and stored back at panel exit, so the association
//! matches the naive i-k-j triple loop. Consequences:
//!
//! - the portable path is **bitwise identical** to [`naive`];
//! - the AVX2 path fuses each multiply-add (one rounding instead of two),
//!   so it differs from [`naive`] by ≤ 1e-4 relative error but is
//!   bit-stable run-to-run on a given machine (feature detection is
//!   cached; a process never switches kernels mid-run);
//! - [`gemm_tn`] performs exactly one multiply-add per output element per
//!   `k`-step with no fusion, so it is bitwise identical to
//!   `a.transpose().matmul(b)` on every ISA;
//! - [`gemm_nt`] uses a fixed eight-lane partial-sum dot product —
//!   machine-independent and deterministic, but associated differently
//!   from the scalar loop (property tests bound the difference at ≤ 1e-4).
//!
//! All kernels *accumulate* into `C` (`beta = 1`); callers that want a
//! plain product must zero `C` first (a zero-filled buffer is what
//! [`crate::workspace::Workspace`] hands out). This is what lets
//! `Dense::backward` add `dW` straight into the gradient buffer.
//!
//! # Int8 kernels
//!
//! Next to the f32 family lives an `i8×i8→i32` inference family used by
//! the quantized backend in `vehigan-lite`:
//!
//! - [`PackedI8`] — a weight matrix packed **once** (at model-compile
//!   time) into `NR`-column strips with the shared dimension interleaved
//!   in `k`-pairs, the exact layout `_mm256_madd_epi16` consumes, plus a
//!   `k`-quad mirror in [`NR_VNNI`]-column strips (with per-column sums)
//!   for the AVX-512 VNNI kernel;
//! - [`gemm_i8`] — `C += A·B` over a packed `B`: a portable blocked
//!   kernel, an AVX2 variant (`cvtepi8_epi16` widening + `madd_epi16`
//!   pair-dot, the `maddubs`/`madd` idiom without the unsigned-operand
//!   offset dance), and an AVX-512 VNNI variant (`vpdpbusd`, one
//!   4-deep dot per lane per instruction — `vpdpbusd` takes *unsigned*
//!   left operands, so activations are biased by +128 via XOR and the
//!   exact correction `128·Σ_k b[k][j]` is subtracted from the packed
//!   per-column sums at store);
//! - [`gemm_i8_fused`] — the multi-member sweep: one call walks several
//!   packed weight matrices over shared or per-member activations, so a
//!   `k`-of-`m` ensemble layer is one kernel invocation, not `k` model
//!   walks.
//!
//! Integer accumulation is exact, so **portable, AVX2, and VNNI int8
//! kernels produce bitwise-identical i32 accumulators** on every ISA —
//! stronger than the f32 contract, and the property the int8 backend's
//! determinism rests on. Exactness requires the accumulator not to
//! overflow: with operands in `[-128, 127]` any `k ≤ 65534` is safe
//! (`k/2` pair-sums of magnitude ≤ 2·128² against an i32; the VNNI
//! path's biased `u8×i8` quad-dots stay within the same bound), far
//! above any critic shape in this stack.
//!
//! Setting the environment variable `VEHIGAN_FORCE_PORTABLE` (to any
//! value, before first use) pins **all** kernel dispatch to the portable
//! instantiations — the CI lever that exercises the portable int8 path
//! on AVX2 hardware.

use std::cell::RefCell;

/// Rows of `C` per macro panel (keeps the active `A` block L2-resident).
const MC: usize = 64;
/// Depth of a packed panel (keeps one `NR`-wide strip of `B` L1-resident).
const KC: usize = 256;

thread_local! {
    /// Reusable packing buffers for the `A` and `B` panels — they grow
    /// once per thread, so steady-state GEMM calls allocate nothing.
    static PACK: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

/// Whether `VEHIGAN_FORCE_PORTABLE` pins dispatch to the portable
/// kernels (checked once; a process never switches kernels mid-run).
fn force_portable() -> bool {
    use std::sync::OnceLock;
    static FORCE: OnceLock<bool> = OnceLock::new();
    *FORCE.get_or_init(|| std::env::var_os("VEHIGAN_FORCE_PORTABLE").is_some())
}

#[cfg(target_arch = "x86_64")]
fn fma_available() -> bool {
    use std::sync::OnceLock;
    static FMA: OnceLock<bool> = OnceLock::new();
    *FMA.get_or_init(|| {
        !force_portable() && is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
    })
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    use std::sync::OnceLock;
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| !force_portable() && is_x86_feature_detected!("avx2"))
}

#[cfg(target_arch = "x86_64")]
fn vnni_available() -> bool {
    use std::sync::OnceLock;
    static VNNI: OnceLock<bool> = OnceLock::new();
    *VNNI.get_or_init(|| {
        !force_portable()
            && is_x86_feature_detected!("avx512f")
            && is_x86_feature_detected!("avx512vnni")
    })
}

/// Whether AVX-512F elementwise kernels may be used (respects
/// `VEHIGAN_FORCE_PORTABLE`). Exposed so downstream crates that add
/// their own SIMD fast paths (e.g. activation quantization in
/// `vehigan-lite`) share this crate's dispatch pin — one env var gates
/// every vectorized kernel in the process.
#[cfg(target_arch = "x86_64")]
pub fn avx512_available() -> bool {
    use std::sync::OnceLock;
    static AVX512: OnceLock<bool> = OnceLock::new();
    *AVX512.get_or_init(|| !force_portable() && is_x86_feature_detected!("avx512f"))
}

/// Non-x86 fallback: no AVX-512, portable kernels only.
#[cfg(not(target_arch = "x86_64"))]
pub fn avx512_available() -> bool {
    false
}

fn check_dims(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &[f32]) {
    assert_eq!(a.len(), m * k, "gemm: lhs length {} != {m}×{k}", a.len());
    assert_eq!(b.len(), k * n, "gemm: rhs length {} != {k}×{n}", b.len());
    assert_eq!(c.len(), m * n, "gemm: out length {} != {m}×{n}", c.len());
}

/// `C += A·B` for row-major `a` (`m×k`), `b` (`k×n`), `c` (`m×n`).
///
/// Blocked and register-tiled; per output element the reduction runs in
/// strictly increasing `k` order (see module docs for the exact
/// determinism guarantees of the two instantiations).
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_dims(m, k, n, a, b, c);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    PACK.with(|p| {
        let (pa, pb) = &mut *p.borrow_mut();
        #[cfg(target_arch = "x86_64")]
        if fma_available() {
            // Safety: guarded by cached runtime detection of avx2+fma.
            unsafe { gemm_avx2(m, k, n, a, b, c, pa, pb) };
            return;
        }
        gemm_portable(m, k, n, a, b, c, pa, pb);
    });
}

/// One macro-level pass: pack a `KC × n` panel of `B` into `NR`-strips,
/// pack each `MC × KC` block of `A` into `MR`-strips, and sweep the
/// micro-kernel over the strip grid. Instantiated once per micro-kernel
/// because `#[target_feature]` codegen must contain the whole loop nest.
macro_rules! gemm_body {
    ($micro:ident, $mr:expr, $nr:expr, $m:ident, $k:ident, $n:ident,
     $a:ident, $b:ident, $c:ident, $pa:ident, $pb:ident) => {{
        const MR: usize = $mr;
        const NR: usize = $nr;
        let n_strips = $n.div_ceil(NR);
        for kb in (0..$k).step_by(KC) {
            let kc = KC.min($k - kb);
            $pb.clear();
            $pb.resize(n_strips * kc * NR, 0.0);
            for s in 0..n_strips {
                let js = s * NR;
                let w = NR.min($n - js);
                let base = s * kc * NR;
                for kk in 0..kc {
                    let src = (kb + kk) * $n + js;
                    $pb[base + kk * NR..base + kk * NR + w].copy_from_slice(&$b[src..src + w]);
                }
            }
            for ib in (0..$m).step_by(MC) {
                let mc = MC.min($m - ib);
                let m_strips = mc.div_ceil(MR);
                $pa.clear();
                $pa.resize(m_strips * kc * MR, 0.0);
                for r in 0..m_strips {
                    let is = ib + r * MR;
                    let h = MR.min(ib + mc - is);
                    let base = r * kc * MR;
                    for row in 0..h {
                        let arow = &$a[(is + row) * $k + kb..(is + row) * $k + kb + kc];
                        for (kk, &av) in arow.iter().enumerate() {
                            $pa[base + kk * MR + row] = av;
                        }
                    }
                }
                for r in 0..m_strips {
                    let is = ib + r * MR;
                    let h = MR.min(ib + mc - is);
                    let ap = &$pa[r * kc * MR..(r + 1) * kc * MR];
                    for s in 0..n_strips {
                        let js = s * NR;
                        let w = NR.min($n - js);
                        let bp = &$pb[s * kc * NR..(s + 1) * kc * NR];
                        $micro(ap, bp, kc, is, js, h, w, $n, $c);
                    }
                }
            }
        }
    }};
}

/// Declares an `MR × NR` micro-kernel over packed strips. Accumulators
/// load from `C` before the `k` sweep and store back after, preserving
/// the global per-element reduction order across `KC` panels. Ragged
/// edges are handled by the zero padding in the packed strips (extra
/// rows/columns compute values that are simply never stored).
macro_rules! micro_impl {
    ($name:ident, $mr:expr, $nr:expr, $inline:meta, $madd:expr) => {
        #[$inline]
        #[allow(clippy::too_many_arguments)]
        fn $name(
            ap: &[f32],
            bp: &[f32],
            kc: usize,
            i0: usize,
            j0: usize,
            h: usize,
            w: usize,
            ldc: usize,
            c: &mut [f32],
        ) {
            const MR: usize = $mr;
            const NR: usize = $nr;
            let madd: fn(f32, f32, f32) -> f32 = $madd;
            let mut acc = [[0.0f32; NR]; MR];
            for r in 0..h {
                let base = (i0 + r) * ldc + j0;
                acc[r][..w].copy_from_slice(&c[base..base + w]);
            }
            for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
                let avv: &[f32; MR] = av.try_into().expect("packed A strip row");
                let bvv: &[f32; NR] = bv.try_into().expect("packed B strip row");
                for (row, &ar) in acc.iter_mut().zip(avv) {
                    for (x, &bb) in row.iter_mut().zip(bvv) {
                        *x = madd(ar, bb, *x);
                    }
                }
            }
            for r in 0..h {
                let base = (i0 + r) * ldc + j0;
                c[base..base + w].copy_from_slice(&acc[r][..w]);
            }
        }
    };
}

// Portable kernel: separate mul + add (bitwise == naive), 4×8 tile. The
// `inline(never)` is load-bearing — inlining this into the blocked loop
// nest defeats LLVM's register allocation of the accumulator array and
// costs ~6× throughput.
micro_impl!(micro_4x8, 4, 8, inline(never), |a, b, acc| a * b + acc);
// AVX2 kernel: fused multiply-add, 6×16 tile (12 YMM accumulators). Must
// be `inline(always)` so it inherits the caller's `#[target_feature]`.
#[cfg(target_arch = "x86_64")]
micro_impl!(micro_6x16, 6, 16, inline(always), f32::mul_add);

#[allow(clippy::too_many_arguments)]
fn gemm_portable(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    pa: &mut Vec<f32>,
    pb: &mut Vec<f32>,
) {
    gemm_body!(micro_4x8, 4, 8, m, k, n, a, b, c, pa, pb)
}

/// # Safety
///
/// Callers must ensure the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_avx2(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    pa: &mut Vec<f32>,
    pb: &mut Vec<f32>,
) {
    gemm_body!(micro_6x16, 6, 16, m, k, n, a, b, c, pa, pb)
}

/// `C += A·Bᵀ` for row-major `a` (`m×k`), `b` (`n×k`), `c` (`m×n`).
///
/// The transpose-free input-gradient kernel: `dX = dY·Wᵀ` calls this with
/// `W` as stored (`[in, out]` order) instead of materializing `Wᵀ`. Both
/// operands are read row-contiguously, so it is a pure dot-product sweep.
/// Uses the fixed eight-lane reduction of [`dot`] — deterministic and
/// machine-independent.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nt: lhs length {} != {m}×{k}", a.len());
    assert_eq!(b.len(), n * k, "gemm_nt: rhs length {} != {n}×{k}", b.len());
    assert_eq!(c.len(), m * n, "gemm_nt: out length {} != {m}×{n}", c.len());
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // Safety: guarded by cached runtime detection of avx2+fma. Same
        // source as the portable body (no fusion), so results are bitwise
        // identical across the two paths.
        unsafe { gemm_nt_avx2(m, n, k, a, b, c) };
        return;
    }
    gemm_nt_body(m, n, k, a, b, c);
}

#[inline(always)]
fn gemm_nt_body(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let ar = &a[i * k..(i + 1) * k];
        let cr = &mut c[i * n..(i + 1) * n];
        for (j, cv) in cr.iter_mut().enumerate() {
            *cv += dot(ar, &b[j * k..(j + 1) * k]);
        }
    }
}

/// # Safety
///
/// Callers must ensure the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_nt_avx2(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_nt_body(m, n, k, a, b, c)
}

/// Eight-lane dot product with a fixed reduction tree: deterministic and
/// identical on every ISA, but associated differently from a scalar left
/// fold (lane partials are combined pairwise at the end).
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    const L: usize = 8;
    let mut lanes = [0.0f32; L];
    let mut xc = x.chunks_exact(L);
    let mut yc = y.chunks_exact(L);
    for (xv, yv) in (&mut xc).zip(&mut yc) {
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane += xv[l] * yv[l];
        }
    }
    let mut tail = 0.0f32;
    for (xv, yv) in xc.remainder().iter().zip(yc.remainder()) {
        tail += xv * yv;
    }
    let s0 = (lanes[0] + lanes[4]) + (lanes[2] + lanes[6]);
    let s1 = (lanes[1] + lanes[5]) + (lanes[3] + lanes[7]);
    (s0 + s1) + tail
}

/// `C += Aᵀ·B` for row-major `a` (`k×m`), `b` (`k×n`), `c` (`m×n`).
///
/// The transpose-free weight-gradient kernel: `dW += Xᵀ·dY` calls this
/// with the activations/im2col matrix as stored, accumulating straight
/// into the gradient buffer — no transposed copy, no temporary product.
/// Exactly one multiply-add per output element per `k`-step, in strictly
/// increasing `k`: bitwise identical to `a.transpose().matmul(b)`.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn gemm_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "gemm_tn: lhs length {} != {k}×{m}", a.len());
    assert_eq!(b.len(), k * n, "gemm_tn: rhs length {} != {k}×{n}", b.len());
    assert_eq!(c.len(), m * n, "gemm_tn: out length {} != {m}×{n}", c.len());
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // Safety: guarded by cached runtime detection of avx2+fma. Same
        // source as the portable body (no fusion), so results are bitwise
        // identical across the two paths.
        unsafe { gemm_tn_avx2(m, n, k, a, b, c) };
        return;
    }
    gemm_tn_body(m, n, k, a, b, c);
}

#[inline(always)]
fn gemm_tn_body(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for kk in 0..k {
        let ar = &a[kk * m..(kk + 1) * m];
        let br = &b[kk * n..(kk + 1) * n];
        if n == 1 {
            // Critic head: dW is a column vector — a straight axpy.
            let bv = br[0];
            for (cv, &av) in c.iter_mut().zip(ar) {
                *cv += av * bv;
            }
        } else {
            for (i, &av) in ar.iter().enumerate() {
                let cr = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in cr.iter_mut().zip(br) {
                    *cv += av * bv;
                }
            }
        }
    }
}

/// # Safety
///
/// Callers must ensure the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_tn_avx2(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_tn_body(m, n, k, a, b, c)
}

/// The seed repository's i-k-j scalar triple loop, kept verbatim as the
/// reference kernel for property tests and benchmark baselines.
/// `C += A·B` for row-major `a` (`m×k`), `b` (`k×n`), `c` (`m×n`).
pub fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_dims(m, k, n, a, b, c);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut c[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Blocked out-of-place transpose: `dst[j·m + i] = src[i·n + j]` in 32×32
/// tiles so reads and writes both stay cache-resident.
///
/// # Panics
///
/// Panics if `src`/`dst` lengths differ from `m·n`.
pub fn transpose_into(m: usize, n: usize, src: &[f32], dst: &mut [f32]) {
    assert_eq!(
        src.len(),
        m * n,
        "transpose: src length {} != {m}×{n}",
        src.len()
    );
    assert_eq!(
        dst.len(),
        m * n,
        "transpose: dst length {} != {m}×{n}",
        dst.len()
    );
    const TILE: usize = 32;
    for it in (0..m).step_by(TILE) {
        let ih = TILE.min(m - it);
        for jt in (0..n).step_by(TILE) {
            let jw = TILE.min(n - jt);
            for i in it..it + ih {
                for j in jt..jt + jw {
                    dst[j * m + i] = src[i * n + j];
                }
            }
        }
    }
}

/// Columns per packed int8 strip: one 256-bit `madd` accumulator's worth
/// of i32 lanes.
pub const NR_I8: usize = 8;

/// Columns per packed VNNI strip: one 512-bit `vpdpbusd` accumulator's
/// worth of i32 lanes.
pub const NR_VNNI: usize = 16;

/// Rows of `A` swept per int8 micro-kernel pass (amortizes each packed-`B`
/// load across four accumulator registers).
const MR_I8: usize = 4;

/// A weight matrix packed for the int8 micro-kernels.
///
/// The source is a row-major `k × n` i8 matrix (`k` = shared dimension,
/// `n` = output channels). Packing splits the columns into [`NR_I8`]-wide
/// strips and interleaves the shared dimension in pairs: strip `s`,
/// pair `p` stores `[b[2p][j], b[2p+1][j]]` for each column `j` of the
/// strip — sixteen i8 values, exactly one `cvtepi8_epi16` +
/// `madd_epi16` step. Ragged edges (odd `k`, `n` not a multiple of
/// [`NR_I8`]) are zero-padded, which is exact for integer accumulation.
///
/// Packing happens **once** per weight matrix (at quantized-model compile
/// time); every inference call then reads the packed form directly — the
/// f32 kernels, by contrast, repack `B` on every call.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedI8 {
    k: usize,
    n: usize,
    k_pairs: usize,
    /// `[n_strips][k_pairs][NR_I8 · 2]`, pair-interleaved as above.
    data: Vec<i8>,
    /// `[n_strips16][k_quads][NR_VNNI · 4]`, quad-interleaved: strip `s`,
    /// quad `q` stores `[b[4q][j], b[4q+1][j], b[4q+2][j], b[4q+3][j]]`
    /// for each of the strip's 16 columns — one 512-bit `vpdpbusd` step.
    /// A runtime acceleration mirror of `data` (not counted as artifact
    /// bytes); zero-padded at ragged edges, exact for integer math.
    quad: Vec<i8>,
    /// Per-column sums `Σ_k b[k][j]`: the exact correction for running
    /// `vpdpbusd`'s unsigned×signed form on biased activations
    /// (`Σ(a+128)·b = Σa·b + 128·S_j`).
    col_sums: Vec<i32>,
}

impl PackedI8 {
    /// Packs a row-major `k × n` i8 matrix.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != k·n`.
    pub fn pack(k: usize, n: usize, b: &[i8]) -> PackedI8 {
        assert_eq!(b.len(), k * n, "pack: matrix length {} != {k}×{n}", b.len());
        let k_pairs = k.div_ceil(2);
        let n_strips = n.div_ceil(NR_I8);
        let mut data = vec![0i8; n_strips * k_pairs * NR_I8 * 2];
        for s in 0..n_strips {
            let js = s * NR_I8;
            let width = NR_I8.min(n - js);
            for p in 0..k_pairs {
                let base = (s * k_pairs + p) * NR_I8 * 2;
                for j in 0..width {
                    data[base + 2 * j] = b[2 * p * n + js + j];
                    if 2 * p + 1 < k {
                        data[base + 2 * j + 1] = b[(2 * p + 1) * n + js + j];
                    }
                }
            }
        }
        let k_quads = k.div_ceil(4);
        let n_strips16 = n.div_ceil(NR_VNNI);
        let mut quad = vec![0i8; n_strips16 * k_quads * NR_VNNI * 4];
        for s in 0..n_strips16 {
            let js = s * NR_VNNI;
            let width = NR_VNNI.min(n - js);
            for q in 0..k_quads {
                let base = (s * k_quads + q) * NR_VNNI * 4;
                for j in 0..width {
                    for t in 0..4 {
                        if 4 * q + t < k {
                            quad[base + 4 * j + t] = b[(4 * q + t) * n + js + j];
                        }
                    }
                }
            }
        }
        let mut col_sums = vec![0i32; n];
        for (kk, row) in b.chunks_exact(n).enumerate() {
            debug_assert!(kk < k);
            for (s, &v) in col_sums.iter_mut().zip(row) {
                *s += v as i32;
            }
        }
        PackedI8 {
            k,
            n,
            k_pairs,
            data,
            quad,
            col_sums,
        }
    }

    /// Shared dimension `k` of the packed matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Column count `n` of the packed matrix.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bytes held by the packed representation.
    pub fn packed_bytes(&self) -> usize {
        self.data.len()
    }
}

/// `C += A·B` for row-major i8 `a` (`m×k`) against a pre-packed `b`,
/// accumulating into i32 `c` (`m×n`).
///
/// Dispatches to the AVX2 `madd` kernel when available, the portable
/// blocked kernel otherwise; both produce **bitwise-identical** i32
/// accumulators (integer arithmetic is exact — see module docs for the
/// no-overflow bound `k ≤ 65534`).
///
/// # Panics
///
/// Panics if `a`/`c` lengths disagree with `m` and the packed dimensions.
pub fn gemm_i8(m: usize, a: &[i8], b: &PackedI8, c: &mut [i32]) {
    assert_eq!(
        a.len(),
        m * b.k,
        "gemm_i8: lhs length {} != {m}×{}",
        a.len(),
        b.k
    );
    assert_eq!(
        c.len(),
        m * b.n,
        "gemm_i8: out length {} != {m}×{}",
        c.len(),
        b.n
    );
    if m == 0 || b.n == 0 || b.k == 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if vnni_available() {
        // Safety: guarded by cached runtime detection of avx512f+vnni.
        unsafe { gemm_i8_vnni(m, a, b, c) };
        return;
    }
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // Safety: guarded by cached runtime detection of avx2.
        unsafe { gemm_i8_avx2(m, a, b, c) };
        return;
    }
    gemm_i8_portable(m, a, b, c);
}

/// The fused multi-member sweep: for each member `g`,
/// `C_g += A_g · B_g`, in one kernel invocation.
///
/// `members` are per-member packed weight matrices that must share the
/// same `k`. `a` is either **shared** activations (`m·k` values — every
/// member reads the same input, the layer-1 case where all critics see
/// the same window batch) or **per-member** activations (`members.len()
/// · m·k` values, member-major). `c` holds the member outputs
/// back-to-back: member `g`'s `m × n_g` block starts where member
/// `g−1`'s ended.
///
/// This is what turns `k` sampled critics from `k` model walks into one
/// packed-weight GEMM per layer: weights were packed at compile time,
/// activations are quantized once, and a single call (one dispatch, one
/// hot loop) sweeps every member.
///
/// # Panics
///
/// Panics if the members disagree on `k`, or `a`/`c` lengths match
/// neither the shared nor the per-member layout.
pub fn gemm_i8_fused(m: usize, a: &[i8], members: &[&PackedI8], c: &mut [i32]) {
    let Some(first) = members.first() else {
        return;
    };
    let k = first.k;
    for b in members {
        assert_eq!(b.k, k, "gemm_i8_fused: members disagree on k");
    }
    let shared = a.len() == m * k;
    assert!(
        shared || a.len() == members.len() * m * k,
        "gemm_i8_fused: lhs length {} is neither shared ({}) nor per-member ({})",
        a.len(),
        m * k,
        members.len() * m * k
    );
    let total_n: usize = members.iter().map(|b| b.n).sum();
    assert_eq!(
        c.len(),
        m * total_n,
        "gemm_i8_fused: out length {} != {m}×{total_n}",
        c.len()
    );
    let mut c_off = 0;
    for (g, b) in members.iter().enumerate() {
        let a_g = if shared {
            a
        } else {
            &a[g * m * k..(g + 1) * m * k]
        };
        gemm_i8(m, a_g, b, &mut c[c_off..c_off + m * b.n]);
        c_off += m * b.n;
    }
}

/// Portable int8 micro-kernel sweep. Public within the crate's test
/// surface so property tests can pin portable-vs-dispatched equality.
pub fn gemm_i8_portable(m: usize, a: &[i8], b: &PackedI8, c: &mut [i32]) {
    let (k, n, k_pairs) = (b.k, b.n, b.k_pairs);
    let n_strips = n.div_ceil(NR_I8);
    for s in 0..n_strips {
        let js = s * NR_I8;
        let width = NR_I8.min(n - js);
        let strip = &b.data[s * k_pairs * NR_I8 * 2..(s + 1) * k_pairs * NR_I8 * 2];
        let mut i0 = 0;
        while i0 < m {
            let h = MR_I8.min(m - i0);
            let mut acc = [[0i32; NR_I8]; MR_I8];
            for (p, pb) in strip.chunks_exact(NR_I8 * 2).enumerate() {
                for (r, row) in acc.iter_mut().enumerate().take(h) {
                    let arow = &a[(i0 + r) * k..];
                    let a0 = arow[2 * p] as i32;
                    let a1 = if 2 * p + 1 < k {
                        arow[2 * p + 1] as i32
                    } else {
                        0
                    };
                    for (j, cell) in row.iter_mut().enumerate() {
                        *cell += a0 * pb[2 * j] as i32 + a1 * pb[2 * j + 1] as i32;
                    }
                }
            }
            for (r, row) in acc.iter().enumerate().take(h) {
                let base = (i0 + r) * n + js;
                for (j, &v) in row.iter().enumerate().take(width) {
                    c[base + j] += v;
                }
            }
            i0 += h;
        }
    }
}

/// Sign-extends one row of i8 activations into pair-interleaved i16
/// values viewed as one i32 per pair: `dst[p] = (a[2p+1] ⊔ a[2p])`, with
/// an implicit zero for the dangling element of an odd `k`. This is the
/// exact operand layout `madd_epi16` wants broadcast across its lanes,
/// built once per row instead of reconstructed per strip × per pair.
///
/// # Safety
///
/// Callers must ensure the CPU supports AVX2 and `dst.len() == row.len().div_ceil(2)`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn extend_row_pairs(row: &[i8], dst: &mut [i32]) {
    use std::arch::x86_64::*;
    let k = row.len();
    debug_assert_eq!(dst.len(), k.div_ceil(2));
    let mut j = 0;
    let mut p = 0;
    while j + 16 <= k {
        // 16 i8 → 16 i16 = 8 sign-extended pairs in one shot.
        let v = _mm_loadu_si128(row.as_ptr().add(j) as *const __m128i);
        let w = _mm256_cvtepi8_epi16(v);
        _mm256_storeu_si256(dst.as_mut_ptr().add(p) as *mut __m256i, w);
        j += 16;
        p += 8;
    }
    while j + 2 <= k {
        let a0 = row[j] as i16 as u16 as u32;
        let a1 = row[j + 1] as i16 as u16 as u32;
        dst[p] = ((a1 << 16) | a0) as i32;
        j += 2;
        p += 1;
    }
    if j < k {
        dst[p] = (row[j] as i16 as u16) as i32;
    }
}

/// AVX2 int8 micro-kernel sweep: per row block the activations are
/// sign-extended once into pair-interleaved i16 ([`extend_row_pairs`]),
/// then each inner step is a single broadcast load + `madd_epi16` +
/// `add_epi32` against the pre-packed weight strips — two strips at a
/// time so every activation broadcast feeds sixteen output columns. The
/// row count is a const generic, so short blocks (the `m = 1` dense tail)
/// do exactly their own work instead of a padded 4-row pass. Exact
/// integer arithmetic ⇒ bitwise identical to the portable kernel.
///
/// # Safety
///
/// Callers must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_i8_avx2(m: usize, a: &[i8], b: &PackedI8, c: &mut [i32]) {
    use std::cell::RefCell;
    // Reused pair-extension scratch: one row block per live call.
    thread_local! {
        static A16: RefCell<Vec<i32>> = const { RefCell::new(Vec::new()) };
    }
    A16.with(|cell| {
        let mut a16 = cell.take();
        if a16.len() < MR_I8 * b.k_pairs {
            a16.resize(MR_I8 * b.k_pairs, 0);
        }
        let mut i0 = 0;
        while i0 < m {
            let h = MR_I8.min(m - i0);
            match h {
                4 => gemm_i8_avx2_block::<4>(i0, a, b, c, &mut a16),
                3 => gemm_i8_avx2_block::<3>(i0, a, b, c, &mut a16),
                2 => gemm_i8_avx2_block::<2>(i0, a, b, c, &mut a16),
                _ => gemm_i8_avx2_block::<1>(i0, a, b, c, &mut a16),
            }
            i0 += h;
        }
        cell.replace(a16);
    });
}

/// One `H`-row block of the AVX2 sweep (`H ≤` [`MR_I8`]).
///
/// # Safety
///
/// Callers must ensure the CPU supports AVX2, `i0 + H ≤ m`, and
/// `a16.len() ≥ H · k_pairs`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_i8_avx2_block<const H: usize>(
    i0: usize,
    a: &[i8],
    b: &PackedI8,
    c: &mut [i32],
    a16: &mut [i32],
) {
    use std::arch::x86_64::*;
    let (k, n, k_pairs) = (b.k, b.n, b.k_pairs);
    let n_strips = n.div_ceil(NR_I8);
    for r in 0..H {
        extend_row_pairs(
            &a[(i0 + r) * k..(i0 + r) * k + k],
            &mut a16[r * k_pairs..(r + 1) * k_pairs],
        );
    }
    let mut s = 0;
    // Two-strip main kernel: H rows × 16 columns per pass.
    while s + 2 <= n_strips {
        let strip0 = b.data.as_ptr().add(s * k_pairs * NR_I8 * 2);
        let strip1 = b.data.as_ptr().add((s + 1) * k_pairs * NR_I8 * 2);
        let mut acc0 = [_mm256_setzero_si256(); H];
        let mut acc1 = [_mm256_setzero_si256(); H];
        for p in 0..k_pairs {
            let b0 =
                _mm256_cvtepi8_epi16(_mm_loadu_si128(strip0.add(p * NR_I8 * 2) as *const __m128i));
            let b1 =
                _mm256_cvtepi8_epi16(_mm_loadu_si128(strip1.add(p * NR_I8 * 2) as *const __m128i));
            for r in 0..H {
                let ap = _mm256_set1_epi32(*a16.get_unchecked(r * k_pairs + p));
                acc0[r] = _mm256_add_epi32(acc0[r], _mm256_madd_epi16(ap, b0));
                acc1[r] = _mm256_add_epi32(acc1[r], _mm256_madd_epi16(ap, b1));
            }
        }
        store_acc_block(&acc0, c, i0, n, s * NR_I8);
        store_acc_block(&acc1, c, i0, n, (s + 1) * NR_I8);
        s += 2;
    }
    if s < n_strips {
        let strip = b.data.as_ptr().add(s * k_pairs * NR_I8 * 2);
        let mut acc = [_mm256_setzero_si256(); H];
        for p in 0..k_pairs {
            let bv =
                _mm256_cvtepi8_epi16(_mm_loadu_si128(strip.add(p * NR_I8 * 2) as *const __m128i));
            for (r, accr) in acc.iter_mut().enumerate() {
                let ap = _mm256_set1_epi32(*a16.get_unchecked(r * k_pairs + p));
                *accr = _mm256_add_epi32(*accr, _mm256_madd_epi16(ap, bv));
            }
        }
        store_acc_block(&acc, c, i0, n, s * NR_I8);
    }
}

/// AVX-512 VNNI int8 micro-kernel sweep. Each inner step is one
/// `vpdpbusd` — sixteen output columns × four `k`-steps per instruction,
/// four times the `madd_epi16` idiom's throughput. `vpdpbusd` multiplies
/// **unsigned** bytes by signed bytes, so activations are biased once per
/// row block (`a XOR 0x80 = a + 128` in u8) and the exact integer
/// correction `128·Σ_k b[k][j]` (precomputed per column at pack time) is
/// subtracted at store. The four 16-bit products are summed into the i32
/// lane without saturation, so the whole path is exact integer
/// arithmetic ⇒ bitwise identical to the portable kernel.
///
/// # Safety
///
/// Callers must ensure the CPU supports AVX-512F and AVX-512 VNNI.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vnni")]
unsafe fn gemm_i8_vnni(m: usize, a: &[i8], b: &PackedI8, c: &mut [i32]) {
    use std::cell::RefCell;
    // Reused biased-quad scratch: one row block per live call.
    thread_local! {
        static AQ: RefCell<Vec<i32>> = const { RefCell::new(Vec::new()) };
    }
    AQ.with(|cell| {
        let mut aq = cell.take();
        let k_quads = b.k.div_ceil(4);
        if aq.len() < MR_I8 * k_quads {
            aq.resize(MR_I8 * k_quads, 0);
        }
        let mut i0 = 0;
        while i0 < m {
            let h = MR_I8.min(m - i0);
            match h {
                4 => gemm_i8_vnni_block::<4>(i0, a, b, c, &mut aq),
                3 => gemm_i8_vnni_block::<3>(i0, a, b, c, &mut aq),
                2 => gemm_i8_vnni_block::<2>(i0, a, b, c, &mut aq),
                _ => gemm_i8_vnni_block::<1>(i0, a, b, c, &mut aq),
            }
            i0 += h;
        }
        cell.replace(aq);
    });
}

/// Biases one row of i8 activations to u8 (`a + 128`, i.e. `a XOR 0x80`)
/// packed four-per-i32 in `k` order, zero-padding the dangling quad with
/// the bias value 128 (exact: the packed `B` is zero there).
///
/// # Safety
///
/// Callers must ensure the CPU supports AVX-512F and
/// `dst.len() == row.len().div_ceil(4)`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn bias_row_quads(row: &[i8], dst: &mut [i32]) {
    let k = row.len();
    debug_assert_eq!(dst.len(), k.div_ceil(4));
    let dst8 = dst.as_mut_ptr() as *mut u8;
    let mut j = 0;
    while j + 64 <= k {
        use std::arch::x86_64::*;
        let v = _mm512_loadu_si512(row.as_ptr().add(j) as *const __m512i);
        let biased = _mm512_xor_si512(v, _mm512_set1_epi8(-128));
        _mm512_storeu_si512(dst8.add(j) as *mut __m512i, biased);
        j += 64;
    }
    while j < k {
        *dst8.add(j) = (row[j] as u8) ^ 0x80;
        j += 1;
    }
    let padded = k.div_ceil(4) * 4;
    while j < padded {
        // Bias of zero: the matching packed `B` bytes are zero-padded,
        // so the product contributes nothing either way.
        *dst8.add(j) = 0x80;
        j += 1;
    }
}

/// One `H`-row block of the VNNI sweep (`H ≤` [`MR_I8`]).
///
/// # Safety
///
/// Callers must ensure the CPU supports AVX-512F and AVX-512 VNNI,
/// `i0 + H ≤ m`, and `aq.len() ≥ H · k_quads`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vnni")]
unsafe fn gemm_i8_vnni_block<const H: usize>(
    i0: usize,
    a: &[i8],
    b: &PackedI8,
    c: &mut [i32],
    aq: &mut [i32],
) {
    use std::arch::x86_64::*;
    let (k, n) = (b.k, b.n);
    let k_quads = k.div_ceil(4);
    let n_strips = n.div_ceil(NR_VNNI);
    for r in 0..H {
        bias_row_quads(
            &a[(i0 + r) * k..(i0 + r) * k + k],
            &mut aq[r * k_quads..(r + 1) * k_quads],
        );
    }
    // Strip pairs: both strips share one broadcast of each activation
    // quad, and the 2·H independent dpbusd chains hide the instruction's
    // latency (a single strip gives the scheduler only H chains).
    let mut s = 0;
    while s + 2 <= n_strips {
        let strip0 = b.quad.as_ptr().add(s * k_quads * NR_VNNI * 4);
        let strip1 = b.quad.as_ptr().add((s + 1) * k_quads * NR_VNNI * 4);
        let mut acc0 = [_mm512_setzero_si512(); H];
        let mut acc1 = [_mm512_setzero_si512(); H];
        for q in 0..k_quads {
            let bv0 = _mm512_loadu_si512(strip0.add(q * NR_VNNI * 4) as *const __m512i);
            let bv1 = _mm512_loadu_si512(strip1.add(q * NR_VNNI * 4) as *const __m512i);
            for r in 0..H {
                let av = _mm512_set1_epi32(*aq.get_unchecked(r * k_quads + q));
                acc0[r] = _mm512_dpbusd_epi32(acc0[r], av, bv0);
                acc1[r] = _mm512_dpbusd_epi32(acc1[r], av, bv1);
            }
        }
        gemm_vnni_epilogue::<H>(&acc0, i0, b, s, c);
        gemm_vnni_epilogue::<H>(&acc1, i0, b, s + 1, c);
        s += 2;
    }
    if s < n_strips {
        let strip = b.quad.as_ptr().add(s * k_quads * NR_VNNI * 4);
        let mut acc = [_mm512_setzero_si512(); H];
        for q in 0..k_quads {
            let bv = _mm512_loadu_si512(strip.add(q * NR_VNNI * 4) as *const __m512i);
            for (r, accr) in acc.iter_mut().enumerate() {
                let av = _mm512_set1_epi32(*aq.get_unchecked(r * k_quads + q));
                *accr = _mm512_dpbusd_epi32(*accr, av, bv);
            }
        }
        gemm_vnni_epilogue::<H>(&acc, i0, b, s, c);
    }
}

/// Masked vector epilogue of the VNNI sweep: `c += acc − 128·S_j` for one
/// strip, one shot per row (the shift is exact — col sums are far below
/// 2^24). A scalar epilogue here costs more than the dpbusd core at
/// these widths.
///
/// # Safety
///
/// Callers must ensure the CPU supports AVX-512F, `i0 + H ≤ m`, and `s`
/// is a valid strip index.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
unsafe fn gemm_vnni_epilogue<const H: usize>(
    acc: &[std::arch::x86_64::__m512i; H],
    i0: usize,
    b: &PackedI8,
    s: usize,
    c: &mut [i32],
) {
    use std::arch::x86_64::*;
    let n = b.n;
    let js = s * NR_VNNI;
    let width = NR_VNNI.min(n - js);
    let mask: __mmask16 = if width == NR_VNNI {
        0xffff
    } else {
        (1u16 << width) - 1
    };
    let cs = _mm512_maskz_loadu_epi32(mask, b.col_sums.as_ptr().add(js));
    let corr = _mm512_slli_epi32::<7>(cs);
    for (r, accr) in acc.iter().enumerate() {
        let cp = c.as_mut_ptr().add((i0 + r) * n + js);
        let cv = _mm512_maskz_loadu_epi32(mask, cp);
        // Undo the u8 bias: Σ(a+128)·b − 128·S_j = Σ a·b.
        let sum = _mm512_add_epi32(cv, _mm512_sub_epi32(*accr, corr));
        _mm512_mask_storeu_epi32(cp, mask, sum);
    }
}

/// Adds a block of `H` strip accumulators into `c`, clipping to the
/// ragged strip width at the matrix edge.
///
/// # Safety
///
/// Callers must ensure the CPU supports AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn store_acc_block<const H: usize>(
    acc: &[std::arch::x86_64::__m256i; H],
    c: &mut [i32],
    i0: usize,
    n: usize,
    js: usize,
) {
    use std::arch::x86_64::*;
    let width = NR_I8.min(n - js);
    let mut lanes = [0i32; NR_I8];
    for (r, accr) in acc.iter().enumerate() {
        _mm256_storeu_si256(lanes.as_mut_ptr() as *mut __m256i, *accr);
        let base = (i0 + r) * n + js;
        for (j, &v) in lanes.iter().enumerate().take(width) {
            c[base + j] += v;
        }
    }
}

/// Reference i8 GEMM: the naive i-k-j triple loop over unpacked operands,
/// `C += A·B` with i32 accumulation. Ground truth for the int8 property
/// tests (both optimized kernels must equal it **bitwise**).
pub fn naive_i8(m: usize, k: usize, n: usize, a: &[i8], b: &[i8], c: &mut [i32]) {
    assert_eq!(
        a.len(),
        m * k,
        "naive_i8: lhs length {} != {m}×{k}",
        a.len()
    );
    assert_eq!(
        b.len(),
        k * n,
        "naive_i8: rhs length {} != {k}×{n}",
        b.len()
    );
    assert_eq!(
        c.len(),
        m * n,
        "naive_i8: out length {} != {m}×{n}",
        c.len()
    );
    for i in 0..m {
        for kk in 0..k {
            let av = a[i * k + kk] as i32;
            if av == 0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            let o_row = &mut c[i * n..(i + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv as i32;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill (no external deps).
    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn max_rel_err(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
            .fold(0.0, f32::max)
    }

    fn portable(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        let mut pa = Vec::new();
        let mut pb = Vec::new();
        gemm_portable(m, k, n, a, b, c, &mut pa, &mut pb);
    }

    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (2, 3, 2),
        (5, 7, 9),
        (1, 120, 1),
        (128, 120, 64),
        (65, 257, 17), // straddles MC and KC boundaries
        (6, 512, 16),
    ];

    #[test]
    fn portable_kernel_is_bitwise_identical_to_naive() {
        for &(m, k, n) in SHAPES {
            let a = fill(m as u64 * 31 + k as u64, m * k);
            let b = fill(n as u64 * 17 + 3, k * n);
            let mut c_naive = vec![0.0f32; m * n];
            let mut c_blocked = vec![0.0f32; m * n];
            naive(m, k, n, &a, &b, &mut c_naive);
            portable(m, k, n, &a, &b, &mut c_blocked);
            assert_eq!(c_naive, c_blocked, "shape {m}×{k}×{n}");
        }
    }

    #[test]
    fn dispatched_kernel_matches_naive_within_tolerance() {
        // The AVX2 path fuses multiply-adds; 1e-4 rel is the contract.
        for &(m, k, n) in SHAPES {
            let a = fill(m as u64 + 7, m * k);
            let b = fill(n as u64 + 11, k * n);
            let mut c_naive = vec![0.0f32; m * n];
            let mut c_fast = vec![0.0f32; m * n];
            naive(m, k, n, &a, &b, &mut c_naive);
            gemm(m, k, n, &a, &b, &mut c_fast);
            let err = max_rel_err(&c_naive, &c_fast);
            assert!(err < 1e-4, "shape {m}×{k}×{n}: rel err {err}");
        }
    }

    #[test]
    fn dispatched_kernel_is_deterministic_run_to_run() {
        let (m, k, n) = (65, 257, 17);
        let a = fill(21, m * k);
        let b = fill(22, k * n);
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut c1);
        gemm(m, k, n, &a, &b, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn nt_matches_naive_on_pretransposed_operand() {
        for &(m, k, n) in &[(9, 33, 5), (1, 1, 1), (4, 1, 7), (16, 64, 1)] {
            let a = fill(3, m * k);
            let bt = fill(4, n * k); // B stored as [n, k]
            let mut b = vec![0.0f32; k * n];
            transpose_into(n, k, &bt, &mut b);
            let mut c_ref = vec![0.0f32; m * n];
            naive(m, k, n, &a, &b, &mut c_ref);
            let mut c_nt = vec![0.0f32; m * n];
            gemm_nt(m, n, k, &a, &bt, &mut c_nt);
            assert!(max_rel_err(&c_ref, &c_nt) < 1e-4, "shape {m}×{k}×{n}");
        }
    }

    #[test]
    fn tn_is_bitwise_identical_to_transpose_then_naive() {
        for &(m, k, n) in &[(13, 21, 6), (1, 1, 1), (120, 128, 1), (3, 1, 3)] {
            let at = fill(5, k * m); // A stored as [k, m]
            let b = fill(6, k * n);
            let mut a = vec![0.0f32; m * k];
            transpose_into(k, m, &at, &mut a);
            let mut c_ref = vec![0.0f32; m * n];
            // One multiply-add per element per k-step, increasing k: the
            // naive kernel's order exactly (zero-skip only drops ±0 terms).
            naive(m, k, n, &a, &b, &mut c_ref);
            let mut c_tn = vec![0.0f32; m * n];
            gemm_tn(m, n, k, &at, &b, &mut c_tn);
            assert_eq!(c_ref, c_tn, "shape {m}×{k}×{n}");
        }
    }

    #[test]
    fn kernels_accumulate_rather_than_overwrite() {
        let (m, k, n) = (3, 4, 2);
        let a = fill(7, m * k);
        let b = fill(8, k * n);
        let mut once = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut once);
        let mut twice = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut twice);
        gemm(m, k, n, &a, &b, &mut twice);
        for (o, t) in once.iter().zip(&twice) {
            assert!((2.0 * o - t).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_tiles_roundtrip() {
        let (m, n) = (45, 70); // straddles the 32-tile boundary
        let src = fill(9, m * n);
        let mut t = vec![0.0f32; m * n];
        let mut back = vec![0.0f32; m * n];
        transpose_into(m, n, &src, &mut t);
        transpose_into(n, m, &t, &mut back);
        assert_eq!(src, back);
    }

    #[test]
    fn dot_matches_scalar_fold_within_tolerance() {
        for len in [0, 1, 7, 8, 9, 64, 120, 121] {
            let x = fill(10 + len as u64, len);
            let y = fill(20 + len as u64, len);
            let scalar: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            let fast = dot(&x, &y);
            assert!(
                (scalar - fast).abs() <= 1e-4 * scalar.abs().max(1.0),
                "len {len}: {scalar} vs {fast}"
            );
        }
    }

    #[test]
    fn zero_dims_are_noops() {
        let mut c: Vec<f32> = Vec::new();
        gemm(0, 4, 3, &[], &fill(1, 12), &mut c);
        let mut c2 = vec![1.0f32; 6];
        gemm(2, 0, 3, &[], &[], &mut c2);
        assert_eq!(c2, vec![1.0; 6]); // k = 0 adds nothing
    }

    #[test]
    #[should_panic(expected = "gemm: lhs length")]
    fn dimension_mismatch_panics() {
        let mut c = vec![0.0f32; 4];
        gemm(2, 3, 2, &[0.0; 5], &[0.0; 6], &mut c);
    }

    /// Deterministic i8 fill covering the full value range.
    fn fill_i8(seed: u64, len: usize) -> Vec<i8> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 40) as i8
            })
            .collect()
    }

    const I8_SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (2, 3, 2),
        (5, 7, 9),     // odd k, ragged strip
        (4, 8, 8),     // exact tile
        (120, 4, 32),  // layer-1 conv im2col shape
        (13, 128, 17), // deep-conv shape, ragged everything
        (3, 3840, 1),  // final dense shape (k = 120·32)
    ];

    #[test]
    fn packed_i8_kernels_match_naive_bitwise() {
        for &(m, k, n) in I8_SHAPES {
            let a = fill_i8(m as u64 * 131 + k as u64, m * k);
            let b = fill_i8(n as u64 * 17 + 5, k * n);
            let packed = PackedI8::pack(k, n, &b);
            let mut c_naive = vec![0i32; m * n];
            let mut c_port = vec![0i32; m * n];
            let mut c_fast = vec![0i32; m * n];
            naive_i8(m, k, n, &a, &b, &mut c_naive);
            gemm_i8_portable(m, &a, &packed, &mut c_port);
            gemm_i8(m, &a, &packed, &mut c_fast);
            assert_eq!(c_naive, c_port, "portable, shape {m}×{k}×{n}");
            assert_eq!(c_naive, c_fast, "dispatched, shape {m}×{k}×{n}");
        }
    }

    #[test]
    fn i8_kernels_accumulate() {
        let (m, k, n) = (3, 5, 4);
        let a = fill_i8(1, m * k);
        let b = fill_i8(2, k * n);
        let packed = PackedI8::pack(k, n, &b);
        let mut once = vec![0i32; m * n];
        gemm_i8(m, &a, &packed, &mut once);
        let mut twice = vec![0i32; m * n];
        gemm_i8(m, &a, &packed, &mut twice);
        gemm_i8(m, &a, &packed, &mut twice);
        for (o, t) in once.iter().zip(&twice) {
            assert_eq!(2 * o, *t);
        }
    }

    #[test]
    fn fused_shared_input_equals_per_member_calls() {
        let (m, k) = (6, 16);
        let a = fill_i8(3, m * k);
        let b1 = fill_i8(4, k * 8);
        let b2 = fill_i8(5, k * 8);
        let p1 = PackedI8::pack(k, 8, &b1);
        let p2 = PackedI8::pack(k, 8, &b2);
        let mut fused = vec![0i32; m * 16];
        gemm_i8_fused(m, &a, &[&p1, &p2], &mut fused);
        let mut c1 = vec![0i32; m * 8];
        let mut c2 = vec![0i32; m * 8];
        gemm_i8(m, &a, &p1, &mut c1);
        gemm_i8(m, &a, &p2, &mut c2);
        assert_eq!(&fused[..m * 8], &c1[..]);
        assert_eq!(&fused[m * 8..], &c2[..]);
    }

    #[test]
    fn fused_per_member_input_slices_correctly() {
        let (m, k) = (4, 7);
        let a = fill_i8(6, 2 * m * k); // two members' activations
        let b1 = fill_i8(7, k * 3);
        let b2 = fill_i8(8, k * 5);
        let p1 = PackedI8::pack(k, 3, &b1);
        let p2 = PackedI8::pack(k, 5, &b2);
        let mut fused = vec![0i32; m * 8];
        gemm_i8_fused(m, &a, &[&p1, &p2], &mut fused);
        let mut c1 = vec![0i32; m * 3];
        let mut c2 = vec![0i32; m * 5];
        gemm_i8(m, &a[..m * k], &p1, &mut c1);
        gemm_i8(m, &a[m * k..], &p2, &mut c2);
        assert_eq!(&fused[..m * 3], &c1[..]);
        assert_eq!(&fused[m * 3..], &c2[..]);
    }

    #[test]
    fn fused_empty_member_list_is_a_noop() {
        let mut c: Vec<i32> = Vec::new();
        gemm_i8_fused(4, &[0; 8], &[], &mut c);
    }

    #[test]
    fn i8_saturation_extremes_are_exact() {
        // ±128/±127 everywhere at the documented overflow bound shape.
        let (m, k, n) = (2, 256, 9);
        let a: Vec<i8> = (0..m * k)
            .map(|i| if i % 2 == 0 { -128 } else { 127 })
            .collect();
        let b: Vec<i8> = (0..k * n)
            .map(|i| if i % 3 == 0 { 127 } else { -128 })
            .collect();
        let packed = PackedI8::pack(k, n, &b);
        let mut c_ref = vec![0i32; m * n];
        let mut c_fast = vec![0i32; m * n];
        naive_i8(m, k, n, &a, &b, &mut c_ref);
        gemm_i8(m, &a, &packed, &mut c_fast);
        assert_eq!(c_ref, c_fast);
    }

    #[test]
    #[should_panic(expected = "gemm_i8: lhs length")]
    fn i8_dimension_mismatch_panics() {
        let packed = PackedI8::pack(3, 2, &[0; 6]);
        let mut c = vec![0i32; 4];
        gemm_i8(2, &[0; 5], &packed, &mut c);
    }
}
