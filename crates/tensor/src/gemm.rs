//! Cache-blocked, register-tiled f32 GEMM kernels.
//!
//! Every experiment in the VehiGAN stack — WGAN training, ensemble
//! scoring, FGSM attacks — bottoms out in one of three matrix products:
//!
//! - `C += A·B`   ([`gemm`]): layer forward passes (input/im2col × weights);
//! - `C += Aᵀ·B`  ([`gemm_tn`]): weight gradients `dW = Xᵀ·dY` without
//!   materializing `Xᵀ`;
//! - `C += A·Bᵀ`  ([`gemm_nt`]): input gradients `dX = dY·Wᵀ` without
//!   materializing `Wᵀ`.
//!
//! # Kernel layout
//!
//! [`gemm`] follows the classic panel-packing scheme: the shared dimension
//! is split into `KC`-deep panels; each panel of `B` is packed into
//! `NR`-wide column strips and each `MC`-row block of `A` into `MR`-tall
//! row strips, both laid out so the micro-kernel reads one contiguous
//! `[f32; MR]` / `[f32; NR]` pair per `k`-step. The micro-kernel is a
//! broadcast-multiply-accumulate over a fixed `MR × NR` accumulator array,
//! which LLVM autovectorizes — no intrinsics. Two instantiations exist:
//!
//! - a portable 4×8 kernel compiled for the baseline target (one 256-bit
//!   row as two SSE registers; near machine peak on SSE2-only hardware);
//! - a 6×16 kernel compiled with `#[target_feature(enable = "avx2,fma")]`
//!   and `f32::mul_add`, selected at runtime when the CPU supports it
//!   (twelve YMM accumulators — enough independent FMA chains to hide
//!   the fused-multiply-add latency).
//!
//! # Determinism
//!
//! For every kernel the reduction over `k` runs in strictly increasing
//! order *per output element*: micro-kernel accumulators are loaded from
//! `C` at panel entry and stored back at panel exit, so the association
//! matches the naive i-k-j triple loop. Consequences:
//!
//! - the portable path is **bitwise identical** to [`naive`];
//! - the AVX2 path fuses each multiply-add (one rounding instead of two),
//!   so it differs from [`naive`] by ≤ 1e-4 relative error but is
//!   bit-stable run-to-run on a given machine (feature detection is
//!   cached; a process never switches kernels mid-run);
//! - [`gemm_tn`] performs exactly one multiply-add per output element per
//!   `k`-step with no fusion, so it is bitwise identical to
//!   `a.transpose().matmul(b)` on every ISA;
//! - [`gemm_nt`] uses a fixed eight-lane partial-sum dot product —
//!   machine-independent and deterministic, but associated differently
//!   from the scalar loop (property tests bound the difference at ≤ 1e-4).
//!
//! All kernels *accumulate* into `C` (`beta = 1`); callers that want a
//! plain product must zero `C` first (a zero-filled buffer is what
//! [`crate::workspace::Workspace`] hands out). This is what lets
//! `Dense::backward` add `dW` straight into the gradient buffer.

use std::cell::RefCell;

/// Rows of `C` per macro panel (keeps the active `A` block L2-resident).
const MC: usize = 64;
/// Depth of a packed panel (keeps one `NR`-wide strip of `B` L1-resident).
const KC: usize = 256;

thread_local! {
    /// Reusable packing buffers for the `A` and `B` panels — they grow
    /// once per thread, so steady-state GEMM calls allocate nothing.
    static PACK: RefCell<(Vec<f32>, Vec<f32>)> = const { RefCell::new((Vec::new(), Vec::new())) };
}

#[cfg(target_arch = "x86_64")]
fn fma_available() -> bool {
    use std::sync::OnceLock;
    static FMA: OnceLock<bool> = OnceLock::new();
    *FMA.get_or_init(|| is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma"))
}

fn check_dims(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &[f32]) {
    assert_eq!(a.len(), m * k, "gemm: lhs length {} != {m}×{k}", a.len());
    assert_eq!(b.len(), k * n, "gemm: rhs length {} != {k}×{n}", b.len());
    assert_eq!(c.len(), m * n, "gemm: out length {} != {m}×{n}", c.len());
}

/// `C += A·B` for row-major `a` (`m×k`), `b` (`k×n`), `c` (`m×n`).
///
/// Blocked and register-tiled; per output element the reduction runs in
/// strictly increasing `k` order (see module docs for the exact
/// determinism guarantees of the two instantiations).
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn gemm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_dims(m, k, n, a, b, c);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    PACK.with(|p| {
        let (pa, pb) = &mut *p.borrow_mut();
        #[cfg(target_arch = "x86_64")]
        if fma_available() {
            // Safety: guarded by cached runtime detection of avx2+fma.
            unsafe { gemm_avx2(m, k, n, a, b, c, pa, pb) };
            return;
        }
        gemm_portable(m, k, n, a, b, c, pa, pb);
    });
}

/// One macro-level pass: pack a `KC × n` panel of `B` into `NR`-strips,
/// pack each `MC × KC` block of `A` into `MR`-strips, and sweep the
/// micro-kernel over the strip grid. Instantiated once per micro-kernel
/// because `#[target_feature]` codegen must contain the whole loop nest.
macro_rules! gemm_body {
    ($micro:ident, $mr:expr, $nr:expr, $m:ident, $k:ident, $n:ident,
     $a:ident, $b:ident, $c:ident, $pa:ident, $pb:ident) => {{
        const MR: usize = $mr;
        const NR: usize = $nr;
        let n_strips = $n.div_ceil(NR);
        for kb in (0..$k).step_by(KC) {
            let kc = KC.min($k - kb);
            $pb.clear();
            $pb.resize(n_strips * kc * NR, 0.0);
            for s in 0..n_strips {
                let js = s * NR;
                let w = NR.min($n - js);
                let base = s * kc * NR;
                for kk in 0..kc {
                    let src = (kb + kk) * $n + js;
                    $pb[base + kk * NR..base + kk * NR + w].copy_from_slice(&$b[src..src + w]);
                }
            }
            for ib in (0..$m).step_by(MC) {
                let mc = MC.min($m - ib);
                let m_strips = mc.div_ceil(MR);
                $pa.clear();
                $pa.resize(m_strips * kc * MR, 0.0);
                for r in 0..m_strips {
                    let is = ib + r * MR;
                    let h = MR.min(ib + mc - is);
                    let base = r * kc * MR;
                    for row in 0..h {
                        let arow = &$a[(is + row) * $k + kb..(is + row) * $k + kb + kc];
                        for (kk, &av) in arow.iter().enumerate() {
                            $pa[base + kk * MR + row] = av;
                        }
                    }
                }
                for r in 0..m_strips {
                    let is = ib + r * MR;
                    let h = MR.min(ib + mc - is);
                    let ap = &$pa[r * kc * MR..(r + 1) * kc * MR];
                    for s in 0..n_strips {
                        let js = s * NR;
                        let w = NR.min($n - js);
                        let bp = &$pb[s * kc * NR..(s + 1) * kc * NR];
                        $micro(ap, bp, kc, is, js, h, w, $n, $c);
                    }
                }
            }
        }
    }};
}

/// Declares an `MR × NR` micro-kernel over packed strips. Accumulators
/// load from `C` before the `k` sweep and store back after, preserving
/// the global per-element reduction order across `KC` panels. Ragged
/// edges are handled by the zero padding in the packed strips (extra
/// rows/columns compute values that are simply never stored).
macro_rules! micro_impl {
    ($name:ident, $mr:expr, $nr:expr, $inline:meta, $madd:expr) => {
        #[$inline]
        #[allow(clippy::too_many_arguments)]
        fn $name(
            ap: &[f32],
            bp: &[f32],
            kc: usize,
            i0: usize,
            j0: usize,
            h: usize,
            w: usize,
            ldc: usize,
            c: &mut [f32],
        ) {
            const MR: usize = $mr;
            const NR: usize = $nr;
            let madd: fn(f32, f32, f32) -> f32 = $madd;
            let mut acc = [[0.0f32; NR]; MR];
            for r in 0..h {
                let base = (i0 + r) * ldc + j0;
                acc[r][..w].copy_from_slice(&c[base..base + w]);
            }
            for (av, bv) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
                let avv: &[f32; MR] = av.try_into().expect("packed A strip row");
                let bvv: &[f32; NR] = bv.try_into().expect("packed B strip row");
                for (row, &ar) in acc.iter_mut().zip(avv) {
                    for (x, &bb) in row.iter_mut().zip(bvv) {
                        *x = madd(ar, bb, *x);
                    }
                }
            }
            for r in 0..h {
                let base = (i0 + r) * ldc + j0;
                c[base..base + w].copy_from_slice(&acc[r][..w]);
            }
        }
    };
}

// Portable kernel: separate mul + add (bitwise == naive), 4×8 tile. The
// `inline(never)` is load-bearing — inlining this into the blocked loop
// nest defeats LLVM's register allocation of the accumulator array and
// costs ~6× throughput.
micro_impl!(micro_4x8, 4, 8, inline(never), |a, b, acc| a * b + acc);
// AVX2 kernel: fused multiply-add, 6×16 tile (12 YMM accumulators). Must
// be `inline(always)` so it inherits the caller's `#[target_feature]`.
#[cfg(target_arch = "x86_64")]
micro_impl!(micro_6x16, 6, 16, inline(always), f32::mul_add);

#[allow(clippy::too_many_arguments)]
fn gemm_portable(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    pa: &mut Vec<f32>,
    pb: &mut Vec<f32>,
) {
    gemm_body!(micro_4x8, 4, 8, m, k, n, a, b, c, pa, pb)
}

/// # Safety
///
/// Callers must ensure the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn gemm_avx2(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    pa: &mut Vec<f32>,
    pb: &mut Vec<f32>,
) {
    gemm_body!(micro_6x16, 6, 16, m, k, n, a, b, c, pa, pb)
}

/// `C += A·Bᵀ` for row-major `a` (`m×k`), `b` (`n×k`), `c` (`m×n`).
///
/// The transpose-free input-gradient kernel: `dX = dY·Wᵀ` calls this with
/// `W` as stored (`[in, out]` order) instead of materializing `Wᵀ`. Both
/// operands are read row-contiguously, so it is a pure dot-product sweep.
/// Uses the fixed eight-lane reduction of [`dot`] — deterministic and
/// machine-independent.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn gemm_nt(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nt: lhs length {} != {m}×{k}", a.len());
    assert_eq!(b.len(), n * k, "gemm_nt: rhs length {} != {n}×{k}", b.len());
    assert_eq!(c.len(), m * n, "gemm_nt: out length {} != {m}×{n}", c.len());
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // Safety: guarded by cached runtime detection of avx2+fma. Same
        // source as the portable body (no fusion), so results are bitwise
        // identical across the two paths.
        unsafe { gemm_nt_avx2(m, n, k, a, b, c) };
        return;
    }
    gemm_nt_body(m, n, k, a, b, c);
}

#[inline(always)]
fn gemm_nt_body(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for i in 0..m {
        let ar = &a[i * k..(i + 1) * k];
        let cr = &mut c[i * n..(i + 1) * n];
        for (j, cv) in cr.iter_mut().enumerate() {
            *cv += dot(ar, &b[j * k..(j + 1) * k]);
        }
    }
}

/// # Safety
///
/// Callers must ensure the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_nt_avx2(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_nt_body(m, n, k, a, b, c)
}

/// Eight-lane dot product with a fixed reduction tree: deterministic and
/// identical on every ISA, but associated differently from a scalar left
/// fold (lane partials are combined pairwise at the end).
#[inline]
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    const L: usize = 8;
    let mut lanes = [0.0f32; L];
    let mut xc = x.chunks_exact(L);
    let mut yc = y.chunks_exact(L);
    for (xv, yv) in (&mut xc).zip(&mut yc) {
        for (l, lane) in lanes.iter_mut().enumerate() {
            *lane += xv[l] * yv[l];
        }
    }
    let mut tail = 0.0f32;
    for (xv, yv) in xc.remainder().iter().zip(yc.remainder()) {
        tail += xv * yv;
    }
    let s0 = (lanes[0] + lanes[4]) + (lanes[2] + lanes[6]);
    let s1 = (lanes[1] + lanes[5]) + (lanes[3] + lanes[7]);
    (s0 + s1) + tail
}

/// `C += Aᵀ·B` for row-major `a` (`k×m`), `b` (`k×n`), `c` (`m×n`).
///
/// The transpose-free weight-gradient kernel: `dW += Xᵀ·dY` calls this
/// with the activations/im2col matrix as stored, accumulating straight
/// into the gradient buffer — no transposed copy, no temporary product.
/// Exactly one multiply-add per output element per `k`-step, in strictly
/// increasing `k`: bitwise identical to `a.transpose().matmul(b)`.
///
/// # Panics
///
/// Panics if any slice length disagrees with the stated dimensions.
pub fn gemm_tn(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), k * m, "gemm_tn: lhs length {} != {k}×{m}", a.len());
    assert_eq!(b.len(), k * n, "gemm_tn: rhs length {} != {k}×{n}", b.len());
    assert_eq!(c.len(), m * n, "gemm_tn: out length {} != {m}×{n}", c.len());
    #[cfg(target_arch = "x86_64")]
    if fma_available() {
        // Safety: guarded by cached runtime detection of avx2+fma. Same
        // source as the portable body (no fusion), so results are bitwise
        // identical across the two paths.
        unsafe { gemm_tn_avx2(m, n, k, a, b, c) };
        return;
    }
    gemm_tn_body(m, n, k, a, b, c);
}

#[inline(always)]
fn gemm_tn_body(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for kk in 0..k {
        let ar = &a[kk * m..(kk + 1) * m];
        let br = &b[kk * n..(kk + 1) * n];
        if n == 1 {
            // Critic head: dW is a column vector — a straight axpy.
            let bv = br[0];
            for (cv, &av) in c.iter_mut().zip(ar) {
                *cv += av * bv;
            }
        } else {
            for (i, &av) in ar.iter().enumerate() {
                let cr = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in cr.iter_mut().zip(br) {
                    *cv += av * bv;
                }
            }
        }
    }
}

/// # Safety
///
/// Callers must ensure the CPU supports AVX2 and FMA.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_tn_avx2(m: usize, n: usize, k: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    gemm_tn_body(m, n, k, a, b, c)
}

/// The seed repository's i-k-j scalar triple loop, kept verbatim as the
/// reference kernel for property tests and benchmark baselines.
/// `C += A·B` for row-major `a` (`m×k`), `b` (`k×n`), `c` (`m×n`).
pub fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    check_dims(m, k, n, a, b, c);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut c[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Blocked out-of-place transpose: `dst[j·m + i] = src[i·n + j]` in 32×32
/// tiles so reads and writes both stay cache-resident.
///
/// # Panics
///
/// Panics if `src`/`dst` lengths differ from `m·n`.
pub fn transpose_into(m: usize, n: usize, src: &[f32], dst: &mut [f32]) {
    assert_eq!(
        src.len(),
        m * n,
        "transpose: src length {} != {m}×{n}",
        src.len()
    );
    assert_eq!(
        dst.len(),
        m * n,
        "transpose: dst length {} != {m}×{n}",
        dst.len()
    );
    const TILE: usize = 32;
    for it in (0..m).step_by(TILE) {
        let ih = TILE.min(m - it);
        for jt in (0..n).step_by(TILE) {
            let jw = TILE.min(n - jt);
            for i in it..it + ih {
                for j in jt..jt + jw {
                    dst[j * m + i] = src[i * n + j];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill (no external deps).
    fn fill(seed: u64, len: usize) -> Vec<f32> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn max_rel_err(a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
            .fold(0.0, f32::max)
    }

    fn portable(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        let mut pa = Vec::new();
        let mut pb = Vec::new();
        gemm_portable(m, k, n, a, b, c, &mut pa, &mut pb);
    }

    const SHAPES: &[(usize, usize, usize)] = &[
        (1, 1, 1),
        (2, 3, 2),
        (5, 7, 9),
        (1, 120, 1),
        (128, 120, 64),
        (65, 257, 17), // straddles MC and KC boundaries
        (6, 512, 16),
    ];

    #[test]
    fn portable_kernel_is_bitwise_identical_to_naive() {
        for &(m, k, n) in SHAPES {
            let a = fill(m as u64 * 31 + k as u64, m * k);
            let b = fill(n as u64 * 17 + 3, k * n);
            let mut c_naive = vec![0.0f32; m * n];
            let mut c_blocked = vec![0.0f32; m * n];
            naive(m, k, n, &a, &b, &mut c_naive);
            portable(m, k, n, &a, &b, &mut c_blocked);
            assert_eq!(c_naive, c_blocked, "shape {m}×{k}×{n}");
        }
    }

    #[test]
    fn dispatched_kernel_matches_naive_within_tolerance() {
        // The AVX2 path fuses multiply-adds; 1e-4 rel is the contract.
        for &(m, k, n) in SHAPES {
            let a = fill(m as u64 + 7, m * k);
            let b = fill(n as u64 + 11, k * n);
            let mut c_naive = vec![0.0f32; m * n];
            let mut c_fast = vec![0.0f32; m * n];
            naive(m, k, n, &a, &b, &mut c_naive);
            gemm(m, k, n, &a, &b, &mut c_fast);
            let err = max_rel_err(&c_naive, &c_fast);
            assert!(err < 1e-4, "shape {m}×{k}×{n}: rel err {err}");
        }
    }

    #[test]
    fn dispatched_kernel_is_deterministic_run_to_run() {
        let (m, k, n) = (65, 257, 17);
        let a = fill(21, m * k);
        let b = fill(22, k * n);
        let mut c1 = vec![0.0f32; m * n];
        let mut c2 = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut c1);
        gemm(m, k, n, &a, &b, &mut c2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn nt_matches_naive_on_pretransposed_operand() {
        for &(m, k, n) in &[(9, 33, 5), (1, 1, 1), (4, 1, 7), (16, 64, 1)] {
            let a = fill(3, m * k);
            let bt = fill(4, n * k); // B stored as [n, k]
            let mut b = vec![0.0f32; k * n];
            transpose_into(n, k, &bt, &mut b);
            let mut c_ref = vec![0.0f32; m * n];
            naive(m, k, n, &a, &b, &mut c_ref);
            let mut c_nt = vec![0.0f32; m * n];
            gemm_nt(m, n, k, &a, &bt, &mut c_nt);
            assert!(max_rel_err(&c_ref, &c_nt) < 1e-4, "shape {m}×{k}×{n}");
        }
    }

    #[test]
    fn tn_is_bitwise_identical_to_transpose_then_naive() {
        for &(m, k, n) in &[(13, 21, 6), (1, 1, 1), (120, 128, 1), (3, 1, 3)] {
            let at = fill(5, k * m); // A stored as [k, m]
            let b = fill(6, k * n);
            let mut a = vec![0.0f32; m * k];
            transpose_into(k, m, &at, &mut a);
            let mut c_ref = vec![0.0f32; m * n];
            // One multiply-add per element per k-step, increasing k: the
            // naive kernel's order exactly (zero-skip only drops ±0 terms).
            naive(m, k, n, &a, &b, &mut c_ref);
            let mut c_tn = vec![0.0f32; m * n];
            gemm_tn(m, n, k, &at, &b, &mut c_tn);
            assert_eq!(c_ref, c_tn, "shape {m}×{k}×{n}");
        }
    }

    #[test]
    fn kernels_accumulate_rather_than_overwrite() {
        let (m, k, n) = (3, 4, 2);
        let a = fill(7, m * k);
        let b = fill(8, k * n);
        let mut once = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut once);
        let mut twice = vec![0.0f32; m * n];
        gemm(m, k, n, &a, &b, &mut twice);
        gemm(m, k, n, &a, &b, &mut twice);
        for (o, t) in once.iter().zip(&twice) {
            assert!((2.0 * o - t).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_tiles_roundtrip() {
        let (m, n) = (45, 70); // straddles the 32-tile boundary
        let src = fill(9, m * n);
        let mut t = vec![0.0f32; m * n];
        let mut back = vec![0.0f32; m * n];
        transpose_into(m, n, &src, &mut t);
        transpose_into(n, m, &t, &mut back);
        assert_eq!(src, back);
    }

    #[test]
    fn dot_matches_scalar_fold_within_tolerance() {
        for len in [0, 1, 7, 8, 9, 64, 120, 121] {
            let x = fill(10 + len as u64, len);
            let y = fill(20 + len as u64, len);
            let scalar: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            let fast = dot(&x, &y);
            assert!(
                (scalar - fast).abs() <= 1e-4 * scalar.abs().max(1.0),
                "len {len}: {scalar} vs {fast}"
            );
        }
    }

    #[test]
    fn zero_dims_are_noops() {
        let mut c: Vec<f32> = Vec::new();
        gemm(0, 4, 3, &[], &fill(1, 12), &mut c);
        let mut c2 = vec![1.0f32; 6];
        gemm(2, 0, 3, &[], &[], &mut c2);
        assert_eq!(c2, vec![1.0; 6]); // k = 0 adds nothing
    }

    #[test]
    #[should_panic(expected = "gemm: lhs length")]
    fn dimension_mismatch_panics() {
        let mut c = vec![0.0f32; 4];
        gemm(2, 3, 2, &[0.0; 5], &[0.0; 6], &mut c);
    }
}
