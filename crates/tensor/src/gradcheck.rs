//! Finite-difference gradient checking.
//!
//! Used by the test suites of every layer to prove the hand-written
//! backward passes exact (up to `O(eps²)` truncation error). Central
//! differences are used for accuracy.

use crate::Tensor;

/// Numerically estimates `∂f/∂x` by central differences.
///
/// `f` must be a pure function of its input. The returned tensor has the
/// same shape as `x`.
///
/// # Examples
///
/// ```
/// use vehigan_tensor::{Tensor, gradcheck::finite_diff_grad};
///
/// let x = Tensor::from_slice(&[2.0, 3.0]);
/// // f(x) = x0² + 2·x1  →  ∇f = [2·x0, 2]
/// let g = finite_diff_grad(|t| t.as_slice()[0].powi(2) + 2.0 * t.as_slice()[1], &x, 1e-3);
/// assert!((g.as_slice()[0] - 4.0).abs() < 1e-2);
/// assert!((g.as_slice()[1] - 2.0).abs() < 1e-2);
/// ```
pub fn finite_diff_grad(f: impl Fn(&Tensor) -> f32, x: &Tensor, eps: f32) -> Tensor {
    let mut grad = Tensor::zeros(x.shape());
    let mut probe = x.clone();
    for i in 0..x.len() {
        let orig = probe.as_slice()[i];
        probe.as_mut_slice()[i] = orig + eps;
        let f_plus = f(&probe);
        probe.as_mut_slice()[i] = orig - eps;
        let f_minus = f(&probe);
        probe.as_mut_slice()[i] = orig;
        grad.as_mut_slice()[i] = (f_plus - f_minus) / (2.0 * eps);
    }
    grad
}

/// Maximum relative error between an analytic and a numeric gradient.
///
/// Relative error is `|a − n| / max(1, |a|, |n|)` element-wise, so small
/// gradients are compared absolutely and large ones relatively.
pub fn max_relative_error(analytic: &Tensor, numeric: &Tensor) -> f32 {
    assert_eq!(
        analytic.shape(),
        numeric.shape(),
        "gradcheck shape mismatch"
    );
    analytic
        .as_slice()
        .iter()
        .zip(numeric.as_slice())
        .map(|(&a, &n)| (a - n).abs() / a.abs().max(n.abs()).max(1.0))
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient_is_exact() {
        let x = Tensor::from_slice(&[1.0, -2.0, 0.5]);
        let g = finite_diff_grad(
            |t| t.as_slice().iter().map(|v| v * v).sum::<f32>(),
            &x,
            1e-3,
        );
        let expected = &x * 2.0;
        assert!(max_relative_error(&expected, &g) < 1e-3);
    }

    #[test]
    fn relative_error_handles_zero_grads() {
        let a = Tensor::zeros(&[3]);
        let b = Tensor::zeros(&[3]);
        assert_eq!(max_relative_error(&a, &b), 0.0);
    }
}
