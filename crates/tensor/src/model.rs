//! The [`Sequential`] model container.

use crate::layer::{Layer, Param};
use crate::layers::{Activation, Conv2D, Dense, Flatten, Reshape, UpSample2D};
use crate::serialize::{ModelFormatError, ModelSnapshot};
use crate::workspace::Workspace;
use crate::Tensor;

/// An ordered stack of layers trained end-to-end.
///
/// Both VehiGAN networks — the generator 𝒢 (noise → fake snapshot) and the
/// discriminator/critic 𝒟 (snapshot → realism score) — are `Sequential`
/// models.
///
/// # Examples
///
/// ```
/// use vehigan_tensor::{Sequential, layers::{Dense, Activation}, Init, Tensor, init::seeded_rng};
///
/// let mut rng = seeded_rng(0);
/// let mut model = Sequential::new();
/// model.push(Dense::new(4, 8, Init::HeUniform, &mut rng));
/// model.push(Activation::leaky_relu(0.2));
/// model.push(Dense::new(8, 1, Init::XavierUniform, &mut rng));
/// let y = model.forward(&Tensor::zeros(&[2, 4]));
/// assert_eq!(y.shape(), &[2, 1]);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        write!(
            f,
            "Sequential({} layers: {:?}, {} params)",
            self.layers.len(),
            names,
            self.num_params()
        )
    }
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Appends a boxed layer (used by the deserializer).
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer names in forward order.
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Runs the forward pass, caching activations for `backward`.
    ///
    /// Once a layer's output has been consumed by the next layer it is dead;
    /// it is handed back to the producing layer via [`Layer::reclaim`] so
    /// buffer-caching layers (e.g. [`Conv2D`]) run allocation-free across
    /// training steps.
    pub fn forward(&mut self, input: &Tensor) -> Tensor {
        let mut x = input.clone();
        let mut producer: Option<usize> = None;
        for i in 0..self.layers.len() {
            let y = self.layers[i].forward(&x);
            match producer {
                Some(p) => self.layers[p].reclaim(std::mem::replace(&mut x, y)),
                None => x = y,
            }
            producer = Some(i);
        }
        x
    }

    /// Inference-only forward pass through `&self`: numerically identical
    /// to [`Sequential::forward`] (same kernels, same reduction order) but
    /// caches nothing, and serves all intermediate activations from `ws` so
    /// the steady state performs no heap allocation.
    ///
    /// Takes `input` by value; its buffer is recycled into the workspace as
    /// activations flow through the stack, so pass a workspace-backed copy
    /// when the original must be kept.
    pub fn infer(&self, input: Tensor, ws: &mut Workspace) -> Tensor {
        let mut x = input;
        for layer in &self.layers {
            x = layer.infer(x, ws);
        }
        x
    }

    /// Back-propagates `grad_out` through all layers, accumulating parameter
    /// gradients, and returns the gradient w.r.t. the model input.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = grad_out.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Computes `∂(mean of outputs)/∂input` without touching parameter
    /// gradients' semantics (they are accumulated then discarded by the next
    /// `zero_grad`).
    ///
    /// This is the primitive behind the paper's FGSM attacks (Eqs. 6–7),
    /// which need `∇ₓ𝒟(x)`.
    pub fn input_gradient(&mut self, input: &Tensor) -> Tensor {
        let out = self.forward(input);
        let scale = 1.0 / out.len() as f32;
        let grad_out = Tensor::full(out.shape(), scale);
        self.backward(&grad_out)
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            for p in layer.params_mut() {
                p.zero_grad();
            }
        }
    }

    /// Mutable access to every trainable parameter, in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Immutable access to every trainable parameter, in layer order.
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Total number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.layers
            .iter()
            .flat_map(|l| l.params())
            .map(|p| p.value.len())
            .sum()
    }

    /// Clamps every weight into `[-c, c]` — WGAN weight clipping, which
    /// enforces the critic's Lipschitz constraint (Arjovsky et al. 2017).
    pub fn clip_weights(&mut self, c: f32) {
        assert!(c > 0.0, "clip bound must be positive");
        for layer in &mut self.layers {
            for p in layer.params_mut() {
                for v in p.value.as_mut_slice() {
                    *v = v.clamp(-c, c);
                }
            }
        }
    }

    /// Declared output shape (excluding batch) for an input shape
    /// (excluding batch). Validates layer compatibility.
    ///
    /// # Panics
    ///
    /// Panics if any adjacent pair of layers disagrees on shapes.
    pub fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let mut shape = input_shape.to_vec();
        for layer in &self.layers {
            shape = layer.output_shape(&shape);
        }
        shape
    }

    /// Serializes the whole model.
    pub fn save(&self) -> ModelSnapshot {
        ModelSnapshot {
            layers: self.layers.iter().map(|l| l.save()).collect(),
        }
    }

    /// Reconstructs a model from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns an error on an unknown layer kind or missing fields.
    pub fn from_snapshot(snap: &ModelSnapshot) -> Result<Self, ModelFormatError> {
        let mut model = Sequential::new();
        for layer in &snap.layers {
            let boxed: Box<dyn Layer> = match layer.kind.as_str() {
                "Dense" => Box::new(Dense::from_snapshot(layer)?),
                "Conv2D" => Box::new(Conv2D::from_snapshot(layer)?),
                "UpSample2D" => Box::new(UpSample2D::from_snapshot(layer)?),
                "Flatten" => Box::new(Flatten::from_snapshot(layer)?),
                "Reshape" => Box::new(Reshape::from_snapshot(layer)?),
                "LeakyReLU" | "ReLU" | "Tanh" | "Sigmoid" => {
                    Box::new(Activation::from_snapshot(layer)?)
                }
                other => return Err(ModelFormatError::UnknownLayer(other.to_string())),
            };
            model.push_boxed(boxed);
        }
        Ok(model)
    }

    /// Serializes to bytes (convenience over [`Sequential::save`]).
    pub fn to_bytes(&self) -> Vec<u8> {
        self.save().to_bytes()
    }

    /// Deserializes from bytes.
    ///
    /// # Errors
    ///
    /// Returns an error on bad magic, version, or unknown layers.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ModelFormatError> {
        Self::from_snapshot(&ModelSnapshot::from_bytes(bytes)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{finite_diff_grad, max_relative_error};
    use crate::init::{randn, seeded_rng};
    use crate::layers::Padding;
    use crate::Init;

    fn small_mlp(seed: u64) -> Sequential {
        let mut rng = seeded_rng(seed);
        let mut m = Sequential::new();
        m.push(Dense::new(6, 8, Init::HeUniform, &mut rng));
        m.push(Activation::leaky_relu(0.2));
        m.push(Dense::new(8, 1, Init::XavierUniform, &mut rng));
        m
    }

    #[test]
    fn forward_shapes() {
        let mut m = small_mlp(0);
        let y = m.forward(&Tensor::zeros(&[3, 6]));
        assert_eq!(y.shape(), &[3, 1]);
        assert_eq!(m.output_shape(&[6]), vec![1]);
    }

    #[test]
    fn num_params_counts_all() {
        let m = small_mlp(0);
        assert_eq!(m.num_params(), 6 * 8 + 8 + 8 + 1);
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut m = small_mlp(1);
        let mut rng = seeded_rng(5);
        let x = randn(&[1, 6], &mut rng);
        let analytic = m.input_gradient(&x);
        let snap = m.save();
        let numeric = finite_diff_grad(
            |xx| {
                let mut m2 = Sequential::from_snapshot(&snap).unwrap();
                m2.forward(xx).mean()
            },
            &x,
            1e-2,
        );
        assert!(max_relative_error(&analytic, &numeric) < 2e-2);
    }

    #[test]
    fn conv_pipeline_gradcheck() {
        // A miniature critic: conv → leaky → flatten → dense(1). Seed 3:
        // under the vendored RNG, seed 2 draws an activation input within
        // finite-difference eps of the LeakyReLU kink, which inflates the
        // numeric gradient error past tolerance.
        let mut rng = seeded_rng(3);
        let mut m = Sequential::new();
        m.push(Conv2D::new(
            1,
            2,
            (2, 2),
            Padding::Same,
            Init::HeUniform,
            &mut rng,
        ));
        m.push(Activation::leaky_relu(0.2));
        m.push(Flatten::new());
        m.push(Dense::new(4 * 4 * 2, 1, Init::XavierUniform, &mut rng));
        let x = randn(&[1, 4, 4, 1], &mut rng);
        let analytic = m.input_gradient(&x);
        let snap = m.save();
        let numeric = finite_diff_grad(
            |xx| {
                let mut m2 = Sequential::from_snapshot(&snap).unwrap();
                m2.forward(xx).mean()
            },
            &x,
            1e-2,
        );
        let e = max_relative_error(&analytic, &numeric);
        assert!(e < 2e-2, "err={e}");
    }

    #[test]
    fn clip_weights_bounds_everything() {
        let mut m = small_mlp(3);
        for p in m.params_mut() {
            p.value.scale_in_place(100.0);
        }
        m.clip_weights(0.05);
        for p in m.params() {
            assert!(p.value.max() <= 0.05 && p.value.min() >= -0.05);
        }
    }

    #[test]
    fn zero_grad_resets() {
        let mut m = small_mlp(4);
        let x = Tensor::ones(&[2, 6]);
        let _ = m.forward(&x);
        let _ = m.backward(&Tensor::ones(&[2, 1]));
        assert!(m.params().iter().any(|p| p.grad.norm() > 0.0));
        m.zero_grad();
        assert!(m.params().iter().all(|p| p.grad.norm() == 0.0));
    }

    #[test]
    fn serialization_preserves_predictions() {
        let mut m = small_mlp(6);
        let mut rng = seeded_rng(7);
        let x = randn(&[4, 6], &mut rng);
        let y1 = m.forward(&x);
        let bytes = m.to_bytes();
        let mut m2 = Sequential::from_bytes(&bytes).unwrap();
        let y2 = m2.forward(&x);
        assert_eq!(y1, y2);
    }

    #[test]
    fn generator_shaped_model_builds() {
        // noise(8) → dense(5·6·4) → reshape → upsample(2,2) → conv same →
        // tanh single channel: the paper's G topology in miniature.
        let mut rng = seeded_rng(8);
        let mut g = Sequential::new();
        g.push(Dense::new(8, 5 * 6 * 4, Init::HeUniform, &mut rng));
        g.push(Activation::leaky_relu(0.2));
        g.push(Reshape::new(&[5, 6, 4]));
        g.push(UpSample2D::new(2, 2));
        g.push(Conv2D::new(
            4,
            1,
            (2, 2),
            Padding::Same,
            Init::XavierUniform,
            &mut rng,
        ));
        g.push(Activation::tanh());
        assert_eq!(g.output_shape(&[8]), vec![10, 12, 1]);
        let z = randn(&[2, 8], &mut rng);
        let fake = g.forward(&z);
        assert_eq!(fake.shape(), &[2, 10, 12, 1]);
        assert!(fake.max() <= 1.0 && fake.min() >= -1.0);
    }

    fn small_critic(seed: u64) -> Sequential {
        let mut rng = seeded_rng(seed);
        let mut m = Sequential::new();
        m.push(Conv2D::new(
            1,
            2,
            (2, 2),
            Padding::Same,
            Init::HeUniform,
            &mut rng,
        ));
        m.push(Activation::leaky_relu(0.2));
        m.push(Flatten::new());
        m.push(Dense::new(4 * 4 * 2, 1, Init::XavierUniform, &mut rng));
        m
    }

    #[test]
    fn infer_is_numerically_identical_to_forward() {
        let mut m = small_critic(13);
        let mut rng = seeded_rng(14);
        let x = randn(&[3, 4, 4, 1], &mut rng);
        let y_train = m.forward(&x);
        let mut ws = Workspace::new();
        let y_inf = m.infer(x.clone(), &mut ws);
        assert_eq!(y_train, y_inf, "infer must match forward bitwise");
    }

    #[test]
    fn infer_steady_state_does_not_allocate() {
        let m = small_critic(15);
        let mut rng = seeded_rng(16);
        let x = randn(&[3, 4, 4, 1], &mut rng);
        let mut ws = Workspace::new();
        let run = |ws: &mut Workspace| {
            let mut buf = ws.take(x.len());
            buf.copy_from_slice(x.as_slice());
            let y = m.infer(Tensor::from_vec(buf, x.shape()), ws);
            ws.recycle(y.into_vec());
        };
        for _ in 0..3 {
            run(&mut ws); // warm-up: the pool grows until shapes settle
        }
        let settled = ws.pooled_bytes();
        for _ in 0..10 {
            run(&mut ws);
            assert_eq!(ws.pooled_bytes(), settled, "steady state must not allocate");
        }
    }

    #[test]
    fn repeated_forward_with_reclaim_is_bitwise_stable() {
        // Sequential::forward recycles dead intermediates into their
        // producing layers; results must not depend on that reuse.
        let mut m = small_critic(17);
        let mut rng = seeded_rng(18);
        let x = randn(&[3, 4, 4, 1], &mut rng);
        let first = m.forward(&x);
        for _ in 0..3 {
            assert_eq!(
                m.forward(&x),
                first,
                "reclaimed buffers must not leak state"
            );
        }
    }

    #[test]
    fn debug_format_is_nonempty() {
        let m = small_mlp(9);
        let s = format!("{m:?}");
        assert!(s.contains("Sequential") && s.contains("Dense"));
    }
}
