//! Nearest-neighbor 2-D upsampling (the generator's spatial expansion).

use crate::layer::{Layer, Param};
use crate::serialize::LayerSnapshot;
use crate::workspace::Workspace;
use crate::Tensor;

/// Nearest-neighbor upsampling of NHWC tensors by integer factors.
///
/// The WGAN generator projects noise to a small spatial seed (e.g. 5×6) and
/// upsamples to the snapshot size (10×12), mirroring Keras
/// `UpSampling2D`.
///
/// # Examples
///
/// ```
/// use vehigan_tensor::{layers::UpSample2D, layer::Layer, Tensor};
///
/// let mut up = UpSample2D::new(2, 2);
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2, 1]);
/// let y = up.forward(&x);
/// assert_eq!(y.shape(), &[1, 4, 4, 1]);
/// assert_eq!(y.get(&[0, 1, 1, 0]), 1.0); // replicated corner
/// ```
#[derive(Debug)]
pub struct UpSample2D {
    fy: usize,
    fx: usize,
    cached_input_shape: Option<Vec<usize>>,
}

impl UpSample2D {
    /// Creates an upsampler with vertical factor `fy` and horizontal `fx`.
    ///
    /// # Panics
    ///
    /// Panics if either factor is zero.
    pub fn new(fy: usize, fx: usize) -> Self {
        assert!(fy > 0 && fx > 0, "upsample factors must be nonzero");
        UpSample2D {
            fy,
            fx,
            cached_input_shape: None,
        }
    }

    /// Reconstructs from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns an error if factor attributes are missing.
    pub fn from_snapshot(snap: &LayerSnapshot) -> Result<Self, crate::serialize::ModelFormatError> {
        Ok(UpSample2D::new(
            snap.usize_attr("fy")?,
            snap.usize_attr("fx")?,
        ))
    }
}

impl Layer for UpSample2D {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(
            input.ndim(),
            4,
            "UpSample2D expects NHWC, got {:?}",
            input.shape()
        );
        let (n, h, w, c) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let (ho, wo) = (h * self.fy, w * self.fx);
        let mut out = vec![0.0f32; n * ho * wo * c];
        let src = input.as_slice();
        for ni in 0..n {
            for oy in 0..ho {
                let iy = oy / self.fy;
                for ox in 0..wo {
                    let ix = ox / self.fx;
                    let s = ((ni * h + iy) * w + ix) * c;
                    let d = ((ni * ho + oy) * wo + ox) * c;
                    out[d..d + c].copy_from_slice(&src[s..s + c]);
                }
            }
        }
        self.cached_input_shape = Some(input.shape().to_vec());
        Tensor::from_vec(out, &[n, ho, wo, c])
    }

    fn infer(&self, input: Tensor, ws: &mut Workspace) -> Tensor {
        assert_eq!(
            input.ndim(),
            4,
            "UpSample2D expects NHWC, got {:?}",
            input.shape()
        );
        let (n, h, w, c) = (
            input.shape()[0],
            input.shape()[1],
            input.shape()[2],
            input.shape()[3],
        );
        let (ho, wo) = (h * self.fy, w * self.fx);
        let mut out = ws.take(n * ho * wo * c);
        let src = input.as_slice();
        for ni in 0..n {
            for oy in 0..ho {
                let iy = oy / self.fy;
                for ox in 0..wo {
                    let ix = ox / self.fx;
                    let s = ((ni * h + iy) * w + ix) * c;
                    let d = ((ni * ho + oy) * wo + ox) * c;
                    out[d..d + c].copy_from_slice(&src[s..s + c]);
                }
            }
        }
        ws.recycle(input.into_vec());
        Tensor::from_vec(out, &[n, ho, wo, c])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cached_input_shape
            .as_ref()
            .expect("UpSample2D::backward called before forward")
            .clone();
        let (n, h, w, c) = (shape[0], shape[1], shape[2], shape[3]);
        let (ho, wo) = (h * self.fy, w * self.fx);
        assert_eq!(grad_out.shape(), &[n, ho, wo, c], "grad shape mismatch");
        let mut grad = vec![0.0f32; n * h * w * c];
        let g = grad_out.as_slice();
        for ni in 0..n {
            for oy in 0..ho {
                let iy = oy / self.fy;
                for ox in 0..wo {
                    let ix = ox / self.fx;
                    let d = ((ni * h + iy) * w + ix) * c;
                    let s = ((ni * ho + oy) * wo + ox) * c;
                    for ci in 0..c {
                        grad[d + ci] += g[s + ci];
                    }
                }
            }
        }
        Tensor::from_vec(grad, &shape)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "UpSample2D"
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        assert_eq!(
            input_shape.len(),
            3,
            "upsample input shape must be [h, w, c]"
        );
        vec![
            input_shape[0] * self.fy,
            input_shape[1] * self.fx,
            input_shape[2],
        ]
    }

    fn save(&self) -> LayerSnapshot {
        LayerSnapshot::new("UpSample2D")
            .with_usize("fy", self.fy)
            .with_usize("fx", self.fx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{finite_diff_grad, max_relative_error};
    use crate::init::{randn, seeded_rng};

    #[test]
    fn replicates_values() {
        let mut up = UpSample2D::new(2, 3);
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 1, 2, 1]);
        let y = up.forward(&x);
        assert_eq!(y.shape(), &[1, 2, 6, 1]);
        assert_eq!(
            y.as_slice(),
            &[1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0]
        );
    }

    #[test]
    fn backward_sums_blocks() {
        let mut up = UpSample2D::new(2, 2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 2, 1]);
        let _ = up.forward(&x);
        let g = up.backward(&Tensor::ones(&[1, 4, 4, 1]));
        assert_eq!(g.as_slice(), &[4.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = seeded_rng(1);
        let mut up = UpSample2D::new(2, 2);
        let x = randn(&[2, 3, 3, 2], &mut rng);
        let _ = up.forward(&x);
        let analytic = up.backward(&Tensor::ones(&[2, 6, 6, 2]));
        let numeric = finite_diff_grad(
            |xx| {
                let mut u = UpSample2D::new(2, 2);
                u.forward(xx).sum()
            },
            &x,
            1e-2,
        );
        assert!(max_relative_error(&analytic, &numeric) < 1e-2);
    }

    #[test]
    fn multichannel_preserved() {
        let mut up = UpSample2D::new(1, 2);
        let x = Tensor::from_vec(vec![1.0, 10.0], &[1, 1, 1, 2]);
        let y = up.forward(&x);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.as_slice(), &[1.0, 10.0, 1.0, 10.0]);
    }

    #[test]
    fn snapshot_roundtrip() {
        let up = UpSample2D::new(3, 4);
        let snap = up.save();
        let back = UpSample2D::from_snapshot(&snap).unwrap();
        assert_eq!((back.fy, back.fx), (3, 4));
    }
}
