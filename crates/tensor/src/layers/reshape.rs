//! Shape-manipulation layers: [`Flatten`] and [`Reshape`].

use crate::layer::{Layer, Param};
use crate::serialize::LayerSnapshot;
use crate::workspace::Workspace;
use crate::Tensor;

/// Flattens all non-batch dimensions: `[N, d1, …, dk] → [N, d1·…·dk]`.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }

    /// Reconstructs from a snapshot.
    pub fn from_snapshot(
        _snap: &LayerSnapshot,
    ) -> Result<Self, crate::serialize::ModelFormatError> {
        Ok(Flatten::new())
    }
}

impl Layer for Flatten {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_shape = Some(input.shape().to_vec());
        let batch = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        input.reshape(&[batch, rest])
    }

    fn infer(&self, mut input: Tensor, _ws: &mut Workspace) -> Tensor {
        let batch = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        input.reshape_in_place(&[batch, rest]);
        input
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cached_shape
            .as_ref()
            .expect("Flatten::backward called before forward");
        grad_out.reshape(shape)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "Flatten"
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        vec![input_shape.iter().product()]
    }

    fn save(&self) -> LayerSnapshot {
        LayerSnapshot::new("Flatten")
    }
}

/// Reshapes the non-batch dimensions to a fixed target shape.
///
/// Used by the WGAN generator to turn a dense projection into a spatial
/// `[h, w, c]` seed for upsampling.
#[derive(Debug)]
pub struct Reshape {
    target: Vec<usize>,
    cached_shape: Option<Vec<usize>>,
}

impl Reshape {
    /// Creates a reshape layer targeting the given non-batch shape.
    pub fn new(target: &[usize]) -> Self {
        Reshape {
            target: target.to_vec(),
            cached_shape: None,
        }
    }

    /// Reconstructs from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns an error if the rank attribute or dims are missing.
    pub fn from_snapshot(snap: &LayerSnapshot) -> Result<Self, crate::serialize::ModelFormatError> {
        let rank = snap.usize_attr("rank")?;
        let mut target = Vec::with_capacity(rank);
        for i in 0..rank {
            let key: &'static str = match i {
                0 => "d0",
                1 => "d1",
                2 => "d2",
                3 => "d3",
                _ => {
                    return Err(crate::serialize::ModelFormatError::Corrupt(
                        "reshape rank > 4",
                    ))
                }
            };
            target.push(snap.usize_attr(key)?);
        }
        Ok(Reshape::new(&target))
    }
}

impl Layer for Reshape {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        self.cached_shape = Some(input.shape().to_vec());
        let mut shape = vec![input.shape()[0]];
        shape.extend_from_slice(&self.target);
        input.reshape(&shape)
    }

    fn infer(&self, mut input: Tensor, _ws: &mut Workspace) -> Tensor {
        let mut shape = Vec::with_capacity(1 + self.target.len());
        shape.push(input.shape()[0]);
        shape.extend_from_slice(&self.target);
        input.reshape_in_place(&shape);
        input
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .cached_shape
            .as_ref()
            .expect("Reshape::backward called before forward");
        grad_out.reshape(shape)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "Reshape"
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        let n_in: usize = input_shape.iter().product();
        let n_out: usize = self.target.iter().product();
        assert_eq!(n_in, n_out, "Reshape {input_shape:?} -> {:?}", self.target);
        self.target.clone()
    }

    fn save(&self) -> LayerSnapshot {
        let mut snap = LayerSnapshot::new("Reshape").with_usize("rank", self.target.len());
        for (i, &d) in self.target.iter().enumerate() {
            let key = match i {
                0 => "d0",
                1 => "d1",
                2 => "d2",
                3 => "d3",
                _ => panic!("reshape rank > 4 unsupported"),
            };
            snap = snap.with_usize(key, d);
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_roundtrip() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 4]);
        let y = f.forward(&x);
        assert_eq!(y.shape(), &[2, 12]);
        let back = f.backward(&y);
        assert_eq!(back, x);
    }

    #[test]
    fn reshape_roundtrip() {
        let mut r = Reshape::new(&[3, 2, 1]);
        let x = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[2, 6]);
        let y = r.forward(&x);
        assert_eq!(y.shape(), &[2, 3, 2, 1]);
        let back = r.backward(&y);
        assert_eq!(back, x);
    }

    #[test]
    fn reshape_snapshot_roundtrip() {
        let r = Reshape::new(&[5, 6, 2]);
        let snap = r.save();
        let r2 = Reshape::from_snapshot(&snap).unwrap();
        assert_eq!(r2.target, vec![5, 6, 2]);
    }

    #[test]
    fn output_shapes() {
        let f = Flatten::new();
        assert_eq!(f.output_shape(&[3, 4, 2]), vec![24]);
        let r = Reshape::new(&[4, 6]);
        assert_eq!(r.output_shape(&[24]), vec![4, 6]);
    }

    #[test]
    #[should_panic(expected = "Reshape")]
    fn reshape_bad_count_panics() {
        let r = Reshape::new(&[4, 6]);
        let _ = r.output_shape(&[23]);
    }
}
