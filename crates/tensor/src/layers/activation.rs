//! Element-wise activation layers.

use crate::layer::{Layer, Param};
use crate::serialize::LayerSnapshot;
use crate::workspace::Workspace;
use crate::Tensor;

/// The activation function applied by an [`Activation`] layer.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ActivationKind {
    /// `max(alpha·x, x)` — the paper's choice for both G and D hidden layers.
    LeakyRelu {
        /// Negative-slope coefficient (Keras default 0.3; paper-style 0.2).
        alpha: f32,
    },
    /// Standard rectifier `max(0, x)`.
    Relu,
    /// Hyperbolic tangent, used at the generator output (features scaled to
    /// `[-1, 1]`).
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl ActivationKind {
    fn apply(self, x: f32) -> f32 {
        match self {
            ActivationKind::LeakyRelu { alpha } => {
                if x >= 0.0 {
                    x
                } else {
                    alpha * x
                }
            }
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::Tanh => x.tanh(),
            ActivationKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative expressed in terms of input `x` and output `y`.
    fn derivative(self, x: f32, y: f32) -> f32 {
        match self {
            ActivationKind::LeakyRelu { alpha } => {
                if x >= 0.0 {
                    1.0
                } else {
                    alpha
                }
            }
            ActivationKind::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::Tanh => 1.0 - y * y,
            ActivationKind::Sigmoid => y * (1.0 - y),
        }
    }

    fn tag(self) -> &'static str {
        match self {
            ActivationKind::LeakyRelu { .. } => "LeakyReLU",
            ActivationKind::Relu => "ReLU",
            ActivationKind::Tanh => "Tanh",
            ActivationKind::Sigmoid => "Sigmoid",
        }
    }
}

/// An element-wise activation layer (no trainable parameters).
///
/// # Examples
///
/// ```
/// use vehigan_tensor::{layers::{Activation, ActivationKind}, layer::Layer, Tensor};
///
/// let mut act = Activation::leaky_relu(0.2);
/// let y = act.forward(&Tensor::from_slice(&[-1.0, 2.0]));
/// assert_eq!(y.as_slice(), &[-0.2, 2.0]);
/// ```
#[derive(Debug)]
pub struct Activation {
    kind: ActivationKind,
    cached_input: Option<Tensor>,
    cached_output: Option<Tensor>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Activation {
            kind,
            cached_input: None,
            cached_output: None,
        }
    }

    /// Convenience constructor for [`ActivationKind::LeakyRelu`].
    pub fn leaky_relu(alpha: f32) -> Self {
        Self::new(ActivationKind::LeakyRelu { alpha })
    }

    /// Convenience constructor for [`ActivationKind::Tanh`].
    pub fn tanh() -> Self {
        Self::new(ActivationKind::Tanh)
    }

    /// The activation kind.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }

    /// Reconstructs an activation layer from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns an error if the kind tag is unknown or `alpha` is missing for
    /// LeakyReLU.
    pub fn from_snapshot(snap: &LayerSnapshot) -> Result<Self, crate::serialize::ModelFormatError> {
        let kind = match snap.kind.as_str() {
            "LeakyReLU" => ActivationKind::LeakyRelu {
                alpha: snap.f32_attr("alpha")?,
            },
            "ReLU" => ActivationKind::Relu,
            "Tanh" => ActivationKind::Tanh,
            "Sigmoid" => ActivationKind::Sigmoid,
            other => {
                return Err(crate::serialize::ModelFormatError::UnknownLayer(
                    other.into(),
                ))
            }
        };
        Ok(Activation::new(kind))
    }
}

impl Layer for Activation {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let out = input.map(|x| self.kind.apply(x));
        // clone_from reuses the cache allocations once shapes settle.
        match &mut self.cached_input {
            Some(c) => c.clone_from(input),
            slot => *slot = Some(input.clone()),
        }
        match &mut self.cached_output {
            Some(c) => c.clone_from(&out),
            slot => *slot = Some(out.clone()),
        }
        out
    }

    fn infer(&self, mut input: Tensor, _ws: &mut Workspace) -> Tensor {
        let kind = self.kind;
        input.map_in_place(|x| kind.apply(x));
        input
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("Activation::backward called before forward");
        let output = self.cached_output.as_ref().expect("output cache");
        let mut grad = grad_out.clone();
        let gi = grad.as_mut_slice();
        for ((g, &x), &y) in gi.iter_mut().zip(input.as_slice()).zip(output.as_slice()) {
            *g *= self.kind.derivative(x, y);
        }
        grad
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        self.kind.tag()
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        input_shape.to_vec()
    }

    fn save(&self) -> LayerSnapshot {
        let snap = LayerSnapshot::new(self.kind.tag());
        match self.kind {
            ActivationKind::LeakyRelu { alpha } => snap.with_f32("alpha", alpha),
            _ => snap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{finite_diff_grad, max_relative_error};
    use crate::init::{randn, seeded_rng};

    #[test]
    fn leaky_relu_values() {
        let mut a = Activation::leaky_relu(0.1);
        let y = a.forward(&Tensor::from_slice(&[-10.0, 0.0, 10.0]));
        assert_eq!(y.as_slice(), &[-1.0, 0.0, 10.0]);
    }

    #[test]
    fn tanh_saturates() {
        let mut a = Activation::tanh();
        let y = a.forward(&Tensor::from_slice(&[-100.0, 0.0, 100.0]));
        assert!((y.as_slice()[0] + 1.0).abs() < 1e-6);
        assert_eq!(y.as_slice()[1], 0.0);
        assert!((y.as_slice()[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_range() {
        let mut a = Activation::new(ActivationKind::Sigmoid);
        let y = a.forward(&Tensor::from_slice(&[-5.0, 0.0, 5.0]));
        assert!(y.min() > 0.0 && y.max() < 1.0);
        assert!((y.as_slice()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gradients_match_finite_differences_for_all_kinds() {
        let kinds = [
            ActivationKind::LeakyRelu { alpha: 0.2 },
            ActivationKind::Relu,
            ActivationKind::Tanh,
            ActivationKind::Sigmoid,
        ];
        let mut rng = seeded_rng(11);
        for kind in kinds {
            let mut layer = Activation::new(kind);
            // Keep inputs away from the ReLU kink where FD is ill-defined.
            let mut x = randn(&[1, 10], &mut rng);
            x.map_in_place(|v| if v.abs() < 0.05 { v + 0.1 } else { v });
            let _ = layer.forward(&x);
            let analytic = layer.backward(&Tensor::ones(&[1, 10]));
            let numeric = finite_diff_grad(|xx| xx.map(|v| kind.apply(v)).sum(), &x, 1e-3);
            assert!(
                max_relative_error(&analytic, &numeric) < 1e-2,
                "kind {kind:?}"
            );
        }
    }

    #[test]
    fn snapshot_roundtrip_keeps_alpha() {
        let a = Activation::leaky_relu(0.37);
        let snap = a.save();
        let b = Activation::from_snapshot(&snap).unwrap();
        assert_eq!(b.kind(), ActivationKind::LeakyRelu { alpha: 0.37 });
    }

    #[test]
    fn unknown_kind_rejected() {
        let snap = LayerSnapshot::new("Swish");
        assert!(Activation::from_snapshot(&snap).is_err());
    }
}
