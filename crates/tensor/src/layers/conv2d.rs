//! 2-D convolution layer (NHWC, stride 1) via im2col.
//!
//! The VehiGAN discriminator and generator are 2-D CNNs over `w × f` BSM
//! snapshots (window length × feature count) with 2×2 kernels and LeakyReLU
//! activations (paper §IV-A.1). Snapshots are laid out `[batch, height,
//! width, channels]` with `height = w` (time) and `width = f` (features).

use crate::layer::{Layer, Param};
use crate::serialize::LayerSnapshot;
use crate::workspace::Workspace;
use crate::{Init, Tensor};
use rand::rngs::StdRng;

/// Spatial padding mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Padding {
    /// Zero-pad so the output spatial size equals the input size.
    Same,
    /// No padding; output shrinks by `kernel − 1`.
    Valid,
}

impl Padding {
    fn tag(self) -> usize {
        match self {
            Padding::Same => 0,
            Padding::Valid => 1,
        }
    }

    fn from_tag(tag: usize) -> Result<Self, crate::serialize::ModelFormatError> {
        match tag {
            0 => Ok(Padding::Same),
            1 => Ok(Padding::Valid),
            _ => Err(crate::serialize::ModelFormatError::Corrupt(
                "bad padding tag",
            )),
        }
    }
}

/// A stride-1 2-D convolution over NHWC tensors.
///
/// Weights are stored as a `[kh·kw·cin, cout]` matrix so both passes reduce
/// to matrix multiplication against the im2col expansion of the input.
///
/// # Examples
///
/// ```
/// use vehigan_tensor::{layers::{Conv2D, Padding}, layer::Layer, Tensor, Init, init::seeded_rng};
///
/// let mut rng = seeded_rng(0);
/// let mut conv = Conv2D::new(1, 8, (2, 2), Padding::Same, Init::HeUniform, &mut rng);
/// let x = Tensor::zeros(&[4, 10, 12, 1]); // batch of 10×12 single-channel snapshots
/// assert_eq!(conv.forward(&x).shape(), &[4, 10, 12, 8]);
/// ```
#[derive(Debug)]
pub struct Conv2D {
    cin: usize,
    cout: usize,
    kh: usize,
    kw: usize,
    padding: Padding,
    w: Param,
    b: Param,
    cached_input_shape: Option<Vec<usize>>,
    cached_cols: Option<Tensor>,
    cached_out: Option<Vec<f32>>,
}

impl Conv2D {
    /// Creates a convolution with `kernel = (kh, kw)` and the given padding.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        cin: usize,
        cout: usize,
        kernel: (usize, usize),
        padding: Padding,
        init: Init,
        rng: &mut StdRng,
    ) -> Self {
        let (kh, kw) = kernel;
        assert!(
            cin > 0 && cout > 0 && kh > 0 && kw > 0,
            "conv dims must be nonzero"
        );
        let fan_in = kh * kw * cin;
        let fan_out = kh * kw * cout;
        let w = init.sample(&[fan_in, cout], fan_in, fan_out, rng);
        Conv2D {
            cin,
            cout,
            kh,
            kw,
            padding,
            w: Param::new(w),
            b: Param::new(Tensor::zeros(&[cout])),
            cached_input_shape: None,
            cached_cols: None,
            cached_out: None,
        }
    }

    /// Reconstructs a convolution from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns an error if required fields are missing or the padding tag is
    /// invalid.
    pub fn from_snapshot(snap: &LayerSnapshot) -> Result<Self, crate::serialize::ModelFormatError> {
        let cin = snap.usize_attr("cin")?;
        let cout = snap.usize_attr("cout")?;
        let kh = snap.usize_attr("kh")?;
        let kw = snap.usize_attr("kw")?;
        let padding = Padding::from_tag(snap.usize_attr("padding")?)?;
        let w = snap.tensor("w")?.clone();
        let b = snap.tensor("b")?.clone();
        Ok(Conv2D {
            cin,
            cout,
            kh,
            kw,
            padding,
            w: Param::new(w),
            b: Param::new(b),
            cached_input_shape: None,
            cached_cols: None,
            cached_out: None,
        })
    }

    /// Output channel count.
    pub fn cout(&self) -> usize {
        self.cout
    }

    fn pad_offsets(&self) -> (usize, usize) {
        match self.padding {
            // Keras-style SAME for stride 1: pad_total = k − 1, extra on the
            // bottom/right; top/left gets floor((k − 1) / 2).
            Padding::Same => ((self.kh - 1) / 2, (self.kw - 1) / 2),
            Padding::Valid => (0, 0),
        }
    }

    fn out_spatial(&self, h: usize, w: usize) -> (usize, usize) {
        match self.padding {
            Padding::Same => (h, w),
            Padding::Valid => {
                assert!(
                    h >= self.kh && w >= self.kw,
                    "valid conv: input {h}×{w} smaller than kernel {}×{}",
                    self.kh,
                    self.kw
                );
                (h - self.kh + 1, w - self.kw + 1)
            }
        }
    }

    /// Expands `input` into the im2col matrix `[n·ho·wo, kh·kw·cin]`,
    /// writing into `cols`, which must be zero-filled and exactly
    /// `n·ho·wo · kh·kw·cin` long (padding positions are *skipped*, so they
    /// rely on the zero fill).
    fn im2col_into(&self, input: &Tensor, cols: &mut [f32]) {
        let (n, h, w, c) = dims4(input);
        let (ho, wo) = self.out_spatial(h, w);
        let (pt, pl) = self.pad_offsets();
        let cols_w = self.kh * self.kw * c;
        debug_assert_eq!(cols.len(), n * ho * wo * cols_w);
        let data = input.as_slice();
        let mut row = 0usize;
        for ni in 0..n {
            let n_base = ni * h * w * c;
            for oy in 0..ho {
                for ox in 0..wo {
                    let out_base = row * cols_w;
                    for ky in 0..self.kh {
                        let iy = oy as isize + ky as isize - pt as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..self.kw {
                            let ix = ox as isize + kx as isize - pl as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let src = n_base + (iy as usize * w + ix as usize) * c;
                            let dst = out_base + (ky * self.kw + kx) * c;
                            cols[dst..dst + c].copy_from_slice(&data[src..src + c]);
                        }
                    }
                    row += 1;
                }
            }
        }
    }

    /// Scatter-adds column gradients back into input-shaped gradients.
    fn col2im(&self, grad_cols: &Tensor, input_shape: &[usize]) -> Tensor {
        let (n, h, w, c) = (
            input_shape[0],
            input_shape[1],
            input_shape[2],
            input_shape[3],
        );
        let (ho, wo) = self.out_spatial(h, w);
        let (pt, pl) = self.pad_offsets();
        let cols_w = self.kh * self.kw * c;
        let mut grad = vec![0.0f32; n * h * w * c];
        let g = grad_cols.as_slice();
        let mut row = 0usize;
        for ni in 0..n {
            let n_base = ni * h * w * c;
            for oy in 0..ho {
                for ox in 0..wo {
                    let in_base = row * cols_w;
                    for ky in 0..self.kh {
                        let iy = oy as isize + ky as isize - pt as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..self.kw {
                            let ix = ox as isize + kx as isize - pl as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let dst = n_base + (iy as usize * w + ix as usize) * c;
                            let src = in_base + (ky * self.kw + kx) * c;
                            for ci in 0..c {
                                grad[dst + ci] += g[src + ci];
                            }
                        }
                    }
                    row += 1;
                }
            }
        }
        Tensor::from_vec(grad, input_shape)
    }
}

fn dims4(t: &Tensor) -> (usize, usize, usize, usize) {
    assert_eq!(
        t.ndim(),
        4,
        "conv expects NHWC 4-D input, got {:?}",
        t.shape()
    );
    let s = t.shape();
    (s[0], s[1], s[2], s[3])
}

impl Layer for Conv2D {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        let (n, h, w, c) = dims4(input);
        assert_eq!(c, self.cin, "conv cin {} vs input channels {c}", self.cin);
        let (ho, wo) = self.out_spatial(h, w);
        let rows = n * ho * wo;
        let cols_w = self.kh * self.kw * c;
        // Reuse the cached im2col buffer across steps once shapes settle.
        let mut cols = match self.cached_cols.take() {
            Some(mut t) if t.as_slice().len() == rows * cols_w => {
                t.fill_zero();
                t.reshape_in_place(&[rows, cols_w]);
                t
            }
            _ => Tensor::zeros(&[rows, cols_w]),
        };
        self.im2col_into(input, cols.as_mut_slice());
        // The output buffer is served from the reclaim cache (see
        // `Layer::reclaim`) and fed straight through the blocked GEMM — same
        // kernel and reduction order as `matmul`/`infer`, minus the per-step
        // allocation. The GEMM accumulates, so the buffer is zeroed first.
        let mut out = match self.cached_out.take() {
            Some(mut v) if v.len() == rows * self.cout => {
                v.fill(0.0);
                v
            }
            _ => vec![0.0f32; rows * self.cout],
        };
        crate::gemm::gemm(
            rows,
            cols_w,
            self.cout,
            cols.as_slice(),
            self.w.value.as_slice(),
            &mut out,
        );
        let bias = self.b.value.as_slice();
        for r in 0..rows {
            for j in 0..self.cout {
                out[r * self.cout + j] += bias[j];
            }
        }
        match &mut self.cached_input_shape {
            Some(s) => {
                s.clear();
                s.extend_from_slice(input.shape());
            }
            slot => *slot = Some(input.shape().to_vec()),
        }
        self.cached_cols = Some(cols);
        Tensor::from_vec(out, &[n, ho, wo, self.cout])
    }

    fn infer(&self, input: Tensor, ws: &mut Workspace) -> Tensor {
        let (n, h, w, c) = dims4(&input);
        assert_eq!(c, self.cin, "conv cin {} vs input channels {c}", self.cin);
        let (ho, wo) = self.out_spatial(h, w);
        let rows = n * ho * wo;
        let cols_w = self.kh * self.kw * c;
        let mut cols = ws.take(rows * cols_w); // zero-filled, as im2col needs
        self.im2col_into(&input, &mut cols);
        let mut out = ws.take(rows * self.cout);
        crate::gemm::gemm(
            rows,
            cols_w,
            self.cout,
            &cols,
            self.w.value.as_slice(),
            &mut out,
        );
        let bias = self.b.value.as_slice();
        for r in 0..rows {
            for j in 0..self.cout {
                out[r * self.cout + j] += bias[j];
            }
        }
        ws.recycle(cols);
        ws.recycle(input.into_vec());
        Tensor::from_vec(out, &[n, ho, wo, self.cout])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input_shape = self
            .cached_input_shape
            .as_ref()
            .expect("Conv2D::backward called before forward")
            .clone();
        let mut cols = self.cached_cols.take().expect("cols cache");
        let rows: usize = grad_out.shape()[..3].iter().product();
        let cols_w = self.kh * self.kw * self.cin;
        // grad_out is contiguous row-major, so its data already *is* the
        // [rows, cout] matrix — no reshape copy needed.
        let g = grad_out.as_slice();
        // dW += colsᵀ · dY, accumulated straight into w.grad (gemm_tn is
        // bitwise identical to the historical transpose-then-matmul).
        crate::gemm::gemm_tn(
            cols_w,
            self.cout,
            rows,
            cols.as_slice(),
            g,
            self.w.grad.as_mut_slice(),
        );
        {
            let gb = self.b.grad.as_mut_slice();
            for r in 0..rows {
                for j in 0..self.cout {
                    gb[j] += g[r * self.cout + j];
                }
            }
        }
        // grad_cols = dY · Wᵀ, overwriting the cols buffer — its contents
        // are dead once dW is accumulated, and the shapes match exactly.
        cols.fill_zero();
        crate::gemm::gemm_nt(
            rows,
            cols_w,
            self.cout,
            g,
            self.w.value.as_slice(),
            cols.as_mut_slice(),
        );
        let grad = self.col2im(&cols, &input_shape);
        // Hand the buffer back so the next forward reuses the allocation.
        self.cached_cols = Some(cols);
        grad
    }

    fn reclaim(&mut self, output: Tensor) {
        self.cached_out = Some(output.into_vec());
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.w, &self.b]
    }

    fn name(&self) -> &'static str {
        "Conv2D"
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        assert_eq!(input_shape.len(), 3, "conv input shape must be [h, w, c]");
        assert_eq!(input_shape[2], self.cin, "conv cin mismatch");
        let (ho, wo) = self.out_spatial(input_shape[0], input_shape[1]);
        vec![ho, wo, self.cout]
    }

    fn save(&self) -> LayerSnapshot {
        LayerSnapshot::new("Conv2D")
            .with_usize("cin", self.cin)
            .with_usize("cout", self.cout)
            .with_usize("kh", self.kh)
            .with_usize("kw", self.kw)
            .with_usize("padding", self.padding.tag())
            .with_tensor("w", self.w.value.clone())
            .with_tensor("b", self.b.value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{finite_diff_grad, max_relative_error};
    use crate::init::{randn, seeded_rng};

    fn run_conv(conv_w: &Tensor, conv_b: &Tensor, layer_proto: &Conv2D, x: &Tensor) -> f32 {
        // Re-runs the conv as a pure function of x for gradient checking.
        let mut rng = seeded_rng(0);
        let mut conv = Conv2D::new(
            layer_proto.cin,
            layer_proto.cout,
            (layer_proto.kh, layer_proto.kw),
            layer_proto.padding,
            Init::Zeros,
            &mut rng,
        );
        conv.w.value = conv_w.clone();
        conv.b.value = conv_b.clone();
        conv.forward(x).sum()
    }

    #[test]
    fn same_padding_preserves_spatial_dims() {
        let mut rng = seeded_rng(0);
        let mut conv = Conv2D::new(1, 3, (2, 2), Padding::Same, Init::HeUniform, &mut rng);
        let x = randn(&[2, 10, 12, 1], &mut rng);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[2, 10, 12, 3]);
    }

    #[test]
    fn valid_padding_shrinks() {
        let mut rng = seeded_rng(0);
        let mut conv = Conv2D::new(2, 4, (3, 3), Padding::Valid, Init::HeUniform, &mut rng);
        let x = randn(&[1, 8, 8, 2], &mut rng);
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[1, 6, 6, 4]);
    }

    #[test]
    fn identity_kernel_reproduces_input() {
        // 1×1 kernel with identity weights must be a per-channel passthrough.
        let mut rng = seeded_rng(0);
        let mut conv = Conv2D::new(1, 1, (1, 1), Padding::Same, Init::Zeros, &mut rng);
        conv.w.value = Tensor::from_vec(vec![1.0], &[1, 1]);
        let x = randn(&[1, 4, 5, 1], &mut rng);
        let y = conv.forward(&x);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn known_2x2_valid_convolution() {
        let mut rng = seeded_rng(0);
        let mut conv = Conv2D::new(1, 1, (2, 2), Padding::Valid, Init::Zeros, &mut rng);
        conv.w.value = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[4, 1]);
        let x = Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0],
            &[1, 3, 3, 1],
        );
        // 2×2 box filter over a 3×3 ramp.
        let y = conv.forward(&x);
        assert_eq!(y.shape(), &[1, 2, 2, 1]);
        assert_eq!(y.as_slice(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn input_gradient_matches_finite_differences_same() {
        let mut rng = seeded_rng(7);
        let mut conv = Conv2D::new(2, 3, (2, 2), Padding::Same, Init::HeUniform, &mut rng);
        let x = randn(&[2, 4, 5, 2], &mut rng);
        let _ = conv.forward(&x);
        let analytic = conv.backward(&Tensor::ones(&[2, 4, 5, 3]));
        let w = conv.w.value.clone();
        let b = conv.b.value.clone();
        let numeric = finite_diff_grad(|xx| run_conv(&w, &b, &conv, xx), &x, 1e-2);
        assert!(max_relative_error(&analytic, &numeric) < 2e-2);
    }

    #[test]
    fn input_gradient_matches_finite_differences_valid() {
        let mut rng = seeded_rng(8);
        let mut conv = Conv2D::new(1, 2, (3, 2), Padding::Valid, Init::HeUniform, &mut rng);
        let x = randn(&[1, 6, 6, 1], &mut rng);
        let _ = conv.forward(&x);
        let analytic = conv.backward(&Tensor::ones(&[1, 4, 5, 2]));
        let w = conv.w.value.clone();
        let b = conv.b.value.clone();
        let numeric = finite_diff_grad(|xx| run_conv(&w, &b, &conv, xx), &x, 1e-2);
        assert!(max_relative_error(&analytic, &numeric) < 2e-2);
    }

    #[test]
    fn weight_gradient_matches_finite_differences() {
        let mut rng = seeded_rng(9);
        let mut conv = Conv2D::new(1, 2, (2, 2), Padding::Same, Init::HeUniform, &mut rng);
        let x = randn(&[2, 3, 4, 1], &mut rng);
        let _ = conv.forward(&x);
        let _ = conv.backward(&Tensor::ones(&[2, 3, 4, 2]));
        let analytic = conv.w.grad.clone();
        let b = conv.b.value.clone();
        let x2 = x.clone();
        let proto_cin = conv.cin;
        let proto_cout = conv.cout;
        let numeric = finite_diff_grad(
            |ww| {
                let mut rng = seeded_rng(0);
                let mut c = Conv2D::new(
                    proto_cin,
                    proto_cout,
                    (2, 2),
                    Padding::Same,
                    Init::Zeros,
                    &mut rng,
                );
                c.w.value = ww.clone();
                c.b.value = b.clone();
                c.forward(&x2).sum()
            },
            &conv.w.value,
            1e-2,
        );
        assert!(max_relative_error(&analytic, &numeric) < 2e-2);
    }

    #[test]
    fn bias_gradient_is_output_count() {
        let mut rng = seeded_rng(10);
        let mut conv = Conv2D::new(1, 2, (2, 2), Padding::Same, Init::HeUniform, &mut rng);
        let x = randn(&[3, 4, 4, 1], &mut rng);
        let _ = conv.forward(&x);
        let _ = conv.backward(&Tensor::ones(&[3, 4, 4, 2]));
        // d/db of sum over 3·4·4 outputs per channel.
        assert_eq!(conv.b.grad.as_slice(), &[48.0, 48.0]);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut rng = seeded_rng(11);
        let conv = Conv2D::new(3, 5, (2, 2), Padding::Valid, Init::HeUniform, &mut rng);
        let snap = conv.save();
        let back = Conv2D::from_snapshot(&snap).unwrap();
        assert_eq!(back.w.value, conv.w.value);
        assert_eq!(back.padding, Padding::Valid);
        assert_eq!(back.cout(), 5);
    }

    #[test]
    fn reclaimed_output_buffer_changes_nothing() {
        // forward → reclaim → forward must be bitwise identical to a fresh
        // forward: the cached buffer is pure allocation reuse.
        let mut rng = seeded_rng(21);
        let mut conv = Conv2D::new(2, 3, (2, 2), Padding::Same, Init::HeUniform, &mut rng);
        let x = randn(&[2, 5, 6, 2], &mut rng);
        let first = conv.forward(&x);
        let reference = first.clone();
        conv.reclaim(first);
        let second = conv.forward(&x);
        assert_eq!(second, reference);
        // A shape change mid-stream must also be handled (buffer regrown).
        let y = randn(&[1, 7, 4, 2], &mut rng);
        assert_eq!(conv.forward(&y).shape(), &[1, 7, 4, 3]);
    }

    #[test]
    fn output_shape_matches_forward() {
        let mut rng = seeded_rng(12);
        let mut conv = Conv2D::new(2, 7, (2, 2), Padding::Same, Init::HeUniform, &mut rng);
        let declared = conv.output_shape(&[10, 12, 2]);
        let x = randn(&[1, 10, 12, 2], &mut rng);
        let y = conv.forward(&x);
        assert_eq!(&y.shape()[1..], declared.as_slice());
    }
}
