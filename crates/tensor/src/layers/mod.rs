//! Differentiable network layers.
//!
//! The layer set mirrors exactly what the VehiGAN paper's Keras models use:
//! 2-D convolutions with 2×2 kernels, 2-D nearest-neighbor upsampling,
//! LeakyReLU activations, and dense projections (§IV-A.1).

mod activation;
mod conv2d;
mod dense;
mod reshape;
mod upsample;

pub use activation::{Activation, ActivationKind};
pub use conv2d::{Conv2D, Padding};
pub use dense::Dense;
pub use reshape::{Flatten, Reshape};
pub use upsample::UpSample2D;
