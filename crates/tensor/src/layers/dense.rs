//! Fully-connected (dense) layer.

use crate::layer::{Layer, Param};
use crate::serialize::LayerSnapshot;
use crate::workspace::Workspace;
use crate::{Init, Tensor};
use rand::rngs::StdRng;

/// A fully-connected layer: `y = x · W + b`.
///
/// Input shape `[batch, in_dim]`, output `[batch, out_dim]`.
///
/// # Examples
///
/// ```
/// use vehigan_tensor::{layers::Dense, layer::Layer, Tensor, Init, init::seeded_rng};
///
/// let mut rng = seeded_rng(0);
/// let mut dense = Dense::new(3, 2, Init::XavierUniform, &mut rng);
/// let x = Tensor::zeros(&[4, 3]);
/// let y = dense.forward(&x);
/// assert_eq!(y.shape(), &[4, 2]);
/// ```
#[derive(Debug)]
pub struct Dense {
    in_dim: usize,
    out_dim: usize,
    w: Param,
    b: Param,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with the given initializer for `W` (biases are
    /// zero-initialized).
    pub fn new(in_dim: usize, out_dim: usize, init: Init, rng: &mut StdRng) -> Self {
        let w = init.sample(&[in_dim, out_dim], in_dim, out_dim, rng);
        Dense {
            in_dim,
            out_dim,
            w: Param::new(w),
            b: Param::new(Tensor::zeros(&[out_dim])),
            cached_input: None,
        }
    }

    /// Reconstructs a dense layer from a snapshot.
    ///
    /// # Errors
    ///
    /// Returns an error if required fields are missing.
    pub fn from_snapshot(snap: &LayerSnapshot) -> Result<Self, crate::serialize::ModelFormatError> {
        let in_dim = snap.usize_attr("in_dim")?;
        let out_dim = snap.usize_attr("out_dim")?;
        let w = snap.tensor("w")?.clone();
        let b = snap.tensor("b")?.clone();
        Ok(Dense {
            in_dim,
            out_dim,
            w: Param::new(w),
            b: Param::new(b),
            cached_input: None,
        })
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Tensor) -> Tensor {
        assert_eq!(
            input.ndim(),
            2,
            "Dense expects [batch, in], got {:?}",
            input.shape()
        );
        assert_eq!(
            input.shape()[1],
            self.in_dim,
            "Dense in_dim {} vs input {:?}",
            self.in_dim,
            input.shape()
        );
        let mut out = input.matmul(&self.w.value);
        let batch = out.shape()[0];
        let bias = self.b.value.as_slice();
        {
            let data = out.as_mut_slice();
            for i in 0..batch {
                for j in 0..self.out_dim {
                    data[i * self.out_dim + j] += bias[j];
                }
            }
        }
        // clone_from reuses the cached allocation once shapes settle.
        match &mut self.cached_input {
            Some(c) => c.clone_from(input),
            slot => *slot = Some(input.clone()),
        }
        out
    }

    fn infer(&self, input: Tensor, ws: &mut Workspace) -> Tensor {
        assert_eq!(
            input.ndim(),
            2,
            "Dense expects [batch, in], got {:?}",
            input.shape()
        );
        assert_eq!(
            input.shape()[1],
            self.in_dim,
            "Dense in_dim {} vs input {:?}",
            self.in_dim,
            input.shape()
        );
        let batch = input.shape()[0];
        let mut out = ws.take(batch * self.out_dim);
        crate::gemm::gemm(
            batch,
            self.in_dim,
            self.out_dim,
            input.as_slice(),
            self.w.value.as_slice(),
            &mut out,
        );
        let bias = self.b.value.as_slice();
        for i in 0..batch {
            for j in 0..self.out_dim {
                out[i * self.out_dim + j] += bias[j];
            }
        }
        ws.recycle(input.into_vec());
        Tensor::from_vec(out, &[batch, self.out_dim])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let input = self
            .cached_input
            .as_ref()
            .expect("Dense::backward called before forward");
        // dW = xᵀ · dY ; db = Σ_batch dY ; dX = dY · Wᵀ
        // gemm_tn accumulates straight into w.grad — no xᵀ copy, no
        // intermediate grad_w tensor. Bitwise identical to the historical
        // `input.transpose().matmul(grad_out)` reduction.
        let batch = grad_out.shape()[0];
        crate::gemm::gemm_tn(
            self.in_dim,
            self.out_dim,
            batch,
            input.as_slice(),
            grad_out.as_slice(),
            self.w.grad.as_mut_slice(),
        );
        {
            let gb = self.b.grad.as_mut_slice();
            let g = grad_out.as_slice();
            for i in 0..batch {
                for j in 0..self.out_dim {
                    gb[j] += g[i * self.out_dim + j];
                }
            }
        }
        // dX = dY · Wᵀ with W read in its stored layout.
        grad_out.matmul_nt(&self.w.value)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w, &mut self.b]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.w, &self.b]
    }

    fn name(&self) -> &'static str {
        "Dense"
    }

    fn output_shape(&self, input_shape: &[usize]) -> Vec<usize> {
        assert_eq!(
            input_shape,
            &[self.in_dim],
            "Dense expects input shape [{}]",
            self.in_dim
        );
        vec![self.out_dim]
    }

    fn save(&self) -> LayerSnapshot {
        LayerSnapshot::new("Dense")
            .with_usize("in_dim", self.in_dim)
            .with_usize("out_dim", self.out_dim)
            .with_tensor("w", self.w.value.clone())
            .with_tensor("b", self.b.value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::{finite_diff_grad, max_relative_error};
    use crate::init::{randn, seeded_rng};

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = seeded_rng(0);
        let mut d = Dense::new(3, 2, Init::Zeros, &mut rng);
        d.b.value = Tensor::from_slice(&[1.0, -1.0]);
        let x = Tensor::zeros(&[2, 3]);
        let y = d.forward(&x);
        assert_eq!(y.shape(), &[2, 2]);
        assert_eq!(y.as_slice(), &[1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn input_gradient_matches_finite_differences() {
        let mut rng = seeded_rng(1);
        let mut d = Dense::new(4, 3, Init::XavierUniform, &mut rng);
        let x = randn(&[2, 4], &mut rng);
        let _y = d.forward(&x);
        // Loss = sum of outputs → grad_out = ones.
        let analytic = d.backward(&Tensor::ones(&[2, 3]));
        let w = d.w.value.clone();
        let b = d.b.value.clone();
        let numeric = finite_diff_grad(
            |xx| {
                let mut out = xx.matmul(&w);
                for i in 0..2 {
                    for j in 0..3 {
                        let v = out.get(&[i, j]) + b.as_slice()[j];
                        out.set(&[i, j], v);
                    }
                }
                out.sum()
            },
            &x,
            1e-2,
        );
        assert!(max_relative_error(&analytic, &numeric) < 1e-2);
    }

    #[test]
    fn weight_gradient_matches_finite_differences() {
        let mut rng = seeded_rng(2);
        let mut d = Dense::new(3, 2, Init::XavierUniform, &mut rng);
        let x = randn(&[5, 3], &mut rng);
        let _ = d.forward(&x);
        let _ = d.backward(&Tensor::ones(&[5, 2]));
        let analytic = d.w.grad.clone();
        let x2 = x.clone();
        let b = d.b.value.clone();
        let w0 = d.w.value.clone();
        let numeric = finite_diff_grad(
            |w| {
                let mut out = x2.matmul(w);
                let batch = out.shape()[0];
                for i in 0..batch {
                    for j in 0..2 {
                        let v = out.get(&[i, j]) + b.as_slice()[j];
                        out.set(&[i, j], v);
                    }
                }
                out.sum()
            },
            &w0,
            1e-2,
        );
        assert!(max_relative_error(&analytic, &numeric) < 1e-2);
    }

    #[test]
    fn gradients_accumulate_across_backwards() {
        let mut rng = seeded_rng(3);
        let mut d = Dense::new(2, 2, Init::XavierUniform, &mut rng);
        let x = randn(&[1, 2], &mut rng);
        let _ = d.forward(&x);
        let _ = d.backward(&Tensor::ones(&[1, 2]));
        let g1 = d.w.grad.clone();
        let _ = d.forward(&x);
        let _ = d.backward(&Tensor::ones(&[1, 2]));
        let g2 = d.w.grad.clone();
        assert!(max_relative_error(&(&g1 * 2.0), &g2) < 1e-5);
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut rng = seeded_rng(4);
        let d = Dense::new(3, 2, Init::HeUniform, &mut rng);
        let snap = d.save();
        let d2 = Dense::from_snapshot(&snap).unwrap();
        assert_eq!(d.w.value, d2.w.value);
        assert_eq!(d.b.value, d2.b.value);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut rng = seeded_rng(5);
        let mut d = Dense::new(2, 2, Init::Zeros, &mut rng);
        let _ = d.backward(&Tensor::ones(&[1, 2]));
    }
}
