//! First-order optimizers: SGD, RMSProp, Adam.
//!
//! The original WGAN prescription (and the clipping variant used here) pairs
//! the critic with RMSProp, since momentum-based updates interact badly with
//! weight clipping; the paper's Keras implementation uses a learning rate of
//! 1e-3 and batch size 128.

use crate::layer::Param;
use crate::serialize::{read_tensor, write_tensor, ModelFormatError};
use crate::Tensor;

/// A first-order gradient-descent optimizer.
///
/// An optimizer instance owns per-parameter state and must be reused across
/// steps for the same model. `step` consumes the accumulated gradients and
/// updates values in place; callers are responsible for `zero_grad`.
pub trait Optimizer: Send {
    /// Applies one update step to the given parameters.
    ///
    /// Parameters must be passed in a stable order across calls (as returned
    /// by `Sequential::params_mut`).
    fn step(&mut self, params: &mut [&mut Param]);

    /// The configured learning rate.
    fn learning_rate(&self) -> f32;
}

/// Plain stochastic gradient descent: `w ← w − lr · g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Sgd { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        for p in params {
            let lr = self.lr;
            p.value.add_scaled(&p.grad.clone(), -lr);
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// RMSProp: adaptive per-parameter learning rates without momentum.
#[derive(Debug, Clone)]
pub struct RmsProp {
    lr: f32,
    rho: f32,
    eps: f32,
    cache: Vec<Tensor>,
}

impl RmsProp {
    /// Creates RMSProp with decay `rho = 0.9` and `eps = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        Self::with_params(lr, 0.9, 1e-8)
    }

    /// Creates RMSProp with explicit decay and epsilon.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive or `rho` outside `(0, 1)`.
    pub fn with_params(lr: f32, rho: f32, eps: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        assert!(rho > 0.0 && rho < 1.0, "rho must be in (0, 1)");
        RmsProp {
            lr,
            rho,
            eps,
            cache: Vec::new(),
        }
    }

    fn ensure_cache(&mut self, params: &[&mut Param]) {
        if self.cache.len() != params.len() {
            self.cache = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
        }
    }

    /// Serializes the per-parameter squared-gradient cache.
    ///
    /// Layout: `u32` tensor count, then each cache tensor in the model wire
    /// encoding ([`write_tensor`]). An optimizer that has never stepped
    /// serializes to an empty cache, and restoring an empty cache yields a
    /// fresh optimizer — so `state_bytes`/[`restore_state`] round-trip the
    /// *exact* update trajectory in both the stepped and unstepped case.
    ///
    /// [`restore_state`]: RmsProp::restore_state
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.cache.len() as u32).to_le_bytes());
        for t in &self.cache {
            write_tensor(&mut out, t).expect("vec write cannot fail");
        }
        out
    }

    /// Restores the cache written by [`state_bytes`](RmsProp::state_bytes).
    ///
    /// Rejects trailing bytes and malformed tensors; hyper-parameters
    /// (`lr`/`rho`/`eps`) are construction-time and not part of the state.
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), ModelFormatError> {
        let mut r = bytes;
        let mut len4 = [0u8; 4];
        std::io::Read::read_exact(&mut r, &mut len4)?;
        let count = u32::from_le_bytes(len4) as usize;
        if count > 1 << 16 {
            return Err(ModelFormatError::Corrupt("optimizer cache too large"));
        }
        let mut cache = Vec::with_capacity(count);
        for _ in 0..count {
            cache.push(read_tensor(&mut r)?);
        }
        if !r.is_empty() {
            return Err(ModelFormatError::Corrupt("trailing optimizer bytes"));
        }
        self.cache = cache;
        Ok(())
    }

    /// Shapes of the cached per-parameter tensors, in parameter order.
    ///
    /// Empty until the first `step`; used by checkpoint restore to validate
    /// a deserialized cache against the model it will drive.
    pub fn cache_shapes(&self) -> Vec<Vec<usize>> {
        self.cache.iter().map(|t| t.shape().to_vec()).collect()
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, params: &mut [&mut Param]) {
        self.ensure_cache(params);
        for (p, cache) in params.iter_mut().zip(&mut self.cache) {
            let g = p.grad.as_slice();
            let c = cache.as_mut_slice();
            let v = p.value.as_mut_slice();
            for i in 0..g.len() {
                c[i] = self.rho * c[i] + (1.0 - self.rho) * g[i] * g[i];
                v[i] -= self.lr * g[i] / (c[i].sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

/// Adam: adaptive moments (used by the autoencoder baseline).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the canonical `(β₁, β₂, ε) = (0.9, 0.999, 1e-8)`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not finite and positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    fn ensure_state(&mut self, params: &[&mut Param]) {
        if self.m.len() != params.len() {
            self.m = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
            self.v = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape()))
                .collect();
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        self.ensure_state(params);
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for ((p, m), v) in params.iter_mut().zip(&mut self.m).zip(&mut self.v) {
            let g = p.grad.as_slice();
            let ms = m.as_mut_slice();
            let vs = v.as_mut_slice();
            let w = p.value.as_mut_slice();
            for i in 0..g.len() {
                ms[i] = self.beta1 * ms[i] + (1.0 - self.beta1) * g[i];
                vs[i] = self.beta2 * vs[i] + (1.0 - self.beta2) * g[i] * g[i];
                let m_hat = ms[i] / b1t;
                let v_hat = vs[i] / b2t;
                w[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }

    fn learning_rate(&self) -> f32 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(w) = Σ (w − target)² with each optimizer and checks
    /// convergence.
    fn converges(mut opt: impl Optimizer, steps: usize, lr_tolerance: f32) {
        let target = [3.0f32, -2.0, 0.5];
        let mut p = Param::new(Tensor::zeros(&[3]));
        for _ in 0..steps {
            p.zero_grad();
            for (i, &t) in target.iter().enumerate() {
                let w = p.value.as_slice()[i];
                p.grad.as_mut_slice()[i] = 2.0 * (w - t);
            }
            opt.step(&mut [&mut p]);
        }
        for (i, &t) in target.iter().enumerate() {
            assert!(
                (p.value.as_slice()[i] - t).abs() < lr_tolerance,
                "dim {i}: {} vs {}",
                p.value.as_slice()[i],
                t
            );
        }
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        converges(Sgd::new(0.1), 200, 1e-3);
    }

    #[test]
    fn rmsprop_converges_on_quadratic() {
        converges(RmsProp::new(0.05), 2000, 1e-2);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        converges(Adam::new(0.05), 2000, 1e-2);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn negative_lr_rejected() {
        let _ = Sgd::new(-1.0);
    }

    #[test]
    fn rmsprop_state_tracks_param_count() {
        let mut opt = RmsProp::new(0.01);
        let mut a = Param::new(Tensor::zeros(&[2]));
        let mut b = Param::new(Tensor::zeros(&[3]));
        a.grad = Tensor::ones(&[2]);
        b.grad = Tensor::ones(&[3]);
        opt.step(&mut [&mut a, &mut b]);
        assert_eq!(opt.cache.len(), 2);
        assert_eq!(opt.cache[1].len(), 3);
    }

    #[test]
    fn adam_bias_correction_first_step() {
        // After one step with g = 1, Adam should move by ≈ lr regardless of
        // the tiny raw moments, thanks to bias correction.
        let mut opt = Adam::new(0.1);
        let mut p = Param::new(Tensor::zeros(&[1]));
        p.grad = Tensor::ones(&[1]);
        opt.step(&mut [&mut p]);
        assert!((p.value.as_slice()[0] + 0.1).abs() < 1e-3);
    }

    #[test]
    fn rmsprop_state_round_trips_bitwise() {
        let mut opt = RmsProp::new(0.01);
        let mut a = Param::new(Tensor::zeros(&[2, 3]));
        let mut b = Param::new(Tensor::zeros(&[4]));
        a.grad = Tensor::from_vec(vec![0.1, -0.2, 0.3, -0.4, 0.5, -0.6], &[2, 3]);
        b.grad = Tensor::from_vec(vec![1.0, -2.0, 3.0, -4.0], &[4]);
        opt.step(&mut [&mut a, &mut b]);
        opt.step(&mut [&mut a, &mut b]);

        let bytes = opt.state_bytes();
        let mut restored = RmsProp::new(0.01);
        restored.restore_state(&bytes).unwrap();
        assert_eq!(restored.cache.len(), opt.cache.len());
        for (x, y) in opt.cache.iter().zip(&restored.cache) {
            assert_eq!(x.shape(), y.shape());
            assert_eq!(x.as_slice(), y.as_slice());
        }
        assert_eq!(restored.state_bytes(), bytes);
        assert_eq!(restored.cache_shapes(), vec![vec![2usize, 3], vec![4usize]]);

        // One more identical step from both must produce identical weights.
        let mut a2 = Param::new(a.value.clone());
        a2.grad = Tensor::ones(&[2, 3]);
        a.grad = Tensor::ones(&[2, 3]);
        let mut b2 = Param::new(b.value.clone());
        b2.grad = Tensor::ones(&[4]);
        b.grad = Tensor::ones(&[4]);
        opt.step(&mut [&mut a, &mut b]);
        restored.step(&mut [&mut a2, &mut b2]);
        assert_eq!(a.value.as_slice(), a2.value.as_slice());
        assert_eq!(b.value.as_slice(), b2.value.as_slice());
    }

    #[test]
    fn rmsprop_fresh_state_round_trips_to_fresh() {
        let opt = RmsProp::new(0.01);
        let bytes = opt.state_bytes();
        let mut restored = RmsProp::new(0.01);
        restored.restore_state(&bytes).unwrap();
        assert!(restored.cache.is_empty());
        assert!(restored.cache_shapes().is_empty());
    }

    #[test]
    fn rmsprop_restore_rejects_trailing_bytes() {
        let mut opt = RmsProp::new(0.01);
        let mut bytes = opt.state_bytes();
        bytes.push(0);
        assert!(matches!(
            opt.restore_state(&bytes),
            Err(ModelFormatError::Corrupt("trailing optimizer bytes"))
        ));
    }

    #[test]
    fn learning_rate_exposed() {
        assert_eq!(Sgd::new(0.5).learning_rate(), 0.5);
        assert_eq!(RmsProp::new(0.25).learning_rate(), 0.25);
        assert_eq!(Adam::new(0.125).learning_rate(), 0.125);
    }
}
