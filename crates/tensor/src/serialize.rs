//! Flat binary model serialization.
//!
//! VehiGAN trains a zoo of up to 60 WGANs offline (training phase) and ships
//! only the selected critics to the OBU/RSU (testing phase). This module
//! provides the wire format for that hand-off: a small self-describing
//! binary layout (`VGAN` magic + version + layer snapshots) with no
//! third-party dependencies.

use crate::Tensor;
use std::fmt;
use std::io::{self, Read, Write};

/// Magic bytes identifying a VehiGAN model file.
pub const MAGIC: &[u8; 4] = b"VGAN";
/// Current wire-format version.
pub const VERSION: u32 = 1;

/// Error parsing or writing a serialized model.
#[derive(Debug)]
pub enum ModelFormatError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The magic bytes did not match [`MAGIC`].
    BadMagic,
    /// Unsupported wire-format version.
    BadVersion(u32),
    /// A layer kind string was not recognized by the loader.
    UnknownLayer(String),
    /// A required attribute or tensor was missing.
    MissingField(&'static str),
    /// Structural corruption (lengths, shapes, UTF-8).
    Corrupt(&'static str),
    /// A tensor held a non-finite (NaN/Inf) value — a poisoned model that
    /// must never be loaded into a scoring path.
    NonFinite {
        /// Flat element index of the first offending value.
        index: usize,
    },
}

impl fmt::Display for ModelFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelFormatError::Io(e) => write!(f, "i/o error: {e}"),
            ModelFormatError::BadMagic => write!(f, "not a VehiGAN model file (bad magic)"),
            ModelFormatError::BadVersion(v) => write!(f, "unsupported model format version {v}"),
            ModelFormatError::UnknownLayer(k) => write!(f, "unknown layer kind `{k}`"),
            ModelFormatError::MissingField(k) => write!(f, "missing field `{k}`"),
            ModelFormatError::Corrupt(what) => write!(f, "corrupt model file: {what}"),
            ModelFormatError::NonFinite { index } => {
                write!(
                    f,
                    "non-finite tensor value at element {index} (poisoned model)"
                )
            }
        }
    }
}

impl std::error::Error for ModelFormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelFormatError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ModelFormatError {
    fn from(e: io::Error) -> Self {
        ModelFormatError::Io(e)
    }
}

/// A serializable snapshot of one layer: kind + scalar attributes + weight
/// tensors.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSnapshot {
    /// Layer kind tag, e.g. `"Dense"`, `"Conv2D"`.
    pub kind: String,
    /// Integer hyperparameters (`in_dim`, `kernel`, …) by name.
    pub usize_attrs: Vec<(String, usize)>,
    /// Float hyperparameters (`alpha`, …) by name.
    pub f32_attrs: Vec<(String, f32)>,
    /// Weight tensors by name.
    pub tensors: Vec<(String, Tensor)>,
}

impl LayerSnapshot {
    /// Creates an empty snapshot of the given kind.
    pub fn new(kind: &str) -> Self {
        LayerSnapshot {
            kind: kind.to_string(),
            usize_attrs: Vec::new(),
            f32_attrs: Vec::new(),
            tensors: Vec::new(),
        }
    }

    /// Adds an integer attribute (builder style).
    pub fn with_usize(mut self, key: &str, v: usize) -> Self {
        self.usize_attrs.push((key.to_string(), v));
        self
    }

    /// Adds a float attribute (builder style).
    pub fn with_f32(mut self, key: &str, v: f32) -> Self {
        self.f32_attrs.push((key.to_string(), v));
        self
    }

    /// Adds a named tensor (builder style).
    pub fn with_tensor(mut self, key: &str, t: Tensor) -> Self {
        self.tensors.push((key.to_string(), t));
        self
    }

    /// Looks up an integer attribute.
    pub fn usize_attr(&self, key: &'static str) -> Result<usize, ModelFormatError> {
        self.usize_attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .ok_or(ModelFormatError::MissingField(key))
    }

    /// Looks up a float attribute.
    pub fn f32_attr(&self, key: &'static str) -> Result<f32, ModelFormatError> {
        self.f32_attrs
            .iter()
            .find(|(k, _)| k == key)
            .map(|&(_, v)| v)
            .ok_or(ModelFormatError::MissingField(key))
    }

    /// Looks up a named tensor.
    pub fn tensor(&self, key: &'static str) -> Result<&Tensor, ModelFormatError> {
        self.tensors
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, t)| t)
            .ok_or(ModelFormatError::MissingField(key))
    }
}

/// A serializable snapshot of a whole model (ordered layer snapshots).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModelSnapshot {
    /// Layer snapshots in forward order.
    pub layers: Vec<LayerSnapshot>,
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    w.write_all(&(s.len() as u32).to_le_bytes())?;
    w.write_all(s.as_bytes())
}

fn read_str(r: &mut impl Read) -> Result<String, ModelFormatError> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let len = u32::from_le_bytes(len4) as usize;
    if len > 1 << 20 {
        return Err(ModelFormatError::Corrupt("string too long"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| ModelFormatError::Corrupt("invalid utf-8"))
}

/// Writes one tensor (u32 rank, u64 dims, f32 LE values) to `w`.
///
/// Exposed so higher layers (optimizer/checkpoint state) can reuse the exact
/// model wire encoding; round-trips bitwise with [`read_tensor`].
pub fn write_tensor(w: &mut impl Write, t: &Tensor) -> io::Result<()> {
    w.write_all(&(t.shape().len() as u32).to_le_bytes())?;
    for &d in t.shape() {
        w.write_all(&(d as u64).to_le_bytes())?;
    }
    for &v in t.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads one tensor written by [`write_tensor`], rejecting non-finite
/// values, ranks above 8, and element counts above `1 << 28`.
pub fn read_tensor(r: &mut impl Read) -> Result<Tensor, ModelFormatError> {
    let mut len4 = [0u8; 4];
    r.read_exact(&mut len4)?;
    let ndim = u32::from_le_bytes(len4) as usize;
    if ndim > 8 {
        return Err(ModelFormatError::Corrupt("tensor rank too large"));
    }
    let mut shape = Vec::with_capacity(ndim);
    for _ in 0..ndim {
        let mut d8 = [0u8; 8];
        r.read_exact(&mut d8)?;
        shape.push(u64::from_le_bytes(d8) as usize);
    }
    let n: usize = shape.iter().product();
    if n > 1 << 28 {
        return Err(ModelFormatError::Corrupt("tensor too large"));
    }
    let mut data = Vec::with_capacity(n);
    let mut f4 = [0u8; 4];
    for i in 0..n {
        r.read_exact(&mut f4)?;
        let v = f32::from_le_bytes(f4);
        // A NaN/Inf weight silently corrupts every downstream score; a
        // diverged trainer or a bit flip must surface as a typed error.
        if !v.is_finite() {
            return Err(ModelFormatError::NonFinite { index: i });
        }
        data.push(v);
    }
    Ok(Tensor::from_vec(data, &shape))
}

impl ModelSnapshot {
    /// Writes the snapshot in the flat binary format.
    ///
    /// # Errors
    ///
    /// Returns an error if the underlying writer fails.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), ModelFormatError> {
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.layers.len() as u32).to_le_bytes())?;
        for layer in &self.layers {
            write_str(w, &layer.kind)?;
            w.write_all(&(layer.usize_attrs.len() as u32).to_le_bytes())?;
            for (k, v) in &layer.usize_attrs {
                write_str(w, k)?;
                w.write_all(&(*v as u64).to_le_bytes())?;
            }
            w.write_all(&(layer.f32_attrs.len() as u32).to_le_bytes())?;
            for (k, v) in &layer.f32_attrs {
                write_str(w, k)?;
                w.write_all(&v.to_le_bytes())?;
            }
            w.write_all(&(layer.tensors.len() as u32).to_le_bytes())?;
            for (k, t) in &layer.tensors {
                write_str(w, k)?;
                write_tensor(w, t)?;
            }
        }
        Ok(())
    }

    /// Reads a snapshot from the flat binary format.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, bad magic/version, or corruption.
    pub fn read_from(r: &mut impl Read) -> Result<Self, ModelFormatError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(ModelFormatError::BadMagic);
        }
        let mut v4 = [0u8; 4];
        r.read_exact(&mut v4)?;
        let version = u32::from_le_bytes(v4);
        if version != VERSION {
            return Err(ModelFormatError::BadVersion(version));
        }
        let mut n4 = [0u8; 4];
        r.read_exact(&mut n4)?;
        let n_layers = u32::from_le_bytes(n4) as usize;
        if n_layers > 4096 {
            return Err(ModelFormatError::Corrupt("too many layers"));
        }
        let mut layers = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            let kind = read_str(r)?;
            let mut snap = LayerSnapshot::new(&kind);
            r.read_exact(&mut n4)?;
            for _ in 0..u32::from_le_bytes(n4) {
                let k = read_str(r)?;
                let mut v8 = [0u8; 8];
                r.read_exact(&mut v8)?;
                snap.usize_attrs.push((k, u64::from_le_bytes(v8) as usize));
            }
            r.read_exact(&mut n4)?;
            for _ in 0..u32::from_le_bytes(n4) {
                let k = read_str(r)?;
                let mut f4 = [0u8; 4];
                r.read_exact(&mut f4)?;
                snap.f32_attrs.push((k, f32::from_le_bytes(f4)));
            }
            r.read_exact(&mut n4)?;
            for _ in 0..u32::from_le_bytes(n4) {
                let k = read_str(r)?;
                let t = read_tensor(r)?;
                snap.tensors.push((k, t));
            }
            layers.push(snap);
        }
        Ok(ModelSnapshot { layers })
    }

    /// Serializes to an in-memory byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        self.write_to(&mut buf)
            .expect("writing to a Vec cannot fail");
        buf
    }

    /// Deserializes from an in-memory byte slice.
    ///
    /// # Errors
    ///
    /// Returns an error on bad magic/version or corruption.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, ModelFormatError> {
        Self::read_from(&mut bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> ModelSnapshot {
        ModelSnapshot {
            layers: vec![
                LayerSnapshot::new("Dense")
                    .with_usize("in_dim", 4)
                    .with_usize("out_dim", 2)
                    .with_tensor("w", Tensor::from_vec(vec![0.5; 8], &[4, 2]))
                    .with_tensor("b", Tensor::zeros(&[2])),
                LayerSnapshot::new("LeakyReLU").with_f32("alpha", 0.2),
            ],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let snap = sample_snapshot();
        let bytes = snap.to_bytes();
        let back = ModelSnapshot::from_bytes(&bytes).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_snapshot().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            ModelSnapshot::from_bytes(&bytes),
            Err(ModelFormatError::BadMagic)
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample_snapshot().to_bytes();
        bytes[4] = 99;
        assert!(matches!(
            ModelSnapshot::from_bytes(&bytes),
            Err(ModelFormatError::BadVersion(99))
        ));
    }

    #[test]
    fn truncated_file_is_io_error() {
        let bytes = sample_snapshot().to_bytes();
        let truncated = &bytes[..bytes.len() / 2];
        assert!(matches!(
            ModelSnapshot::from_bytes(truncated),
            Err(ModelFormatError::Io(_))
        ));
    }

    #[test]
    fn non_finite_tensor_values_rejected() {
        for poison in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            let snap = ModelSnapshot {
                layers: vec![LayerSnapshot::new("Dense")
                    .with_tensor("w", Tensor::from_vec(vec![0.5, poison, 0.25], &[3]))],
            };
            // Serialize through the raw writer (to_bytes works on any value);
            // deserialization must refuse to load the poisoned weight.
            let bytes = snap.to_bytes();
            assert!(matches!(
                ModelSnapshot::from_bytes(&bytes),
                Err(ModelFormatError::NonFinite { index: 1 })
            ));
        }
    }

    #[test]
    fn attr_lookup() {
        let snap = sample_snapshot();
        assert_eq!(snap.layers[0].usize_attr("in_dim").unwrap(), 4);
        assert!(snap.layers[0].usize_attr("missing").is_err());
        assert_eq!(snap.layers[1].f32_attr("alpha").unwrap(), 0.2);
        assert_eq!(snap.layers[0].tensor("b").unwrap().len(), 2);
    }

    #[test]
    fn error_display_is_lowercase_and_informative() {
        let msg = ModelFormatError::UnknownLayer("Foo".into()).to_string();
        assert!(msg.contains("Foo"));
        assert!(msg.starts_with(char::is_lowercase));
    }
}
